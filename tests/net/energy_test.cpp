#include "net/energy.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"  // alert-lint: allow(module-layering) energy accounting is asserted through a full experiment run

namespace alert::net {
namespace {

TEST(EnergyModel, TxCostMatchesFirstOrderModel) {
  EnergyModel m(EnergyConfig{}, 2);
  m.charge_tx(0, 512, 250.0);
  const double bits = 512.0 * 8.0;
  const double expected = bits * (50e-9 + 100e-12 * 250.0 * 250.0);
  EXPECT_NEAR(m.meter(0).tx_j, expected, 1e-12);
  EXPECT_DOUBLE_EQ(m.meter(1).tx_j, 0.0);
}

TEST(EnergyModel, RxCostIsElectronicsOnly) {
  EnergyModel m(EnergyConfig{}, 1);
  m.charge_rx(0, 100);
  EXPECT_NEAR(m.meter(0).rx_j, 100.0 * 8.0 * 50e-9, 1e-15);
}

TEST(EnergyModel, CryptoCostIsPowerTimesTime) {
  EnergyConfig cfg;
  cfg.cpu_power_w = 2.0;
  EnergyModel m(cfg, 1);
  m.charge_crypto(0, 0.25);
  EXPECT_DOUBLE_EQ(m.meter(0).crypto_j, 0.5);
}

TEST(EnergyModel, TotalsAggregateAcrossNodes) {
  EnergyModel m(EnergyConfig{}, 3);
  m.charge_rx(0, 100);
  m.charge_rx(1, 100);
  m.charge_crypto(2, 1.0);
  const EnergyMeter t = m.total();
  EXPECT_NEAR(t.rx_j, 2 * 100.0 * 8.0 * 50e-9, 1e-12);
  EXPECT_DOUBLE_EQ(t.crypto_j, 0.5);
  EXPECT_DOUBLE_EQ(t.tx_j, 0.0);
}

TEST(EnergyModel, MaxNodeTotalFindsHotspot) {
  EnergyModel m(EnergyConfig{}, 3);
  m.charge_crypto(1, 2.0);
  m.charge_crypto(2, 1.0);
  EXPECT_DOUBLE_EQ(m.max_node_total(), 1.0);  // 2 s x 0.5 W
}

TEST(EnergyIntegration, TransmissionsChargeMeters) {
  core::ScenarioConfig cfg;
  cfg.node_count = 60;
  cfg.duration_s = 15.0;
  cfg.flow_count = 2;
  const core::RunResult r = core::run_once(cfg, 0);
  EXPECT_GT(r.energy_total_j, 0.0);
  EXPECT_GT(r.energy_per_delivered_j, 0.0);
  EXPECT_GE(r.energy_max_node_j, r.energy_total_j / 60.0);
}

TEST(EnergyIntegration, AlarmCryptoDominatesAlertCrypto) {
  // The Sec. 5.6 claim at test scale: per-hop public-key protocols burn
  // far more crypto energy than ALERT's per-packet symmetric scheme.
  core::ScenarioConfig cfg;
  cfg.node_count = 100;
  cfg.duration_s = 30.0;
  cfg.flow_count = 4;
  cfg.protocol = core::ProtocolKind::Alert;
  const core::RunResult alert_run = core::run_once(cfg, 0);
  cfg.protocol = core::ProtocolKind::Alarm;
  const core::RunResult alarm_run = core::run_once(cfg, 0);
  EXPECT_GT(alarm_run.energy_crypto_j, alert_run.energy_crypto_j * 3.0);
}

TEST(EnergyIntegration, AlertSpreadsLoadComparedToGpsrHotspot) {
  // Route randomization spreads relaying: ALERT's hotspot share of total
  // energy should be at most GPSR's (Sec. 3.1 robustness argument).
  core::ScenarioConfig cfg;
  cfg.node_count = 150;
  cfg.duration_s = 50.0;
  cfg.flow_count = 4;
  cfg.seed = 5;
  cfg.protocol = core::ProtocolKind::Alert;
  const core::RunResult alert_run = core::run_once(cfg, 0);
  cfg.protocol = core::ProtocolKind::Gpsr;
  const core::RunResult gpsr_run = core::run_once(cfg, 0);
  const double alert_share =
      alert_run.energy_max_node_j / alert_run.energy_total_j;
  const double gpsr_share =
      gpsr_run.energy_max_node_j / gpsr_run.energy_total_j;
  EXPECT_LT(alert_share, gpsr_share * 1.5);
}

}  // namespace
}  // namespace alert::net
