#include "net/mac.hpp"

#include <gtest/gtest.h>

#include "net/node.hpp"
#include "util/rng.hpp"

namespace alert::net {
namespace {

Node make_node() {
  util::Rng rng(1);
  return Node(0, 0, crypto::generate_keypair(rng));
}

TEST(Mac, TxTimeMatchesBandwidth) {
  Mac mac(MacConfig{});
  // 512 bytes at 2 Mb/s = 2.048 ms.
  EXPECT_NEAR(mac.tx_time(512), 512.0 * 8.0 / 2e6, 1e-12);
  EXPECT_NEAR(mac.tx_time(0), 0.0, 1e-12);
}

TEST(Mac, TxTimeScalesWithBandwidth) {
  MacConfig cfg;
  cfg.bandwidth_bps = 11e6;  // 802.11b peak
  Mac mac(cfg);
  EXPECT_NEAR(mac.tx_time(512), 512.0 * 8.0 / 11e6, 1e-12);
}

TEST(Mac, PropagationDelayAtLightSpeed) {
  Mac mac(MacConfig{});
  EXPECT_NEAR(mac.propagation_delay(300.0), 1e-6, 1e-9);
}

TEST(Mac, GrantNotBeforeEarliest) {
  Mac mac(MacConfig{});
  Node node = make_node();
  util::Rng rng(2);
  const MacGrant g = mac.acquire(node, 512, 5.0, 10, rng);
  EXPECT_GE(g.start, 5.0);
  EXPECT_NEAR(g.tx_time, mac.tx_time(512), 1e-12);
}

TEST(Mac, GrantSerializesFramesAtOneNode) {
  Mac mac(MacConfig{});
  Node node = make_node();
  util::Rng rng(3);
  const MacGrant g1 = mac.acquire(node, 512, 0.0, 0, rng);
  const MacGrant g2 = mac.acquire(node, 512, 0.0, 0, rng);
  EXPECT_GE(g2.start, g1.start + g1.tx_time);
  EXPECT_DOUBLE_EQ(node.mac_busy_until, g2.start + g2.tx_time);
}

TEST(Mac, BackoffGrowsWithContention) {
  Mac mac(MacConfig{});
  util::Rng rng(4);
  double sparse = 0.0, dense = 0.0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    Node a = make_node();
    sparse += mac.acquire(a, 64, 0.0, 0, rng).start;
    Node b = make_node();
    dense += mac.acquire(b, 64, 0.0, 50, rng).start;
  }
  EXPECT_GT(dense / kN, sparse / kN);
}

TEST(Mac, BackoffIncludesDifs) {
  MacConfig cfg;
  cfg.slot_s = 0.0;  // isolate the fixed component
  Mac mac(cfg);
  Node node = make_node();
  util::Rng rng(5);
  const MacGrant g = mac.acquire(node, 64, 1.0, 100, rng);
  EXPECT_NEAR(g.start, 1.0 + cfg.difs_s, 1e-12);
}

}  // namespace
}  // namespace alert::net
