#include "net/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/mac.hpp"
#include "sim/simulator.hpp"

namespace alert::net {
namespace {

/// Records deliveries, drops and link-layer failure reports.
class FaultProbe final : public PacketHandler {
 public:
  void handle(Node& self, const Packet& pkt) override {
    received.push_back({self.id(), pkt});
  }
  void on_send_failed(Node& self, const Packet& pkt, Pseudonym next_hop,
                      DropReason why) override {
    failures.push_back({self.id(), pkt.uid, next_hop, why});
  }
  struct Failure {
    NodeId holder;
    std::uint64_t uid;
    Pseudonym next_hop;
    DropReason why;
  };
  std::vector<std::pair<NodeId, Packet>> received;
  std::vector<Failure> failures;
};

class DropLog final : public TraceListener {
 public:
  void on_transmit(const Node&, const Packet&, sim::Time) override {}
  void on_deliver(const Node&, const Packet& pkt, sim::Time) override {
    if (pkt.kind != PacketKind::Hello) ++delivers;
  }
  void on_drop(const Node&, const Packet&, sim::Time, DropReason r) override {
    ++drops;
    last_reason = r;
  }
  int delivers = 0, drops = 0;
  DropReason last_reason{};
};

struct Fixture {
  Fixture(std::vector<util::Vec2> positions, NetworkConfig cfg) {
    cfg.field = {0.0, 0.0, 1000.0, 1000.0};
    cfg.node_count = positions.size();
    net = std::make_unique<Network>(
        simulator, cfg,
        std::make_unique<StaticPlacement>(std::move(positions)),
        util::Rng(99), /*horizon=*/1000.0);
    net->add_listener(&log);
  }
  sim::Simulator simulator;
  std::unique_ptr<Network> net;
  DropLog log;
};

NetworkConfig lossy(double iid, bool arq, int retry_limit = 4) {
  NetworkConfig cfg;
  cfg.faults.loss.iid = iid;
  cfg.mac.arq.enabled = arq;
  cfg.mac.arq.retry_limit = retry_limit;
  return cfg;
}

/// Hello beacons are broadcasts and start at a random phase, so they would
/// perturb exact frame/loss counts; push them past the horizon.
NetworkConfig no_hellos(NetworkConfig cfg) {
  cfg.hello_period_s = 1e6;
  return cfg;
}

Packet data_packet() {
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.size_bytes = 512;
  pkt.uid = 77;
  return pkt;
}

TEST(Arq, RecoversFromLossyChannel) {
  // Half the frames die; a 8-deep retry budget still gets the packet over.
  Fixture f({{0, 0}, {100, 0}}, lossy(0.5, /*arq=*/true, /*retry_limit=*/8));
  FaultProbe dst;
  f.net->attach_handler(1, &dst);
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), data_packet());
  f.simulator.run_until(5.0);
  ASSERT_EQ(dst.received.size(), 1u);
  EXPECT_EQ(dst.received[0].first, 1u);
  EXPECT_TRUE(f.net->fault_aware());
}

TEST(Arq, RetryExhaustionSurfacesToSenderHandler) {
  Fixture f({{0, 0}, {100, 0}},
            no_hellos(lossy(1.0, /*arq=*/true, /*retry_limit=*/3)));
  FaultProbe src;
  FaultProbe dst;
  f.net->attach_handler(0, &src);
  f.net->attach_handler(1, &dst);
  const Pseudonym to = f.net->node(1).pseudonym();
  f.net->unicast(f.net->node(0), to, data_packet());
  f.simulator.run_until(5.0);
  EXPECT_TRUE(dst.received.empty());
  ASSERT_EQ(src.failures.size(), 1u);
  EXPECT_EQ(src.failures[0].holder, 0u);
  EXPECT_EQ(src.failures[0].uid, 77u);
  EXPECT_EQ(src.failures[0].next_hop, to);
  EXPECT_EQ(src.failures[0].why, DropReason::RetryExhausted);
  EXPECT_EQ(f.log.last_reason, DropReason::RetryExhausted);
  // Attempts 1 and 2 were retried; attempt 3 exhausted the budget.
  EXPECT_EQ(f.net->arq_retries(), 2u);
  EXPECT_EQ(f.net->channel_frames_lost(), 3u);
}

TEST(Arq, WithoutArqChannelLossIsTerminalAndSilent) {
  Fixture f({{0, 0}, {100, 0}}, lossy(1.0, /*arq=*/false));
  FaultProbe src;
  f.net->attach_handler(0, &src);
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), data_packet());
  f.simulator.run_until(5.0);
  EXPECT_EQ(f.log.drops, 1);
  EXPECT_EQ(f.log.last_reason, DropReason::ChannelLoss);
  // No ack mechanism => the sender's handler must not hear about it.
  EXPECT_TRUE(src.failures.empty());
  EXPECT_EQ(f.net->arq_retries(), 0u);
}

TEST(Arq, DeadReceiverReportsNodeDown) {
  Fixture f({{0, 0}, {100, 0}}, lossy(0.0, /*arq=*/false));
  f.net->set_node_alive(1, false);
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), data_packet());
  f.simulator.run_until(5.0);
  EXPECT_EQ(f.log.delivers, 0);
  EXPECT_EQ(f.log.last_reason, DropReason::NodeDown);
}

TEST(Arq, DeadSenderNeverTransmits) {
  Fixture f({{0, 0}, {100, 0}}, lossy(0.0, /*arq=*/true));
  FaultProbe src;
  f.net->attach_handler(0, &src);
  f.net->set_node_alive(0, false);
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), data_packet());
  f.simulator.run_until(5.0);
  EXPECT_EQ(f.log.delivers, 0);
  ASSERT_EQ(src.failures.size(), 1u);
  EXPECT_EQ(src.failures[0].why, DropReason::NodeDown);
}

TEST(Arq, CrashWipesNeighborsAndRecoveryRefillsThem) {
  Fixture f({{0, 0}, {100, 0}, {200, 0}}, lossy(0.0, /*arq=*/false));
  f.simulator.run_until(3.0);
  EXPECT_FALSE(f.net->node(1).neighbors().empty());
  f.net->set_node_alive(1, false);
  EXPECT_TRUE(f.net->node(1).neighbors().empty());
  f.net->set_node_alive(1, true);
  f.simulator.run_until(8.0);  // hellos resume after reboot
  EXPECT_FALSE(f.net->node(1).neighbors().empty());
}

TEST(Arq, BroadcastReceiversLoseFramesIndependently) {
  Fixture f({{0, 0}, {100, 0}, {0, 100}},
            no_hellos(lossy(1.0, /*arq=*/false)));
  Packet pkt = data_packet();
  f.net->broadcast(f.net->node(0), pkt);
  f.simulator.run_until(5.0);
  EXPECT_EQ(f.log.delivers, 0);
  EXPECT_EQ(f.net->broadcast_losses(), 2u);  // both in-range receivers
}

TEST(Arq, JammedReceiverCountsAsChannelLoss) {
  NetworkConfig cfg;
  cfg.faults.outages.push_back({{100.0, 0.0}, 50.0, 0.0, 1000.0});
  Fixture f({{0, 0}, {100, 0}}, cfg);
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), data_packet());
  f.simulator.run_until(5.0);
  EXPECT_EQ(f.log.delivers, 0);
  EXPECT_EQ(f.log.last_reason, DropReason::ChannelLoss);
}

TEST(Arq, AckTrafficCostsEnergy) {
  // Same exchange with and without ARQ on a clean channel: the ack frames
  // must show up as strictly more radio energy.
  const auto run = [](bool arq) {
    Fixture f({{0, 0}, {100, 0}}, lossy(0.0, arq));
    FaultProbe dst;
    f.net->attach_handler(1, &dst);
    f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), data_packet());
    f.simulator.run_until(0.5);  // before any hello beacons
    EXPECT_EQ(dst.received.size(), 1u);
    return f.net->energy().total().total();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(Arq, IdealDefaultsAreNotFaultAware) {
  Fixture f({{0, 0}, {100, 0}}, NetworkConfig{});
  EXPECT_FALSE(f.net->fault_aware());
  EXPECT_EQ(f.net->channel_frames_lost(), 0u);
}

}  // namespace
}  // namespace alert::net
