#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace alert::net {
namespace {

TEST(Packet, DefaultsAreSane) {
  const Packet p;
  EXPECT_EQ(p.kind, PacketKind::Data);
  EXPECT_FALSE(p.alert.has_value());
  EXPECT_FALSE(p.geo.has_value());
  EXPECT_EQ(p.true_source, kInvalidNode);
  EXPECT_EQ(p.hop_count, 0);
}

TEST(HeaderBytes, BareHeaderIsSmall) {
  const Packet p;
  const std::size_t base = header_bytes(p);
  EXPECT_GT(base, 0u);
  EXPECT_LT(base, 64u);
}

TEST(HeaderBytes, AlertFieldsAddZoneAndTd) {
  Packet p;
  const std::size_t base = header_bytes(p);
  p.alert = AlertFields{};
  const std::size_t with_alert = header_bytes(p);
  // Zone rect (32) + TD (16) + counters + carried pubkey at minimum.
  EXPECT_GE(with_alert - base, 48u);
}

TEST(HeaderBytes, EncryptedBlocksCounted) {
  Packet p;
  p.alert = AlertFields{};
  const std::size_t before = header_bytes(p);
  p.alert->src_zone_enc.assign(5, 0);
  p.alert->session_key_enc.assign(3, 0);
  EXPECT_EQ(header_bytes(p), before + 8 * 8);
}

TEST(HeaderBytes, TtlFieldCounted) {
  Packet p;
  p.alert = AlertFields{};
  const std::size_t before = header_bytes(p);
  p.alert->ttl_enc = 42;
  EXPECT_EQ(header_bytes(p), before + 8);
}

TEST(HeaderBytes, BitmapLayersCounted) {
  Packet p;
  p.alert = AlertFields{};
  const std::size_t before = header_bytes(p);
  p.alert->bitmap_layers_enc.push_back(std::vector<std::uint64_t>(4, 0));
  p.alert->bitmap_layers_enc.push_back(std::vector<std::uint64_t>(2, 0));
  EXPECT_EQ(header_bytes(p), before + 6 * 8);
}

TEST(HeaderBytes, MulticastSetCounted) {
  Packet p;
  p.alert = AlertFields{};
  const std::size_t before = header_bytes(p);
  p.alert->multicast_set.assign(3, 0);
  EXPECT_EQ(header_bytes(p), before + 3 * 8);
}

TEST(HeaderBytes, GeoFieldsCounted) {
  Packet p;
  const std::size_t base = header_bytes(p);
  p.geo = GeoFields{};
  EXPECT_GT(header_bytes(p), base + 16);
}

}  // namespace
}  // namespace alert::net
