#include "net/node.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace alert::net {
namespace {

Node make_node(NodeId id = 0) {
  util::Rng rng(id + 1);
  return Node(id, 0x020000000000ULL + id, crypto::generate_keypair(rng));
}

TEST(Node, IdentityAccessors) {
  const Node n = make_node(7);
  EXPECT_EQ(n.id(), 7u);
  EXPECT_EQ(n.mac_address(), 0x020000000007ULL);
  EXPECT_EQ(n.public_key().n, n.private_key().n);
}

TEST(Node, PositionInterpolatesAlongSegment) {
  Node n = make_node();
  n.set_motion({0.0, 0.0}, 0.0, {1.0, 2.0}, 10.0);
  EXPECT_EQ(n.position(0.0), util::Vec2(0.0, 0.0));
  EXPECT_EQ(n.position(3.0), util::Vec2(3.0, 6.0));
  EXPECT_EQ(n.position(10.0), util::Vec2(10.0, 20.0));
}

TEST(Node, PositionHoldsAfterSegmentEnd) {
  Node n = make_node();
  n.set_motion({0.0, 0.0}, 0.0, {1.0, 0.0}, 5.0);
  EXPECT_EQ(n.position(100.0), util::Vec2(5.0, 0.0));
}

TEST(Node, PositionClampedBeforeSegmentStart) {
  Node n = make_node();
  n.set_motion({2.0, 2.0}, 5.0, {1.0, 0.0}, 10.0);
  EXPECT_EQ(n.position(0.0), util::Vec2(2.0, 2.0));
}

TEST(Node, ObserveNeighborInsertsAndUpdates) {
  Node n = make_node();
  NeighborInfo info{111, {5.0, 5.0}, {}, 0.0};
  n.observe_neighbor(info, 1.0);
  ASSERT_EQ(n.neighbors().size(), 1u);
  EXPECT_EQ(n.neighbors()[0].last_heard, 1.0);

  info.position = {6.0, 6.0};
  n.observe_neighbor(info, 2.0);
  ASSERT_EQ(n.neighbors().size(), 1u);  // updated, not duplicated
  EXPECT_EQ(n.neighbors()[0].position, util::Vec2(6.0, 6.0));
  EXPECT_EQ(n.neighbors()[0].last_heard, 2.0);
}

TEST(Node, ExpireNeighborsDropsStaleEntries) {
  Node n = make_node();
  n.observe_neighbor({1, {0, 0}, {}, 0.0}, 0.0);
  n.observe_neighbor({2, {0, 0}, {}, 0.0}, 2.0);
  n.expire_neighbors(2.4, 2.5);
  ASSERT_EQ(n.neighbors().size(), 2u);
  n.expire_neighbors(4.0, 2.5);
  ASSERT_EQ(n.neighbors().size(), 1u);
  EXPECT_EQ(n.neighbors()[0].pseudonym, 2u);
}

TEST(Node, FindNeighborByPseudonym) {
  Node n = make_node();
  n.observe_neighbor({42, {1, 1}, {}, 0.0}, 0.0);
  EXPECT_NE(n.find_neighbor(42), nullptr);
  EXPECT_EQ(n.find_neighbor(43), nullptr);
}

TEST(Node, ClosestNeighborPicksMinimumDistance) {
  Node n = make_node();
  n.observe_neighbor({1, {10.0, 0.0}, {}, 0.0}, 0.0);
  n.observe_neighbor({2, {3.0, 0.0}, {}, 0.0}, 0.0);
  n.observe_neighbor({3, {7.0, 0.0}, {}, 0.0}, 0.0);
  const NeighborInfo* c = n.closest_neighbor_to({0.0, 0.0});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->pseudonym, 2u);
}

TEST(Node, ClosestNeighborHonoursExclusion) {
  Node n = make_node();
  n.observe_neighbor({1, {1.0, 0.0}, {}, 0.0}, 0.0);
  n.observe_neighbor({2, {2.0, 0.0}, {}, 0.0}, 0.0);
  const NeighborInfo* c = n.closest_neighbor_to({0.0, 0.0}, 1u);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->pseudonym, 2u);
}

TEST(Node, ClosestNeighborEmptyTableIsNull) {
  const Node n = make_node();
  EXPECT_EQ(n.closest_neighbor_to({0.0, 0.0}), nullptr);
}

}  // namespace
}  // namespace alert::net
