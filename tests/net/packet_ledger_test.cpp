#include "net/packet_ledger.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/mobility.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace alert {
namespace {

using net::PacketFate;
using net::PacketLedger;

TEST(PacketLedger, LifecycleAccounting) {
  PacketLedger ledger;
  ledger.open(1, 0.0);
  ledger.open(2, 0.5);
  ledger.open(3, 1.0);
  EXPECT_EQ(ledger.open_count(), 3u);
  EXPECT_TRUE(ledger.balanced());

  ledger.close(1, PacketFate::Delivered, 2.0);
  ledger.close(2, PacketFate::Dropped, 2.5);
  EXPECT_EQ(ledger.open_count(), 1u);
  EXPECT_EQ(ledger.totals().delivered, 1u);
  EXPECT_EQ(ledger.totals().dropped, 1u);
  EXPECT_TRUE(ledger.is_open(3));
  EXPECT_TRUE(ledger.balanced());
}

TEST(PacketLedger, FirstCloseWins) {
  PacketLedger ledger;
  ledger.open(7, 0.0);
  ledger.close(7, PacketFate::Delivered, 1.0);
  // A late duplicate copy being dropped must not overwrite the fate.
  ledger.close(7, PacketFate::Dropped, 2.0);
  EXPECT_EQ(ledger.totals().delivered, 1u);
  EXPECT_EQ(ledger.totals().dropped, 0u);
  EXPECT_TRUE(ledger.balanced());
}

TEST(PacketLedger, DeliberateLeakIsCaught) {
  // The headline guarantee: a packet that is opened and never given a fate
  // shows up in leaked() once nothing can still be in flight.
  PacketLedger ledger;
  ledger.open(1, 0.0);
  ledger.open(2, 0.0);
  ledger.close(1, PacketFate::Delivered, 3.0);
  // uid 2 is deliberately forgotten.
  const auto leaks = ledger.leaked();
  ASSERT_EQ(leaks.size(), 1u);
  EXPECT_EQ(leaks[0].uid, 2u);
  EXPECT_EQ(leaks[0].fate, PacketFate::InFlight);
}

TEST(PacketLedger, ExpireOpenResolvesInFlightPackets) {
  PacketLedger ledger;
  ledger.open(1, 0.0);
  ledger.open(2, 0.0);
  ledger.close(1, PacketFate::Delivered, 1.0);
  EXPECT_EQ(ledger.expire_open(100.0), 1u);
  EXPECT_TRUE(ledger.leaked().empty());
  EXPECT_EQ(ledger.totals().expired, 1u);
  EXPECT_EQ(ledger.open_count(), 0u);
  EXPECT_TRUE(ledger.balanced());
}

TEST(PacketLedger, ClosingUnknownUidViolatesInvariant) {
  util::check::ScopedFailureHandler guard;
  PacketLedger ledger;
  EXPECT_THROW(ledger.close(42, PacketFate::Delivered, 0.0),
               util::check::CheckFailure);
}

TEST(PacketLedger, DoubleOpenViolatesInvariant) {
  util::check::ScopedFailureHandler guard;
  PacketLedger ledger;
  ledger.open(5, 0.0);
  EXPECT_THROW(ledger.open(5, 1.0), util::check::CheckFailure);
}

// End-to-end: every uid a live Network hands out is tracked from birth, and
// a run that ends with the queue drained accounts for every packet.
TEST(PacketLedger, NetworkOpensEveryUid) {
  sim::Simulator simulator;
  net::NetworkConfig config;
  config.node_count = 4;
  net::Network network(simulator, config,
                       std::make_unique<net::StaticPlacement>(config.field),
                       util::Rng(123), /*horizon=*/1.0);
  const std::uint64_t a = network.next_uid();
  const std::uint64_t b = network.next_uid();
  EXPECT_NE(a, b);
  EXPECT_TRUE(network.ledger().is_open(a));
  EXPECT_TRUE(network.ledger().is_open(b));
  EXPECT_EQ(network.ledger().leaked().size(), 2u);

  network.ledger().close(a, PacketFate::Delivered, simulator.now());
  network.ledger().close(b, PacketFate::Dropped, simulator.now());
  EXPECT_TRUE(network.ledger().leaked().empty());
  EXPECT_TRUE(network.ledger().balanced());
}

}  // namespace
}  // namespace alert
