#include "net/mobility.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "util/rng.hpp"

namespace alert::net {
namespace {

std::vector<std::unique_ptr<Node>> make_nodes(std::size_t count) {
  std::vector<std::unique_ptr<Node>> nodes;
  util::Rng keys(1);
  for (NodeId id = 0; id < count; ++id) {
    nodes.push_back(
        std::make_unique<Node>(id, id, crypto::generate_keypair(keys)));
  }
  return nodes;
}

/// Drive a node through the model for `duration`, following segment ends.
void advance(MobilityModel& model, Node& node, double duration,
             util::Rng& rng) {
  double t = 0.0;
  while (node.segment_end() < duration) {
    t = node.segment_end();
    model.next_segment(node, t, rng);
    ASSERT_GT(node.segment_end(), t) << "segment must make progress";
  }
}

class RwpSpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(RwpSpeedSweep, NodesStayInFieldAndMoveAtConfiguredSpeed) {
  const double speed = GetParam();
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  RandomWaypoint model(field, speed);
  auto nodes = make_nodes(10);
  util::Rng rng(3);
  model.initialize(nodes, rng);
  for (auto& n : nodes) {
    advance(model, *n, 500.0, rng);
    for (double t = 0.0; t <= 500.0; t += 25.0) {
      EXPECT_TRUE(field.contains(n->position(t)))
          << "t=" << t << " pos=" << n->position(t).x;
    }
    if (speed > 0.0) {
      EXPECT_NEAR(n->velocity().norm(), speed, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Speeds, RwpSpeedSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

TEST(RandomWaypoint, ZeroSpeedNodesNeverMove) {
  const util::Rect field{0.0, 0.0, 100.0, 100.0};
  RandomWaypoint model(field, 0.0);
  auto nodes = make_nodes(5);
  util::Rng rng(4);
  model.initialize(nodes, rng);
  for (auto& n : nodes) {
    EXPECT_EQ(n->position(0.0), n->position(1000.0));
  }
}

TEST(RandomWaypoint, PauseHoldsPositionBetweenLegs) {
  const util::Rect field{0.0, 0.0, 100.0, 100.0};
  RandomWaypoint model(field, 5.0, /*pause_s=*/2.0);
  auto nodes = make_nodes(1);
  util::Rng rng(5);
  model.initialize(nodes, rng);
  Node& n = *nodes[0];
  // Finish the first leg; the next segment should be a pause.
  const double arrival = n.segment_end();
  model.next_segment(n, arrival, rng);
  EXPECT_DOUBLE_EQ(n.velocity().norm(), 0.0);
  EXPECT_DOUBLE_EQ(n.segment_end(), arrival + 2.0);
}

TEST(RandomWaypoint, TrajectoryIsContinuousAcrossSegments) {
  const util::Rect field{0.0, 0.0, 500.0, 500.0};
  RandomWaypoint model(field, 3.0);
  auto nodes = make_nodes(1);
  util::Rng rng(6);
  model.initialize(nodes, rng);
  Node& n = *nodes[0];
  for (int i = 0; i < 20; ++i) {
    const double t_end = n.segment_end();
    const util::Vec2 before = n.position(t_end);
    model.next_segment(n, t_end, rng);
    EXPECT_NEAR(util::distance(before, n.position(t_end)), 0.0, 1e-9);
  }
}

TEST(GroupMobility, MembersStayNearReferencePoint) {
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  const double range = 150.0;
  GroupMobility model(field, 2.0, 10, range);
  auto nodes = make_nodes(50);
  util::Rng rng(7);
  model.initialize(nodes, rng);
  for (auto& n : nodes) {
    advance(model, *n, 100.0, rng);
  }
  // After motion settles, members should be within range + slack of their
  // reference point (slack covers the lookahead chase distance).
  std::size_t near = 0, total = 0;
  for (auto& n : nodes) {
    const std::size_t g = n->id() % 10;
    const double d =
        util::distance(n->position(100.0), model.reference_point(g, 100.0));
    ++total;
    if (d <= range + 100.0) ++near;
  }
  EXPECT_GE(near, total * 8 / 10);
}

TEST(GroupMobility, NodesRemainInField) {
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  GroupMobility model(field, 4.0, 5, 200.0);
  auto nodes = make_nodes(20);
  util::Rng rng(8);
  model.initialize(nodes, rng);
  for (auto& n : nodes) {
    advance(model, *n, 200.0, rng);
    for (double t = 0.0; t <= 200.0; t += 10.0) {
      EXPECT_TRUE(field.contains(n->position(t)));
    }
  }
}

TEST(GroupMobility, GroupsAreSpatiallyClustered) {
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  GroupMobility model(field, 2.0, 5, 150.0);
  auto nodes = make_nodes(50);
  util::Rng rng(9);
  model.initialize(nodes, rng);
  // Mean intra-group distance should be well below mean inter-group
  // distance at t = 0.
  double intra = 0.0, inter = 0.0;
  std::size_t n_intra = 0, n_inter = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const double d =
          util::distance(nodes[i]->position(0.0), nodes[j]->position(0.0));
      if (nodes[i]->id() % 5 == nodes[j]->id() % 5) {
        intra += d;
        ++n_intra;
      } else {
        inter += d;
        ++n_inter;
      }
    }
  }
  EXPECT_LT(intra / static_cast<double>(n_intra),
            inter / static_cast<double>(n_inter));
}

TEST(StaticPlacement, ExactPositionsRespected) {
  StaticPlacement model(std::vector<util::Vec2>{{1.0, 2.0}, {3.0, 4.0}});
  auto nodes = make_nodes(2);
  util::Rng rng(10);
  model.initialize(nodes, rng);
  EXPECT_EQ(nodes[0]->position(50.0), util::Vec2(1.0, 2.0));
  EXPECT_EQ(nodes[1]->position(50.0), util::Vec2(3.0, 4.0));
}

TEST(StaticPlacement, RandomPlacementInField) {
  const util::Rect field{10.0, 10.0, 20.0, 20.0};
  StaticPlacement model(field);
  auto nodes = make_nodes(20);
  util::Rng rng(11);
  model.initialize(nodes, rng);
  for (auto& n : nodes) {
    EXPECT_TRUE(field.contains(n->position(0.0)));
    EXPECT_EQ(n->position(0.0), n->position(999.0));
  }
}

}  // namespace
}  // namespace alert::net
