#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/mac.hpp"
#include "sim/simulator.hpp"

namespace alert::net {
namespace {

/// Records every frame a node's handler sees.
class Recorder final : public PacketHandler {
 public:
  void handle(Node& self, const Packet& pkt) override {
    received.push_back({self.id(), pkt});
  }
  std::vector<std::pair<NodeId, Packet>> received;
};

class CountingListener final : public TraceListener {
 public:
  void on_transmit(const Node&, const Packet& pkt, sim::Time) override {
    if (pkt.kind != PacketKind::Hello) ++transmits;
  }
  void on_deliver(const Node&, const Packet& pkt, sim::Time) override {
    if (pkt.kind != PacketKind::Hello) ++delivers;
  }
  void on_drop(const Node&, const Packet&, sim::Time, DropReason r) override {
    ++drops;
    last_reason = r;
  }
  int transmits = 0, delivers = 0, drops = 0;
  DropReason last_reason{};
};

struct Fixture {
  Fixture(std::vector<util::Vec2> positions, double range = 250.0) {
    NetworkConfig cfg;
    cfg.field = {0.0, 0.0, 1000.0, 1000.0};
    cfg.node_count = positions.size();
    cfg.radio_range_m = range;
    net = std::make_unique<Network>(
        simulator, cfg,
        std::make_unique<StaticPlacement>(std::move(positions)),
        util::Rng(99), /*horizon=*/1000.0);
  }
  sim::Simulator simulator;
  std::unique_ptr<Network> net;
};

TEST(Network, BuildsRequestedNodeCount) {
  Fixture f({{0, 0}, {100, 0}, {200, 0}});
  EXPECT_EQ(f.net->size(), 3u);
}

TEST(Network, NodesHaveDistinctKeysAndPseudonyms) {
  Fixture f({{0, 0}, {100, 0}, {200, 0}});
  EXPECT_NE(f.net->node(0).public_key().n, f.net->node(1).public_key().n);
  EXPECT_NE(f.net->node(0).pseudonym(), f.net->node(1).pseudonym());
}

TEST(Network, PseudonymRegistryResolves) {
  Fixture f({{0, 0}, {100, 0}});
  EXPECT_EQ(f.net->resolve_pseudonym(f.net->node(0).pseudonym()), 0u);
  EXPECT_EQ(f.net->resolve_pseudonym(f.net->node(1).pseudonym()), 1u);
  EXPECT_EQ(f.net->resolve_pseudonym(0xDEAD), kInvalidNode);
}

TEST(Network, RotationKeepsOldPseudonymResolvable) {
  Fixture f({{0, 0}});
  const Pseudonym old = f.net->node(0).pseudonym();
  f.net->rotate_pseudonym(f.net->node(0));
  EXPECT_NE(f.net->node(0).pseudonym(), old);
  EXPECT_EQ(f.net->resolve_pseudonym(old), 0u);
  EXPECT_EQ(f.net->resolve_pseudonym(f.net->node(0).pseudonym()), 0u);
}

TEST(Network, NodesWithinRadius) {
  Fixture f({{0, 0}, {100, 0}, {600, 0}});
  const auto near = f.net->nodes_within({0, 0}, 250.0, 0.0);
  EXPECT_EQ(near.size(), 2u);  // self + the 100 m node
}

TEST(Network, HelloBeaconsPopulateNeighborTables) {
  Fixture f({{0, 0}, {100, 0}, {600, 0}});
  f.simulator.run_until(3.0);
  // Nodes 0 and 1 are in range of each other; node 2 is isolated.
  EXPECT_EQ(f.net->node(0).neighbors().size(), 1u);
  EXPECT_EQ(f.net->node(1).neighbors().size(), 1u);
  EXPECT_TRUE(f.net->node(2).neighbors().empty());
  EXPECT_EQ(f.net->node(0).neighbors()[0].position, util::Vec2(100, 0));
}

TEST(Network, HelloCarriesPublicKey) {
  Fixture f({{0, 0}, {100, 0}});
  f.simulator.run_until(3.0);
  ASSERT_FALSE(f.net->node(0).neighbors().empty());
  EXPECT_EQ(f.net->node(0).neighbors()[0].pubkey.n,
            f.net->node(1).public_key().n);
}

TEST(Network, UnicastDeliversToHandlerInRange) {
  Fixture f({{0, 0}, {100, 0}});
  Recorder rec;
  f.net->attach_handler(1, &rec);
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.size_bytes = 512;
  pkt.flow = 3;
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), pkt);
  f.simulator.run_until(1.0);
  ASSERT_EQ(rec.received.size(), 1u);
  EXPECT_EQ(rec.received[0].first, 1u);
  EXPECT_EQ(rec.received[0].second.flow, 3u);
  EXPECT_EQ(rec.received[0].second.prev_hop, 0u);
}

TEST(Network, UnicastOutOfRangeDropsWithReason) {
  Fixture f({{0, 0}, {900, 0}});
  Recorder rec;
  CountingListener listener;
  f.net->attach_handler(1, &rec);
  f.net->add_listener(&listener);
  Packet pkt;
  pkt.size_bytes = 512;
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), pkt);
  f.simulator.run_until(1.0);
  EXPECT_TRUE(rec.received.empty());
  EXPECT_EQ(listener.drops, 1);
  EXPECT_EQ(listener.last_reason, DropReason::OutOfRange);
}

TEST(Network, UnicastToUnknownPseudonymDrops) {
  Fixture f({{0, 0}});
  CountingListener listener;
  f.net->add_listener(&listener);
  Packet pkt;
  pkt.size_bytes = 64;
  f.net->unicast(f.net->node(0), 0xBEEF, pkt);
  f.simulator.run_until(1.0);
  EXPECT_EQ(listener.drops, 1);
}

TEST(Network, BroadcastReachesAllInRangeExceptSender) {
  Fixture f({{0, 0}, {100, 0}, {200, 0}, {600, 0}});
  Recorder r1, r2, r3;
  f.net->attach_handler(1, &r1);
  f.net->attach_handler(2, &r2);
  f.net->attach_handler(3, &r3);
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.size_bytes = 128;
  f.net->broadcast(f.net->node(0), pkt);
  f.simulator.run_until(1.0);
  EXPECT_EQ(r1.received.size(), 1u);
  EXPECT_EQ(r2.received.size(), 1u);
  EXPECT_TRUE(r3.received.empty());  // 600 m away
}

TEST(Network, TransmissionTimeScalesWithSize) {
  Fixture f({{0, 0}, {100, 0}});
  Recorder rec;
  f.net->attach_handler(1, &rec);
  Packet small, large;
  small.size_bytes = 64;
  large.size_bytes = 2048;
  // Send both from the same node; MAC serializes them.
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), small);
  const double t_small = f.net->node(0).mac_busy_until;
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), large);
  const double t_large = f.net->node(0).mac_busy_until;
  EXPECT_GT(t_large - t_small, (2048.0 - 64.0) * 8.0 / 2e6 * 0.9);
  f.simulator.run_until(1.0);
  EXPECT_EQ(rec.received.size(), 2u);
}

TEST(Network, ProcessingDelayDefersTransmission) {
  Fixture f({{0, 0}, {100, 0}});
  Recorder rec;
  f.net->attach_handler(1, &rec);
  Packet pkt;
  pkt.size_bytes = 64;
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), pkt, 0.25);
  f.simulator.run_until(0.2);
  EXPECT_TRUE(rec.received.empty());
  f.simulator.run_until(1.0);
  EXPECT_EQ(rec.received.size(), 1u);
}

TEST(Network, ListenersSeeTransmitAndDeliver) {
  Fixture f({{0, 0}, {100, 0}});
  CountingListener listener;
  Recorder rec;
  f.net->add_listener(&listener);
  f.net->attach_handler(1, &rec);
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.size_bytes = 64;
  f.net->unicast(f.net->node(0), f.net->node(1).pseudonym(), pkt);
  f.simulator.run_until(1.0);
  EXPECT_EQ(listener.transmits, 1);
  EXPECT_EQ(listener.delivers, 1);
}

TEST(Network, HelloCountAccumulates) {
  Fixture f({{0, 0}, {100, 0}});
  f.simulator.run_until(5.0);
  // Two nodes beaconing every second for 5 s, phases in [0,1).
  EXPECT_GE(f.net->hello_count(), 8u);
  EXPECT_LE(f.net->hello_count(), 12u);
}

TEST(Network, MovingReceiverEscapesUnicast) {
  // Receiver starts in range but moves out before frame delivery when the
  // sender is busy long enough.
  NetworkConfig cfg;
  cfg.node_count = 2;
  cfg.radio_range_m = 100.0;
  sim::Simulator simulator;
  Network net(simulator, cfg,
              std::make_unique<StaticPlacement>(
                  std::vector<util::Vec2>{{0, 0}, {99, 0}}),
              util::Rng(5), 1000.0);
  // Teleport-like fast motion: the receiver races away at 1 km/s.
  net.node(1).set_motion({99, 0}, 0.0, {1000.0, 0.0}, 10.0);
  CountingListener listener;
  net.add_listener(&listener);
  Packet pkt;
  pkt.size_bytes = 512;
  net.unicast(net.node(0), net.node(1).pseudonym(), pkt, /*delay=*/0.05);
  simulator.run_until(1.0);
  EXPECT_EQ(listener.drops, 1);
  EXPECT_EQ(listener.last_reason, DropReason::OutOfRange);
}

TEST(Network, PseudonymResolutionMatchesFullScan) {
  // Pins the hash-map fast path of resolve_pseudonym to the obvious O(N)
  // definition — for every node's current pseudonym, before and after
  // rotations (which retire the old mapping into the grace registry).
  sim::Simulator simulator;
  NetworkConfig cfg;
  cfg.node_count = 40;
  Network net(simulator, cfg, std::make_unique<StaticPlacement>(cfg.field),
              util::Rng(21), 1000.0);
  const auto check_all = [&net] {
    for (NodeId id = 0; id < net.size(); ++id) {
      const Pseudonym p = net.node(id).pseudonym();
      NodeId scanned = kInvalidNode;
      for (NodeId j = 0; j < net.size(); ++j) {
        if (net.node(j).pseudonym() == p) {
          scanned = j;
          break;
        }
      }
      ASSERT_EQ(scanned, id);
      EXPECT_EQ(net.resolve_pseudonym(p), id);
    }
  };
  check_all();
  std::vector<Pseudonym> old;
  for (NodeId id = 0; id < net.size(); ++id) {
    old.push_back(net.node(id).pseudonym());
    net.rotate_pseudonym(net.node(id));
  }
  check_all();
  // Retired pseudonyms still resolve (grace period for in-flight frames).
  for (NodeId id = 0; id < net.size(); ++id) {
    EXPECT_EQ(net.resolve_pseudonym(old[id]), id);
  }
  EXPECT_EQ(net.resolve_pseudonym(0xFFFFFFFFDEADULL), kInvalidNode);
}

TEST(Network, GridNeighbourQueriesMatchLinearScan) {
  // Two networks, identical seed and mobility, one with the spatial grid:
  // nodes_within must agree exactly at arbitrary times mid-flight.
  auto build = [](bool grid) {
    NetworkConfig cfg;
    cfg.node_count = 120;
    cfg.scale.grid = grid;
    auto simulator = std::make_unique<sim::Simulator>();
    auto net = std::make_unique<Network>(
        *simulator, cfg,
        std::make_unique<RandomWaypoint>(cfg.field, 20.0), util::Rng(77),
        /*horizon=*/50.0);
    return std::make_pair(std::move(simulator), std::move(net));
  };
  auto [sim_a, linear] = build(false);
  auto [sim_b, gridded] = build(true);
  util::Rng centers(123);
  for (double t = 0.0; t <= 40.0; t += 5.0) {
    sim_a->run_until(t);
    sim_b->run_until(t);
    for (int q = 0; q < 20; ++q) {
      const util::Vec2 c = centers.point_in(linear->config().field);
      const double r = centers.uniform(50.0, 400.0);
      EXPECT_EQ(linear->nodes_within(c, r, t), gridded->nodes_within(c, r, t))
          << "t=" << t;
    }
  }
}

TEST(Network, PooledPacketsLeakFreeAfterTraffic) {
  NetworkConfig cfg;
  cfg.node_count = 30;
  cfg.scale.pool_packets = true;
  sim::Simulator simulator;
  Network net(simulator, cfg, std::make_unique<StaticPlacement>(cfg.field),
              util::Rng(31), /*horizon=*/30.0);
  Recorder rec;
  for (NodeId id = 0; id < net.size(); ++id) net.attach_handler(id, &rec);
  simulator.run_until(5.0);  // hello broadcasts flow through the pool
  Packet pkt;
  pkt.kind = PacketKind::Data;
  pkt.size_bytes = 512;
  for (int i = 0; i < 20; ++i) {
    net.unicast(net.node(0),
                net.node(static_cast<NodeId>(1 + (i % 20))).pseudonym(), pkt);
  }
  simulator.run_until(30.0);
  const Network::PoolStats stats = net.packet_pool_stats();
  EXPECT_EQ(stats.in_use, 0u) << "pooled delivery frames leaked";
  EXPECT_GT(stats.high_water, 0u) << "traffic never went through the pool";
  EXPECT_GE(stats.capacity, stats.high_water);
}

}  // namespace
}  // namespace alert::net
