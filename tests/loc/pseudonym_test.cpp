#include "loc/pseudonym.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hpp"  // alert-lint: allow(module-layering) test exercises pseudonym rollover under simulated time

namespace alert::loc {
namespace {

net::Node make_node(net::NodeId id) {
  util::Rng rng(id + 100);
  return net::Node(id, 0x020000000000ULL + id,
                   crypto::generate_keypair(rng));
}

TEST(PseudonymManager, IssuesNonZeroPseudonyms) {
  PseudonymManager mgr({}, util::Rng(1));
  net::Node n = make_node(0);
  EXPECT_NE(mgr.make(n, 0.0), 0u);
}

TEST(PseudonymManager, NoCollisionsAcrossManyIssues) {
  PseudonymManager mgr({}, util::Rng(2));
  std::set<net::Pseudonym> seen;
  for (net::NodeId id = 0; id < 50; ++id) {
    net::Node n = make_node(id);
    for (int t = 0; t < 20; ++t) {
      seen.insert(mgr.make(n, static_cast<double>(t)));
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(mgr.collisions(), 0u);
  EXPECT_EQ(mgr.issued(), 1000u);
}

TEST(PseudonymManager, SameSecondStillDiffersViaRandomizedDigits) {
  // The randomized sub-second digits (Sec. 2.2) make two pseudonyms from
  // the same node in the same quantized second differ.
  PseudonymManager mgr({}, util::Rng(3));
  net::Node n = make_node(0);
  EXPECT_NE(mgr.make(n, 5.2), mgr.make(n, 5.7));
}

TEST(PseudonymManager, DifferentNodesSameTimeDiffer) {
  PseudonymManager mgr({}, util::Rng(4));
  net::Node a = make_node(1), b = make_node(2);
  EXPECT_NE(mgr.make(a, 1.0), mgr.make(b, 1.0));
}

TEST(PseudonymManager, LivenessTracksLifetime) {
  PseudonymPolicy policy;
  policy.lifetime_s = 10.0;
  PseudonymManager mgr(policy, util::Rng(5));
  net::Node n = make_node(0);
  const net::Pseudonym p = mgr.make(n, 100.0);
  EXPECT_TRUE(mgr.is_live(p, 105.0));
  EXPECT_TRUE(mgr.is_live(p, 110.0));
  EXPECT_FALSE(mgr.is_live(p, 110.1));
  EXPECT_FALSE(mgr.is_live(0xFEED, 100.0));  // never issued
}

TEST(PseudonymManager, HistoryRecordsAllIssues) {
  PseudonymManager mgr({}, util::Rng(6));
  net::Node n = make_node(3);
  std::vector<net::Pseudonym> issued;
  for (int t = 0; t < 5; ++t) {
    issued.push_back(mgr.make(n, static_cast<double>(t * 7)));
  }
  EXPECT_EQ(mgr.history(3), issued);
  EXPECT_TRUE(mgr.history(99).empty());
}

TEST(PseudonymManager, ActsAsNetworkProvider) {
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 3;
  PseudonymManager mgr({}, util::Rng(7));
  net::Network network(simulator, cfg,
                       std::make_unique<net::StaticPlacement>(
                           util::Rect{0, 0, 100, 100}),
                       util::Rng(8), 100.0);
  network.set_pseudonym_provider(&mgr);
  const net::Pseudonym before = network.node(0).pseudonym();
  network.rotate_pseudonym(network.node(0));
  EXPECT_NE(network.node(0).pseudonym(), before);
  EXPECT_GE(mgr.issued(), 1u);
  EXPECT_EQ(network.resolve_pseudonym(network.node(0).pseudonym()), 0u);
}

}  // namespace
}  // namespace alert::loc
