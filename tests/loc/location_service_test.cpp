#include "loc/location_service.hpp"

#include <gtest/gtest.h>

#include "net/mobility.hpp"
#include "sim/simulator.hpp"  // alert-lint: allow(module-layering) test runs the location service on a live simulator

namespace alert::loc {
namespace {

struct Fixture {
  explicit Fixture(double speed = 10.0, std::size_t servers = 4) {
    net::NetworkConfig cfg;
    cfg.node_count = 4;
    net = std::make_unique<net::Network>(
        simulator, cfg,
        std::make_unique<net::RandomWaypoint>(
            util::Rect{0, 0, 1000, 1000}, speed),
        util::Rng(11), 1000.0);
    LocationServiceConfig lcfg;
    lcfg.server_count = servers;
    lcfg.update_period_s = 1.0;
    service = std::make_unique<LocationService>(*net, lcfg, 1000.0);
  }
  sim::Simulator simulator;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<LocationService> service;
};

TEST(LocationService, QueryReturnsIdentityMaterial) {
  Fixture f;
  const auto rec = f.service->query(0, 1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->pubkey.n, f.net->node(1).public_key().n);
  EXPECT_EQ(rec->pseudonym, f.net->node(1).pseudonym());
}

TEST(LocationService, PositionTracksNodeWithinUpdatePeriod) {
  Fixture f(/*speed=*/10.0);
  f.simulator.run_until(10.0);
  const auto rec = f.service->query(0, 1);
  ASSERT_TRUE(rec.has_value());
  const double staleness =
      util::distance(rec->position, f.net->node(1).position(10.0));
  EXPECT_LE(staleness, 10.0 * 1.0 + 1e-9);  // at most one period of motion
}

TEST(LocationService, FreezeStopsPositionUpdates) {
  Fixture f(/*speed=*/10.0);
  f.simulator.run_until(1.5);
  const auto before = f.service->query(0, 1);
  f.service->freeze_updates();
  EXPECT_TRUE(f.service->frozen());
  f.simulator.run_until(50.0);
  const auto after = f.service->query(0, 1);
  ASSERT_TRUE(before && after);
  EXPECT_EQ(before->position, after->position);
  // The node itself kept moving.
  EXPECT_GT(util::distance(after->position, f.net->node(1).position(50.0)),
            50.0);
}

TEST(LocationService, UnfreezeResumesUpdates) {
  Fixture f(/*speed=*/10.0);
  f.service->freeze_updates();
  f.simulator.run_until(20.0);
  f.service->unfreeze_updates();
  f.simulator.run_until(25.0);
  const auto rec = f.service->query(0, 1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_LE(util::distance(rec->position, f.net->node(1).position(25.0)),
            10.0 + 1e-9);
}

TEST(LocationService, FrozenServiceStillServesIdentityMaterial) {
  Fixture f;
  f.service->freeze_updates();
  f.net->rotate_pseudonym(f.net->node(1));
  f.simulator.run_until(2.0);
  const auto rec = f.service->query(0, 1);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->pseudonym, f.net->node(1).pseudonym());
}

TEST(LocationService, SurvivesServerFailuresUntilLastReplica) {
  Fixture f(2.0, /*servers=*/3);
  f.service->fail_server(0);
  f.service->fail_server(1);
  EXPECT_EQ(f.service->alive_servers(), 1u);
  EXPECT_TRUE(f.service->query(0, 1).has_value());
  f.service->fail_server(2);
  EXPECT_FALSE(f.service->query(0, 1).has_value());
  f.service->restore_server(1);
  EXPECT_TRUE(f.service->query(0, 1).has_value());
}

TEST(LocationService, MessageCountersGrow) {
  Fixture f;
  f.simulator.run_until(10.0);
  // 4 nodes updating every second for 10 s (plus the initial push).
  EXPECT_GE(f.service->update_messages(), 40u);
  EXPECT_GT(f.service->inter_server_messages(), 0u);
  (void)f.service->query(0, 1);
  EXPECT_EQ(f.service->query_messages(), 1u);
}

TEST(LocationService, QueryCryptoCostPositive) {
  Fixture f;
  EXPECT_GT(f.service->query_crypto_cost_s(), 0.0);
}

TEST(LocationService, OverheadRatioSmallWhenFLessThanF) {
  Fixture f;
  // Sec. 4.3: with N_L ~ sqrt(N) and f << F the ratio must be << 1.
  const double ratio = f.service->overhead_ratio(/*regular=*/100.0);
  EXPECT_LT(ratio, 0.1);
  // And it grows as regular traffic frequency drops.
  EXPECT_GT(f.service->overhead_ratio(1.0), ratio);
}

TEST(LocationService, QueryUnknownTargetIsNull) {
  Fixture f;
  EXPECT_FALSE(f.service->query(0, 999).has_value());
}

}  // namespace
}  // namespace alert::loc
