#include "attack/trace_writer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/mobility.hpp"
#include "sim/simulator.hpp"  // alert-lint: allow(module-layering) test replays traces through a live simulator

namespace alert::attack {
namespace {

struct TempPath {
  TempPath() {
    path = ::testing::TempDir() + "/alertsim_trace_test.jsonl";
  }
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

TEST(TraceWriter, PacketKindTokens) {
  EXPECT_STREQ(packet_kind_token(net::PacketKind::Data), "data");
  EXPECT_STREQ(packet_kind_token(net::PacketKind::Cover), "cover");
  EXPECT_STREQ(packet_kind_token(net::PacketKind::Hello), "hello");
}

TEST(TraceWriter, OpenFailureThrows) {
  EXPECT_THROW(JsonlTraceWriter("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}

TEST(TraceWriter, RecordsTransmitReceiveAndDrop) {
  TempPath tmp;
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 3;
  net::Network network(
      simulator, cfg,
      std::make_unique<net::StaticPlacement>(
          std::vector<util::Vec2>{{0, 0}, {100, 0}, {900, 900}}),
      util::Rng(3), 10.0);
  JsonlTraceWriter writer(tmp.path);
  network.add_listener(&writer);

  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.size_bytes = 64;
  pkt.flow = 7;
  network.unicast(network.node(0), network.node(1).pseudonym(), pkt);
  // A drop: unicast to the isolated node.
  network.unicast(network.node(0), network.node(2).pseudonym(), pkt);
  simulator.run_until(5.0);
  writer.flush();
  EXPECT_GE(writer.events_written(), 3u);  // tx, rx, tx, drop (+ hellos)

  std::ifstream in(tmp.path);
  std::string line;
  int tx = 0, rx = 0, drop = 0, data_lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    if (line.find("\"event\":\"tx\"") != std::string::npos) ++tx;
    if (line.find("\"event\":\"rx\"") != std::string::npos) ++rx;
    if (line.find("\"event\":\"drop\"") != std::string::npos) ++drop;
    if (line.find("\"pkt\":\"data\"") != std::string::npos) ++data_lines;
    if (line.find("\"flow\":7") != std::string::npos) {
      EXPECT_NE(line.find("\"bytes\":64"), std::string::npos);
    }
  }
  EXPECT_GE(tx, 2);
  EXPECT_GE(rx, 1);
  // Two drops: out-of-range to the isolated node, and no_handler at the
  // receiver (no protocol attached in this raw-network test).
  EXPECT_EQ(drop, 2);
  EXPECT_GE(data_lines, 3);
}

TEST(TraceWriter, DropLineCarriesReason) {
  TempPath tmp;
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 2;
  net::Network network(
      simulator, cfg,
      std::make_unique<net::StaticPlacement>(
          std::vector<util::Vec2>{{0, 0}, {900, 900}}),
      util::Rng(4), 10.0);
  JsonlTraceWriter writer(tmp.path);
  network.add_listener(&writer);
  net::Packet pkt;
  pkt.size_bytes = 32;
  network.unicast(network.node(0), network.node(1).pseudonym(), pkt);
  simulator.run_until(2.0);
  writer.flush();

  std::ifstream in(tmp.path);
  std::stringstream all;
  all << in.rdbuf();
  EXPECT_NE(all.str().find("\"reason\":\"out_of_range\""),
            std::string::npos);
}

}  // namespace
}  // namespace alert::attack
