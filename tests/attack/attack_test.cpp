#include <gtest/gtest.h>

#include "attack/intersection_attack.hpp"
#include "attack/observer.hpp"
#include "attack/route_tracer.hpp"
#include "attack/timing_attack.hpp"
#include "attack/zone_residency.hpp"
#include "net/mobility.hpp"
#include "sim/simulator.hpp"  // alert-lint: allow(module-layering) test drives the adversary against a live simulator

namespace alert::attack {
namespace {

ObservedEvent tx(double t, net::NodeId node, std::uint64_t uid,
                 std::uint32_t flow, std::uint32_t seq,
                 net::NodeId src = 0, net::NodeId dst = 9) {
  ObservedEvent e;
  e.kind = EventKind::Transmit;
  e.time = t;
  e.node = node;
  e.packet_kind = net::PacketKind::Data;
  e.uid = uid;
  e.flow = flow;
  e.seq = seq;
  e.true_source = src;
  e.true_dest = dst;
  return e;
}

ObservedEvent rx(double t, net::NodeId node, std::uint64_t uid,
                 std::uint32_t flow, std::uint32_t seq, bool zone = false,
                 net::NodeId src = 0, net::NodeId dst = 9) {
  ObservedEvent e = tx(t, node, uid, flow, seq, src, dst);
  e.kind = EventKind::Receive;
  e.zone_broadcast = zone;
  e.in_dest_zone = zone;
  return e;
}

// --- RouteTracer -------------------------------------------------------

TEST(RouteTracer, IdenticalRoutesHaveFullOverlap) {
  std::vector<ObservedEvent> ev;
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    for (net::NodeId n : {0u, 1u, 2u}) {
      ev.push_back(tx(seq * 2.0, n, seq + 1, 0, seq));
    }
  }
  const auto r = trace_routes(ev);
  EXPECT_DOUBLE_EQ(r.mean_consecutive_overlap, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_participating_nodes, 3.0);
}

TEST(RouteTracer, DisjointRoutesHaveZeroOverlap) {
  std::vector<ObservedEvent> ev;
  ev.push_back(tx(0.0, 0, 1, 0, 0));
  ev.push_back(tx(0.1, 1, 1, 0, 0));
  ev.push_back(tx(2.0, 2, 2, 0, 1));
  ev.push_back(tx(2.1, 3, 2, 0, 1));
  const auto r = trace_routes(ev);
  EXPECT_DOUBLE_EQ(r.mean_consecutive_overlap, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_participating_nodes, 4.0);
}

TEST(RouteTracer, CumulativeParticipantsGrow) {
  std::vector<ObservedEvent> ev;
  ev.push_back(tx(0.0, 0, 1, 0, 0));
  ev.push_back(tx(2.0, 0, 2, 0, 1));
  ev.push_back(tx(2.1, 5, 2, 0, 1));
  const auto r = trace_routes(ev);
  ASSERT_EQ(r.cumulative_participants_by_packet.size(), 2u);
  EXPECT_DOUBLE_EQ(r.cumulative_participants_by_packet[0], 1.0);
  EXPECT_DOUBLE_EQ(r.cumulative_participants_by_packet[1], 2.0);
}

TEST(RouteTracer, IgnoresNonDataTraffic) {
  std::vector<ObservedEvent> ev;
  ev.push_back(tx(0.0, 0, 1, 0, 0));
  ObservedEvent cover = tx(0.0, 7, 2, 0, 0);
  cover.packet_kind = net::PacketKind::Cover;
  ev.push_back(cover);
  const auto r = trace_routes(ev);
  EXPECT_DOUBLE_EQ(r.mean_participating_nodes, 1.0);
}

TEST(RouteTracer, EmptyLogYieldsZeros) {
  const auto r = trace_routes({});
  EXPECT_DOUBLE_EQ(r.mean_participating_nodes, 0.0);
  EXPECT_TRUE(r.cumulative_participants_by_packet.empty());
}

// --- TimingAttack ------------------------------------------------------

TEST(TimingAttack, IdentifiesFixedPatternPair) {
  // GPSR-like flow: node 0 always originates, node 9 always terminally
  // receives with a constant delay.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    const double t = 2.0 * seq;
    ev.push_back(tx(t, 0, seq + 1, 0, seq));
    ev.push_back(tx(t + 0.002, 4, seq + 1, 0, seq));  // relay
    ev.push_back(rx(t + 0.002, 4, seq + 1, 0, seq));
    ev.push_back(rx(t + 0.005, 9, seq + 1, 0, seq));
  }
  const auto r = timing_attack(ev);
  ASSERT_EQ(r.guesses.size(), 1u);
  EXPECT_TRUE(r.guesses[0].source_correct);
  EXPECT_TRUE(r.guesses[0].dest_correct);
  EXPECT_DOUBLE_EQ(r.source_identification_rate(), 1.0);
  EXPECT_DOUBLE_EQ(r.pair_identification_rate(), 1.0);
  EXPECT_LT(r.guesses[0].delay_stddev_s, 1e-9);
}

TEST(TimingAttack, CoverTrafficConfusesOrigin) {
  // Every packet origination is accompanied by simultaneous cover
  // transmissions from lower-id neighbours: the attacker's tie-break picks
  // a cover node, not the true source (node 5).
  std::vector<ObservedEvent> ev;
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    const double t = 2.0 * seq;
    ev.push_back(tx(t + 0.003, 5, seq + 1, 0, seq, /*src=*/5));
    for (net::NodeId c : {1u, 2u, 3u}) {
      ObservedEvent cover = tx(t, c, 0, 0, 0, 5);
      cover.packet_kind = net::PacketKind::Cover;
      ev.push_back(cover);
    }
    ev.push_back(rx(t + 0.01, 9, seq + 1, 0, seq, false, 5));
  }
  const auto r = timing_attack(ev);
  ASSERT_EQ(r.guesses.size(), 1u);
  EXPECT_FALSE(r.guesses[0].source_correct);
}

TEST(TimingAttack, ZoneBroadcastHidesDestinationAmongK) {
  // Each packet terminates in a k=4 receiver set; the attacker's pick is
  // ambiguous and (tie-break by id) wrong for a high-id destination.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    const double t = 2.0 * seq;
    ev.push_back(tx(t, 0, seq + 1, 0, seq));
    for (net::NodeId k : {6u, 7u, 8u, 9u}) {
      ev.push_back(rx(t + 0.01, k, seq + 1, 0, seq, true));
    }
  }
  const auto r = timing_attack(ev);
  ASSERT_EQ(r.guesses.size(), 1u);
  EXPECT_FALSE(r.guesses[0].dest_correct);  // picked 6, true dest 9
}

TEST(TimingAttack, EmptyLogNoGuesses) {
  const auto r = timing_attack({});
  EXPECT_TRUE(r.guesses.empty());
  EXPECT_DOUBLE_EQ(r.source_identification_rate(), 0.0);
}

// --- IntersectionAttack ------------------------------------------------

TEST(IntersectionAttack, PinsDestinationPresentInEverySet) {
  std::vector<ObservedEvent> ev;
  // D = 9 receives every broadcast; camouflage nodes churn.
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    ev.push_back(rx(2.0 * seq, 9, seq + 1, 0, seq, true));
    ev.push_back(rx(2.0 * seq, 10 + seq, seq + 1, 0, seq, true));
  }
  const auto r = intersection_attack(ev);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_TRUE(r.flows[0].identified);
  EXPECT_EQ(r.flows[0].candidates, std::set<net::NodeId>{9u});
  EXPECT_DOUBLE_EQ(r.identification_rate(), 1.0);
  EXPECT_DOUBLE_EQ(r.mean_success_probability(), 1.0);
  EXPECT_TRUE(r.flows[0].frequency_correct);
  // The candidate-count curve shrinks monotonically.
  for (std::size_t i = 1; i < r.flows[0].candidate_counts.size(); ++i) {
    EXPECT_LE(r.flows[0].candidate_counts[i],
              r.flows[0].candidate_counts[i - 1]);
  }
}

TEST(IntersectionAttack, CountermeasureExpelsDestination) {
  // With the m-of-k multicast D misses half the first-step sets; strict
  // intersection loses D and the frequency attack sees a uniform field.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t seq = 0; seq < 6; ++seq) {
    ObservedEvent e = rx(2.0 * seq, 9, seq + 1, 0, seq, true);
    e.addressed = (seq % 2 == 0);  // D addressed only half the time
    ev.push_back(e);
    // Two stable camouflage holders addressed in alternating halves.
    ObservedEvent c1 = rx(2.0 * seq, 4, seq + 1, 0, seq, true);
    c1.addressed = (seq % 2 == 1);
    ev.push_back(c1);
    ObservedEvent c2 = rx(2.0 * seq, 5, seq + 1, 0, seq, true);
    ev.push_back(c2);
  }
  const auto r = intersection_attack(ev);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_FALSE(r.flows[0].identified);
  EXPECT_FALSE(r.flows[0].dest_in_candidates);
  EXPECT_FALSE(r.flows[0].frequency_correct);  // node 5 outranks D
}

TEST(IntersectionAttack, SecondStepBroadcastsExcluded) {
  std::vector<ObservedEvent> ev;
  ObservedEvent e = rx(0.0, 9, 1, 0, 0, true);
  e.second_step = true;
  ev.push_back(e);
  const auto r = intersection_attack(ev);
  EXPECT_TRUE(r.flows.empty());
}

TEST(IntersectionAttack, OutOfZoneReceiversExcluded) {
  std::vector<ObservedEvent> ev;
  ObservedEvent in = rx(0.0, 9, 1, 0, 0, true);
  ev.push_back(in);
  ObservedEvent out = rx(0.0, 3, 1, 0, 0, true);
  out.in_dest_zone = false;
  ev.push_back(out);
  const auto r = intersection_attack(ev);
  ASSERT_EQ(r.flows.size(), 1u);
  EXPECT_EQ(r.flows[0].candidates, std::set<net::NodeId>{9u});
}

// --- ZoneResidency -----------------------------------------------------

TEST(ZoneResidency, StaticNodesNeverLeave) {
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 20;
  net::Network network(simulator, cfg,
                       std::make_unique<net::StaticPlacement>(
                           util::Rect{0, 0, 1000, 1000}),
                       util::Rng(3), 100.0);
  const util::Rect zone{0.0, 0.0, 500.0, 500.0};
  ZoneResidency res(network, zone);
  EXPECT_EQ(res.remaining_at(0.0), res.initial_count());
  EXPECT_EQ(res.remaining_at(100.0), res.initial_count());
}

TEST(ZoneResidency, MobileNodesDrainOverTime) {
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 100;
  net::Network network(simulator, cfg,
                       std::make_unique<net::RandomWaypoint>(
                           util::Rect{0, 0, 1000, 1000}, 8.0),
                       util::Rng(4), 200.0);
  const util::Rect zone{400.0, 400.0, 600.0, 600.0};
  ZoneResidency res(network, zone);
  if (res.initial_count() == 0) GTEST_SKIP() << "empty zone draw";
  simulator.run_until(150.0);
  EXPECT_LT(res.remaining_at(150.0), res.initial_count());
}

TEST(ZoneResidency, OccupantsTracksCurrentMembership) {
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 10;
  net::Network network(
      simulator, cfg,
      std::make_unique<net::StaticPlacement>(std::vector<util::Vec2>{
          {100, 100}, {150, 150}, {800, 800}, {900, 100},
          {120, 180}, {400, 400}, {100, 900}, {850, 850},
          {170, 120}, {300, 900}}),
      util::Rng(5), 100.0);
  const util::Rect zone{0.0, 0.0, 200.0, 200.0};
  ZoneResidency res(network, zone);
  EXPECT_EQ(res.initial_count(), 4u);
  EXPECT_EQ(res.occupants_at(0.0).size(), 4u);
}

}  // namespace
}  // namespace alert::attack
