#include "attack/compromise.hpp"

#include <gtest/gtest.h>

namespace alert::attack {
namespace {

ObservedEvent relay_tx(net::NodeId node, std::uint32_t flow,
                       std::uint32_t seq) {
  ObservedEvent e;
  e.kind = EventKind::Transmit;
  e.node = node;
  e.packet_kind = net::PacketKind::Data;
  e.uid = (static_cast<std::uint64_t>(flow) << 32) | seq;
  e.flow = flow;
  e.seq = seq;
  e.true_source = 0;
  e.true_dest = 9;
  return e;
}

TEST(Compromise, ZeroCompromisedInterceptsNothing) {
  std::vector<ObservedEvent> ev{relay_tx(1, 0, 0), relay_tx(2, 0, 0)};
  util::Rng rng(1);
  const auto r = compromise_analysis(ev, 10, 0, 50, rng);
  EXPECT_DOUBLE_EQ(r.packet_interception, 0.0);
  EXPECT_DOUBLE_EQ(r.flow_blockage, 0.0);
}

TEST(Compromise, FullCompromiseInterceptsEverything) {
  std::vector<ObservedEvent> ev{relay_tx(1, 0, 0), relay_tx(2, 0, 1),
                                relay_tx(3, 1, 0)};
  util::Rng rng(2);
  const auto r = compromise_analysis(ev, 10, 10, 20, rng);
  EXPECT_DOUBLE_EQ(r.packet_interception, 1.0);
  EXPECT_DOUBLE_EQ(r.flow_blockage, 1.0);
  EXPECT_DOUBLE_EQ(r.flow_touched, 1.0);
}

TEST(Compromise, FixedRouteBlockedByOneNode) {
  // GPSR-like: node 5 relays every packet of the flow. Any compromised
  // set containing node 5 blocks the whole flow; with c=1 over 10 nodes
  // the blockage rate should approach 1/10.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 20; ++s) ev.push_back(relay_tx(5, 0, s));
  util::Rng rng(3);
  const auto r = compromise_analysis(ev, 10, 1, 5000, rng);
  EXPECT_NEAR(r.flow_blockage, 0.1, 0.02);
  EXPECT_NEAR(r.packet_interception, 0.1, 0.02);
}

TEST(Compromise, RandomizedRoutesResistFullBlockage) {
  // ALERT-like: each packet uses a different relay. Intercepting *every*
  // packet with c=1 requires the one compromised node to be on all 20
  // disjoint routes — impossible; packet interception stays ~ c/N.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 20; ++s) {
    ev.push_back(relay_tx(static_cast<net::NodeId>(s + 10), 0, s));
  }
  util::Rng rng(4);
  const auto r = compromise_analysis(ev, 100, 1, 5000, rng);
  EXPECT_DOUBLE_EQ(r.flow_blockage, 0.0);
  EXPECT_NEAR(r.packet_interception, 20.0 / 100.0 / 20.0, 0.01);
}

TEST(Compromise, TouchedIsWeakerThanBlocked) {
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 10; ++s) {
    ev.push_back(relay_tx(static_cast<net::NodeId>(s), 0, s));
  }
  util::Rng rng(5);
  const auto r = compromise_analysis(ev, 20, 5, 2000, rng);
  EXPECT_GT(r.flow_touched, r.flow_blockage);
}

TEST(Compromise, EmptyLogSafe) {
  util::Rng rng(6);
  const auto r = compromise_analysis({}, 10, 5, 10, rng);
  EXPECT_DOUBLE_EQ(r.packet_interception, 0.0);
}


TEST(TargetedCompromise, FixedRouteHandsOverNextPacket) {
  // Same relay (node 5, not an endpoint) carries every packet: observing
  // packet i and compromising its one relay always intercepts packet i+1.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 10; ++s) ev.push_back(relay_tx(5, 0, s));
  util::Rng rng(7);
  EXPECT_DOUBLE_EQ(targeted_next_packet_interception(ev, 1, rng), 1.0);
}

TEST(TargetedCompromise, DisjointRoutesResist) {
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 10; ++s) {
    ev.push_back(relay_tx(static_cast<net::NodeId>(20 + s), 0, s));
  }
  util::Rng rng(8);
  EXPECT_DOUBLE_EQ(targeted_next_packet_interception(ev, 3, rng), 0.0);
}

TEST(TargetedCompromise, EndpointsExcludedFromRelaySets) {
  // Only the source (0) and destination (9) ever transmit: after endpoint
  // exclusion there is nothing to compromise, so nothing is intercepted.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 5; ++s) {
    ev.push_back(relay_tx(0, 0, s));
    ev.push_back(relay_tx(9, 0, s));
  }
  util::Rng rng(9);
  EXPECT_DOUBLE_EQ(targeted_next_packet_interception(ev, 4, rng), 0.0);
}

TEST(TargetedCompromise, BudgetLimitsCoverage) {
  // Each packet relayed by nodes {10..14}; the next packet reuses exactly
  // one of them (node 10). With budget 1 of 5 relays the interception
  // rate approaches 1/5.
  std::vector<ObservedEvent> ev;
  for (std::uint32_t s = 0; s < 400; ++s) {
    ev.push_back(relay_tx(10, 0, s));
    for (net::NodeId extra = 11; extra <= 14; ++extra) {
      ObservedEvent e = relay_tx(extra, 0, s);
      // vary the non-shared relays per seq so only node 10 repeats
      e.node = static_cast<net::NodeId>(extra + (s % 2) * 10);
      ev.push_back(e);
    }
  }
  util::Rng rng(10);
  EXPECT_NEAR(targeted_next_packet_interception(ev, 1, rng), 0.2, 0.06);
}

}  // namespace
}  // namespace alert::attack
