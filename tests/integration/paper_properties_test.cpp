/// Cross-cutting integration tests asserting the paper's headline claims
/// at reduced scale, so a regression in any module that would change a
/// figure's *shape* fails CI before the benches are ever run.

#include <gtest/gtest.h>

#include "analysis/theory.hpp"
#include "core/experiment.hpp"

namespace alert {
namespace {

core::ScenarioConfig scenario(core::ProtocolKind proto) {
  core::ScenarioConfig cfg;
  cfg.node_count = 150;
  cfg.duration_s = 50.0;
  cfg.flow_count = 5;
  cfg.protocol = proto;
  cfg.seed = 31337;
  return cfg;
}

TEST(PaperProperties, AlertLatencySlightlyAboveGpsrFarBelowAlarm) {
  const auto alert_r = core::run_experiment(scenario(core::ProtocolKind::Alert), 3, 1);
  const auto gpsr_r = core::run_experiment(scenario(core::ProtocolKind::Gpsr), 3, 1);
  const auto alarm_r = core::run_experiment(scenario(core::ProtocolKind::Alarm), 3, 1);
  const auto ao2p_r = core::run_experiment(scenario(core::ProtocolKind::Ao2p), 3, 1);
  // Fig. 14a ordering.
  EXPECT_GT(alert_r.latency_s.mean(), gpsr_r.latency_s.mean());
  EXPECT_LT(alert_r.latency_s.mean(), gpsr_r.latency_s.mean() * 10.0);
  EXPECT_GT(alarm_r.latency_s.mean(), alert_r.latency_s.mean() * 5.0);
  EXPECT_GT(ao2p_r.latency_s.mean(), alert_r.latency_s.mean() * 5.0);
}

TEST(PaperProperties, AlertHopsAboveGreedyBaselines) {
  const auto alert_r = core::run_experiment(scenario(core::ProtocolKind::Alert), 3, 1);
  const auto gpsr_r = core::run_experiment(scenario(core::ProtocolKind::Gpsr), 3, 1);
  // Fig. 15a: ALERT pays extra hops for anonymity, but not absurdly many.
  EXPECT_GT(alert_r.hops.mean(), gpsr_r.hops.mean());
  EXPECT_LT(alert_r.hops.mean(), gpsr_r.hops.mean() + 6.0);
}

TEST(PaperProperties, RouteOverlapSeparatesAlertFromBaselines) {
  const auto alert_r = core::run_experiment(scenario(core::ProtocolKind::Alert), 3, 1);
  const auto gpsr_r = core::run_experiment(scenario(core::ProtocolKind::Gpsr), 3, 1);
  // Sec. 3.1: ALERT's routes change per packet; GPSR repeats its path.
  EXPECT_LT(alert_r.route_overlap.mean(), 0.5);
  EXPECT_GT(gpsr_r.route_overlap.mean(), 0.6);
}

TEST(PaperProperties, RfCountMonotoneInH) {
  double prev = -1.0;
  for (const int h : {2, 4, 6}) {
    core::ScenarioConfig cfg = scenario(core::ProtocolKind::Alert);
    cfg.alert.partitions_h = h;
    const auto r = core::run_experiment(cfg, 3, 1);
    EXPECT_GT(r.rf_per_packet.mean(), prev) << "H=" << h;
    prev = r.rf_per_packet.mean();
  }
}

TEST(PaperProperties, RfCountNearEq10Expectation) {
  // Fig. 11: simulated RFs per packet tracks the Eq. 10 line (within a
  // factor that absorbs the voids-create-RFs excess).
  core::ScenarioConfig cfg = scenario(core::ProtocolKind::Alert);
  cfg.node_count = 200;
  cfg.alert.partitions_h = 5;
  const auto r = core::run_experiment(cfg, 3, 1);
  const double expected = analysis::expected_rfs(5);
  EXPECT_GT(r.rf_per_packet.mean(), 0.5 * expected);
  EXPECT_LT(r.rf_per_packet.mean(), 3.0 * expected);
}

TEST(PaperProperties, ResidencyDecayTracksEq15) {
  // Fig. 12 vs Fig. 9a: the simulated zone residency and the analytical
  // N_r(t) agree on the decayed fraction within a factor of ~1.6 at
  // moderate horizons (the exponential model is itself approximate).
  core::ScenarioConfig cfg = scenario(core::ProtocolKind::Alert);
  cfg.node_count = 200;
  cfg.duration_s = 30.0;
  cfg.residency_sample_period_s = 20.0;
  const auto r = core::run_experiment(cfg, 5, 1);
  ASSERT_GE(r.remaining_by_sample.size(), 2u);
  const double initial = r.remaining_by_sample[0].mean();
  const double later = r.remaining_by_sample[1].mean();
  ASSERT_GT(initial, 0.0);
  const analysis::NetworkShape net{1000.0, 1000.0, 200.0};
  const double predicted_fraction =
      analysis::remaining_nodes(net, 5, 2.0, 20.0) /
      analysis::dest_zone_population(net, 5);
  const double measured_fraction = later / initial;
  EXPECT_GT(measured_fraction, predicted_fraction / 1.6);
  EXPECT_LT(measured_fraction, predicted_fraction * 1.6);
}

TEST(PaperProperties, AlertDeliveryBeatsGpsrWithoutDestUpdate) {
  // Fig. 16b's "interesting observation".
  core::ScenarioConfig alert_cfg = scenario(core::ProtocolKind::Alert);
  alert_cfg.destination_update = false;
  alert_cfg.speed_mps = 6.0;
  core::ScenarioConfig gpsr_cfg = alert_cfg;
  gpsr_cfg.protocol = core::ProtocolKind::Gpsr;
  const auto alert_r = core::run_experiment(alert_cfg, 3, 1);
  const auto gpsr_r = core::run_experiment(gpsr_cfg, 3, 1);
  EXPECT_GT(alert_r.delivery_rate.mean(), gpsr_r.delivery_rate.mean());
}

TEST(PaperProperties, NotifyAndGoCostsOnlyCoverBytes) {
  // Sec. 2.6: camouflage adds ~eta tiny cover packets per data packet and
  // a few milliseconds of hold, not extra routed traffic.
  core::ScenarioConfig with_cfg = scenario(core::ProtocolKind::Alert);
  core::ScenarioConfig without_cfg = with_cfg;
  without_cfg.alert.notify_and_go = false;
  const auto with_r = core::run_experiment(with_cfg, 3, 1);
  const auto without_r = core::run_experiment(without_cfg, 3, 1);
  EXPECT_GT(with_r.cover_per_data.mean(), 5.0);
  EXPECT_DOUBLE_EQ(without_r.cover_per_data.mean(), 0.0);
  EXPECT_NEAR(with_r.hops.mean(), without_r.hops.mean(), 1.5);
  EXPECT_LT(with_r.latency_s.mean() - without_r.latency_s.mean(), 0.01);
}

TEST(PaperProperties, AlarmControlTrafficDoublesItsHopAccounting) {
  const auto r = core::run_experiment(scenario(core::ProtocolKind::Alarm), 3, 1);
  // Fig. 15a: dissemination accounting raises ALARM's hops well above its
  // pure routing hops.
  EXPECT_GT(r.hops_with_control.mean(), r.hops.mean() * 1.5);
}

}  // namespace
}  // namespace alert
