/// Backend-equivalence suite for alert::scale (docs/SCALE.md): the spatial
/// grid, the calendar event queue and the packet pool are pure complexity
/// swaps, so every {linear, grid} x {heap, calendar} combination of a
/// scenario must produce bit-identical determinism digests and
/// byte-identical run-manifest serializations — across mobility models,
/// fault injection and ARQ. A 10k-node run additionally proves the
/// backends hold up at arena scale with a clean packet ledger.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario_codec.hpp"
#include "obs/manifest.hpp"

namespace alert {
namespace {

struct Combo {
  const char* name;
  bool grid;
  bool calendar;
  bool pool;
};

/// The four backend combinations; the pool rides along on two of them so
/// both pool states are covered against both queue backends.
constexpr Combo kCombos[] = {
    {"linear/heap", false, false, false},
    {"grid/heap", true, false, true},
    {"linear/calendar", false, true, false},
    {"grid/calendar", true, true, true},
};

core::RunResult run_combo(core::ScenarioConfig config, const Combo& combo) {
  config.scale.grid = combo.grid;
  config.scale.calendar = combo.calendar;
  config.scale.pool_packets = combo.pool;
  return core::run_once(config, 0);
}

/// Serialize the run's observable outcome the way the figure benches do:
/// digest + metrics + a result series in one RunManifest JSON document.
std::string manifest_bytes(const core::RunResult& run) {
  obs::RunManifest manifest;
  manifest.name = "scale_equivalence";
  manifest.replications = 1;
  manifest.trace_digests.push_back(run.trace_digest);
  manifest.metrics = run.metrics;
  util::Series latency;
  latency.name = "ALERT";
  latency.points.push_back({0.0, run.mean_latency_s, 0.0});
  manifest.series.push_back(latency);
  std::ostringstream out;
  manifest.write_json(out);
  return out.str();
}

void expect_all_combos_identical(const core::ScenarioConfig& config,
                                 const char* label) {
  const core::RunResult reference = run_combo(config, kCombos[0]);
  ASSERT_GT(reference.events_executed, 0u) << label;
  ASSERT_GT(reference.sent, 0u) << label;
  const std::string reference_bytes = manifest_bytes(reference);
  for (std::size_t i = 1; i < std::size(kCombos); ++i) {
    const core::RunResult run = run_combo(config, kCombos[i]);
    EXPECT_EQ(run.trace_digest, reference.trace_digest)
        << label << ": " << kCombos[i].name;
    EXPECT_EQ(run.events_executed, reference.events_executed)
        << label << ": " << kCombos[i].name;
    EXPECT_EQ(manifest_bytes(run), reference_bytes)
        << label << ": " << kCombos[i].name;
  }
}

TEST(ScaleEquivalence, Fig14aStyleRandomWaypoint) {
  core::ScenarioConfig config;
  config.node_count = 150;
  config.duration_s = 30.0;
  config.flow_count = 5;
  config.seed = 4242;
  expect_all_combos_identical(config, "fig14a-style");
}

TEST(ScaleEquivalence, Fig17StyleGroupMobility) {
  core::ScenarioConfig config;
  config.node_count = 150;
  config.duration_s = 30.0;
  config.flow_count = 5;
  config.mobility = core::MobilityKind::Group;
  config.speed_mps = 8.0;
  config.seed = 1717;
  expect_all_combos_identical(config, "fig17-style");
}

TEST(ScaleEquivalence, AblationStyleFaultsAndArq) {
  core::ScenarioConfig config;
  config.node_count = 120;
  config.duration_s = 30.0;
  config.flow_count = 5;
  config.faults.loss.iid = 0.15;
  config.faults.churn.mttf_s = 40.0;
  config.mac.arq.enabled = true;
  config.seed = 99;
  expect_all_combos_identical(config, "ablation-style");
}

TEST(ScaleEquivalence, TenThousandNodesLeakFree) {
  // Arena scale: 10k nodes at paper density. Both all-on runs must agree
  // with each other, open real traffic, and leave the packet ledger clean
  // (run_once audits every uid's terminal fate at teardown; a leak fails
  // the run itself). The linear configuration is omitted on purpose — its
  // O(n) scans would dominate tier-1 wall time without adding coverage
  // beyond the 150-node combos above.
  core::ScenarioConfig config;
  config.node_count = 10'000;
  const double side = 7071.0;  // sqrt(10000 / 200) km: paper density
  config.field = util::Rect{0.0, 0.0, side, side};
  config.duration_s = 5.0;
  config.flow_count = 10;
  config.seed = 10'000;
  Combo grid_only{"grid/heap", true, false, true};
  Combo all_on{"grid/calendar", true, true, true};
  const core::RunResult a = run_combo(config, grid_only);
  const core::RunResult b = run_combo(config, all_on);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(a.packets_opened, 0u);
  EXPECT_EQ(manifest_bytes(a), manifest_bytes(b));
}

TEST(ScaleEquivalence, DefaultsEmitNoScaleKeys) {
  // Inert defaults: an all-off Backends leaves the canonical form (and so
  // every campaign cache key) byte-identical to pre-scale builds; any
  // active flag surfaces all three keys.
  core::ScenarioConfig config;
  EXPECT_EQ(core::canonical_scenario(config).find("scale."), std::string::npos);
  config.scale.calendar = true;
  const std::string canonical = core::canonical_scenario(config);
  EXPECT_NE(canonical.find("scale.grid=false"), std::string::npos);
  EXPECT_NE(canonical.find("scale.calendar=true"), std::string::npos);
  EXPECT_NE(canonical.find("scale.pool_packets=false"), std::string::npos);
}

}  // namespace
}  // namespace alert
