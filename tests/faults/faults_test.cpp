#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "faults/channel_model.hpp"
#include "faults/injector.hpp"
#include "sim/simulator.hpp"

namespace alert::faults {
namespace {

TEST(FaultPlan, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.loss.active());
  EXPECT_FALSE(plan.churn.active());
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(validate(plan), std::nullopt);
}

TEST(FaultPlan, AnyDetectsEachFamily) {
  FaultPlan loss;
  loss.loss.iid = 0.1;
  EXPECT_TRUE(loss.any());

  FaultPlan bursty;
  bursty.loss.gilbert = true;  // GE chain counts even with iid == 0
  EXPECT_TRUE(bursty.any());

  FaultPlan churn;
  churn.churn.mttf_s = 5.0;
  EXPECT_TRUE(churn.any());

  FaultPlan outage;
  outage.outages.push_back({{0.0, 0.0}, 10.0, 0.0, 1.0});
  EXPECT_TRUE(outage.any());
}

TEST(FaultPlan, JammedRespectsDiscAndWindow) {
  FaultPlan plan;
  plan.outages.push_back({{100.0, 100.0}, 50.0, 10.0, 20.0});
  EXPECT_TRUE(plan.jammed({120.0, 100.0}, 15.0));
  EXPECT_TRUE(plan.jammed({100.0, 150.0}, 10.0));   // radius + start inclusive
  EXPECT_FALSE(plan.jammed({160.0, 100.0}, 15.0));  // outside the disc
  EXPECT_FALSE(plan.jammed({120.0, 100.0}, 5.0));   // before the window
  EXPECT_FALSE(plan.jammed({120.0, 100.0}, 20.0));  // end exclusive
}

TEST(FaultPlan, JammedChecksEveryDisc) {
  FaultPlan plan;
  plan.outages.push_back({{100.0, 100.0}, 10.0, 0.0, 1.0});
  plan.outages.push_back({{400.0, 400.0}, 10.0, 0.0, 1.0});
  EXPECT_TRUE(plan.jammed({400.0, 405.0}, 0.5));
  EXPECT_FALSE(plan.jammed({250.0, 250.0}, 0.5));
}

TEST(FaultPlanValidate, RejectsBadParameters) {
  const auto broken = [](auto mutate) {
    FaultPlan plan;
    mutate(plan);
    return validate(plan);
  };
  EXPECT_TRUE(broken([](FaultPlan& p) { p.loss.iid = 1.5; }).has_value());
  EXPECT_TRUE(broken([](FaultPlan& p) { p.loss.iid = -0.1; }).has_value());
  EXPECT_TRUE(
      broken([](FaultPlan& p) { p.loss.ge_loss_bad = 1.01; }).has_value());
  EXPECT_TRUE(
      broken([](FaultPlan& p) { p.loss.ge_p_good_bad = -1.0; }).has_value());
  EXPECT_TRUE(
      broken([](FaultPlan& p) { p.churn.mttf_s = -1.0; }).has_value());
  EXPECT_TRUE(
      broken([](FaultPlan& p) { p.churn.mttr_s = -0.5; }).has_value());
  EXPECT_TRUE(broken([](FaultPlan& p) {
                p.outages.push_back({{0.0, 0.0}, -5.0, 0.0, 1.0});
              }).has_value());
  EXPECT_TRUE(broken([](FaultPlan& p) {
                p.outages.push_back({{0.0, 0.0}, 5.0, 2.0, 1.0});
              }).has_value());
}

TEST(ChannelModel, IidLossRateIsRespected) {
  LossModel cfg;
  cfg.iid = 0.25;
  ChannelModel model(cfg, util::Rng(42));
  int lost = 0;
  for (int i = 0; i < 10000; ++i) {
    if (model.lose_frame(0, 1)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / 10000.0, 0.25, 0.02);
  EXPECT_EQ(model.frames_seen(), 10000u);
  EXPECT_EQ(model.frames_lost(), static_cast<std::uint64_t>(lost));
}

TEST(ChannelModel, SameSeedReplaysSameDecisions) {
  LossModel cfg;
  cfg.iid = 0.5;
  ChannelModel a(cfg, util::Rng(7));
  ChannelModel b(cfg, util::Rng(7));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.lose_frame(2, 3), b.lose_frame(2, 3));
  }
}

TEST(ChannelModel, GilbertChainFollowsTransitionProbabilities) {
  // Deterministic corner: good->bad is certain and the bad state always
  // loses, so every frame after the first transition is lost.
  LossModel cfg;
  cfg.gilbert = true;
  cfg.ge_p_good_bad = 1.0;
  cfg.ge_p_bad_good = 0.0;
  cfg.ge_loss_good = 0.0;
  cfg.ge_loss_bad = 1.0;
  ChannelModel model(cfg, util::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(model.lose_frame(0, 1));
  }

  // And the opposite corner never loses anything.
  cfg.ge_p_good_bad = 0.0;
  ChannelModel clean(cfg, util::Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(clean.lose_frame(0, 1));
  }
}

TEST(ChannelModel, GilbertStateIsPerDirectedLink) {
  // One link driven into the bad state must not contaminate others.
  LossModel cfg;
  cfg.gilbert = true;
  cfg.ge_p_good_bad = 1.0;
  cfg.ge_p_bad_good = 0.0;
  cfg.ge_loss_good = 0.0;
  cfg.ge_loss_bad = 1.0;
  // Flip 0->1 bad, then make transitions impossible for fresh links by
  // using a second model where good never degrades: simplest check is that
  // the loss counters track per-link chains independently.
  ChannelModel model(cfg, util::Rng(3));
  EXPECT_TRUE(model.lose_frame(0, 1));
  EXPECT_TRUE(model.lose_frame(5, 6));  // fresh link, same certain chain
  EXPECT_EQ(model.frames_lost(), 2u);
}

using Flips = std::vector<std::pair<std::uint32_t, bool>>;

std::tuple<Flips, std::uint64_t, std::uint64_t, std::uint64_t> churn_run(
    std::uint64_t seed) {
  sim::Simulator simulator;
  FaultPlan plan;
  plan.churn.mttf_s = 5.0;
  plan.churn.mttr_s = 2.0;
  Flips flips;
  FaultInjector injector(
      simulator, plan, /*node_count=*/10, util::Rng(seed), /*horizon=*/100.0,
      [&flips](std::uint32_t node, bool up) { flips.push_back({node, up}); },
      /*metrics=*/nullptr, obs::Tracer{});
  simulator.run_until(100.0);
  return {flips, injector.crashes(), injector.recoveries(),
          simulator.trace_digest()};
}

TEST(FaultInjector, ChurnIsSeedDeterministic) {
  EXPECT_EQ(churn_run(7), churn_run(7));
  EXPECT_NE(std::get<3>(churn_run(7)), std::get<3>(churn_run(8)));
}

TEST(FaultInjector, ChurnCrashesAndRecovers) {
  const auto [flips, crashes, recoveries, digest] = churn_run(7);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(recoveries, 0u);
  EXPECT_GE(crashes, recoveries);  // every recovery follows a crash
  EXPECT_EQ(flips.size(), crashes + recoveries);
  // The first flip of any node must be a crash (nodes start alive).
  bool seen_first[10] = {};
  for (const auto& [node, up] : flips) {
    ASSERT_LT(node, 10u);
    if (!seen_first[node]) {
      EXPECT_FALSE(up);
      seen_first[node] = true;
    }
  }
}

TEST(FaultInjector, OutageMarkersAuditTheSimulator) {
  sim::Simulator plain;
  plain.run_until(50.0);

  sim::Simulator marked;
  FaultPlan plan;
  plan.outages.push_back({{250.0, 250.0}, 100.0, 10.0, 20.0});
  FaultInjector injector(
      marked, plan, 10, util::Rng(1), 50.0, [](std::uint32_t, bool) {},
      nullptr, obs::Tracer{});
  marked.run_until(50.0);
  EXPECT_NE(plain.trace_digest(), marked.trace_digest());
  EXPECT_EQ(injector.crashes(), 0u);  // outages alone crash nobody
}

}  // namespace
}  // namespace alert::faults
