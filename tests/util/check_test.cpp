#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace check = alert::util::check;

TEST(Check, PassingInvariantIsSilent) {
  check::ScopedFailureHandler guard;  // would throw on violation
  ALERT_INVARIANT(1 + 1 == 2, "arithmetic works");
  ALERT_INVARIANT(true);
}

TEST(Check, FailingInvariantReachesHandler) {
  check::ScopedFailureHandler guard;
  EXPECT_THROW(ALERT_INVARIANT(false, "deliberate"), check::CheckFailure);
}

TEST(Check, FailureCarriesLocationAndMessage) {
  check::ScopedFailureHandler guard;
  try {
    ALERT_INVARIANT(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const check::CheckFailure& e) {
    EXPECT_STREQ(e.info().expression, "2 < 1");
    EXPECT_EQ(e.info().message, "two is not less than one");
    EXPECT_NE(std::string(e.info().file).find("check_test.cpp"),
              std::string::npos);
    EXPECT_GT(e.info().line, 0);
  }
}

TEST(Check, HandlerRestoredOnScopeExit) {
  {
    check::ScopedFailureHandler guard;
    EXPECT_THROW(ALERT_INVARIANT(false), check::CheckFailure);
  }
  // Outside the scope the default (aborting) handler is back; installing a
  // fresh scoped handler must still work.
  check::ScopedFailureHandler guard2;
  EXPECT_THROW(ALERT_INVARIANT(false), check::CheckFailure);
}

TEST(Check, AssertTierMatchesBuildConfiguration) {
  check::ScopedFailureHandler guard;
#if ALERT_CHECKED_BUILD
  EXPECT_THROW(ALERT_ASSERT(false, "checked build evaluates"),
               check::CheckFailure);
#else
  // Release: the condition must not even be evaluated.
  bool evaluated = false;
  ALERT_ASSERT([&] {
    evaluated = true;
    return false;
  }(), "must not run");
  EXPECT_FALSE(evaluated);
#endif
}

TEST(Check, FailureCountIncrements) {
  check::ScopedFailureHandler guard;
  const std::uint64_t before = check::failure_count();
  EXPECT_THROW(ALERT_INVARIANT(false), check::CheckFailure);
  EXPECT_EQ(check::failure_count(), before + 1);
}
