#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace alert::util {
namespace {

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleWorkerProcessesSequentially) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, WaitIdleWhenAlreadyIdleReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace alert::util
