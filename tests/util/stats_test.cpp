#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace alert::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 42.0);
  EXPECT_DOUBLE_EQ(a.max(), 42.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of the classic data set: 32 / 7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeEqualsCombinedStream) {
  Accumulator left, right, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Accumulator, MergeEmptyWithEmptyStaysEmpty) {
  Accumulator a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, MergeEmptyWithFullAdoptsEverything) {
  Accumulator empty, full;
  for (const double x : {2.0, 4.0, 6.0}) full.add(x);
  empty.merge(full);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), 4.0);
  EXPECT_DOUBLE_EQ(empty.min(), 2.0);
  EXPECT_DOUBLE_EQ(empty.max(), 6.0);
  EXPECT_NEAR(empty.variance(), full.variance(), 1e-12);
}

TEST(Accumulator, MergedCi95EqualsSingleStreamCi95) {
  // The confidence interval of a merged accumulator must match the one a
  // single accumulator over the same observations reports — this is what
  // makes thread-pool replication aggregation equal serial aggregation.
  Accumulator a, b, c, all;
  for (int i = 0; i < 90; ++i) {
    const double x = std::cos(i) * 3.0 + static_cast<double>(i % 7);
    (i < 30 ? a : i < 60 ? b : c).add(x);
    all.add(x);
  }
  a.merge(b);
  a.merge(c);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.ci95_halfwidth(), all.ci95_halfwidth(), 1e-12);
}

TEST(Accumulator, Ci95MatchesHandComputation) {
  Accumulator a;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) a.add(x);
  // stddev = sqrt(2.5), se = sqrt(2.5/5), t(4) = 2.776.
  const double se = std::sqrt(2.5 / 5.0);
  EXPECT_NEAR(a.ci95_halfwidth(), 2.776 * se, 1e-9);
}

TEST(StudentT, TableValues) {
  EXPECT_DOUBLE_EQ(student_t_975(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t_975(29), 2.045);  // the paper's 30-run case
  EXPECT_DOUBLE_EQ(student_t_975(1000), 1.96);
  EXPECT_DOUBLE_EQ(student_t_975(0), 0.0);
}

TEST(StudentT, MonotoneDecreasing) {
  for (std::size_t dof = 1; dof < 30; ++dof) {
    EXPECT_GE(student_t_975(dof), student_t_975(dof + 1));
  }
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampedToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileOrdering) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, BinLowValues) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 18.0);
}

TEST(Histogram, QuantileOfEmptyIsLowerBound) {
  Histogram h(5.0, 15.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
}

TEST(Histogram, QuantileSingleBin) {
  Histogram h(0.0, 10.0, 1);
  h.add(3.0);
  h.add(7.0);
  // Everything lives in the only bin, whose low edge is lo.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileOfClampedOutliers) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 9; ++i) h.add(-50.0);  // clamp into bin 0
  h.add(1000.0);                             // clamp into bin 9
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);    // median sits in bin 0
  EXPECT_DOUBLE_EQ(h.quantile(1.0), h.bin_low(9));
}

TEST(Histogram, MergeAddsBinWise) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.5);
  b.add(8.5);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bin_count(1), 2u);
  EXPECT_EQ(a.bin_count(8), 1u);
}

}  // namespace
}  // namespace alert::util
