#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace alert::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.ci95_halfwidth(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(42.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 42.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 42.0);
  EXPECT_DOUBLE_EQ(a.max(), 42.0);
}

TEST(Accumulator, KnownMeanAndVariance) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of the classic data set: 32 / 7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeEqualsCombinedStream) {
  Accumulator left, right, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Accumulator, Ci95MatchesHandComputation) {
  Accumulator a;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) a.add(x);
  // stddev = sqrt(2.5), se = sqrt(2.5/5), t(4) = 2.776.
  const double se = std::sqrt(2.5 / 5.0);
  EXPECT_NEAR(a.ci95_halfwidth(), 2.776 * se, 1e-9);
}

TEST(StudentT, TableValues) {
  EXPECT_DOUBLE_EQ(student_t_975(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t_975(29), 2.045);  // the paper's 30-run case
  EXPECT_DOUBLE_EQ(student_t_975(1000), 1.96);
  EXPECT_DOUBLE_EQ(student_t_975(0), 0.0);
}

TEST(StudentT, MonotoneDecreasing) {
  for (std::size_t dof = 1; dof < 30; ++dof) {
    EXPECT_GE(student_t_975(dof), student_t_975(dof + 1));
  }
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(5.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampedToEdges) {
  Histogram h(0.0, 1.0, 4);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(3), 1u);
}

TEST(Histogram, QuantileOrdering) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, BinLowValues) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 18.0);
}

TEST(SeriesTable, PrintsWithoutCrashing) {
  Series s1{"ALERT", {{1.0, 2.0, 0.5}, {2.0, 3.0, 0.0}}};
  Series s2{"GPSR", {{1.0, 1.5, 0.1}}};
  print_series_table("smoke", "x", "y", {s1, s2});
}

}  // namespace
}  // namespace alert::util
