#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace alert::util {
namespace {

TEST(Logging, DefaultLevelIsSilent) {
  EXPECT_EQ(log_level(), LogLevel::None);
}

TEST(Logging, SetAndGetLevel) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::None);
  EXPECT_EQ(log_level(), LogLevel::None);
}

TEST(Logging, MacrosCompileAndRespectThreshold) {
  // With the level at None, the macro body must not evaluate vlog; with
  // Debug, all levels emit (to stderr — not captured, just must not
  // crash and must handle format arguments).
  set_log_level(LogLevel::None);
  ALERT_LOG_ERROR("suppressed %d", 1);
  set_log_level(LogLevel::Debug);
  ALERT_LOG_DEBUG("debug %s %d", "x", 2);
  ALERT_LOG_INFO("info");
  ALERT_LOG_WARN("warn %.2f", 3.14);
  ALERT_LOG_ERROR("error");
  set_log_level(LogLevel::None);
  SUCCEED();
}

TEST(Logging, LevelOrdering) {
  EXPECT_LT(static_cast<int>(LogLevel::None),
            static_cast<int>(LogLevel::Error));
  EXPECT_LT(static_cast<int>(LogLevel::Error),
            static_cast<int>(LogLevel::Warn));
  EXPECT_LT(static_cast<int>(LogLevel::Warn),
            static_cast<int>(LogLevel::Info));
  EXPECT_LT(static_cast<int>(LogLevel::Info),
            static_cast<int>(LogLevel::Debug));
}

}  // namespace
}  // namespace alert::util
