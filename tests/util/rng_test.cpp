#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace alert::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, ForkIndependentOfParentProgress) {
  Rng a(99);
  Rng child1 = a.fork(5);
  // Forking is keyed by stream id and parent state, so the same fork from
  // an identical parent yields the same child.
  Rng b(99);
  Rng child2 = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForkDifferentStreamsDiffer) {
  Rng a(99);
  Rng c1 = a.fork(1), c2 = a.fork(2);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng r(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(7), 7u);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BelowApproximatelyUniform) {
  Rng r(9);
  constexpr int kBuckets = 10;
  constexpr int kN = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kN; ++i) ++counts[r.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kN / kBuckets, kN / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng r(10);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(12);
  int heads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = r.exponential(4.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng r(14);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, PointInRectStaysInside) {
  Rng r(15);
  const Rect box{-10.0, 5.0, 10.0, 25.0};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(box.contains(r.point_in(box)));
  }
}

/// Property sweep: for several n, Lemire bounded generation is unbiased
/// enough that each residue appears within 3 sigma of its expectation.
class BelowSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BelowSweep, ResidueFrequencies) {
  const std::uint64_t n = GetParam();
  Rng r(n * 977 + 1);
  constexpr int kN = 60000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < kN; ++i) ++counts[r.below(n)];
  const double expect = static_cast<double>(kN) / static_cast<double>(n);
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / static_cast<double>(n)));
  for (const int c : counts) EXPECT_NEAR(c, expect, 4.0 * sigma);
}

INSTANTIATE_TEST_SUITE_P(SmallN, BelowSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 64, 100));

}  // namespace
}  // namespace alert::util
