#include "util/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace alert::util {
namespace {

TEST(Vec2, ArithmeticOperators) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, Vec2(4.0, -2.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 6.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(b / 2.0, Vec2(1.5, -2.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm_sq(), 25.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 v = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  EXPECT_NEAR(v.x, 0.6, 1e-12);
}

TEST(Vec2, NormalizedZeroVectorIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, Angle) {
  EXPECT_NEAR(Vec2(1.0, 0.0).angle(), 0.0, 1e-12);
  EXPECT_NEAR(Vec2(0.0, 1.0).angle(), M_PI / 2, 1e-12);
  EXPECT_NEAR(Vec2(-1.0, 0.0).angle(), M_PI, 1e-12);
}

TEST(Rect, BasicDimensions) {
  const Rect r{0.0, 0.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(r.width(), 4.0);
  EXPECT_DOUBLE_EQ(r.height(), 2.0);
  EXPECT_DOUBLE_EQ(r.area(), 8.0);
  EXPECT_EQ(r.center(), Vec2(2.0, 1.0));
}

TEST(Rect, ContainsPointIncludesBoundary) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(r.contains(Vec2{0.5, 0.5}));
  EXPECT_TRUE(r.contains(Vec2{0.0, 0.0}));
  EXPECT_TRUE(r.contains(Vec2{1.0, 1.0}));
  EXPECT_FALSE(r.contains(Vec2{1.0001, 0.5}));
  EXPECT_FALSE(r.contains(Vec2{0.5, -0.0001}));
}

TEST(Rect, ContainsRect) {
  const Rect outer{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(outer.contains(Rect{1.0, 1.0, 9.0, 9.0}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{-1.0, 0.0, 5.0, 5.0}));
  EXPECT_FALSE(outer.contains(Rect{5.0, 5.0, 11.0, 6.0}));
}

TEST(Rect, Intersects) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  EXPECT_TRUE(a.intersects(Rect{1.0, 1.0, 3.0, 3.0}));
  EXPECT_TRUE(a.intersects(Rect{2.0, 2.0, 3.0, 3.0}));  // shared corner
  EXPECT_FALSE(a.intersects(Rect{2.1, 0.0, 3.0, 1.0}));
}

TEST(Rect, ClampPullsPointsInside) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_EQ(r.clamp(Vec2{2.0, -1.0}), Vec2(1.0, 0.0));
  EXPECT_EQ(r.clamp(Vec2{0.5, 0.5}), Vec2(0.5, 0.5));
}

TEST(Rect, VerticalSplitHalvesWidth) {
  const Rect r{0.0, 0.0, 4.0, 2.0};
  const RectSplit s = r.split(Axis::Vertical);
  EXPECT_EQ(s.first, Rect(0.0, 0.0, 2.0, 2.0));
  EXPECT_EQ(s.second, Rect(2.0, 0.0, 4.0, 2.0));
}

TEST(Rect, HorizontalSplitHalvesHeight) {
  const Rect r{0.0, 0.0, 4.0, 2.0};
  const RectSplit s = r.split(Axis::Horizontal);
  EXPECT_EQ(s.first, Rect(0.0, 0.0, 4.0, 1.0));
  EXPECT_EQ(s.second, Rect(0.0, 1.0, 4.0, 2.0));
}

TEST(Rect, SplitPreservesArea) {
  const Rect r{-3.0, 2.0, 5.0, 9.0};
  for (const Axis axis : {Axis::Horizontal, Axis::Vertical}) {
    const RectSplit s = r.split(axis);
    EXPECT_DOUBLE_EQ(s.first.area() + s.second.area(), r.area());
    EXPECT_DOUBLE_EQ(s.first.area(), s.second.area());
  }
}

TEST(Rect, HalfContainingPicksCorrectSide) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_EQ(r.half_containing(Axis::Vertical, {0.5, 1.0}),
            Rect(0.0, 0.0, 1.0, 2.0));
  EXPECT_EQ(r.half_containing(Axis::Vertical, {1.5, 1.0}),
            Rect(1.0, 0.0, 2.0, 2.0));
  EXPECT_EQ(r.half_containing(Axis::Horizontal, {1.0, 1.7}),
            Rect(0.0, 1.0, 2.0, 2.0));
}

TEST(Rect, HalfContainingBoundaryGoesToFirstHalf) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_EQ(r.half_containing(Axis::Vertical, {1.0, 1.0}),
            Rect(0.0, 0.0, 1.0, 2.0));
}

TEST(Axis, FlipAlternates) {
  EXPECT_EQ(flip(Axis::Horizontal), Axis::Vertical);
  EXPECT_EQ(flip(Axis::Vertical), Axis::Horizontal);
}

TEST(Segments, ProperCrossing) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
}

TEST(Segments, NoCrossing) {
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
}

TEST(Segments, SharedEndpointCounts) {
  EXPECT_TRUE(segments_intersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
}

TEST(Segments, CollinearOverlap) {
  EXPECT_TRUE(segments_intersect({0, 0}, {2, 0}, {1, 0}, {3, 0}));
  EXPECT_FALSE(segments_intersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

/// Property sweep: splitting any rectangle and recombining the halves
/// always covers the original — every point lies in exactly one half
/// (boundary points in at least one).
class RectSplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(RectSplitSweep, HalvesPartitionTheRect) {
  const int i = GetParam();
  const Rect r{static_cast<double>(-i), 0.0, static_cast<double>(i + 1),
               static_cast<double>(2 * i + 1)};
  for (const Axis axis : {Axis::Horizontal, Axis::Vertical}) {
    const RectSplit s = r.split(axis);
    EXPECT_TRUE(r.contains(s.first));
    EXPECT_TRUE(r.contains(s.second));
    // Sample a grid of points.
    for (int gx = 0; gx <= 4; ++gx) {
      for (int gy = 0; gy <= 4; ++gy) {
        const Vec2 p{r.min.x + r.width() * gx / 4.0,
                     r.min.y + r.height() * gy / 4.0};
        EXPECT_TRUE(s.first.contains(p) || s.second.contains(p));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RectSplitSweep, ::testing::Range(1, 8));

}  // namespace
}  // namespace alert::util
