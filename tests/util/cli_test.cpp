#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace alert::util {
namespace {

std::optional<CliArgs> parse(std::initializer_list<const char*> tokens,
                             std::string* error = nullptr) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs::parse(static_cast<int>(argv.size()), argv.data(), error);
}

TEST(Cli, EqualsSyntax) {
  const auto args = parse({"--nodes=150", "--speed=2.5"});
  ASSERT_TRUE(args);
  EXPECT_EQ(args->get("nodes", std::int64_t{0}), 150);
  EXPECT_DOUBLE_EQ(args->get("speed", 0.0), 2.5);
}

TEST(Cli, SpaceSyntax) {
  const auto args = parse({"--protocol", "gpsr", "--reps", "30"});
  ASSERT_TRUE(args);
  EXPECT_EQ(args->get("protocol", std::string()), "gpsr");
  EXPECT_EQ(args->get("reps", std::int64_t{0}), 30);
}

TEST(Cli, BooleanFlags) {
  const auto args = parse({"--attacks", "--csv", "--verbose=false"});
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->get("attacks", false));
  EXPECT_TRUE(args->get("csv", false));
  EXPECT_FALSE(args->get("verbose", true));
  EXPECT_FALSE(args->get("missing", false));
  EXPECT_TRUE(args->get("missing", true));
}

TEST(Cli, BooleanFollowedByFlag) {
  const auto args = parse({"--attacks", "--nodes", "100"});
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->get("attacks", false));
  EXPECT_EQ(args->get("nodes", std::int64_t{0}), 100);
}

TEST(Cli, MalformedTokenRejected) {
  std::string error;
  EXPECT_FALSE(parse({"nodes=5"}, &error).has_value());
  EXPECT_NE(error.find("nodes=5"), std::string::npos);
  EXPECT_FALSE(parse({"-n", "5"}).has_value());
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto args = parse({});
  ASSERT_TRUE(args);
  EXPECT_EQ(args->get("protocol", std::string("alert")), "alert");
  EXPECT_DOUBLE_EQ(args->get("speed", 2.0), 2.0);
}

TEST(Cli, UnusedTracksUntouchedKeys) {
  const auto args = parse({"--used=1", "--typo=2"});
  ASSERT_TRUE(args);
  (void)args->get("used", std::int64_t{0});
  const auto unused = args->unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, HasDetectsPresence) {
  const auto args = parse({"--x=1"});
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->has("x"));
  EXPECT_FALSE(args->has("y"));
}

TEST(Cli, CommonFlagsPicksUpThreads) {
  const auto args = parse({"--threads=4", "--reps=3"});
  ASSERT_TRUE(args);
  const CommonFlags flags = CommonFlags::from(*args);
  EXPECT_EQ(flags.threads, 4);
  EXPECT_EQ(flags.reps, 3);
  EXPECT_TRUE(args->unused().empty());  // consumed, not a typo
}

TEST(Cli, CommonFlagsThreadsDefaultsToZero) {
  const auto args = parse({});
  ASSERT_TRUE(args);
  EXPECT_EQ(CommonFlags::from(*args).threads, 0);
}

TEST(Cli, BoolAcceptedSpellings) {
  const auto args = parse({"--a=yes", "--b=on", "--c=1", "--d=nope"});
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->get("a", false));
  EXPECT_TRUE(args->get("b", false));
  EXPECT_TRUE(args->get("c", false));
  EXPECT_FALSE(args->get("d", true));
}

}  // namespace
}  // namespace alert::util
