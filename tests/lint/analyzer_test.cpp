/// Unit tests for the alert::analysis_tools analyzer library: lexer token
/// classification, waiver parsing, rule behaviour on synthetic sources,
/// baseline round-trips, and output-format well-formedness. The fixture
/// self-test (lint.analyzer_selftest) covers end-to-end parity with the
/// retired Python linter; these tests pin the pieces in isolation.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/callgraph.hpp"
#include "lint/file_data.hpp"
#include "lint/index.hpp"
#include "lint/lexer.hpp"
#include "lint/output.hpp"
#include "lint/rules.hpp"
#include "obs/json_value.hpp"

namespace lint = alert::analysis_tools;

namespace {

std::vector<lint::Finding> run_rules(const std::string& rel_path,
                                     const std::string& source,
                                     const lint::AnalyzerConfig& config = {}) {
  const lint::FileData file = lint::build_file_data(rel_path, source);
  lint::Sink sink(config);
  const std::vector<lint::FileData> files{file};
  for (const auto& rule : lint::make_default_rules(config)) {
    rule->check_file(file, sink);
    rule->finish(files, sink);
  }
  return sink.take();
}

std::vector<std::string> rule_ids(const std::vector<lint::Finding>& fs) {
  std::vector<std::string> out;
  for (const lint::Finding& f : fs) out.push_back(f.rule);
  return out;
}

/// Like run_rules but for the whole-program families: builds the shared
/// ProgramIndex/CallGraph the analyzer would and runs finish_program.
std::vector<lint::Finding> run_program_rules(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const lint::AnalyzerConfig& config = {}) {
  std::vector<lint::FileData> files;
  for (const auto& [rel_path, source] : sources) {
    files.push_back(lint::build_file_data(rel_path, source));
  }
  lint::Sink sink(config);
  const lint::ProgramIndex index(files);
  const lint::CallGraph graph(index, &config);
  for (const auto& rule : lint::make_default_rules(config)) {
    rule->finish_program(index, graph, sink);
  }
  return sink.take();
}

// --- lexer ----------------------------------------------------------------

TEST(Lexer, ClassifiesTokenKinds) {
  const lint::TokenStream ts = lint::lex(
      "int x = 42; // trailing\n/* block */ \"str\" 'c' ptr->field\n");
  std::map<lint::TokenKind, int> counts;
  for (const lint::Token& t : ts) ++counts[t.kind];
  EXPECT_EQ(counts[lint::TokenKind::LineComment], 1);
  EXPECT_EQ(counts[lint::TokenKind::BlockComment], 1);
  EXPECT_EQ(counts[lint::TokenKind::String], 1);
  EXPECT_EQ(counts[lint::TokenKind::CharLiteral], 1);
  EXPECT_EQ(counts[lint::TokenKind::Number], 1);
  // "->" must lex as one punct token, not two.
  bool arrow = false;
  for (const lint::Token& t : ts) arrow |= t.text == "->";
  EXPECT_TRUE(arrow);
}

TEST(Lexer, RawStringsSwallowFakeCode) {
  // rand() inside a raw string is data, not code — and the delimiter form
  // must not end at the first plain quote.
  const lint::TokenStream ts =
      lint::lex("auto s = R\"x(rand() \" still inside)x\"; int after;");
  int strings = 0;
  bool saw_rand_ident = false;
  for (const lint::Token& t : ts) {
    strings += t.kind == lint::TokenKind::String;
    saw_rand_ident |=
        t.kind == lint::TokenKind::Identifier && t.text == "rand";
  }
  EXPECT_EQ(strings, 1);
  EXPECT_FALSE(saw_rand_ident);
}

TEST(Lexer, PreprocessorFoldsContinuations) {
  const lint::TokenStream ts =
      lint::lex("#define TWO_LINES(a) \\\n  (a + 1)\nint code;\n");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts[0].kind, lint::TokenKind::Preprocessor);
  EXPECT_NE(ts[0].text.find("(a + 1)"), std::string::npos);
  // '#' mid-line is not a directive.
  const lint::TokenStream ts2 = lint::lex("int a = 1 # 2;\n");
  for (const lint::Token& t : ts2) {
    EXPECT_NE(t.kind, lint::TokenKind::Preprocessor);
  }
}

TEST(Lexer, DigitSeparatorsStayOneNumber) {
  const lint::TokenStream ts = lint::lex("auto n = 1'000'000u;");
  for (const lint::Token& t : ts) {
    if (t.kind == lint::TokenKind::Number) {
      EXPECT_EQ(t.text, "1'000'000u");
      return;
    }
  }
  FAIL() << "no number token";
}

TEST(Lexer, LineCommentSplicesAcrossBackslashNewline) {
  // Translation phase 2: the splice keeps the next physical line inside
  // the comment, so rand() there is never code — and the line numbering
  // of real tokens afterwards must stay physical.
  const lint::TokenStream ts =
      lint::lex("// splices onward \\\nrand();\nint after = 1;\n");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts[0].kind, lint::TokenKind::LineComment);
  EXPECT_NE(ts[0].text.find("rand()"), std::string::npos);
  for (const lint::Token& t : ts) {
    EXPECT_FALSE(t.kind == lint::TokenKind::Identifier && t.text == "rand");
    if (t.text == "after") {
      EXPECT_EQ(t.line, 3u);
    }
  }
  // Same splice inside a string literal: one token, correct line after.
  const lint::TokenStream ts2 =
      lint::lex("const char* s = \"a \\\nb\";\nint next = 2;\n");
  int strings = 0;
  for (const lint::Token& t : ts2) {
    strings += t.kind == lint::TokenKind::String;
    if (t.text == "next") {
      EXPECT_EQ(t.line, 3u);
    }
  }
  EXPECT_EQ(strings, 1);
}

// --- waivers --------------------------------------------------------------

TEST(FileData, ParsesWaiversIncludingIncludeLines) {
  const lint::FileData f = lint::build_file_data(
      "net/x.cpp",
      "#include \"core/y.hpp\"  // alert-lint: allow(module-layering)\n"
      "int a;  // alert-lint: allow(rule-a, rule-b)\n"
      "int b;  // unrelated comment\n");
  EXPECT_TRUE(f.waived(1, "module-layering"));
  EXPECT_TRUE(f.waived(2, "rule-a"));
  EXPECT_TRUE(f.waived(2, "rule-b"));
  EXPECT_FALSE(f.waived(2, "rule-c"));
  EXPECT_FALSE(f.waived(3, "rule-a"));
}

// --- rules on synthetic sources -------------------------------------------

TEST(Rules, UnorderedIterationOnlyInDigestSensitiveDirs) {
  const std::string src =
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int t = 0;\n"
      "  for (const auto& [k, v] : m) t += v;\n"
      "  return t;\n"
      "}\n";
  EXPECT_EQ(rule_ids(run_rules("core/agg.cpp", src)),
            std::vector<std::string>{"unordered-iteration-ordering"});
  // Same code outside a canonical-output path is allowed.
  EXPECT_TRUE(run_rules("net/agg.cpp", src).empty());
}

TEST(Rules, PointerOrderingFlagsDefaultComparatorsOnly) {
  const std::string bad =
      "#include <set>\n"
      "struct N { int id; };\n"
      "std::set<N*> addresses_fn();\n";
  const std::vector<lint::Finding> fs = run_rules("loc/p.cpp", bad);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "pointer-ordering");
  const std::string good =
      "#include <set>\n"
      "struct N { int id; };\n"
      "struct ById { bool operator()(const N* a, const N* b) const; };\n"
      "std::set<N*, ById> addresses_fn();\n";
  EXPECT_TRUE(run_rules("loc/p.cpp", good).empty());
}

TEST(Rules, MutableGlobalContexts) {
  const std::vector<lint::Finding> fs = run_rules(
      "routing/g.cpp",
      "int g_bad = 0;\n"
      "constexpr int kOk = 1;\n"
      "int ok_fn() {\n"
      "  static int counter = 0;\n"
      "  int local = 2;\n"
      "  return ++counter + local;\n"
      "}\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_EQ(fs[1].line, 4u);
  // Allowlisted files may hold process-wide state.
  EXPECT_TRUE(run_rules("util/check.cpp", "int g_failures = 0;\n").empty());
}

TEST(Rules, ModuleLayeringBackEdgeAndUnknownModule) {
  const std::vector<lint::Finding> back = run_rules(
      "util/low.cpp", "#include \"routing/high.hpp\"\nint a_fn();\n");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule, "module-layering");
  EXPECT_NE(back[0].message.find("back-edge"), std::string::npos);
  const std::vector<lint::Finding> unknown = run_rules(
      "util/low.cpp", "#include \"mystery/x.hpp\"\nint a_fn();\n");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_NE(unknown[0].message.find("not in the layering table"),
            std::string::npos);
  // Allowed edge and intra-module edge are clean.
  EXPECT_TRUE(
      run_rules("routing/r.cpp", "#include \"net/packet.hpp\"\nint a_fn();\n")
          .empty());
  EXPECT_TRUE(run_rules("routing/r.cpp",
                        "#include \"routing/other.hpp\"\nint a_fn();\n")
                  .empty());
}

TEST(Rules, ExhaustiveEnumTagDrivesSwitchChecks) {
  const std::string src =
      "// alert-lint: exhaustive-enum\n"
      "enum class Mode { A, B };\n"
      "int f(Mode m) {\n"
      "  switch (m) {\n"
      "    case Mode::A: return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const std::vector<lint::Finding> fs = run_rules("sim/m.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "exhaustive-enum");
  EXPECT_NE(fs[0].message.find("B"), std::string::npos);
  // Without the tag the same switch is fine.
  const std::string untagged =
      "enum class Mode { A, B };\n"
      "int f(Mode m) {\n"
      "  switch (m) {\n"
      "    case Mode::A: return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  EXPECT_TRUE(run_rules("sim/m.cpp", untagged).empty());
}

TEST(Rules, FindingsDedupAcrossIdenticalHitsOnOneLine) {
  // Two printf calls on one line: one finding, like the retired linter.
  const std::vector<lint::Finding> fs = run_rules(
      "core/out.cpp", "void f() { printf(\"a\"); printf(\"b\"); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-stdout");
}

// --- symbol index and call graph ------------------------------------------

TEST(Index, CollectsFunctionsLambdasLocksWritesAndAllocs) {
  const std::string src =
      "struct Worker {\n"
      "  void run();\n"
      "};\n"
      "void Worker::run() {\n"
      "  int shared = 0;\n"
      "  std::mutex m;\n"
      "  pool.parallel_for(4, [&](int i) {\n"
      "    std::lock_guard<std::mutex> hold(m);\n"
      "    shared += i;\n"
      "  });\n"
      "  helper();\n"
      "  items_.push_back(shared);\n"
      "  auto* p = new int[2];\n"
      "  delete[] p;\n"
      "}\n"
      "void helper() {}\n";
  const lint::FileData f = lint::build_file_data("sim/w.cpp", src);
  const lint::FileIndex idx = lint::index_file(f);
  ASSERT_EQ(idx.functions.size(), 2u);
  const lint::FunctionInfo& run = idx.functions[0];
  EXPECT_EQ(run.qualified, "Worker::run");
  ASSERT_EQ(run.lambdas.size(), 1u);
  EXPECT_TRUE(run.lambdas[0].worker);
  EXPECT_TRUE(run.lambdas[0].has_default_ref());
  bool calls_helper = false;
  for (const lint::CallSite& c : run.calls) calls_helper |= c.callee == "helper";
  EXPECT_TRUE(calls_helper);
  // The only recorded writes: the guarded worker write and the member
  // push_back — declaration initializers (`int shared = 0`) are not writes.
  ASSERT_EQ(run.writes.size(), 2u);
  EXPECT_EQ(run.writes[0].target, "shared");
  EXPECT_TRUE(run.writes[0].in_worker);
  EXPECT_EQ(run.writes[0].held_mutexes.count("m"), 1u);
  EXPECT_EQ(run.writes[1].target, "items_");
  EXPECT_FALSE(run.writes[1].in_worker);
  // Allocation kinds: the raw new and the growing push_back.
  ASSERT_EQ(run.allocs.size(), 2u);
  EXPECT_EQ(run.allocs[0].kind, lint::AllocSite::Kind::Grow);
  EXPECT_EQ(run.allocs[1].kind, lint::AllocSite::Kind::New);
}

TEST(Index, RecordsClockUsesAndRngVars) {
  const std::string src =
      "long stamp() { return std::chrono::steady_clock::now().count(); }\n"
      "void draw() { Rng task_rng(7); task_rng.next(); }\n";
  const lint::FileData f = lint::build_file_data("util/t.cpp", src);
  const lint::FileIndex idx = lint::index_file(f);
  ASSERT_EQ(idx.functions.size(), 2u);
  ASSERT_EQ(idx.functions[0].clock_uses.size(), 1u);
  EXPECT_EQ(idx.functions[0].clock_uses[0].line, 1u);
  EXPECT_TRUE(idx.functions[1].clock_uses.empty());
  EXPECT_EQ(idx.rng_vars.count("task_rng"), 1u);
}

TEST(CallGraph, ReachabilityAndChains) {
  const std::string src =
      "void leaf() {}\n"
      "void mid() { leaf(); }\n"
      "void root() { mid(); }\n"
      "void island() {}\n";
  std::vector<lint::FileData> files;
  files.push_back(lint::build_file_data("sim/c.cpp", src));
  const lint::ProgramIndex index(files);
  const lint::CallGraph graph(index);
  const std::vector<std::size_t> roots = graph.match("root");
  ASSERT_EQ(roots.size(), 1u);
  const lint::CallGraph::Reachability r = graph.reach(roots);
  const std::size_t leaf = index.by_name("leaf").front();
  const std::size_t island = index.by_name("island").front();
  EXPECT_TRUE(r.reached[leaf]);
  EXPECT_FALSE(r.reached[island]);
  EXPECT_EQ(graph.chain(r, leaf), "root -> mid -> leaf");
  const lint::CallGraph::ReverseReach rev = graph.reach_reverse({leaf});
  EXPECT_TRUE(rev.reached[roots.front()]);
  EXPECT_EQ(graph.chain(rev, roots.front()), "root -> mid -> leaf");
}

TEST(CallGraph, BareCallResolutionFollowsUnqualifiedLookup) {
  // A bare call cannot land on another class's member; a member of the
  // enclosing class hides free functions of the same name.
  const std::string a =
      "struct JsonWriter {\n"
      "  void field();\n"
      "  void value();\n"
      "};\n"
      "void JsonWriter::field() { value(); }\n"
      "void JsonWriter::value() {}\n"
      "void emit_all() { value(); }\n";
  const std::string b =
      "struct Parser {\n"
      "  void value();\n"
      "};\n"
      "void Parser::value() {}\n";
  std::vector<lint::FileData> files;
  files.push_back(lint::build_file_data("obs/a.cpp", a));
  files.push_back(lint::build_file_data("obs/b.cpp", b));
  const lint::ProgramIndex index(files);
  const lint::CallGraph graph(index);
  const auto has_edge = [&](const std::string& from, const std::string& to) {
    const std::size_t fi = index.by_qualified(from).front();
    for (const lint::CallGraph::Edge& e : graph.edges()[fi]) {
      if (index.functions()[e.target].qualified == to) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_edge("JsonWriter::field", "JsonWriter::value"));
  EXPECT_FALSE(has_edge("JsonWriter::field", "Parser::value"));
  // From a free function, a bare name resolves to free functions only —
  // neither class's member is callable without an object.
  const std::size_t emit = index.by_name("emit_all").front();
  EXPECT_TRUE(graph.edges()[emit].empty());
}

TEST(CallGraph, ModuleDagPrunesImpossibleEdges) {
  // obs never includes campaign, so a bare-name hit there is a collision;
  // a method-style call may still cross backwards (callback interfaces).
  const std::string obs_src =
      "void trace_flush() { load_entry(); }\n"
      "struct Tracer {\n"
      "  void emit();\n"
      "};\n"
      "void Tracer::emit() { sink.store(1); }\n";
  const std::string campaign_src =
      "void load_entry() {}\n"
      "struct Cache {\n"
      "  void store(int v);\n"
      "};\n"
      "void Cache::store(int v) { (void)v; }\n";
  std::vector<lint::FileData> files;
  files.push_back(lint::build_file_data("obs/t.cpp", obs_src));
  files.push_back(lint::build_file_data("campaign/c.cpp", campaign_src));
  const lint::ProgramIndex index(files);
  const lint::AnalyzerConfig config;
  const lint::CallGraph pruned(index, &config);
  const lint::CallGraph open(index, nullptr);
  const std::size_t flush = index.by_name("trace_flush").front();
  const std::size_t emit = index.by_qualified("Tracer::emit").front();
  EXPECT_FALSE(open.edges()[flush].empty());    // name collision kept
  EXPECT_TRUE(pruned.edges()[flush].empty());   // DAG kills the bare edge
  EXPECT_FALSE(pruned.edges()[emit].empty());   // method edge survives
}

// --- whole-program rule families ------------------------------------------

TEST(ProgramRules, RngDisciplineFlagsSeedingAndWorkerSharing) {
  const std::string src =
      "void a() { Rng rng(time(nullptr)); }\n"
      "void b(Rng& rng) { pool.submit([&rng] { rng.next(); }); }\n"
      "void c(unsigned seed) { Rng rng(seed); }\n";
  const std::vector<lint::Finding> fs =
      run_program_rules({{"util/r.cpp", src}});
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "rng-discipline");
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_EQ(fs[1].line, 2u);
  // The RNG implementation itself is exempt.
  EXPECT_TRUE(run_program_rules({{"util/rng.cpp", src}}).empty());
}

TEST(ProgramRules, WallclockInSimDirectAndTransitive) {
  const std::string util_src =
      "long sample() { return clock(); }\n";
  const std::string sim_src =
      "long measure() { return sample(); }\n";
  const std::vector<lint::Finding> fs = run_program_rules(
      {{"sim/m.cpp", sim_src}, {"util/h.cpp", util_src}});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "wallclock-in-sim");
  EXPECT_EQ(fs[0].path, "sim/m.cpp");
  EXPECT_NE(fs[0].message.find("measure -> sample"), std::string::npos);
  // The same clock read behind the obs profiling allowlist is sanctioned.
  EXPECT_TRUE(run_program_rules(
                  {{"sim/m.cpp", sim_src}, {"obs/h.cpp", util_src}})
                  .empty());
}

TEST(ProgramRules, LockDisciplineNeedsACommonMutex) {
  const std::string bad =
      "void tally(ThreadPool& pool) {\n"
      "  int total = 0;\n"
      "  pool.parallel_for(4, [&](int i) { total += i; });\n"
      "  total += 1;\n"
      "}\n";
  const std::vector<lint::Finding> fs =
      run_program_rules({{"core/t.cpp", bad}});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lock-discipline");
  EXPECT_EQ(fs[0].line, 3u);
  const std::string good =
      "void tally(ThreadPool& pool) {\n"
      "  std::mutex m;\n"
      "  int total = 0;\n"
      "  pool.parallel_for(4, [&](int i) {\n"
      "    std::scoped_lock hold(m);\n"
      "    total += i;\n"
      "  });\n"
      "  std::scoped_lock hold(m);\n"
      "  total += 1;\n"
      "}\n";
  EXPECT_TRUE(run_program_rules({{"core/t.cpp", good}}).empty());
}

TEST(ProgramRules, HotpathAllocationStopsAtReachability) {
  const std::string src =
      "struct Simulator {\n"
      "  void step();\n"
      "  void cold();\n"
      "  void dispatch();\n"
      "};\n"
      "void Simulator::step() { dispatch(); }\n"
      "void Simulator::dispatch() { queue_.push_back(1); }\n"
      "void Simulator::cold() { queue_.push_back(2); }\n";
  const std::vector<lint::Finding> fs =
      run_program_rules({{"sim/s.cpp", src}});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hotpath-allocation");
  EXPECT_EQ(fs[0].line, 7u);
  EXPECT_NE(fs[0].message.find("Simulator::step -> Simulator::dispatch"),
            std::string::npos);
}

// --- baseline -------------------------------------------------------------

TEST(Baseline, FingerprintIgnoresWhitespaceOnly) {
  const auto a = lint::baseline_fingerprint("r", "p", "int  x =  1;");
  const auto b = lint::baseline_fingerprint("r", "p", "  int x = 1;  ");
  const auto c = lint::baseline_fingerprint("r", "p", "int x = 2;");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Baseline, ParseRejectsMalformedLinesButKeepsGoing) {
  std::vector<std::string> errors;
  const lint::Baseline b = lint::Baseline::parse(
      "# comment\n"
      "\n"
      "rule-a core/x.cpp 00000000deadbeef grandfathered: legacy counter\n"
      "rule-b core/y.cpp nothex reason\n"
      "rule-c core/z.cpp 0000000000000001\n",
      &errors);
  EXPECT_EQ(b.size(), 1u);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("line 4"), std::string::npos);
  EXPECT_NE(errors[1].find("line 5"), std::string::npos);
}

TEST(Baseline, RejectsTodoPlaceholderReason) {
  std::vector<std::string> errors;
  const lint::Baseline b = lint::Baseline::parse(
      "rule-a core/x.cpp 00000000deadbeef TODO: justify\n", &errors);
  EXPECT_EQ(b.size(), 0u);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("TODO"), std::string::npos);
}

TEST(Baseline, AbsorbsMatchingFindingAndReportsStale) {
  lint::Finding f;
  f.rule = "mutable-global";
  f.path = "core/x.cpp";
  f.line = 3;
  const std::string line_text = "int g_bad = 0;";
  const std::vector<lint::Finding> findings{f};
  const std::vector<std::string_view> lines{line_text};
  // --write-baseline output must be edited before it parses: swap the
  // placeholder reason for a real one, as the workflow demands.
  std::string rendered = lint::Baseline::render(findings, lines);
  const std::size_t todo = rendered.find("TODO: justify");
  ASSERT_NE(todo, std::string::npos);
  rendered.replace(todo, 13, "grandfathered: legacy counter");
  std::vector<std::string> errors;
  lint::Baseline b = lint::Baseline::parse(rendered, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.absorbs(f, line_text));
  EXPECT_TRUE(b.stale().empty());
  lint::Baseline fresh = lint::Baseline::parse(rendered, nullptr);
  EXPECT_FALSE(fresh.absorbs(f, "int g_bad = 99;"));  // line changed
  EXPECT_EQ(fresh.stale().size(), 1u);
}

// --- output formats -------------------------------------------------------

lint::ScanReport sample_report() {
  lint::ScanReport r;
  lint::Finding f;
  f.rule = "wall-clock";
  f.path = "sim/a.cpp";
  f.line = 7;
  f.column = 3;
  f.message = "host clock with \"quotes\" and\nnewline";
  r.findings.push_back(f);
  r.files_scanned = 2;
  r.waived = 1;
  return r;
}

TEST(Output, JsonIsWellFormedAndEscaped) {
  std::ostringstream out;
  lint::write_json(out, sample_report());
  const auto doc = alert::obs::parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  const auto* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->size(), 1u);
  EXPECT_EQ(findings->at(0).find("rule")->as_string(), "wall-clock");
  EXPECT_EQ(findings->at(0).find("line")->as_u64(), 7u);
}

TEST(Output, SarifHasRequiredShape) {
  std::ostringstream out;
  const std::vector<lint::RuleInfo> rules{
      {"wall-clock", "host clock read", lint::Severity::Error}};
  lint::write_sarif(out, sample_report(), rules);
  const auto doc = alert::obs::parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("version")->as_string(), "2.1.0");
  const auto& run = doc->find("runs")->at(0);
  EXPECT_EQ(run.find("tool")->find("driver")->find("name")->as_string(),
            "alertsim-analyzer");
  const auto& result = run.find("results")->at(0);
  EXPECT_EQ(result.find("ruleId")->as_string(), "wall-clock");
  const auto& region = result.find("locations")
                           ->at(0)
                           .find("physicalLocation")
                           ->find("region");
  EXPECT_EQ(region->find("startLine")->as_u64(), 7u);
}

}  // namespace
