/// Unit tests for the alert::analysis_tools analyzer library: lexer token
/// classification, waiver parsing, rule behaviour on synthetic sources,
/// baseline round-trips, and output-format well-formedness. The fixture
/// self-test (lint.analyzer_selftest) covers end-to-end parity with the
/// retired Python linter; these tests pin the pieces in isolation.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/file_data.hpp"
#include "lint/lexer.hpp"
#include "lint/output.hpp"
#include "lint/rules.hpp"
#include "obs/json_value.hpp"

namespace lint = alert::analysis_tools;

namespace {

std::vector<lint::Finding> run_rules(const std::string& rel_path,
                                     const std::string& source,
                                     const lint::AnalyzerConfig& config = {}) {
  const lint::FileData file = lint::build_file_data(rel_path, source);
  lint::Sink sink(config);
  const std::vector<lint::FileData> files{file};
  for (const auto& rule : lint::make_default_rules(config)) {
    rule->check_file(file, sink);
    rule->finish(files, sink);
  }
  return sink.take();
}

std::vector<std::string> rule_ids(const std::vector<lint::Finding>& fs) {
  std::vector<std::string> out;
  for (const lint::Finding& f : fs) out.push_back(f.rule);
  return out;
}

// --- lexer ----------------------------------------------------------------

TEST(Lexer, ClassifiesTokenKinds) {
  const lint::TokenStream ts = lint::lex(
      "int x = 42; // trailing\n/* block */ \"str\" 'c' ptr->field\n");
  std::map<lint::TokenKind, int> counts;
  for (const lint::Token& t : ts) ++counts[t.kind];
  EXPECT_EQ(counts[lint::TokenKind::LineComment], 1);
  EXPECT_EQ(counts[lint::TokenKind::BlockComment], 1);
  EXPECT_EQ(counts[lint::TokenKind::String], 1);
  EXPECT_EQ(counts[lint::TokenKind::CharLiteral], 1);
  EXPECT_EQ(counts[lint::TokenKind::Number], 1);
  // "->" must lex as one punct token, not two.
  bool arrow = false;
  for (const lint::Token& t : ts) arrow |= t.text == "->";
  EXPECT_TRUE(arrow);
}

TEST(Lexer, RawStringsSwallowFakeCode) {
  // rand() inside a raw string is data, not code — and the delimiter form
  // must not end at the first plain quote.
  const lint::TokenStream ts =
      lint::lex("auto s = R\"x(rand() \" still inside)x\"; int after;");
  int strings = 0;
  bool saw_rand_ident = false;
  for (const lint::Token& t : ts) {
    strings += t.kind == lint::TokenKind::String;
    saw_rand_ident |=
        t.kind == lint::TokenKind::Identifier && t.text == "rand";
  }
  EXPECT_EQ(strings, 1);
  EXPECT_FALSE(saw_rand_ident);
}

TEST(Lexer, PreprocessorFoldsContinuations) {
  const lint::TokenStream ts =
      lint::lex("#define TWO_LINES(a) \\\n  (a + 1)\nint code;\n");
  ASSERT_FALSE(ts.empty());
  EXPECT_EQ(ts[0].kind, lint::TokenKind::Preprocessor);
  EXPECT_NE(ts[0].text.find("(a + 1)"), std::string::npos);
  // '#' mid-line is not a directive.
  const lint::TokenStream ts2 = lint::lex("int a = 1 # 2;\n");
  for (const lint::Token& t : ts2) {
    EXPECT_NE(t.kind, lint::TokenKind::Preprocessor);
  }
}

TEST(Lexer, DigitSeparatorsStayOneNumber) {
  const lint::TokenStream ts = lint::lex("auto n = 1'000'000u;");
  for (const lint::Token& t : ts) {
    if (t.kind == lint::TokenKind::Number) {
      EXPECT_EQ(t.text, "1'000'000u");
      return;
    }
  }
  FAIL() << "no number token";
}

// --- waivers --------------------------------------------------------------

TEST(FileData, ParsesWaiversIncludingIncludeLines) {
  const lint::FileData f = lint::build_file_data(
      "net/x.cpp",
      "#include \"core/y.hpp\"  // alert-lint: allow(module-layering)\n"
      "int a;  // alert-lint: allow(rule-a, rule-b)\n"
      "int b;  // unrelated comment\n");
  EXPECT_TRUE(f.waived(1, "module-layering"));
  EXPECT_TRUE(f.waived(2, "rule-a"));
  EXPECT_TRUE(f.waived(2, "rule-b"));
  EXPECT_FALSE(f.waived(2, "rule-c"));
  EXPECT_FALSE(f.waived(3, "rule-a"));
}

// --- rules on synthetic sources -------------------------------------------

TEST(Rules, UnorderedIterationOnlyInDigestSensitiveDirs) {
  const std::string src =
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int t = 0;\n"
      "  for (const auto& [k, v] : m) t += v;\n"
      "  return t;\n"
      "}\n";
  EXPECT_EQ(rule_ids(run_rules("core/agg.cpp", src)),
            std::vector<std::string>{"unordered-iteration-ordering"});
  // Same code outside a canonical-output path is allowed.
  EXPECT_TRUE(run_rules("net/agg.cpp", src).empty());
}

TEST(Rules, PointerOrderingFlagsDefaultComparatorsOnly) {
  const std::string bad =
      "#include <set>\n"
      "struct N { int id; };\n"
      "std::set<N*> addresses_fn();\n";
  const std::vector<lint::Finding> fs = run_rules("loc/p.cpp", bad);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "pointer-ordering");
  const std::string good =
      "#include <set>\n"
      "struct N { int id; };\n"
      "struct ById { bool operator()(const N* a, const N* b) const; };\n"
      "std::set<N*, ById> addresses_fn();\n";
  EXPECT_TRUE(run_rules("loc/p.cpp", good).empty());
}

TEST(Rules, MutableGlobalContexts) {
  const std::vector<lint::Finding> fs = run_rules(
      "routing/g.cpp",
      "int g_bad = 0;\n"
      "constexpr int kOk = 1;\n"
      "int ok_fn() {\n"
      "  static int counter = 0;\n"
      "  int local = 2;\n"
      "  return ++counter + local;\n"
      "}\n");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 1u);
  EXPECT_EQ(fs[1].line, 4u);
  // Allowlisted files may hold process-wide state.
  EXPECT_TRUE(run_rules("util/check.cpp", "int g_failures = 0;\n").empty());
}

TEST(Rules, ModuleLayeringBackEdgeAndUnknownModule) {
  const std::vector<lint::Finding> back = run_rules(
      "util/low.cpp", "#include \"routing/high.hpp\"\nint a_fn();\n");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].rule, "module-layering");
  EXPECT_NE(back[0].message.find("back-edge"), std::string::npos);
  const std::vector<lint::Finding> unknown = run_rules(
      "util/low.cpp", "#include \"mystery/x.hpp\"\nint a_fn();\n");
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_NE(unknown[0].message.find("not in the layering table"),
            std::string::npos);
  // Allowed edge and intra-module edge are clean.
  EXPECT_TRUE(
      run_rules("routing/r.cpp", "#include \"net/packet.hpp\"\nint a_fn();\n")
          .empty());
  EXPECT_TRUE(run_rules("routing/r.cpp",
                        "#include \"routing/other.hpp\"\nint a_fn();\n")
                  .empty());
}

TEST(Rules, ExhaustiveEnumTagDrivesSwitchChecks) {
  const std::string src =
      "// alert-lint: exhaustive-enum\n"
      "enum class Mode { A, B };\n"
      "int f(Mode m) {\n"
      "  switch (m) {\n"
      "    case Mode::A: return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  const std::vector<lint::Finding> fs = run_rules("sim/m.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "exhaustive-enum");
  EXPECT_NE(fs[0].message.find("B"), std::string::npos);
  // Without the tag the same switch is fine.
  const std::string untagged =
      "enum class Mode { A, B };\n"
      "int f(Mode m) {\n"
      "  switch (m) {\n"
      "    case Mode::A: return 1;\n"
      "  }\n"
      "  return 0;\n"
      "}\n";
  EXPECT_TRUE(run_rules("sim/m.cpp", untagged).empty());
}

TEST(Rules, FindingsDedupAcrossIdenticalHitsOnOneLine) {
  // Two printf calls on one line: one finding, like the retired linter.
  const std::vector<lint::Finding> fs = run_rules(
      "core/out.cpp", "void f() { printf(\"a\"); printf(\"b\"); }\n");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "raw-stdout");
}

// --- baseline -------------------------------------------------------------

TEST(Baseline, FingerprintIgnoresWhitespaceOnly) {
  const auto a = lint::baseline_fingerprint("r", "p", "int  x =  1;");
  const auto b = lint::baseline_fingerprint("r", "p", "  int x = 1;  ");
  const auto c = lint::baseline_fingerprint("r", "p", "int x = 2;");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Baseline, ParseRejectsMalformedLinesButKeepsGoing) {
  std::vector<std::string> errors;
  const lint::Baseline b = lint::Baseline::parse(
      "# comment\n"
      "\n"
      "rule-a core/x.cpp 00000000deadbeef grandfathered: legacy counter\n"
      "rule-b core/y.cpp nothex reason\n"
      "rule-c core/z.cpp 0000000000000001\n",
      &errors);
  EXPECT_EQ(b.size(), 1u);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].find("line 4"), std::string::npos);
  EXPECT_NE(errors[1].find("line 5"), std::string::npos);
}

TEST(Baseline, AbsorbsMatchingFindingAndReportsStale) {
  lint::Finding f;
  f.rule = "mutable-global";
  f.path = "core/x.cpp";
  f.line = 3;
  const std::string line_text = "int g_bad = 0;";
  const std::vector<lint::Finding> findings{f};
  const std::vector<std::string_view> lines{line_text};
  const std::string rendered = lint::Baseline::render(findings, lines);
  std::vector<std::string> errors;
  lint::Baseline b = lint::Baseline::parse(rendered, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.absorbs(f, line_text));
  EXPECT_TRUE(b.stale().empty());
  lint::Baseline fresh = lint::Baseline::parse(rendered, nullptr);
  EXPECT_FALSE(fresh.absorbs(f, "int g_bad = 99;"));  // line changed
  EXPECT_EQ(fresh.stale().size(), 1u);
}

// --- output formats -------------------------------------------------------

lint::ScanReport sample_report() {
  lint::ScanReport r;
  lint::Finding f;
  f.rule = "wall-clock";
  f.path = "sim/a.cpp";
  f.line = 7;
  f.column = 3;
  f.message = "host clock with \"quotes\" and\nnewline";
  r.findings.push_back(f);
  r.files_scanned = 2;
  r.waived = 1;
  return r;
}

TEST(Output, JsonIsWellFormedAndEscaped) {
  std::ostringstream out;
  lint::write_json(out, sample_report());
  const auto doc = alert::obs::parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  const auto* findings = doc->find("findings");
  ASSERT_NE(findings, nullptr);
  ASSERT_EQ(findings->size(), 1u);
  EXPECT_EQ(findings->at(0).find("rule")->as_string(), "wall-clock");
  EXPECT_EQ(findings->at(0).find("line")->as_u64(), 7u);
}

TEST(Output, SarifHasRequiredShape) {
  std::ostringstream out;
  const std::vector<lint::RuleInfo> rules{
      {"wall-clock", "host clock read", lint::Severity::Error}};
  lint::write_sarif(out, sample_report(), rules);
  const auto doc = alert::obs::parse_json(out.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("version")->as_string(), "2.1.0");
  const auto& run = doc->find("runs")->at(0);
  EXPECT_EQ(run.find("tool")->find("driver")->find("name")->as_string(),
            "alertsim-analyzer");
  const auto& result = run.find("results")->at(0);
  EXPECT_EQ(result.find("ruleId")->as_string(), "wall-clock");
  const auto& region = result.find("locations")
                           ->at(0)
                           .find("physicalLocation")
                           ->find("region");
  EXPECT_EQ(region->find("startLine")->as_u64(), 7u);
}

}  // namespace
