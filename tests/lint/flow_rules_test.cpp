/// Unit tests for the flow-sensitive rule families (lock-order-cycle,
/// use-after-move, fp-accumulation-order, sim-state-confinement), the
/// LockGraph proof artifact they share, Baseline::prune, and the lexer's
/// UTF-8 BOM handling. CFG/dataflow shape tests live in cfg_test.cpp;
/// end-to-end fixture parity lives in the analyzer self-test.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "lint/baseline.hpp"
#include "lint/callgraph.hpp"
#include "lint/file_data.hpp"
#include "lint/index.hpp"
#include "lint/lexer.hpp"
#include "lint/lockgraph.hpp"
#include "lint/rules.hpp"

namespace lint = alert::analysis_tools;

namespace {

/// Runs every rule's finish_program over `sources` and keeps only the
/// findings of `rule_id` — the flow families all report from that phase.
std::vector<lint::Finding> program_findings(
    const std::vector<std::pair<std::string, std::string>>& sources,
    const std::string& rule_id, const lint::AnalyzerConfig& config = {}) {
  std::vector<lint::FileData> files;
  for (const auto& [rel_path, source] : sources) {
    files.push_back(lint::build_file_data(rel_path, source));
  }
  lint::Sink sink(config);
  const lint::ProgramIndex index(files);
  const lint::CallGraph graph(index, &config);
  for (const auto& rule : lint::make_default_rules(config)) {
    rule->finish_program(index, graph, sink);
  }
  std::vector<lint::Finding> out;
  for (lint::Finding& f : sink.take()) {
    if (f.rule == rule_id) out.push_back(std::move(f));
  }
  return out;
}

// --- lock-order-cycle -----------------------------------------------------

constexpr const char* kAbBaSource =
    "#include <mutex>\n"
    "class Ledger {\n"
    " public:\n"
    "  void credit() {\n"
    "    std::lock_guard<std::mutex> a(accounts_);\n"
    "    std::lock_guard<std::mutex> b(audit_);\n"
    "  }\n"
    "  void reconcile() {\n"
    "    std::lock_guard<std::mutex> b(audit_);\n"
    "    std::lock_guard<std::mutex> a(accounts_);\n"
    "  }\n"
    " private:\n"
    "  std::mutex accounts_;\n"
    "  std::mutex audit_;\n"
    "};\n";

TEST(LockOrderCycle, FlagsAbBaAcrossMethods) {
  const auto findings =
      program_findings({{"core/ledger.cpp", kAbBaSource}}, "lock-order-cycle");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("Ledger::accounts_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Ledger::audit_"), std::string::npos);
  // The witness names both acquisition sites' functions.
  EXPECT_NE(findings[0].message.find("credit"), std::string::npos);
  EXPECT_NE(findings[0].message.find("reconcile"), std::string::npos);
}

TEST(LockOrderCycle, ConsistentOrderStaysSilent) {
  const auto findings = program_findings(
      {{"core/ledger.cpp",
        "#include <mutex>\n"
        "class Ledger {\n"
        " public:\n"
        "  void credit() {\n"
        "    std::lock_guard<std::mutex> a(first_);\n"
        "    std::lock_guard<std::mutex> b(second_);\n"
        "  }\n"
        "  void debit() {\n"
        "    std::lock_guard<std::mutex> a(first_);\n"
        "    std::lock_guard<std::mutex> b(second_);\n"
        "  }\n"
        " private:\n"
        "  std::mutex first_;\n"
        "  std::mutex second_;\n"
        "};\n"}},
      "lock-order-cycle");
  EXPECT_TRUE(findings.empty());
}

TEST(LockGraph, ExposesNodesEdgesCyclesAndDot) {
  const std::vector<lint::FileData> files{
      lint::build_file_data("core/ledger.cpp", kAbBaSource)};
  const lint::AnalyzerConfig config;
  const lint::ProgramIndex index(files);
  const lint::CallGraph graph(index, &config);
  const lint::LockGraph lock_graph(index, graph);
  ASSERT_EQ(lock_graph.nodes().size(), 2u);
  EXPECT_EQ(lock_graph.nodes()[0], "Ledger::accounts_");
  EXPECT_EQ(lock_graph.nodes()[1], "Ledger::audit_");
  EXPECT_EQ(lock_graph.edges().size(), 2u);  // one per direction
  const auto cycles = lock_graph.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].nodes.size(), 2u);
  ASSERT_EQ(cycles[0].witnesses.size(), 2u);
  EXPECT_NE(cycles[0].witnesses[0], nullptr);
  const std::string dot = lock_graph.to_dot();
  EXPECT_NE(dot.find("digraph lock_order"), std::string::npos);
  EXPECT_NE(dot.find("\"Ledger::accounts_\" -> \"Ledger::audit_\""),
            std::string::npos);
}

// --- use-after-move -------------------------------------------------------

TEST(UseAfterMove, FlagsStraightLineUseAndLoopCarriedMove) {
  const auto findings = program_findings(
      {{"core/moves.cpp",
        "#include <string>\n"
        "#include <utility>\n"
        "#include <vector>\n"
        "std::string consume(std::string label) {\n"
        "  std::string stored = std::move(label);\n"
        "  return stored + label;\n"
        "}\n"
        "void drain(std::vector<std::string>& out, std::string seed) {\n"
        "  for (unsigned long i = 0; i < out.size(); ++i) {\n"
        "    out[i] = std::move(seed);\n"
        "  }\n"
        "}\n"}},
      "use-after-move");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 6u);  // label read after the move
  EXPECT_NE(findings[0].message.find("'label'"), std::string::npos);
  EXPECT_EQ(findings[1].line, 10u);  // seed moved again on iteration two
  EXPECT_NE(findings[1].message.find("'seed'"), std::string::npos);
}

TEST(UseAfterMove, ReassignmentAndExitingBranchStaySilent) {
  const auto findings = program_findings(
      {{"core/moves.cpp",
        "#include <string>\n"
        "#include <utility>\n"
        "std::string reset_between(std::string a, std::string b) {\n"
        "  std::string keep = std::move(a);\n"
        "  a = std::move(b);\n"
        "  keep += a;\n"
        "  return keep;\n"
        "}\n"
        "std::string branch_safe(bool flip, std::string s) {\n"
        "  if (flip) {\n"
        "    return std::move(s);\n"
        "  }\n"
        "  return s;\n"
        "}\n"}},
      "use-after-move");
  EXPECT_TRUE(findings.empty());
}

// --- fp-accumulation-order ------------------------------------------------

TEST(FpAccumulationOrder, FlagsRangeForNotIndexedFor) {
  const std::string source =
      "#include <vector>\n"
      "double range_sum(const std::vector<double>& v) {\n"
      "  double total = 0.0;\n"
      "  for (const double s : v) {\n"
      "    total += s;\n"
      "  }\n"
      "  return total;\n"
      "}\n"
      "double indexed_sum(const std::vector<double>& v) {\n"
      "  double total = 0.0;\n"
      "  for (unsigned long i = 0; i < v.size(); ++i) {\n"
      "    total += v[i];\n"
      "  }\n"
      "  return total;\n"
      "}\n";
  const auto findings =
      program_findings({{"sim/digest.cpp", source}}, "fp-accumulation-order");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5u);
  EXPECT_NE(findings[0].message.find("range-for"), std::string::npos);
  // The same code outside the digest-sensitive directories is fine: host-side
  // tooling does not feed the determinism digest.
  EXPECT_TRUE(program_findings({{"obs/digest.cpp", source}},
                               "fp-accumulation-order")
                  .empty());
}

// --- sim-state-confinement ------------------------------------------------

TEST(SimStateConfinement, FlagsSharedNetworkButNotDispatchOrCopies) {
  const auto findings = program_findings(
      {{"core/runner.cpp",
        "void fan_out(ThreadPool& pool, Network& net, Simulator& sim) {\n"
        "  pool.parallel_for(4, [&](int i) {\n"
        "    net.mark_dirty(i);\n"
        "    sim.schedule_in(i, i);\n"
        "  });\n"
        "}\n"
        "void confined(ThreadPool& pool, Network& net) {\n"
        "  pool.parallel_for(4, [net](int i) mutable {\n"
        "    net.mark_dirty(i);\n"
        "  });\n"
        "}\n"}},
      "sim-state-confinement");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("'net'"), std::string::npos);
}

// --- Baseline::prune ------------------------------------------------------

TEST(Baseline, PruneDropsOnlyStaleEntries) {
  const std::string text =
      "# header comment\n"
      "\n"
      "mutable-global core/x.cpp 00000000deadbeef grandfathered: legacy\n"
      "wall-clock sim/gone.cpp 0000000000000001 grandfathered: removed\n"
      "not a valid entry line\n";
  std::vector<std::string> errors;
  lint::Baseline b = lint::Baseline::parse(text, &errors);
  ASSERT_EQ(b.size(), 2u);
  // Mark the first entry used by absorbing a finding whose fingerprint was
  // crafted to match is impractical here; instead absorb against the entry
  // the same way the analyzer does — via a matching rule/path/line text.
  lint::Finding f;
  f.rule = "mutable-global";
  f.path = "core/x.cpp";
  const std::string line_text = "int g_bad = 0;";
  std::string rendered = lint::Baseline::render({f}, {line_text});
  const std::size_t todo = rendered.find("TODO: justify");
  ASSERT_NE(todo, std::string::npos);
  rendered.replace(todo, 13, "grandfathered: legacy");
  const std::string full = rendered +
                           "wall-clock sim/gone.cpp 0000000000000001 "
                           "grandfathered: removed\n"
                           "# trailing comment\n"
                           "mangled line kept verbatim\n";
  lint::Baseline parsed = lint::Baseline::parse(full, nullptr);
  EXPECT_TRUE(parsed.absorbs(f, line_text));
  const std::string pruned = parsed.prune(full);
  // The used entry, the comment, and the malformed line survive; the stale
  // wall-clock entry is gone.
  EXPECT_NE(pruned.find("mutable-global core/x.cpp"), std::string::npos);
  EXPECT_NE(pruned.find("# trailing comment"), std::string::npos);
  EXPECT_NE(pruned.find("mangled line kept verbatim"), std::string::npos);
  EXPECT_EQ(pruned.find("sim/gone.cpp"), std::string::npos);
}

TEST(Baseline, PruneWithNothingUsedDropsEveryEntry) {
  const std::string text =
      "# kept\n"
      "wall-clock sim/gone.cpp 0000000000000001 grandfathered: removed\n";
  lint::Baseline b = lint::Baseline::parse(text, nullptr);
  const std::string pruned = b.prune(text);
  EXPECT_EQ(pruned, "# kept\n");
}

// --- lexer BOM ------------------------------------------------------------

TEST(Lexer, SkipsUtf8BomBeforeFirstToken) {
  const lint::TokenStream ts = lint::lex("\xEF\xBB\xBF#include <x>\n");
  ASSERT_FALSE(ts.empty());
  // Without the skip, the BOM bytes glue onto the '#' and the directive
  // lexes as garbage instead of a Preprocessor token.
  EXPECT_EQ(ts[0].kind, lint::TokenKind::Preprocessor);
  EXPECT_EQ(ts[0].line, 1u);
  EXPECT_EQ(ts[0].column, 1u);
  // A BOM mid-file is not a BOM; only the leading one is skipped.
  const lint::TokenStream plain = lint::lex("#include <x>\n");
  EXPECT_EQ(plain[0].kind, lint::TokenKind::Preprocessor);
}

}  // namespace
