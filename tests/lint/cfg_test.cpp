/// Unit tests for the intraprocedural layer under the flow-sensitive rules:
/// CFG construction corner cases (goto backward edges, switch fallthrough
/// with and without [[fallthrough]], ternary joins, early returns inside
/// loops, the three loop shapes and their index_ordered classification) and
/// the gen/kill worklist solver in both directions. The rule-level tests
/// live in flow_rules_test.cpp; these pin the graph shapes they rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>

#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "lint/file_data.hpp"

namespace lint = alert::analysis_tools;

namespace {

/// Builds the CFG of the first (only) function in `source`. The source must
/// not open any other brace before the function body — plain free functions,
/// no namespaces.
class CfgFixture {
 public:
  explicit CfgFixture(const std::string& source)
      : file_(lint::build_file_data("core/cfg_fixture.cpp", source)),
        view_(file_) {
    std::size_t open = 0;
    while (open < view_.size() && !view_.is_punct(open, "{")) ++open;
    cfg_ = lint::build_cfg(view_, open, view_.matching(open, "{", "}"));
  }

  [[nodiscard]] const lint::Cfg& cfg() const { return cfg_; }

  /// Code index of the nth occurrence of `text` (0-based).
  [[nodiscard]] std::size_t code_index(std::string_view text,
                                       int nth = 0) const {
    for (std::size_t i = 0; i < view_.size(); ++i) {
      if (view_.tok(i).text == text && nth-- == 0) return i;
    }
    ADD_FAILURE() << "token not found: " << text;
    return 0;
  }

  /// Block whose token ranges contain code index `tok`.
  [[nodiscard]] std::size_t block_at(std::size_t tok) const {
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      for (const auto& [begin, end] : cfg_.blocks[b].ranges) {
        if (begin <= tok && tok < end) return b;
      }
    }
    ADD_FAILURE() << "no block contains code index " << tok;
    return cfg_.entry;
  }

  [[nodiscard]] bool has_edge(std::size_t from, std::size_t to) const {
    const auto& succ = cfg_.blocks[from].succ;
    return std::find(succ.begin(), succ.end(), to) != succ.end();
  }

 private:
  lint::FileData file_;
  lint::CodeView view_;
  lint::Cfg cfg_;
};

TEST(Cfg, StraightLineBodyIsOneBlock) {
  const CfgFixture f(
      "int f(int a) {\n"
      "  int b = a + 1;\n"
      "  return b * 2;\n"
      "}\n");
  // entry, exit, and exactly one body block.
  EXPECT_EQ(f.cfg().blocks.size(), 3u);
  EXPECT_EQ(f.block_at(f.code_index("b")), f.block_at(f.code_index("return")));
  EXPECT_TRUE(f.has_edge(f.block_at(f.code_index("return")), f.cfg().exit));
}

TEST(Cfg, TernaryStaysInsideOneBlock) {
  const CfgFixture f(
      "int pick(bool c, int a, int b) {\n"
      "  int x = c ? a : b;\n"
      "  return x;\n"
      "}\n");
  // The ternary's implicit join never splits the block: both arms and the
  // following statement share it, which is the conservative may-analysis
  // reading (facts from either arm survive).
  EXPECT_EQ(f.block_at(f.code_index("?")),
            f.block_at(f.code_index("return")));
  EXPECT_EQ(f.cfg().blocks.size(), 3u);
}

TEST(Cfg, IfElseFormsDiamond) {
  const CfgFixture f(
      "int f(bool c) {\n"
      "  int r = 0;\n"
      "  if (c) {\n"
      "    r = 1;\n"
      "  } else {\n"
      "    r = 2;\n"
      "  }\n"
      "  return r;\n"
      "}\n");
  const std::size_t cond = f.block_at(f.code_index("if"));
  const std::size_t then_b = f.block_at(f.code_index("1"));
  const std::size_t else_b = f.block_at(f.code_index("2"));
  const std::size_t join = f.block_at(f.code_index("return"));
  EXPECT_TRUE(f.has_edge(cond, then_b));
  EXPECT_TRUE(f.has_edge(cond, else_b));
  EXPECT_TRUE(f.has_edge(then_b, join));
  EXPECT_TRUE(f.has_edge(else_b, join));
  EXPECT_FALSE(f.has_edge(cond, join));  // the else arm covers that path
}

TEST(Cfg, WhileLoopHasBackEdgeAndExit) {
  const CfgFixture f(
      "int f(int n) {\n"
      "  while (n > 0) {\n"
      "    n -= 1;\n"
      "  }\n"
      "  return n;\n"
      "}\n");
  ASSERT_EQ(f.cfg().loops.size(), 1u);
  const lint::LoopInfo& loop = f.cfg().loops[0];
  EXPECT_EQ(loop.kind, lint::LoopKind::While);
  EXPECT_FALSE(loop.index_ordered);
  const std::size_t body = f.block_at(f.code_index("-="));
  EXPECT_TRUE(f.has_edge(body, loop.head));  // back edge
  EXPECT_TRUE(f.has_edge(loop.head, f.block_at(f.code_index("return"))));
}

TEST(Cfg, DoWhileRunsBodyBeforeCondition) {
  const CfgFixture f(
      "int f(int n) {\n"
      "  do {\n"
      "    n += 1;\n"
      "  } while (n < 4);\n"
      "  return n;\n"
      "}\n");
  ASSERT_EQ(f.cfg().loops.size(), 1u);
  EXPECT_EQ(f.cfg().loops[0].kind, lint::LoopKind::DoWhile);
  // Entry reaches the body directly — the condition only runs afterwards.
  EXPECT_TRUE(f.has_edge(f.cfg().entry, f.block_at(f.code_index("+="))));
}

TEST(Cfg, ClassicForIsIndexOrderedRangeForIsNot) {
  const CfgFixture classic(
      "int sum(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    s += i;\n"
      "  }\n"
      "  return s;\n"
      "}\n");
  ASSERT_EQ(classic.cfg().loops.size(), 1u);
  EXPECT_EQ(classic.cfg().loops[0].kind, lint::LoopKind::For);
  EXPECT_TRUE(classic.cfg().loops[0].index_ordered);

  const CfgFixture ranged(
      "int sum(const int (&v)[4]) {\n"
      "  int s = 0;\n"
      "  for (int x : v) {\n"
      "    s += x;\n"
      "  }\n"
      "  return s;\n"
      "}\n");
  ASSERT_EQ(ranged.cfg().loops.size(), 1u);
  EXPECT_EQ(ranged.cfg().loops[0].kind, lint::LoopKind::RangeFor);
  EXPECT_FALSE(ranged.cfg().loops[0].index_ordered);
}

TEST(Cfg, EarlyReturnInLoopEdgesToExitOnly) {
  const CfgFixture f(
      "int find(const int* v, int n, int want) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (v[i] == want) return i;\n"
      "  }\n"
      "  return -1;\n"
      "}\n");
  const std::size_t ret = f.block_at(f.code_index("return", 0));
  ASSERT_EQ(f.cfg().blocks[ret].succ.size(), 1u);
  EXPECT_TRUE(f.has_edge(ret, f.cfg().exit));  // never back to the latch
}

TEST(Cfg, SwitchFallthroughEdgesWithAndWithoutAttribute) {
  const CfgFixture f(
      "void f(int k) {\n"
      "  switch (k) {\n"
      "    case 0:\n"
      "      zero();\n"
      "      [[fallthrough]];\n"
      "    case 1:\n"
      "      one();\n"
      "      break;\n"
      "    case 2:\n"
      "      two();\n"
      "    case 3:\n"
      "      three();\n"
      "      break;\n"
      "  }\n"
      "  after();\n"
      "}\n");
  const std::size_t zero = f.block_at(f.code_index("zero"));
  const std::size_t one = f.block_at(f.code_index("one"));
  const std::size_t two = f.block_at(f.code_index("two"));
  const std::size_t three = f.block_at(f.code_index("three"));
  const std::size_t after = f.block_at(f.code_index("after"));
  // [[fallthrough]] and a plain missing break spell the same CFG edge.
  EXPECT_TRUE(f.has_edge(zero, one));
  EXPECT_TRUE(f.has_edge(two, three));
  // break leaves the switch; it never falls into the next group.
  EXPECT_TRUE(f.has_edge(one, after));
  EXPECT_FALSE(f.has_edge(one, two));
  EXPECT_TRUE(f.has_edge(three, after));
  // No default: the dispatch can skip the whole switch.
  const std::size_t dispatch = f.block_at(f.code_index("switch"));
  EXPECT_TRUE(f.has_edge(dispatch, after));
}

TEST(Cfg, GotoMakesABackwardEdge) {
  const CfgFixture f(
      "int f(int n) {\n"
      "  int tries = 0;\n"
      "retry:\n"
      "  tries += 1;\n"
      "  if (n > tries) goto retry;\n"
      "  return tries;\n"
      "}\n");
  const std::size_t jump = f.block_at(f.code_index("goto"));
  const std::size_t label = f.block_at(f.code_index("tries", 1));
  EXPECT_TRUE(f.has_edge(jump, label));
  // The label block sits earlier in the token stream than the goto: this is
  // a genuine backward edge, so fixpoint solvers must iterate.
  EXPECT_NE(jump, label);
}

TEST(Cfg, InnermostLoopAtPicksTheNestedLoop) {
  const CfgFixture f(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  while (n > 0) {\n"
      "    for (int i = 0; i < n; ++i) {\n"
      "      s += i;\n"
      "    }\n"
      "    n -= 1;\n"
      "  }\n"
      "  return s;\n"
      "}\n");
  ASSERT_EQ(f.cfg().loops.size(), 2u);
  const lint::LoopInfo* inner = f.cfg().innermost_loop_at(f.code_index("+="));
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->kind, lint::LoopKind::For);
  const lint::LoopInfo* outer = f.cfg().innermost_loop_at(f.code_index("-="));
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->kind, lint::LoopKind::While);
  EXPECT_EQ(f.cfg().innermost_loop_at(f.code_index("return")), nullptr);
}

// --- dataflow -------------------------------------------------------------

/// Hand-built diamond: entry -> cond -> {left, right} -> join -> exit.
lint::Cfg diamond() {
  lint::Cfg cfg;
  cfg.blocks.resize(6);
  const auto edge = [&](std::size_t from, std::size_t to) {
    cfg.blocks[from].succ.push_back(to);
    cfg.blocks[to].pred.push_back(from);
  };
  edge(0, 2);  // entry -> cond
  edge(2, 3);  // cond -> left
  edge(2, 4);  // cond -> right
  edge(3, 5);  // left -> join
  edge(4, 5);  // right -> join
  edge(5, 1);  // join -> exit
  return cfg;
}

TEST(Dataflow, ForwardMayUnionSurvivesOneKilledArm) {
  const lint::Cfg cfg = diamond();
  std::vector<lint::BlockFacts> facts(cfg.blocks.size());
  facts[2].gen = {0};   // the condition block asserts fact 0
  facts[3].kill = {0};  // the left arm cancels it
  const auto in = lint::solve_forward(cfg, facts);
  EXPECT_TRUE(in[3].count(0));   // reaches both arms
  EXPECT_TRUE(in[4].count(0));
  EXPECT_TRUE(in[5].count(0));   // may: the right arm kept it alive
  EXPECT_TRUE(in[1].count(0));
  EXPECT_FALSE(in[2].count(0));  // nothing flows in before the gen
}

TEST(Dataflow, ForwardReachesFixpointAroundALoop) {
  // entry -> head <-> body -> (head) ; head -> exit. The body gens fact 0,
  // which must flow around the back edge into the head's IN.
  lint::Cfg cfg;
  cfg.blocks.resize(4);
  const auto edge = [&](std::size_t from, std::size_t to) {
    cfg.blocks[from].succ.push_back(to);
    cfg.blocks[to].pred.push_back(from);
  };
  edge(0, 2);  // entry -> head
  edge(2, 3);  // head -> body
  edge(3, 2);  // body -> head (back edge)
  edge(2, 1);  // head -> exit
  std::vector<lint::BlockFacts> facts(cfg.blocks.size());
  facts[3].gen = {0};
  const auto in = lint::solve_forward(cfg, facts);
  EXPECT_TRUE(in[2].count(0));  // carried around the loop
  EXPECT_TRUE(in[1].count(0));
}

TEST(Dataflow, BackwardMayPropagatesAgainstEdges) {
  const lint::Cfg cfg = diamond();
  std::vector<lint::BlockFacts> facts(cfg.blocks.size());
  facts[5].gen = {0};   // the join demands fact 0
  facts[4].kill = {0};  // the right arm satisfies/cancels it
  const auto out = lint::solve_backward(cfg, facts);
  EXPECT_TRUE(out[3].count(0));  // flows up the left arm
  EXPECT_TRUE(out[2].count(0));  // may: one path still demands it
  EXPECT_FALSE(out[5].count(0));  // nothing demands it after the join
}

}  // namespace
