/// Unit tests for the alert::obs subsystem: the JSON writer, the metrics
/// registry and snapshot merge semantics (the acceptance bar: N snapshots
/// merged pairwise must equal one serial aggregation), the trace sinks, the
/// profiler, the series table, and the run manifest.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/series.hpp"
#include "obs/trace.hpp"

namespace alert::obs {
namespace {

struct TempPath {
  explicit TempPath(const char* name) {
    path = ::testing::TempDir() + "/" + name;
  }
  ~TempPath() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, ObjectWithMixedFields) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.field("name", "alert");
  w.field("count", std::uint64_t{42});
  w.field("rate", 0.5);
  w.field("ok", true);
  w.key("tags");
  w.begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\"name\":\"alert\",\"count\":42,\"rate\":0.5,\"ok\":true,"
            "\"tags\":[\"a\",\"b\"]}");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\n\t"),
            "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(out.str(), "[null,null,1.5]");
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAndDeduplicated) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.tx");
  Counter& b = reg.counter("net.tx");
  EXPECT_EQ(&a, &b);
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
  // Registering more metrics must not invalidate existing handles.
  for (int i = 0; i < 100; ++i) {
    reg.counter("extra." + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("net.tx"), &a);
  EXPECT_EQ(a.value(), 3u);
}

TEST(MetricsRegistry, SnapshotFreezesAllKinds) {
  MetricsRegistry reg;
  reg.counter("c").inc(7);
  reg.gauge("g").set(2.5);
  reg.sample("s").add(1.0);
  reg.sample("s").add(3.0);
  util::Histogram& h = reg.histogram("h", 0.0, 10.0, 10);
  h.add(4.5);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.replications, 1u);
  ASSERT_EQ(snap.metrics.size(), 4u);

  const MetricValue* c = snap.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, MetricKind::Counter);
  EXPECT_EQ(c->total, 7u);
  EXPECT_EQ(c->per_rep.count(), 1u);

  const MetricValue* g = snap.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->per_rep.mean(), 2.5);

  const MetricValue* s = snap.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->samples.count(), 2u);
  EXPECT_DOUBLE_EQ(s->samples.mean(), 2.0);

  const MetricValue* hist = snap.find("h");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->bins.size(), 10u);
  EXPECT_EQ(hist->bins[4], 1u);

  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsSnapshot, MergedReplicationsEqualSerialAggregation) {
  // The acceptance criterion: run N replications, snapshot each, merge the
  // snapshots — every statistic must equal one registry fed all N
  // replications' observations serially.
  constexpr int kReps = 4;
  MetricsRegistry serial;
  MetricsSnapshot merged;
  for (int rep = 0; rep < kReps; ++rep) {
    MetricsRegistry reg;
    for (int i = 0; i <= rep; ++i) {
      reg.counter("net.tx").inc(3);
      serial.counter("net.tx").inc(3);
      const double x = 0.25 * rep + 0.1 * i;
      reg.sample("app.latency_s").add(x);
      serial.sample("app.latency_s").add(x);
      reg.histogram("app.hop_count", 0.0, 40.0, 40).add(double(rep + i));
      serial.histogram("app.hop_count", 0.0, 40.0, 40).add(double(rep + i));
    }
    merged.merge(reg.snapshot());
  }
  EXPECT_EQ(merged.replications, std::size_t{kReps});

  const MetricsSnapshot one = serial.snapshot();
  const MetricValue* mc = merged.find("net.tx");
  const MetricValue* sc = one.find("net.tx");
  ASSERT_NE(mc, nullptr);
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(mc->total, sc->total);
  // The merged counter additionally exposes per-replication spread.
  EXPECT_EQ(mc->per_rep.count(), std::size_t{kReps});

  const MetricValue* ms = merged.find("app.latency_s");
  const MetricValue* ss = one.find("app.latency_s");
  ASSERT_NE(ms, nullptr);
  ASSERT_NE(ss, nullptr);
  EXPECT_EQ(ms->samples.count(), ss->samples.count());
  EXPECT_NEAR(ms->samples.mean(), ss->samples.mean(), 1e-12);
  EXPECT_NEAR(ms->samples.variance(), ss->samples.variance(), 1e-12);
  EXPECT_NEAR(ms->samples.ci95_halfwidth(), ss->samples.ci95_halfwidth(),
              1e-12);

  const MetricValue* mh = merged.find("app.hop_count");
  const MetricValue* sh = one.find("app.hop_count");
  ASSERT_NE(mh, nullptr);
  ASSERT_NE(sh, nullptr);
  EXPECT_EQ(mh->bins, sh->bins);
}

TEST(MetricsSnapshot, MergeCarriesOneSidedMetrics) {
  MetricsRegistry a, b;
  a.counter("only.a").inc(1);
  a.counter("shared").inc(2);
  b.counter("shared").inc(5);
  b.counter("only.b").inc(9);
  MetricsSnapshot snap = a.snapshot();
  snap.merge(b.snapshot());
  ASSERT_NE(snap.find("only.a"), nullptr);
  ASSERT_NE(snap.find("only.b"), nullptr);
  EXPECT_EQ(snap.find("only.a")->total, 1u);
  EXPECT_EQ(snap.find("only.b")->total, 9u);
  EXPECT_EQ(snap.find("shared")->total, 7u);
  // Names stay sorted so find() (binary search) keeps working post-merge.
  for (std::size_t i = 1; i < snap.metrics.size(); ++i) {
    EXPECT_LT(snap.metrics[i - 1].name, snap.metrics[i].name);
  }
}

TEST(MetricsSnapshot, WriteJsonEmitsEveryKind) {
  MetricsRegistry reg;
  reg.counter("c").inc(3);
  reg.gauge("g").set(1.5);
  reg.sample("s").add(2.0);
  reg.histogram("h", 0.0, 4.0, 4).add(1.0);
  std::ostringstream out;
  JsonWriter w(out);
  reg.snapshot().write_json(w);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"replications\":1"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"sample\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"bins\":[0,1,0,0]"), std::string::npos);
}

// --- trace sinks -----------------------------------------------------------

TraceEvent sample_event() {
  TraceEvent ev;
  ev.t = 1.5;
  ev.node = 7;
  ev.uid = 99;
  ev.layer = TraceLayer::Mac;
  ev.kind = "tx.data";
  ev.duration = 0.001;
  ev.aux = 512;
  return ev;
}

TEST(TraceSinks, JsonlWritesOneObjectPerLine) {
  TempPath tmp("obs_test.jsonl");
  {
    JsonlTraceSink sink(tmp.path);
    sink.write(sample_event());
    sink.write(sample_event());
    sink.finish();
  }
  std::ifstream in(tmp.path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"kind\":\"tx.data\""), std::string::npos);
    EXPECT_NE(line.find("\"node\":7"), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
}

TEST(TraceSinks, CsvWritesHeaderThenRows) {
  TempPath tmp("obs_test.csv");
  {
    CsvTraceSink sink(tmp.path);
    sink.write(sample_event());
  }
  std::ifstream in(tmp.path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(header.find("t,"), std::string::npos);
  EXPECT_NE(header.find("node"), std::string::npos);
  EXPECT_NE(row.find("tx.data"), std::string::npos);
}

TEST(TraceSinks, ChromeTraceIsAClosedJsonArray) {
  TempPath tmp("obs_test.json");
  {
    ChromeTraceSink sink(tmp.path);
    sink.write(sample_event());
    TraceEvent instant = sample_event();
    instant.duration = 0.0;
    sink.write(instant);
    sink.finish();
  }
  const std::string json = slurp(tmp.path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
  // Complete slice for the timed event, instant for the zero-duration one.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // ts in microseconds of sim time.
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
}

TEST(TraceSinks, ChromeTraceClosesOnDestructionWithoutFinish) {
  TempPath tmp("obs_test_dtor.json");
  {
    ChromeTraceSink sink(tmp.path);
    sink.write(sample_event());
  }  // no explicit finish(); the destructor must close the array
  const std::string json = slurp(tmp.path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
}

TEST(TraceSinks, FactoryPicksSinkByExtension) {
  TempPath jsonl("f.jsonl");
  TempPath csv("f.csv");
  TempPath chrome("f.json");
  EXPECT_NE(dynamic_cast<JsonlTraceSink*>(make_trace_sink(jsonl.path).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<CsvTraceSink*>(make_trace_sink(csv.path).get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<ChromeTraceSink*>(make_trace_sink(chrome.path).get()),
      nullptr);
}

TEST(Tracer, DefaultConstructedIsDisabledAndInert) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.emit(sample_event());  // must not crash
}

// --- profiler --------------------------------------------------------------

TEST(Profiler, RecordsCountTotalAndMax) {
  Profiler p;
  const ScopeId dispatch = p.scope("sim.dispatch");
  EXPECT_EQ(p.scope("sim.dispatch"), dispatch);  // idempotent lookup
  p.record(dispatch, 10);
  p.record(dispatch, 30);
  p.record(dispatch, 20);
  const ProfileReport r = p.report();
  const ScopeStats* s = r.find("sim.dispatch");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 3u);
  EXPECT_EQ(s->total_ns, 60u);
  EXPECT_EQ(s->max_ns, 30u);
}

TEST(Profiler, ScopeTimerWithNullProfilerIsInert) {
  const ScopeId id = 0;
  ScopeTimer timer(nullptr, id);  // must not crash or record anything
}

TEST(ProfileReport, MergeAddsCountsAndKeepsMax) {
  Profiler a, b;
  a.record(a.scope("net.transmit"), 100);
  b.record(b.scope("net.transmit"), 250);
  b.record(b.scope("routing.alert.send"), 5);
  ProfileReport r = a.report();
  r.merge(b.report());
  const ScopeStats* t = r.find("net.transmit");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->count, 2u);
  EXPECT_EQ(t->total_ns, 350u);
  EXPECT_EQ(t->max_ns, 250u);
  ASSERT_NE(r.find("routing.alert.send"), nullptr);
  EXPECT_NE(r.summary().find("net.transmit"), std::string::npos);
}

// --- series table ----------------------------------------------------------

TEST(SeriesTable, PrintsWithoutCrashing) {
  util::Series s{"alert", {{100.0, 0.95, 0.01}, {200.0, 0.93, 0.02}}};
  ::testing::internal::CaptureStdout();
  print_series_table("Fig. X", "nodes", "delivery rate", {s});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("Fig. X"), std::string::npos);
  EXPECT_NE(out.find("alert"), std::string::npos);
}

TEST(SeriesJson, EmitsNamePointsAndCi) {
  util::Series s{"gpsr", {{1.0, 2.0, 0.5}}};
  std::ostringstream out;
  JsonWriter w(out);
  write_series_json(w, {s});
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"gpsr\""), std::string::npos);
  EXPECT_NE(json.find("\"x\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ci\":0.5"), std::string::npos);
}

// --- run manifest ----------------------------------------------------------

TEST(RunManifest, WriteJsonCarriesSchemaAndSections) {
  RunManifest m;
  m.name = "fig_test";
  m.title = "Test figure";
  m.x_label = "x";
  m.y_label = "y";
  m.seed = 42;
  m.replications = 3;
  m.add_param("node_count", "200");
  m.trace_digests = {0xdeadbeefULL, 0x1234ULL};
  MetricsRegistry reg;
  reg.counter("net.tx").inc(11);
  m.metrics = reg.snapshot();
  m.notes.push_back("a note");
  std::ostringstream out;
  m.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find(std::string("\"schema\":\"") + kManifestSchema),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fig_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"node_count\":\"200\""), std::string::npos);
  EXPECT_NE(json.find("\"net.tx\""), std::string::npos);
  EXPECT_NE(json.find("a note"), std::string::npos);
  EXPECT_NE(json.find("\"version\""), std::string::npos);
}

TEST(RunManifest, WriteFileRoundTripsAndFailsOnBadPath) {
  TempPath tmp("obs_manifest.json");
  RunManifest m;
  m.name = "roundtrip";
  EXPECT_TRUE(m.write_file(tmp.path));
  EXPECT_NE(slurp(tmp.path).find("\"roundtrip\""), std::string::npos);
  EXPECT_FALSE(m.write_file("/nonexistent-dir/x/manifest.json"));
}

TEST(BuildVersion, IsNonEmpty) {
  ASSERT_NE(build_version(), nullptr);
  EXPECT_NE(std::string(build_version()), "");
}

}  // namespace
}  // namespace alert::obs
