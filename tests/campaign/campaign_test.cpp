#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/engine.hpp"
#include "campaign/figures.hpp"
#include "campaign/journal.hpp"
#include "campaign/result_codec.hpp"
#include "campaign/spec.hpp"
#include "core/scenario_codec.hpp"

namespace alert::campaign {
namespace {

namespace fs = std::filesystem;

/// A fast scenario for engine tests: small field, few nodes, short session.
core::ScenarioConfig tiny_scenario() {
  core::ScenarioConfig cfg = paper_default_scenario();
  cfg.field = {0.0, 0.0, 400.0, 400.0};
  cfg.node_count = 30;
  cfg.flow_count = 2;
  cfg.duration_s = 10.0;
  return cfg;
}

CampaignSpec tiny_spec(const std::string& name) {
  CampaignSpec spec;
  spec.name = name;
  spec.banner = "test — tiny campaign";
  spec.title = "tiny campaign";
  spec.x_label = "x";
  spec.y_label = "delivery rate";
  spec.y_metric = "delivery_rate";
  for (const std::size_t n : {20u, 30u}) {
    PointSpec point;
    point.curve = "tiny";
    point.x = static_cast<double>(n);
    point.config = tiny_scenario();
    point.config.node_count = n;
    spec.points.push_back(std::move(point));
  }
  return spec;
}

std::string manifest_bytes(const obs::RunManifest& manifest) {
  std::ostringstream out;
  manifest.write_json(out);
  return out.str();
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::path(::testing::TempDir()) /
               (tag + std::to_string(counter_++)))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

// --- result codec ----------------------------------------------------------

TEST(ResultCodec, RoundTripIsByteStable) {
  core::ScenarioConfig cfg = tiny_scenario();
  cfg.obs.profile = true;
  const core::RunResult run = core::run_once(cfg, 3);

  const std::string json = run_result_to_json(run);
  std::string error;
  const auto parsed = parse_run_result(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(run_result_to_json(*parsed), json);
  EXPECT_EQ(parsed->sent, run.sent);
  EXPECT_EQ(parsed->delivered, run.delivered);
  EXPECT_EQ(parsed->trace_digest, run.trace_digest);
  EXPECT_EQ(parsed->hello_messages, run.hello_messages);
  EXPECT_GT(run.events_executed, 0u);
  EXPECT_EQ(parsed->events_executed, run.events_executed);
}

TEST(ResultCodec, RejectsWrongSchema) {
  std::string error;
  EXPECT_FALSE(
      parse_run_result(R"({"schema":"something-else/1"})", &error));
  EXPECT_FALSE(parse_run_result("not json at all", &error));
}

// --- cache -----------------------------------------------------------------

TEST(ResultCache, StoreThenLoad) {
  TempDir dir("alertsim-cache-test-");
  ResultCache cache(dir.path());
  const core::RunResult run = core::run_once(tiny_scenario(), 0);
  const std::string key = core::scenario_unit_key(tiny_scenario(), 0);

  EXPECT_FALSE(cache.load(key).has_value());
  ASSERT_TRUE(cache.store(key, run));
  const auto hit = cache.load(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(run_result_to_json(*hit), run_result_to_json(run));
}

TEST(ResultCache, CorruptEntryIsAMiss) {
  TempDir dir("alertsim-cache-test-");
  ResultCache cache(dir.path());
  const std::string key = core::scenario_unit_key(tiny_scenario(), 0);
  fs::create_directories(fs::path(cache.object_path(key)).parent_path());
  std::ofstream(cache.object_path(key)) << "{torn write";
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ResultCache, CorruptEntryOverwrittenByNextStore) {
  TempDir dir("alertsim-cache-test-");
  ResultCache cache(dir.path());
  const core::RunResult run = core::run_once(tiny_scenario(), 0);
  const std::string key = core::scenario_unit_key(tiny_scenario(), 0);
  fs::create_directories(fs::path(cache.object_path(key)).parent_path());
  std::ofstream(cache.object_path(key)) << "{torn write";
  EXPECT_FALSE(cache.load(key).has_value());
  EXPECT_TRUE(cache.entry_exists(key));  // present-but-corrupt

  // The re-execution path: the corrupt entry reads as a miss, the unit runs
  // again, and the atomic store replaces the bad bytes under the final name.
  ASSERT_TRUE(cache.store(key, run));
  EXPECT_EQ(cache.store_errors(), 0u);
  const auto healed = cache.load(key);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(run_result_to_json(*healed), run_result_to_json(run));
}

TEST(ResultCache, RemoveHealsEntryUnderFinalName) {
  TempDir dir("alertsim-cache-test-");
  ResultCache cache(dir.path());
  const std::string key = core::scenario_unit_key(tiny_scenario(), 1);
  ASSERT_TRUE(cache.store(key, core::run_once(tiny_scenario(), 1)));
  EXPECT_TRUE(cache.entry_exists(key));
  cache.remove(key);
  EXPECT_FALSE(cache.entry_exists(key));
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ResultCache, UnwritableRootCountsStoreErrors) {
  // Tests may run as root (CI containers), where permission bits are
  // ineffective — nest the cache root under a regular file instead, so
  // create_directories fails with ENOTDIR for every euid.
  TempDir dir("alertsim-cache-test-");
  const std::string blocker = dir.path() + "/blocker";
  std::ofstream(blocker) << "not a directory\n";
  ResultCache cache(blocker + "/cache");
  const core::RunResult run = core::run_once(tiny_scenario(), 0);
  const std::string key = core::scenario_unit_key(tiny_scenario(), 0);
  EXPECT_FALSE(cache.store(key, run));
  EXPECT_FALSE(cache.store(key, run));
  EXPECT_EQ(cache.store_errors(), 2u);
  EXPECT_FALSE(cache.load(key).has_value());
}

TEST(ResultCache, EmptyCacheDirEnvFallsBackToDefault) {
  const char* saved = std::getenv("ALERTSIM_CACHE_DIR");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("ALERTSIM_CACHE_DIR", "", 1);
  EXPECT_EQ(default_cache_root(), ".alertsim-cache");
  ::setenv("ALERTSIM_CACHE_DIR", "/tmp/alertsim-somewhere", 1);
  EXPECT_EQ(default_cache_root(), "/tmp/alertsim-somewhere");
  ::unsetenv("ALERTSIM_CACHE_DIR");
  EXPECT_EQ(default_cache_root(), ".alertsim-cache");

  if (saved != nullptr) {
    ::setenv("ALERTSIM_CACHE_DIR", restore.c_str(), 1);
  }
}

TEST(ScenarioUnitKey, ChangesWithParamsAndReplication) {
  const core::ScenarioConfig cfg = tiny_scenario();
  const std::string key = core::scenario_unit_key(cfg, 0);
  EXPECT_EQ(core::scenario_unit_key(cfg, 0), key);  // stable
  EXPECT_NE(core::scenario_unit_key(cfg, 1), key);  // replication

  core::ScenarioConfig changed = cfg;
  changed.speed_mps = cfg.speed_mps + 0.5;
  EXPECT_NE(core::scenario_unit_key(changed, 0), key);  // any param
  changed = cfg;
  changed.seed += 1;
  EXPECT_NE(core::scenario_unit_key(changed, 0), key);  // seed

  // Observability settings are not semantic: they never split the cache.
  changed = cfg;
  changed.obs.profile = !cfg.obs.profile;
  changed.obs.trace_out = "/tmp/whatever.jsonl";
  EXPECT_EQ(core::scenario_unit_key(changed, 0), key);
}

// --- journal ---------------------------------------------------------------

TEST(Journal, PersistsAcrossReopen) {
  TempDir dir("alertsim-journal-test-");
  {
    Journal journal(dir.path(), "spec_a");
    EXPECT_EQ(journal.done_count(), 0u);
    journal.mark_done("aaaa");
    journal.mark_done("bbbb");
    journal.mark_done("aaaa");  // idempotent
    EXPECT_EQ(journal.done_count(), 2u);
  }
  Journal reopened(dir.path(), "spec_a");
  EXPECT_EQ(reopened.done_count(), 2u);
  EXPECT_TRUE(reopened.contains("aaaa"));
  EXPECT_TRUE(reopened.contains("bbbb"));
  EXPECT_FALSE(reopened.contains("cccc"));
}

TEST(Journal, IgnoresTornTailLine) {
  TempDir dir("alertsim-journal-test-");
  { Journal(dir.path(), "spec_b").mark_done("aaaa"); }
  {
    // Simulate a process killed mid-append: a record missing its newline
    // is still a complete line to getline, but a half-written "don" is not
    // a well-formed record.
    std::ofstream out(dir.path() + "/spec_b.journal", std::ios::app);
    out << "don";
  }
  Journal reopened(dir.path(), "spec_b");
  EXPECT_EQ(reopened.done_count(), 1u);
  EXPECT_TRUE(reopened.contains("aaaa"));
}

TEST(Journal, DistRecordsPersistAndCount) {
  TempDir dir("alertsim-journal-test-");
  {
    Journal journal(dir.path(), "spec_d");
    journal.mark_claimed("aaaa", "worker-1");
    journal.mark_claimed("aaaa", "worker-2");  // retry after a reclaim
    journal.mark_claimed("bbbb", "worker-2");
    journal.mark_failed("aaaa", "worker-1");
    journal.mark_reclaimed("aaaa", "worker-1");
    journal.mark_done("aaaa");
    EXPECT_EQ(journal.claim_count("aaaa"), 2u);
    EXPECT_EQ(journal.max_claim_count(), 2u);
    EXPECT_EQ(journal.total_retries(), 1u);
    EXPECT_EQ(journal.total_failed(), 1u);
    EXPECT_EQ(journal.total_reclaimed(), 1u);
  }
  Journal reopened(dir.path(), "spec_d");
  EXPECT_EQ(reopened.claim_count("aaaa"), 2u);
  EXPECT_EQ(reopened.claim_count("bbbb"), 1u);
  EXPECT_EQ(reopened.failed_count("aaaa"), 1u);
  EXPECT_EQ(reopened.total_reclaimed(), 1u);
  EXPECT_EQ(reopened.total_retries(), 1u);
  const std::vector<std::string> workers = reopened.workers();
  EXPECT_EQ(workers, (std::vector<std::string>{"worker-1", "worker-2"}));
  EXPECT_TRUE(reopened.contains("aaaa"));
  EXPECT_EQ(reopened.write_errors(), 0u);
}

TEST(Journal, UnwritableDirCountsWriteErrorsInsteadOfSilence) {
  // Same ENOTDIR trick as the cache test: works under any euid.
  TempDir dir("alertsim-journal-test-");
  const std::string blocker = dir.path() + "/blocker";
  std::ofstream(blocker) << "not a directory\n";
  Journal journal(blocker + "/journal", "spec_e");
  EXPECT_GE(journal.write_errors(), 1u);  // the failed open
  const std::size_t before = journal.write_errors();
  journal.mark_done("aaaa");
  journal.mark_claimed("bbbb", "w");
  EXPECT_EQ(journal.write_errors(), before + 2);
  // In-memory view still works — only durability is degraded.
  EXPECT_TRUE(journal.contains("aaaa"));
}

// --- spec JSON loader ------------------------------------------------------

constexpr const char* kGoodSpec = R"({
  "schema": "alertsim-campaign-spec/1",
  "name": "sweep_speed",
  "y_metric": "delivery_rate",
  "reps": 2,
  "base": {"node_count": 30, "duration_s": 10, "flow_count": 2},
  "curves": [
    {"name": "ALERT"},
    {"name": "GPSR", "set": {"protocol": "gpsr"}}
  ],
  "x": {"param": "speed_mps", "values": [2, 4]},
  "notes": ["hand-written spec"]
})";

TEST(SpecLoader, ExpandsCurveMajor) {
  std::string error;
  const auto spec = load_spec_json(kGoodSpec, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name, "sweep_speed");
  EXPECT_EQ(spec->fallback_reps, 2u);
  ASSERT_EQ(spec->points.size(), 4u);
  EXPECT_EQ(spec->points[0].curve, "ALERT");
  EXPECT_EQ(spec->points[1].curve, "ALERT");
  EXPECT_EQ(spec->points[2].curve, "GPSR");
  EXPECT_EQ(spec->points[3].curve, "GPSR");
  EXPECT_EQ(spec->points[1].x, 4.0);
  EXPECT_EQ(spec->points[1].config.speed_mps, 4.0);
  EXPECT_EQ(spec->points[0].config.node_count, 30u);
  EXPECT_EQ(spec->points[2].config.protocol, core::ProtocolKind::Gpsr);
  ASSERT_EQ(spec->notes.size(), 1u);
  EXPECT_EQ(spec->x_label, "speed_mps");
}

TEST(SpecLoader, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(load_spec_json("{}", &error));
  EXPECT_FALSE(load_spec_json(
      R"({"schema":"alertsim-campaign-spec/1","name":"x",
          "y_metric":"no_such_metric","x":{"param":"speed_mps","values":[1]}})",
      &error));
  EXPECT_NE(error.find("no_such_metric"), std::string::npos);
  EXPECT_FALSE(load_spec_json(
      R"({"schema":"alertsim-campaign-spec/1","name":"x",
          "y_metric":"delivery_rate",
          "base":{"no_such_param":1},
          "x":{"param":"speed_mps","values":[1]}})",
      &error));
}

// --- engine ----------------------------------------------------------------

CampaignOptions engine_options(const std::string& cache_dir,
                               const std::string& metrics_out) {
  CampaignOptions options;
  options.reps = 2;
  options.threads = 2;
  options.cache_dir = cache_dir;
  options.metrics_out = metrics_out;
  options.print = false;
  return options;
}

TEST(Engine, CachedRerunIsByteIdentical) {
  TempDir dir("alertsim-engine-test-");
  const CampaignSpec spec = tiny_spec("engine_cached");
  const std::string out = dir.path() + "/m.json";

  const CampaignOutcome cold =
      run_campaign(spec, engine_options(dir.path() + "/cache", out));
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_EQ(cold.units_total, 4u);
  EXPECT_EQ(cold.executed, 4u);
  EXPECT_EQ(cold.cache_hits, 0u);

  const CampaignOutcome warm =
      run_campaign(spec, engine_options(dir.path() + "/cache", out));
  EXPECT_EQ(warm.executed, 0u);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(manifest_bytes(warm.manifest), manifest_bytes(cold.manifest));
  EXPECT_EQ(warm.manifest.trace_digests, cold.manifest.trace_digests);
  ASSERT_EQ(warm.manifest.trace_digests.size(), 4u);
  EXPECT_TRUE(std::is_sorted(cold.manifest.trace_digests.begin(),
                             cold.manifest.trace_digests.begin() + 2));

  // A cache-less run reproduces everything except the wall-clock profile
  // (fresh timings can never byte-match; cached replays do, checked above).
  CampaignOptions no_cache = engine_options("", out);
  no_cache.use_cache = false;
  CampaignOutcome live = run_campaign(spec, no_cache);
  EXPECT_EQ(live.executed, 4u);
  obs::RunManifest cold_stripped = cold.manifest;
  live.manifest.profile.scopes.clear();
  cold_stripped.profile.scopes.clear();
  EXPECT_EQ(manifest_bytes(live.manifest), manifest_bytes(cold_stripped));
}

TEST(Engine, ParamOrSeedChangeMissesCache) {
  TempDir dir("alertsim-engine-test-");
  const std::string cache = dir.path() + "/cache";
  CampaignSpec spec = tiny_spec("engine_miss");
  (void)run_campaign(spec, engine_options(cache, ""));

  CampaignSpec changed = tiny_spec("engine_miss");
  changed.points[0].config.speed_mps += 1.0;
  const CampaignOutcome after_param =
      run_campaign(changed, engine_options(cache, ""));
  EXPECT_EQ(after_param.executed, 2u);  // point 0's units only
  EXPECT_EQ(after_param.cache_hits, 2u);

  CampaignSpec reseeded = tiny_spec("engine_miss");
  for (PointSpec& point : reseeded.points) point.config.seed += 1;
  const CampaignOutcome after_seed =
      run_campaign(reseeded, engine_options(cache, ""));
  EXPECT_EQ(after_seed.executed, 4u);
  EXPECT_EQ(after_seed.cache_hits, 0u);
}

TEST(Engine, ResumeAfterPartialRunMatchesUninterrupted) {
  TempDir dir("alertsim-engine-test-");
  const CampaignSpec spec = tiny_spec("engine_resume");

  // Uninterrupted reference, no cache involved (profile stripped: fresh
  // wall-clock timings differ run to run; determinism covers everything
  // else).
  CampaignOptions reference = engine_options("", "");
  reference.use_cache = false;
  CampaignOutcome uninterrupted = run_campaign(spec, reference);
  uninterrupted.manifest.profile.scopes.clear();
  const std::string expected = manifest_bytes(uninterrupted.manifest);

  // "Crash" after one unit: pre-seed the cache with a single completed unit,
  // exactly the state a killed campaign leaves behind (the engine always
  // executes with the self-profile on, so the seeded entry must too).
  const std::string cache_dir = dir.path() + "/cache";
  {
    ResultCache cache(cache_dir);
    Journal journal(cache_dir + "/journal", spec.name);
    const std::string key =
        core::scenario_unit_key(spec.points[0].config, 0);
    core::ScenarioConfig cfg = spec.points[0].config;
    cfg.obs.profile = true;
    cache.store(key, core::run_once(cfg, 0));
    journal.mark_done(key);
  }
  CampaignOutcome resumed = run_campaign(spec, engine_options(cache_dir, ""));
  EXPECT_EQ(resumed.cache_hits, 1u);
  EXPECT_EQ(resumed.executed, 3u);
  resumed.manifest.profile.scopes.clear();
  EXPECT_EQ(manifest_bytes(resumed.manifest), expected);
}

TEST(Engine, RepsOverridePinsPointReplications) {
  TempDir dir("alertsim-engine-test-");
  CampaignSpec spec = tiny_spec("engine_override");
  spec.points[0].reps_override = 1;
  const CampaignOutcome outcome =
      run_campaign(spec, engine_options(dir.path() + "/cache", ""));
  EXPECT_EQ(outcome.units_total, 3u);  // 1 + 2
  EXPECT_EQ(outcome.reps, 2u);
}

TEST(Engine, UnwritableCacheRootDegradesGracefully) {
  // A sweep pointed at an unusable cache root must still complete (exit 0,
  // every unit executed live) and must say so: store/journal failures are
  // counted on the outcome, never silent (satellite of docs/DIST.md's
  // failure matrix).
  TempDir dir("alertsim-engine-test-");
  const std::string blocker = dir.path() + "/blocker";
  std::ofstream(blocker) << "not a directory\n";
  const CampaignSpec spec = tiny_spec("engine_degraded");
  const CampaignOutcome outcome =
      run_campaign(spec, engine_options(blocker + "/cache", ""));
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.executed, outcome.units_total);
  EXPECT_EQ(outcome.cache_hits, 0u);
  EXPECT_EQ(outcome.cache_store_errors, outcome.units_total);
  EXPECT_GE(outcome.journal_write_errors, outcome.units_total);
  // The counters also surface through the obs progress snapshot.
  bool found = false;
  for (const auto& metric : outcome.progress.metrics) {
    if (metric.name == "campaign.cache.store_errors") {
      found = true;
      EXPECT_EQ(metric.total, outcome.cache_store_errors);
    }
  }
  EXPECT_TRUE(found);
}

// --- figure registry -------------------------------------------------------

TEST(FigureRegistry, EveryFigureBuildsAConsistentSpec) {
  for (const FigureDef& def : figure_registry()) {
    const CampaignSpec spec = def.build();
    EXPECT_EQ(spec.name, def.name);
    EXPECT_FALSE(spec.banner.empty()) << def.name;
    EXPECT_FALSE(spec.title.empty()) << def.name;
    // Default-reduced specs must name a known extractor.
    if (!spec.reduce) {
      EXPECT_TRUE(y_metric_extractor(spec.y_metric).has_value())
          << def.name << " y_metric=" << spec.y_metric;
    }
  }
  EXPECT_NE(find_figure("fig11_rf_vs_partitions"), nullptr);
  EXPECT_EQ(find_figure("no_such_figure"), nullptr);
}

}  // namespace
}  // namespace alert::campaign
