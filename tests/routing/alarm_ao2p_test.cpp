#include <gtest/gtest.h>

#include "protocol_fixture.hpp"
#include "routing/alarm.hpp"
#include "routing/ao2p.hpp"

namespace alert::routing {
namespace {

using testing::line_topology;
using testing::ProtocolFixture;

// --- ALARM -----------------------------------------------------------------

TEST(Alarm, DeliversAlongLine) {
  ProtocolFixture f(line_topology(5, 200.0));
  AlarmRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 4, 512, 0, 0);
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
}

TEST(Alarm, MapRefreshesOnDisseminationPeriod) {
  AlarmConfig cfg;
  cfg.dissemination_period_s = 10.0;
  ProtocolFixture f(/*nodes=*/5, /*speed=*/10.0, /*horizon=*/100.0);
  AlarmRouter router(*f.network, *f.location, cfg);
  const util::Vec2 initial = router.map_position(2);
  f.simulator.run_until(5.0);
  EXPECT_EQ(router.map_position(2), initial);  // between rounds: stale
  EXPECT_NEAR(router.map_age(), 5.0, 1e-9);
  f.simulator.run_until(11.0);
  EXPECT_NE(router.map_position(2), initial);  // refreshed
  EXPECT_LE(router.map_age(), 1.0 + 1e-9);
}

TEST(Alarm, DisseminationHopsAccumulate) {
  AlarmConfig cfg;
  cfg.dissemination_period_s = 10.0;
  ProtocolFixture f(line_topology(5, 200.0));
  AlarmRouter router(*f.network, *f.location, cfg);
  const std::uint64_t initial = router.stats().control_hops;
  EXPECT_GT(initial, 0u);  // the t=0 round
  f.simulator.run_until(25.0);
  EXPECT_EQ(router.stats().control_hops, initial * 3);  // rounds at 0,10,20
}

TEST(Alarm, PerHopCryptoChargedToLatency) {
  // ALARM's delivery latency must exceed GPSR-style microsecond scales by
  // the per-hop public-key cost (Sec. 5.6 / Fig. 14).
  ProtocolFixture f(line_topology(4, 200.0));
  AlarmRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 3, 512, 0, 0);
  f.simulator.run_until(20.0);
  for (const auto& d : f.log.deliveries) {
    if (d.was_true_dest && d.kind == net::PacketKind::Data) {
      EXPECT_GT(d.latency, 3 * 0.25);  // >= 3 hops x public_encrypt
    }
  }
  EXPECT_GT(router.stats().crypto_time_total_s, 0.5);
}

TEST(Alarm, TtlBoundsRouting) {
  AlarmConfig cfg;
  cfg.max_hops = 2;
  ProtocolFixture f(line_topology(6, 190.0));
  AlarmRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 5, 512, 0, 0);
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
}

// --- AO2P ------------------------------------------------------------------

TEST(Ao2p, VirtualPositionBeyondDestinationOnSdLine) {
  ProtocolFixture f(line_topology(2, 100.0));
  Ao2pRouter router(*f.network, *f.location, {});
  const util::Vec2 s{100.0, 500.0}, d{500.0, 500.0};
  const util::Vec2 v = router.virtual_position(s, d);
  EXPECT_DOUBLE_EQ(v.y, 500.0);
  EXPECT_DOUBLE_EQ(v.x, 700.0);  // 200 m beyond D
  // Collinearity and ordering: S --- D --- V.
  EXPECT_GT(util::distance(s, v), util::distance(s, d));
}

TEST(Ao2p, VirtualPositionClampedToField) {
  ProtocolFixture f(line_topology(2, 100.0));
  Ao2pRouter router(*f.network, *f.location, {});
  const util::Vec2 v =
      router.virtual_position({100.0, 500.0}, {950.0, 500.0});
  EXPECT_LE(v.x, 1000.0);
}

TEST(Ao2p, DegenerateSameSourceDestIsDest) {
  ProtocolFixture f(line_topology(2, 100.0));
  Ao2pRouter router(*f.network, *f.location, {});
  const util::Vec2 p{250.0, 250.0};
  EXPECT_EQ(router.virtual_position(p, p), p);
}

TEST(Ao2p, DeliversViaEnRoutePickup) {
  // D sits on the S->virtual line and is picked up before the packet
  // reaches the virtual position.
  ProtocolFixture f(line_topology(5, 200.0));
  Ao2pRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 3, 512, 0, 0);  // D is node 3; line continues past it
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
}

TEST(Ao2p, ContentionPhaseAddsPerHopDelay) {
  Ao2pConfig slow, fast;
  slow.contention_phase_s = 0.050;
  fast.contention_phase_s = 0.001;
  double latency_slow = 0.0, latency_fast = 0.0;
  for (const bool use_slow : {true, false}) {
    ProtocolFixture f(line_topology(4, 200.0));
    Ao2pRouter router(*f.network, *f.location, use_slow ? slow : fast);
    f.warm_up();
    router.send(0, 3, 512, 0, 0);
    f.simulator.run_until(20.0);
    for (const auto& d : f.log.deliveries) {
      if (d.was_true_dest && d.kind == net::PacketKind::Data) {
        (use_slow ? latency_slow : latency_fast) = d.latency;
      }
    }
  }
  EXPECT_GT(latency_slow, latency_fast + 3 * 0.045);
}

TEST(Ao2p, CryptoAccountingGrowsWithHops) {
  ProtocolFixture f(line_topology(5, 200.0));
  Ao2pRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 4, 512, 0, 0);
  f.simulator.run_until(20.0);
  // 4 hops x (encrypt + verify).
  EXPECT_NEAR(router.stats().crypto_time_total_s, 4 * 0.27, 0.05);
}

}  // namespace
}  // namespace alert::routing
