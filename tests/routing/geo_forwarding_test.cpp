#include "routing/geo_forwarding.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace alert::routing {
namespace {

net::Node make_node() {
  util::Rng rng(1);
  return net::Node(0, 0, crypto::generate_keypair(rng));
}

void add_neighbor(net::Node& n, net::Pseudonym p, util::Vec2 pos) {
  n.observe_neighbor({p, pos, {}, 0.0}, 0.0);
}

TEST(Greedy, PicksNeighborClosestToTarget) {
  net::Node n = make_node();
  add_neighbor(n, 1, {100.0, 0.0});
  add_neighbor(n, 2, {200.0, 0.0});
  add_neighbor(n, 3, {150.0, 10.0});
  const auto* next = greedy_next_hop(n, {0.0, 0.0}, {300.0, 0.0});
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->pseudonym, 2u);
}

TEST(Greedy, RequiresStrictProgress) {
  net::Node n = make_node();
  add_neighbor(n, 1, {-50.0, 0.0});   // behind us
  add_neighbor(n, 2, {0.0, 120.0});   // sideways, farther from target
  EXPECT_EQ(greedy_next_hop(n, {0.0, 0.0}, {100.0, 0.0}), nullptr);
}

TEST(Greedy, EmptyNeighborTableIsLocalMax) {
  net::Node n = make_node();
  EXPECT_EQ(greedy_next_hop(n, {0.0, 0.0}, {1.0, 1.0}), nullptr);
}

TEST(Greedy, NeighborAtTargetWins) {
  net::Node n = make_node();
  add_neighbor(n, 1, {99.0, 0.0});
  add_neighbor(n, 2, {100.0, 0.0});
  const auto* next = greedy_next_hop(n, {0.0, 0.0}, {100.0, 0.0});
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->pseudonym, 2u);
}

TEST(Gabriel, KeepsDirectEdgesWithoutWitness) {
  net::Node n = make_node();
  add_neighbor(n, 1, {100.0, 0.0});
  add_neighbor(n, 2, {0.0, 100.0});
  const auto planar = gabriel_neighbors(n, {0.0, 0.0});
  EXPECT_EQ(planar.size(), 2u);
}

TEST(Gabriel, RemovesEdgeWithWitnessInsideDiameterCircle) {
  net::Node n = make_node();
  add_neighbor(n, 1, {100.0, 0.0});   // far neighbour
  add_neighbor(n, 2, {50.0, 10.0});   // witness inside circle(self, 1)
  const auto planar = gabriel_neighbors(n, {0.0, 0.0});
  ASSERT_EQ(planar.size(), 1u);
  EXPECT_EQ(planar[0]->pseudonym, 2u);
}

TEST(Gabriel, CollinearChainKeepsOnlyNearest) {
  net::Node n = make_node();
  add_neighbor(n, 1, {50.0, 0.0});
  add_neighbor(n, 2, {100.0, 0.0});
  add_neighbor(n, 3, {150.0, 0.0});
  const auto planar = gabriel_neighbors(n, {0.0, 0.0});
  ASSERT_EQ(planar.size(), 1u);
  EXPECT_EQ(planar[0]->pseudonym, 1u);
}

TEST(Perimeter, RightHandRulePicksFirstCcwEdge) {
  net::Node n = make_node();
  add_neighbor(n, 1, {100.0, 0.0});    // east
  add_neighbor(n, 2, {0.0, 100.0});    // north
  add_neighbor(n, 3, {-100.0, 0.0});   // west
  // Arriving from the south: the first edge counterclockwise from south
  // is east.
  const auto* next = perimeter_next_hop(n, {0.0, 0.0}, {0.0, -100.0});
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->pseudonym, 1u);
}

TEST(Perimeter, SweepsPastReferenceDirection) {
  net::Node n = make_node();
  add_neighbor(n, 1, {0.0, 100.0});   // north only
  const auto* next = perimeter_next_hop(n, {0.0, 0.0}, {100.0, 0.0});
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->pseudonym, 1u);
}

TEST(Perimeter, NoNeighborsReturnsNull) {
  net::Node n = make_node();
  EXPECT_EQ(perimeter_next_hop(n, {0.0, 0.0}, {1.0, 0.0}), nullptr);
}

TEST(Perimeter, BackEdgeIsLastResort) {
  net::Node n = make_node();
  add_neighbor(n, 1, {100.0, 0.0});  // only the node we came from
  const auto* next = perimeter_next_hop(n, {0.0, 0.0}, {100.0, 0.0});
  // The only edge is the reverse edge; the sweep wraps all the way around
  // and returns it (delta = 2*pi).
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->pseudonym, 1u);
}

}  // namespace
}  // namespace alert::routing
