#include "routing/zone.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace alert::routing {
namespace {

using util::Axis;
using util::Rect;
using util::Vec2;

TEST(Zone, PartitionsForAnonymityFormula) {
  // H = log2(rho G / k) = log2(N / k), Sec. 2.4.
  EXPECT_EQ(partitions_for_anonymity(200, 6.25), 5);
  EXPECT_EQ(partitions_for_anonymity(256, 16), 4);
  EXPECT_EQ(partitions_for_anonymity(100, 50), 1);
  EXPECT_EQ(partitions_for_anonymity(10, 100), 1);  // clamped
}

TEST(Zone, ExpectedZonePopulation) {
  EXPECT_DOUBLE_EQ(expected_zone_population(200, 5), 6.25);
  EXPECT_DOUBLE_EQ(expected_zone_population(256, 4), 16.0);
}

TEST(Zone, PaperWorkedExample) {
  // Sec. 2.4: network of size G=8 with positions (0,0) and (4,2), H=3,
  // destination at (0.5, 0.8) -> destination zone (0,0)-(1,1), size 1.
  const Rect field{0.0, 0.0, 4.0, 2.0};
  const Rect zd = destination_zone(field, {0.5, 0.8}, 3);
  EXPECT_EQ(zd, Rect(0.0, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(zd.area(), 1.0);
  EXPECT_DOUBLE_EQ(field.area() / std::exp2(3), 1.0);
}

TEST(Zone, DestinationZoneAlwaysContainsDestination) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Vec2 d = rng.point_in(field);
    for (int H = 1; H <= 8; ++H) {
      EXPECT_TRUE(destination_zone(field, d, H).contains(d));
    }
  }
}

TEST(Zone, DestinationZoneSizeIsGOver2H) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  for (int H = 0; H <= 10; ++H) {
    const Rect zd = destination_zone(field, {123.0, 456.0}, H);
    EXPECT_NEAR(zd.area(), field.area() / std::exp2(H), 1e-6);
  }
}

TEST(Zone, SideLengthsMatchEquations1And2) {
  // Vertical-first partitioning: width halves on odd steps, height on even.
  const Rect field{0.0, 0.0, 1000.0, 800.0};
  const Rect z5 = destination_zone(field, {1.0, 1.0}, 5);
  EXPECT_DOUBLE_EQ(z5.width(), 1000.0 / 8.0);   // ceil(5/2)=3 halvings
  EXPECT_DOUBLE_EQ(z5.height(), 800.0 / 4.0);   // floor(5/2)=2 halvings
}

TEST(Zone, HorizontalFirstSwapsAxes) {
  const Rect field{0.0, 0.0, 1000.0, 800.0};
  const Rect z = destination_zone(field, {1.0, 1.0}, 3, Axis::Horizontal);
  EXPECT_DOUBLE_EQ(z.height(), 800.0 / 4.0);
  EXPECT_DOUBLE_EQ(z.width(), 1000.0 / 2.0);
}

TEST(Zone, ZeroPartitionsIsWholeField) {
  const Rect field{0.0, 0.0, 10.0, 10.0};
  EXPECT_EQ(destination_zone(field, {3.0, 3.0}, 0), field);
}

TEST(Partition, ReturnsNulloptWhenSelfInsideDestZone) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  const Rect zd = destination_zone(field, {100.0, 100.0}, 4);
  const Vec2 self = zd.center();
  EXPECT_FALSE(partition_until_separated(field, self, zd, Axis::Vertical, 10)
                   .has_value());
}

TEST(Partition, SeparatesDistantEndpointsInOneSplit) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  const Rect zd = destination_zone(field, {900.0, 900.0}, 5);
  const auto step = partition_until_separated(field, {50.0, 50.0}, zd,
                                              Axis::Vertical, 5);
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->splits_performed, 1);
  EXPECT_TRUE(step->own_half.contains(Vec2{50.0, 50.0}));
  EXPECT_TRUE(step->other_half.contains(zd));
}

TEST(Partition, NearbyEndpointsNeedMoreSplits) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  // Destination and self in the same quadrant: several splits needed.
  const Rect zd = destination_zone(field, {100.0, 100.0}, 6);
  const auto step = partition_until_separated(field, {300.0, 300.0}, zd,
                                              Axis::Vertical, 6);
  ASSERT_TRUE(step.has_value());
  EXPECT_GT(step->splits_performed, 1);
}

TEST(Partition, RespectsSplitBudget) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  const Rect zd = destination_zone(field, {100.0, 100.0}, 8);
  // Self very close to the zone: separation needs many splits; budget 1
  // cannot do it.
  const Vec2 self{zd.max.x + 1.0, zd.max.y + 1.0};
  EXPECT_FALSE(
      partition_until_separated(field, self, zd, Axis::Vertical, 1)
          .has_value());
}

TEST(Partition, AlternatesAxes) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  const Rect zd = destination_zone(field, {900.0, 100.0}, 6);
  const auto step = partition_until_separated(field, {850.0, 80.0}, zd,
                                              Axis::Vertical, 6);
  ASSERT_TRUE(step.has_value());
  // last_axis parity follows the starting axis and split count.
  const Axis expected = (step->splits_performed % 2 == 1)
                            ? Axis::Vertical
                            : Axis::Horizontal;
  EXPECT_EQ(step->last_axis, expected);
}

TEST(Partition, TemporaryDestinationInOtherHalf) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  const Rect zd = destination_zone(field, {900.0, 900.0}, 5);
  const auto step = partition_until_separated(field, {50.0, 50.0}, zd,
                                              Axis::Vertical, 5);
  ASSERT_TRUE(step.has_value());
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec2 td = choose_temporary_destination(*step, rng);
    EXPECT_TRUE(step->other_half.contains(td));
    EXPECT_FALSE(step->own_half.contains(td) &&
                 !step->other_half.contains(td));
  }
}

/// Property sweep over random S/D placements: the partition step always
/// (a) keeps self in own_half, (b) puts some of Z_D in other_half, and
/// (c) moving to the other half reduces the distance to the zone.
class PartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartitionSweep, InvariantsHoldForRandomPlacements) {
  const Rect field{0.0, 0.0, 1000.0, 1000.0};
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  constexpr int kH = 5;
  for (int i = 0; i < 100; ++i) {
    const Vec2 d = rng.point_in(field);
    const Rect zd = destination_zone(field, d, kH);
    Vec2 self = rng.point_in(field);
    if (zd.contains(self)) continue;
    const Axis axis = rng.bernoulli(0.5) ? Axis::Horizontal : Axis::Vertical;
    const auto step = partition_until_separated(field, self, zd, axis, kH);
    if (!step) continue;  // budget exhausted (rare, misaligned grids)
    EXPECT_TRUE(step->own_half.contains(self));
    EXPECT_TRUE(step->other_half.intersects(zd));
    EXPECT_FALSE(step->own_half.intersects(step->other_half) &&
                 step->own_half == step->other_half);
    EXPECT_LE(step->splits_performed, kH);
    EXPECT_GE(step->splits_performed, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace alert::routing
