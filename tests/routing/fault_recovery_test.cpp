#include "routing/gpsr.hpp"

#include <gtest/gtest.h>

#include <set>

#include "protocol_fixture.hpp"
#include "routing/alert_router.hpp"

namespace alert::routing {
namespace {

using testing::line_topology;
using testing::ProtocolFixture;

/// Diamond: src can reach dest only through relay A (greedy-preferred,
/// slightly closer to dest) or relay B.
std::vector<util::Vec2> diamond() {
  return {{100.0, 500.0},   // 0: src
          {310.0, 520.0},   // 1: relay A — greedy pick
          {290.0, 470.0},   // 2: relay B — fallback
          {480.0, 500.0}};  // 3: dest
}

net::NetworkConfig arq_config() {
  net::NetworkConfig cfg;
  cfg.mac.arq.enabled = true;
  cfg.mac.arq.retry_limit = 3;
  return cfg;
}

TEST(FaultRecovery, GpsrSalvagesAroundDeadNextHop) {
  ProtocolFixture f(diamond(), arq_config());
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  // Crash the preferred relay after the hello exchange: the sender still
  // lists it as a neighbour, so the first forward walks into the failure.
  f.network->set_node_alive(1, false);
  router.send(0, 3, 512, /*flow=*/0, /*seq=*/0);
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
  EXPECT_EQ(router.stats().data_delivered, 1u);
  EXPECT_GE(router.stats().send_failures, 1u);
}

TEST(FaultRecovery, GpsrClosesLedgerWhenNoAlternateExists) {
  ProtocolFixture f(line_topology(3, 200.0), arq_config());
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  f.network->set_node_alive(1, false);  // the only relay on the line
  router.send(0, 2, 512, 0, 0);
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
  EXPECT_GE(router.stats().send_failures, 1u);
  EXPECT_EQ(router.stats().data_delivered, 0u);
  // Graceful accounting: the salvage re-forward finds no candidate and the
  // router's own drop path closes the ledger entry — it must not be left
  // to age out as Expired.
  const net::PacketLedger::Totals totals = f.network->ledger().totals();
  EXPECT_EQ(totals.delivered, 0u);
  EXPECT_EQ(totals.dropped + totals.retry_exhausted, totals.opened);
  EXPECT_GT(totals.opened, 0u);
  EXPECT_EQ(router.stats().data_dropped, 1u);
}

TEST(FaultRecovery, WithoutArqThereIsNoFailureFeedback) {
  ProtocolFixture f(diamond());  // default config: no ARQ
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  f.network->set_node_alive(1, false);
  router.send(0, 3, 512, 0, 0);
  f.simulator.run_until(20.0);
  // The frame dies at the dead relay and nobody is told: the legacy
  // ideal-channel contract (packet ages out as Expired).
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
  EXPECT_EQ(router.stats().send_failures, 0u);
}

TEST(FaultRecovery, AlertSalvagesAroundDeadNextHop) {
  // Dense random deployment so ALERT's zone partitioning has real
  // candidates; crash a batch of nodes mid-run and require traffic to keep
  // flowing with at least one link-layer save.
  ProtocolFixture f(/*nodes=*/60, /*speed=*/1.0, /*horizon=*/300.0,
                    {0.0, 0.0, 500.0, 500.0}, arq_config());
  AlertRouter router(*f.network, *f.location, {});
  f.warm_up();
  for (net::NodeId id = 40; id < 50; ++id) {
    f.network->set_node_alive(id, false);
  }
  for (std::uint32_t seq = 0; seq < 20; ++seq) {
    router.send(0, 30, 512, 0, seq);
  }
  f.simulator.run_until(100.0);
  EXPECT_GT(f.log.count_at_true_dest(0), 0u);
}

}  // namespace
}  // namespace alert::routing
