/// Tests for ALERT's sparse-topology behaviour: the GPSR fallback leg
/// (greedy + perimeter toward the destination zone) that takes over when
/// random TD selection cannot make progress — the regime that dominates
/// group-mobility scenarios (Fig. 17).

#include <gtest/gtest.h>

#include "protocol_fixture.hpp"
#include "routing/alert_router.hpp"

namespace alert::routing {
namespace {

using testing::ProtocolFixture;

AlertConfig sparse_config() {
  AlertConfig cfg;
  cfg.partitions_h = 3;
  cfg.send_confirmation = false;
  cfg.use_nak = false;
  cfg.notify_and_go = false;
  return cfg;
}

TEST(AlertFallback, DeliversAlongSparseLine) {
  // A bare line: almost every TD draw lands off-line, so routing leans on
  // the fallback leg the whole way.
  std::vector<util::Vec2> pos;
  for (int i = 0; i < 6; ++i) {
    pos.push_back({50.0 + 180.0 * i, 500.0});
  }
  ProtocolFixture f(pos, 250.0);
  AlertRouter router(*f.network, *f.location, sparse_config());
  f.warm_up();
  for (std::uint32_t s = 0; s < 5; ++s) router.send(0, 5, 512, 0, s);
  f.simulator.run_until(60.0);
  EXPECT_EQ(router.stats().data_delivered, 5u);
}

TEST(AlertFallback, CrossesVoidViaPerimeter) {
  // Two clusters joined by a detour chain around a void; greedy toward
  // the zone stalls at the left cluster edge and perimeter recovery must
  // walk the face.
  std::vector<util::Vec2> pos{
      {100.0, 500.0}, {220.0, 500.0},          // source cluster
      {300.0, 640.0}, {460.0, 700.0},          // detour arc (upward)
      {620.0, 640.0},                          // arc down
      {700.0, 500.0}, {820.0, 500.0},          // destination cluster
  };
  ProtocolFixture f(pos, 210.0);
  AlertRouter router(*f.network, *f.location, sparse_config());
  f.warm_up();
  for (std::uint32_t s = 0; s < 5; ++s) router.send(0, 6, 512, 0, s);
  f.simulator.run_until(60.0);
  EXPECT_GE(router.stats().data_delivered, 4u);
}

TEST(AlertFallback, UnreachableZoneIsDroppedNotLooped) {
  // Destination in an isolated island: the fallback face walk must
  // terminate (drop) instead of ping-ponging hops away.
  std::vector<util::Vec2> pos{
      {100.0, 500.0}, {250.0, 500.0}, {400.0, 500.0},
      {900.0, 900.0},  // isolated destination
  };
  ProtocolFixture f(pos, 200.0);
  AlertRouter router(*f.network, *f.location, sparse_config());
  f.warm_up();
  router.send(0, 3, 512, 0, 0);
  f.simulator.run_until(30.0);
  EXPECT_EQ(router.stats().data_delivered, 0u);
  EXPECT_GE(router.stats().data_dropped, 1u);
  // The face walk must not have consumed anything close to the hop budget
  // bouncing between two nodes.
  EXPECT_LT(router.stats().forwards, 20u);
}

TEST(AlertFallback, GroupMobilityScenarioKeepsReasonableRfCount) {
  // Regression guard for the RF explosion this fallback fixed: under
  // clustered topologies the RF count per packet must stay near the
  // random-waypoint regime rather than blowing up with retries.
  ProtocolFixture f(/*nodes=*/120, /*speed=*/2.0, /*horizon=*/60.0);
  AlertConfig cfg = sparse_config();
  cfg.partitions_h = 5;
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  util::Rng rng(11);
  for (std::uint32_t s = 0; s < 30; ++s) {
    const auto src = static_cast<net::NodeId>(rng.below(120));
    auto dst = src;
    while (dst == src) dst = static_cast<net::NodeId>(rng.below(120));
    router.send(src, dst, 512, s, 0);
  }
  f.simulator.run_until(60.0);
  const double rf_per_packet =
      static_cast<double>(router.stats().random_forwarders) /
      static_cast<double>(router.stats().data_sent);
  EXPECT_LT(rf_per_packet, 6.0);
}

}  // namespace
}  // namespace alert::routing
