#pragma once

/// Shared fixture for protocol integration tests: a network on a fixed or
/// mobile topology with location service, pseudonyms, and a delivery-
/// recording listener.

#include <memory>
#include <vector>

#include "loc/location_service.hpp"
#include "loc/pseudonym.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"  // alert-lint: allow(module-layering) fixture schedules protocol events on a live simulator

namespace alert::routing::testing {

class DeliveryLog final : public net::TraceListener {
 public:
  struct Delivery {
    net::NodeId receiver;
    std::uint64_t uid;
    std::uint32_t flow, seq;
    int hops;
    double latency;
    net::PacketKind kind;
    bool was_true_dest;
  };

  void on_deliver(const net::Node& receiver, const net::Packet& pkt,
                  sim::Time when) override {
    deliveries.push_back({receiver.id(), pkt.uid, pkt.flow, pkt.seq,
                          pkt.hop_count, when - pkt.app_send_time, pkt.kind,
                          receiver.id() == pkt.true_dest});
  }

  [[nodiscard]] std::size_t count_at_true_dest(std::uint32_t flow) const {
    std::size_t n = 0;
    std::set<std::uint64_t> uids;
    for (const auto& d : deliveries) {
      if (d.was_true_dest && d.flow == flow &&
          d.kind == net::PacketKind::Data && uids.insert(d.uid).second) {
        ++n;
      }
    }
    return n;
  }

  std::vector<Delivery> deliveries;
};

struct ProtocolFixture {
  /// Static topology from explicit positions.
  explicit ProtocolFixture(std::vector<util::Vec2> positions,
                           double range = 250.0, double horizon = 300.0,
                           util::Rect field = {0.0, 0.0, 1000.0, 1000.0}) {
    net::NetworkConfig cfg;
    cfg.field = field;
    cfg.node_count = positions.size();
    cfg.radio_range_m = range;
    build(cfg, std::make_unique<net::StaticPlacement>(std::move(positions)),
          horizon);
  }

  /// Static topology with caller-tweaked link-layer knobs (ARQ, fault
  /// plan); field/node_count/radio_range are still filled in here.
  ProtocolFixture(std::vector<util::Vec2> positions, net::NetworkConfig cfg,
                  double range = 250.0, double horizon = 300.0,
                  util::Rect field = {0.0, 0.0, 1000.0, 1000.0}) {
    cfg.field = field;
    cfg.node_count = positions.size();
    cfg.radio_range_m = range;
    build(cfg, std::make_unique<net::StaticPlacement>(std::move(positions)),
          horizon);
  }

  /// Mobile topology.
  ProtocolFixture(std::size_t nodes, double speed, double horizon,
                  util::Rect field = {0.0, 0.0, 1000.0, 1000.0},
                  net::NetworkConfig cfg = {}) {
    cfg.field = field;
    cfg.node_count = nodes;
    build(cfg, std::make_unique<net::RandomWaypoint>(field, speed), horizon);
  }

  void build(const net::NetworkConfig& cfg,
             std::unique_ptr<net::MobilityModel> mobility, double horizon) {
    network = std::make_unique<net::Network>(simulator, cfg,
                                             std::move(mobility),
                                             util::Rng(1234), horizon);
    pseudonyms = std::make_unique<loc::PseudonymManager>(
        loc::PseudonymPolicy{}, util::Rng(5678));
    network->set_pseudonym_provider(pseudonyms.get());
    location = std::make_unique<loc::LocationService>(
        *network, loc::LocationServiceConfig{}, horizon);
    network->add_listener(&log);
  }

  /// Run hellos long enough for neighbour tables to fill.
  void warm_up(double seconds = 3.0) { simulator.run_until(seconds); }

  sim::Simulator simulator;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<loc::PseudonymManager> pseudonyms;
  std::unique_ptr<loc::LocationService> location;
  DeliveryLog log;
};

/// A line of nodes spaced `gap` apart starting at x0.
inline std::vector<util::Vec2> line_topology(std::size_t count, double gap,
                                             double x0 = 50.0,
                                             double y = 500.0) {
  std::vector<util::Vec2> pos;
  for (std::size_t i = 0; i < count; ++i) {
    pos.push_back({x0 + gap * static_cast<double>(i), y});
  }
  return pos;
}

}  // namespace alert::routing::testing
