/// Failure-injection tests: the protocols must degrade gracefully, never
/// crash, when infrastructure fails — all location-service replicas down,
/// handler-less nodes, empty networks of one node.

#include <gtest/gtest.h>

#include "protocol_fixture.hpp"
#include "routing/alert_router.hpp"
#include "routing/ao2p.hpp"
#include "routing/gpsr.hpp"
#include "routing/zap.hpp"

namespace alert::routing {
namespace {

using testing::line_topology;
using testing::ProtocolFixture;

TEST(FailureInjection, AlertSendWithDeadLocationServiceIsNoop) {
  ProtocolFixture f(line_topology(4, 200.0));
  for (std::size_t s = 0; s < f.location->server_count(); ++s) {
    f.location->fail_server(s);
  }
  AlertRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 3, 512, 0, 0);  // must not crash or emit anything
  f.simulator.run_until(10.0);
  EXPECT_EQ(router.stats().data_sent, 0u);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
}

TEST(FailureInjection, AlertRecoversWhenReplicaRestored) {
  ProtocolFixture f(line_topology(4, 200.0));
  for (std::size_t s = 0; s < f.location->server_count(); ++s) {
    f.location->fail_server(s);
  }
  AlertConfig cfg;
  cfg.partitions_h = 3;
  cfg.notify_and_go = false;
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 3, 512, 0, 0);
  EXPECT_EQ(router.stats().data_sent, 0u);
  f.location->restore_server(0);  // one replica suffices (Sec. 2.2)
  router.send(0, 3, 512, 0, 1);
  f.simulator.run_until(20.0);
  EXPECT_EQ(router.stats().data_sent, 1u);
  EXPECT_EQ(router.stats().data_delivered, 1u);
}

TEST(FailureInjection, GpsrSendWithDeadLocationServiceIsNoop) {
  ProtocolFixture f(line_topology(3, 200.0));
  for (std::size_t s = 0; s < f.location->server_count(); ++s) {
    f.location->fail_server(s);
  }
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 2, 512, 0, 0);
  f.simulator.run_until(5.0);
  EXPECT_EQ(router.stats().data_sent, 0u);
}

TEST(FailureInjection, Ao2pAndZapSurviveDeadService) {
  ProtocolFixture f(line_topology(3, 200.0));
  for (std::size_t s = 0; s < f.location->server_count(); ++s) {
    f.location->fail_server(s);
  }
  Ao2pRouter ao2p(*f.network, *f.location, {});
  f.warm_up();
  ao2p.send(0, 2, 512, 0, 0);
  EXPECT_EQ(ao2p.stats().data_sent, 0u);

  ProtocolFixture g(line_topology(3, 200.0));
  for (std::size_t s = 0; s < g.location->server_count(); ++s) {
    g.location->fail_server(s);
  }
  ZapRouter zap(*g.network, *g.location, {});
  g.warm_up();
  zap.send(0, 2, 512, 0, 0);
  EXPECT_EQ(zap.stats().data_sent, 0u);
}

TEST(FailureInjection, SingleNodeNetworkSendsToNowhere) {
  ProtocolFixture f(std::vector<util::Vec2>{{500.0, 500.0}, {900.0, 100.0}});
  AlertConfig cfg;
  cfg.notify_and_go = false;
  cfg.send_confirmation = false;
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 1, 512, 0, 0);  // destination unreachable by radio
  f.simulator.run_until(10.0);
  EXPECT_EQ(router.stats().data_delivered, 0u);
  EXPECT_GE(router.stats().data_dropped, 1u);
}

TEST(FailureInjection, PacketToHandlerlessNodeDoesNotCrash) {
  // Raw network with no protocol attached to the receiver.
  sim::Simulator simulator;
  net::NetworkConfig cfg;
  cfg.node_count = 2;
  net::Network network(
      simulator, cfg,
      std::make_unique<net::StaticPlacement>(
          std::vector<util::Vec2>{{0.0, 0.0}, {100.0, 0.0}}),
      util::Rng(1), 10.0);
  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.size_bytes = 64;
  network.unicast(network.node(0), network.node(1).pseudonym(), pkt);
  simulator.run_until(5.0);
  SUCCEED();
}

}  // namespace
}  // namespace alert::routing
