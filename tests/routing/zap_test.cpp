#include "routing/zap.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/experiment.hpp"  // alert-lint: allow(module-layering) ZAP coverage is asserted through a full experiment run
#include "protocol_fixture.hpp"

namespace alert::routing {
namespace {

using testing::ProtocolFixture;

std::vector<util::Vec2> grid(std::size_t side = 7, double gap = 140.0) {
  std::vector<util::Vec2> pos;
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      pos.push_back({40.0 + gap * static_cast<double>(x),
                     40.0 + gap * static_cast<double>(y)});
    }
  }
  return pos;
}

TEST(Zap, CloakedZoneContainsDestination) {
  ProtocolFixture f(grid());
  ZapRouter router(*f.network, *f.location, {});
  util::Rng rng(9);
  const util::Rect& field = f.network->config().field;
  for (int i = 0; i < 200; ++i) {
    const util::Vec2 d = rng.point_in(field);
    const util::Rect zone = router.cloak(d, rng);
    EXPECT_TRUE(zone.contains(d));
    EXPECT_NEAR(zone.width(), 250.0, 1e-9);
    EXPECT_NEAR(zone.height(), 250.0, 1e-9);
    EXPECT_TRUE(field.contains(zone));
  }
}

TEST(Zap, CloakOffsetIsRandomized) {
  ProtocolFixture f(grid());
  ZapRouter router(*f.network, *f.location, {});
  util::Rng rng(10);
  const util::Vec2 d{500.0, 500.0};
  std::set<double> min_xs;
  for (int i = 0; i < 20; ++i) min_xs.insert(router.cloak(d, rng).min.x);
  EXPECT_GT(min_xs.size(), 10u);  // zone position varies per packet
}

TEST(Zap, DeliversAcrossGrid) {
  ProtocolFixture f(grid());
  ZapRouter router(*f.network, *f.location, {});
  f.warm_up();
  for (std::uint32_t s = 0; s < 5; ++s) router.send(0, 48, 512, 0, s);
  f.simulator.run_until(30.0);
  EXPECT_EQ(router.stats().data_delivered, 5u);
}

TEST(Zap, ZoneFloodReachesMultipleMembers) {
  ProtocolFixture f(grid());
  ZapRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 48, 512, 0, 0);
  f.simulator.run_until(10.0);
  std::set<net::NodeId> receivers;
  for (const auto& d : f.log.deliveries) {
    if (d.kind == net::PacketKind::Data) receivers.insert(d.receiver);
  }
  EXPECT_GE(receivers.size(), 4u);  // relays + zone members
}

TEST(Zap, FloodIsDuplicateSuppressed) {
  ProtocolFixture f(grid());
  ZapRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 48, 512, 0, 0);
  f.simulator.run_until(10.0);
  // A 250 m zone over the 140 m grid holds at most ~9 nodes; without
  // duplicate suppression the scoped flood would echo forever.
  EXPECT_LE(router.stats().broadcasts, 12u);
}

TEST(Zap, RouteToStaticDestinationRepeats) {
  // ZAP provides no route anonymity: consecutive packets traverse heavily
  // overlapping relay sets (only the zone offset varies).
  ProtocolFixture f(grid());
  ZapRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 48, 512, 0, 0);
  router.send(0, 48, 512, 0, 1);
  f.simulator.run_until(20.0);
  std::map<std::uint32_t, std::set<net::NodeId>> unicast_path;
  for (const auto& d : f.log.deliveries) {
    if (d.kind == net::PacketKind::Data) unicast_path[d.seq].insert(d.receiver);
  }
  std::vector<net::NodeId> common;
  std::set_intersection(unicast_path[0].begin(), unicast_path[0].end(),
                        unicast_path[1].begin(), unicast_path[1].end(),
                        std::back_inserter(common));
  EXPECT_GE(common.size(), 2u);
}

TEST(Zap, ExperimentHarnessIntegration) {
  core::ScenarioConfig cfg;
  cfg.protocol = core::ProtocolKind::Zap;
  cfg.node_count = 100;
  cfg.duration_s = 20.0;
  cfg.flow_count = 3;
  const core::RunResult r = core::run_once(cfg, 0);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.delivery_rate(), 0.5);
}

}  // namespace
}  // namespace alert::routing
