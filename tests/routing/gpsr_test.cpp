#include "routing/gpsr.hpp"

#include <gtest/gtest.h>

#include <set>

#include "protocol_fixture.hpp"

namespace alert::routing {
namespace {

using testing::line_topology;
using testing::ProtocolFixture;

TEST(Gpsr, DeliversAlongLineTopology) {
  ProtocolFixture f(line_topology(5, 200.0));
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 4, 512, /*flow=*/0, /*seq=*/0);
  f.simulator.run_until(10.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
  EXPECT_EQ(router.stats().data_delivered, 1u);
  EXPECT_EQ(router.stats().data_sent, 1u);
}

TEST(Gpsr, HopCountMatchesTopology) {
  ProtocolFixture f(line_topology(5, 200.0));
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 4, 512, 0, 0);
  f.simulator.run_until(10.0);
  for (const auto& d : f.log.deliveries) {
    if (d.was_true_dest && d.kind == net::PacketKind::Data) {
      EXPECT_EQ(d.hops, 4);  // 4 hops over the 5-node line
    }
  }
}

TEST(Gpsr, DirectNeighborIsOneHop) {
  ProtocolFixture f(line_topology(2, 150.0));
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 1, 512, 0, 0);
  f.simulator.run_until(5.0);
  ASSERT_EQ(f.log.count_at_true_dest(0), 1u);
  for (const auto& d : f.log.deliveries) {
    if (d.was_true_dest) {
      EXPECT_EQ(d.hops, 1);
    }
  }
}

TEST(Gpsr, TtlBoundsPathLength) {
  GpsrConfig cfg;
  cfg.max_hops = 2;
  ProtocolFixture f(line_topology(5, 200.0));
  GpsrRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 4, 512, 0, 0);  // needs 4 hops; TTL=2 kills it
  f.simulator.run_until(10.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
  EXPECT_EQ(router.stats().data_dropped, 1u);
}

TEST(Gpsr, PerimeterRoutesAroundVoid) {
  // A "C"-shaped void: greedy from the left tip stalls; perimeter walks
  // around the gap.
  std::vector<util::Vec2> pos{
      {100.0, 500.0},  // 0: source
      {250.0, 500.0},  // 1: greedy local max (void ahead)
      {250.0, 650.0},  // 2: detour up
      {400.0, 680.0},  // 3
      {550.0, 650.0},  // 4
      {600.0, 500.0},  // 5: destination
  };
  ProtocolFixture f(pos, /*range=*/200.0);
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 5, 512, 0, 0);
  f.simulator.run_until(10.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
}

TEST(Gpsr, PerimeterDisabledDropsAtVoid) {
  std::vector<util::Vec2> pos{
      {100.0, 500.0}, {250.0, 500.0}, {250.0, 650.0},
      {400.0, 680.0}, {550.0, 650.0}, {600.0, 500.0},
  };
  GpsrConfig cfg;
  cfg.use_perimeter = false;
  ProtocolFixture f(pos, 200.0);
  GpsrRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 5, 512, 0, 0);
  f.simulator.run_until(10.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
  EXPECT_GE(router.stats().data_dropped, 1u);
}

TEST(Gpsr, UnreachableDestinationNotDelivered) {
  // Destination isolated beyond radio range of everyone.
  std::vector<util::Vec2> pos{{100.0, 100.0}, {250.0, 100.0},
                              {900.0, 900.0}};
  ProtocolFixture f(pos, 200.0);
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 2, 512, 0, 0);
  f.simulator.run_until(10.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
}

TEST(Gpsr, MultiplePacketsAllDelivered) {
  ProtocolFixture f(line_topology(4, 200.0));
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  for (std::uint32_t s = 0; s < 10; ++s) router.send(0, 3, 512, 0, s);
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 10u);
}

TEST(Gpsr, RouteIsStableAcrossPackets) {
  // GPSR's weakness (Sec. 3.1): the same S-D pair uses the same path.
  ProtocolFixture f(line_topology(5, 200.0));
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 4, 512, 0, 0);
  router.send(0, 4, 512, 0, 1);
  f.simulator.run_until(20.0);
  std::set<net::NodeId> path0, path1;
  for (const auto& d : f.log.deliveries) {
    if (d.kind != net::PacketKind::Data) continue;
    (d.seq == 0 ? path0 : path1).insert(d.receiver);
  }
  EXPECT_EQ(path0, path1);
}

TEST(Gpsr, StatsCountForwards) {
  ProtocolFixture f(line_topology(5, 200.0));
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  router.send(0, 4, 512, 0, 0);
  f.simulator.run_until(10.0);
  EXPECT_EQ(router.stats().forwards, 4u);
}

}  // namespace
}  // namespace alert::routing
