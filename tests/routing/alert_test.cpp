#include "routing/alert_router.hpp"

#include <gtest/gtest.h>

#include <set>

#include "protocol_fixture.hpp"

namespace alert::routing {
namespace {

using testing::ProtocolFixture;

/// A dense static grid: every forwarding step has options, ALERT always
/// completes. 7x7 grid over 900x900 m with 150 m spacing, 250 m range.
std::vector<util::Vec2> grid_topology(std::size_t side = 7,
                                      double gap = 140.0) {
  std::vector<util::Vec2> pos;
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      pos.push_back({40.0 + gap * static_cast<double>(x),
                     40.0 + gap * static_cast<double>(y)});
    }
  }
  return pos;
}

AlertConfig quiet_config() {
  AlertConfig cfg;
  cfg.partitions_h = 4;
  cfg.send_confirmation = false;
  cfg.use_nak = false;
  cfg.notify_and_go = false;
  return cfg;
}

TEST(Alert, DeliversAcrossGrid) {
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  router.send(0, 48, 512, 0, 0);  // opposite corners
  f.simulator.run_until(20.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
  EXPECT_EQ(router.stats().data_delivered, 1u);
}

TEST(Alert, KAnonymityFromDerivedH) {
  AlertConfig cfg = quiet_config();
  cfg.k_anonymity = 6.0;
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, cfg);
  // H = log2(49 / 6) = 3.03 -> 3.
  EXPECT_EQ(router.effective_h(), 3);
}

TEST(Alert, ZoneBroadcastReachesMultipleReceivers) {
  // k-anonymity (Sec. 2.3): the final broadcast is heard by several nodes
  // in the destination zone, not only D.
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  router.send(0, 48, 512, 0, 0);
  f.simulator.run_until(20.0);
  std::set<net::NodeId> zone_receivers;
  for (const auto& d : f.log.deliveries) {
    if (d.kind == net::PacketKind::Data && d.flow == 0) {
      zone_receivers.insert(d.receiver);
    }
  }
  // Path relays + the k-anonymity set: strictly more receivers than a
  // unicast chain would produce.
  EXPECT_GE(zone_receivers.size(), 3u);
}

TEST(Alert, PayloadRecoveredIntactThroughEncryption) {
  // End-to-end: payload is XTEA-encrypted at S, travels, and D's recovery
  // is verified inside accept_at_destination (delivery only counts if the
  // plaintext pattern survives).
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  for (std::uint32_t s = 0; s < 5; ++s) router.send(3, 45, 512, 0, s);
  f.simulator.run_until(30.0);
  EXPECT_EQ(router.stats().data_delivered, 5u);
}

TEST(Alert, RandomForwardersAppearOnLongRoutes) {
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  for (std::uint32_t s = 0; s < 10; ++s) router.send(0, 48, 512, 0, s);
  f.simulator.run_until(60.0);
  EXPECT_GT(router.stats().random_forwarders, 0u);
  EXPECT_GT(router.stats().partitions, 0u);
  EXPECT_GT(router.distinct_rfs(), 1u);
}

TEST(Alert, RoutesVaryAcrossPackets) {
  // The core anonymity property (Sec. 3.1): consecutive packets of one
  // S-D pair traverse different relay sets.
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  for (std::uint32_t s = 0; s < 6; ++s) router.send(0, 48, 512, 0, s);
  f.simulator.run_until(60.0);
  std::map<std::uint32_t, std::set<net::NodeId>> paths;
  for (const auto& d : f.log.deliveries) {
    if (d.kind == net::PacketKind::Data) paths[d.seq].insert(d.receiver);
  }
  std::set<std::set<net::NodeId>> distinct;
  for (const auto& [seq, path] : paths) distinct.insert(path);
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Alert, SourceInDestZoneStillDelivers) {
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  router.send(0, 1, 512, 0, 0);  // adjacent nodes, same zone at H=4
  f.simulator.run_until(10.0);
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
}

TEST(Alert, NotifyAndGoEmitsCoverTraffic) {
  AlertConfig cfg = quiet_config();
  cfg.notify_and_go = true;
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(24, 48, 512, 0, 0);  // node 24 = grid centre, 8 neighbours
  f.simulator.run_until(10.0);
  EXPECT_GT(router.stats().cover_packets, 0u);
  // Cover packets must never be forwarded: every Cover delivery's hop
  // count stays 0.
  for (const auto& d : f.log.deliveries) {
    if (d.kind == net::PacketKind::Cover) {
      EXPECT_EQ(d.hops, 0);
    }
  }
  EXPECT_EQ(f.log.count_at_true_dest(0), 1u);
}

TEST(Alert, ConfirmationsFlowBackToSource) {
  AlertConfig cfg = quiet_config();
  cfg.send_confirmation = true;
  cfg.confirm_timeout_s = 5.0;
  cfg.max_retransmissions = 1;
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 48, 512, 0, 0);
  f.simulator.run_until(30.0);
  // Confirm delivered back at the source.
  bool confirm_at_source = false;
  for (const auto& d : f.log.deliveries) {
    if (d.kind == net::PacketKind::Confirm && d.receiver == 0) {
      confirm_at_source = true;
    }
  }
  EXPECT_TRUE(confirm_at_source);
  // Confirmed delivery means no retransmission fires.
  EXPECT_EQ(router.stats().retransmissions, 0u);
}

TEST(Alert, RetransmitsWhenConfirmationImpossible) {
  // Destination unreachable: confirmation never arrives, the source
  // retransmits up to the configured budget.
  AlertConfig cfg = quiet_config();
  cfg.send_confirmation = true;
  cfg.confirm_timeout_s = 2.0;
  cfg.max_retransmissions = 2;
  std::vector<util::Vec2> pos{{100.0, 100.0}, {250.0, 100.0},
                              {900.0, 900.0}};
  ProtocolFixture f(pos, 200.0);
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  router.send(0, 2, 512, 0, 0);
  f.simulator.run_until(30.0);
  EXPECT_EQ(router.stats().retransmissions, 2u);
  EXPECT_EQ(f.log.count_at_true_dest(0), 0u);
}

TEST(Alert, NakTriggersResendOfMissingSeq) {
  AlertConfig cfg = quiet_config();
  cfg.send_confirmation = true;   // pending state enables NAK resends
  cfg.use_nak = true;
  cfg.confirm_timeout_s = 50.0;   // long: only the NAK can trigger resend
  cfg.max_retransmissions = 1;
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  // Send seq 1 while seq 0 never existed at D: D NAKs seq 0. The source
  // has no pending seq 0 so nothing resends; now send seq 0 and then 2 —
  // no gap, no NAK.
  router.send(0, 48, 512, 0, 1);
  f.simulator.run_until(30.0);
  EXPECT_GE(router.stats().naks, 1u);
}

TEST(Alert, CountermeasureStillDeliversAllPackets) {
  AlertConfig cfg = quiet_config();
  cfg.intersection_countermeasure = true;
  cfg.countermeasure_m = 3;
  // Dense 10x10 grid so the destination zone holds several members.
  ProtocolFixture f(grid_topology(10, 95.0));
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  constexpr std::uint32_t kPackets = 8;
  for (std::uint32_t s = 0; s < kPackets; ++s) {
    router.send(0, 99, 512, 0, s);  // opposite corners of the 10x10 grid
  }
  f.simulator.run_until(120.0);
  // The final packet may stay held by the m-set (no successor arrives);
  // every earlier packet must reach D, via first or second step.
  EXPECT_GE(router.stats().data_delivered, kPackets - 1);
}

TEST(Alert, CountermeasureProducesSecondStepBroadcasts) {
  AlertConfig cfg = quiet_config();
  cfg.intersection_countermeasure = true;
  ProtocolFixture f(grid_topology(10, 95.0));
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  for (std::uint32_t s = 0; s < 5; ++s) router.send(0, 99, 512, 0, s);
  f.simulator.run_until(60.0);
  // Broadcast count exceeds packet count: first steps + hold-release
  // second steps.
  EXPECT_GT(router.stats().broadcasts, 5u);
}

TEST(Alert, HigherHMeansMorePartitions) {
  double partitions_h3 = 0.0, partitions_h6 = 0.0;
  for (const int h : {3, 6}) {
    AlertConfig cfg = quiet_config();
    cfg.partitions_h = h;
    ProtocolFixture f(grid_topology());
    AlertRouter router(*f.network, *f.location, cfg);
    f.warm_up();
    for (std::uint32_t s = 0; s < 10; ++s) router.send(0, 48, 512, 0, s);
    f.simulator.run_until(60.0);
    const double per_packet =
        static_cast<double>(router.stats().partitions) /
        static_cast<double>(router.stats().data_sent);
    (h == 3 ? partitions_h3 : partitions_h6) = per_packet;
  }
  EXPECT_GT(partitions_h6, partitions_h3);
}

TEST(Alert, RelayDestinationAcceptsSilently) {
  // If D happens to relay its own packet en route it accepts without
  // behaving differently; delivery is still counted exactly once.
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, quiet_config());
  f.warm_up();
  for (std::uint32_t s = 0; s < 20; ++s) {
    router.send(0, 24, 512, 0, s);  // centre node: often en route
  }
  f.simulator.run_until(120.0);
  EXPECT_EQ(router.stats().data_delivered, 20u);
}


TEST(Alert, FirstHopTtlSealedAndStripped) {
  // Sec. 2.6: with notify-and-go active, the source's first transmission
  // carries a TTL sealed under the next relay's public key; onward hops
  // travel without it (only the camouflaged hop needs the disguise).
  class TtlObserver final : public net::TraceListener {
   public:
    void on_transmit(const net::Node&, const net::Packet& pkt,
                     sim::Time) override {
      if (pkt.kind != net::PacketKind::Data || !pkt.alert) return;
      if (pkt.hop_count == 1) {
        first_hops++;
        first_hops_sealed += pkt.alert->ttl_enc ? 1 : 0;
      } else if (pkt.hop_count > 1) {
        later_hops++;
        later_hops_sealed += pkt.alert->ttl_enc ? 1 : 0;
      }
    }
    int first_hops = 0, first_hops_sealed = 0;
    int later_hops = 0, later_hops_sealed = 0;
  };

  AlertConfig cfg = quiet_config();
  cfg.notify_and_go = true;
  ProtocolFixture f(grid_topology());
  AlertRouter router(*f.network, *f.location, cfg);
  TtlObserver ttl;
  f.network->add_listener(&ttl);
  f.warm_up();
  for (std::uint32_t s = 0; s < 5; ++s) router.send(0, 48, 512, 0, s);
  f.simulator.run_until(60.0);
  EXPECT_GT(ttl.first_hops, 0);
  EXPECT_EQ(ttl.first_hops_sealed, ttl.first_hops);
  EXPECT_GT(ttl.later_hops, 0);
  EXPECT_EQ(ttl.later_hops_sealed, 0);
  EXPECT_EQ(router.stats().data_delivered, 5u);  // seal verifies en route
}

}  // namespace
}  // namespace alert::routing
