/// Property sweeps over random static topologies: on connected unit-disk
/// graphs, GPSR (greedy + perimeter) and ALERT must deliver the large
/// majority of packets; and what travels on air under ALERT must be
/// ciphertext, never the plaintext payload.

#include <gtest/gtest.h>

#include <queue>

#include "protocol_fixture.hpp"
#include "routing/alert_router.hpp"
#include "routing/gpsr.hpp"

namespace alert::routing {
namespace {

using testing::ProtocolFixture;

/// Uniform random static positions whose unit-disk graph is connected
/// (rejection-sampled by seed advance).
std::vector<util::Vec2> connected_topology(std::uint64_t seed,
                                           std::size_t n, double range) {
  util::Rng rng(seed);
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  for (;;) {
    std::vector<util::Vec2> pos;
    for (std::size_t i = 0; i < n; ++i) pos.push_back(rng.point_in(field));
    // BFS connectivity check.
    std::vector<bool> seen(n, false);
    std::queue<std::size_t> q;
    q.push(0);
    seen[0] = true;
    std::size_t visited = 1;
    while (!q.empty()) {
      const std::size_t u = q.front();
      q.pop();
      for (std::size_t v = 0; v < n; ++v) {
        if (!seen[v] && util::distance(pos[u], pos[v]) <= range) {
          seen[v] = true;
          q.push(v);
          ++visited;
        }
      }
    }
    if (visited == n) return pos;
  }
}

class DeliverySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeliverySweep, GpsrDeliversOnConnectedStaticGraphs) {
  const auto pos = connected_topology(GetParam(), 60, 250.0);
  ProtocolFixture f(pos, 250.0);
  GpsrRouter router(*f.network, *f.location, {});
  f.warm_up();
  util::Rng rng(GetParam() ^ 0xF00D);
  int sent = 0;
  for (std::uint32_t k = 0; k < 10; ++k) {
    const auto src = static_cast<net::NodeId>(rng.below(60));
    auto dst = src;
    while (dst == src) dst = static_cast<net::NodeId>(rng.below(60));
    router.send(src, dst, 512, k, 0);
    ++sent;
  }
  f.simulator.run_until(60.0);
  EXPECT_GE(router.stats().data_delivered * 10, static_cast<std::uint64_t>(8 * sent))
      << "delivered " << router.stats().data_delivered << "/" << sent;
}

TEST_P(DeliverySweep, AlertDeliversOnConnectedStaticGraphs) {
  const auto pos = connected_topology(GetParam() + 100, 60, 250.0);
  ProtocolFixture f(pos, 250.0);
  AlertConfig cfg;
  cfg.partitions_h = 4;
  cfg.notify_and_go = false;
  cfg.send_confirmation = true;
  cfg.confirm_timeout_s = 3.0;
  cfg.max_retransmissions = 2;
  AlertRouter router(*f.network, *f.location, cfg);
  f.warm_up();
  util::Rng rng(GetParam() ^ 0xBEEF);
  int sent = 0;
  for (std::uint32_t k = 0; k < 10; ++k) {
    const auto src = static_cast<net::NodeId>(rng.below(60));
    auto dst = src;
    while (dst == src) dst = static_cast<net::NodeId>(rng.below(60));
    router.send(src, dst, 512, k, 0);
    ++sent;
  }
  f.simulator.run_until(60.0);
  EXPECT_GE(router.stats().data_delivered * 10, static_cast<std::uint64_t>(8 * sent))
      << "delivered " << router.stats().data_delivered << "/" << sent;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliverySweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

/// On-air confidentiality: an eavesdropper never sees the plaintext
/// payload pattern of an ALERT data packet.
class SnoopingListener final : public net::TraceListener {
 public:
  void on_transmit(const net::Node&, const net::Packet& pkt,
                   sim::Time) override {
    if (pkt.kind != net::PacketKind::Data || pkt.payload.empty()) return;
    ++frames;
    // The plaintext is seq-patterned (every byte == seq); count frames
    // whose on-air payload still shows it.
    const auto expected = static_cast<std::uint8_t>(pkt.seq);
    bool all_match = true;
    for (const std::uint8_t b : pkt.payload) {
      if (b != expected) {
        all_match = false;
        break;
      }
    }
    plaintext_frames += all_match ? 1 : 0;
  }
  int frames = 0;
  int plaintext_frames = 0;
};

TEST(Confidentiality, PayloadIsCiphertextOnAir) {
  const auto pos = connected_topology(7, 60, 250.0);
  ProtocolFixture f(pos, 250.0);
  AlertConfig cfg;
  cfg.partitions_h = 4;
  cfg.notify_and_go = false;
  AlertRouter router(*f.network, *f.location, cfg);
  SnoopingListener snoop;
  f.network->add_listener(&snoop);
  f.warm_up();
  for (std::uint32_t s = 0; s < 10; ++s) router.send(0, 59, 512, 0, s);
  f.simulator.run_until(60.0);
  EXPECT_GT(snoop.frames, 10);
  EXPECT_EQ(snoop.plaintext_frames, 0);
  // ...and the destination still recovered every plaintext (delivery
  // verification inside accept_at_destination requires it).
  EXPECT_GT(router.stats().data_delivered, 5u);
}

TEST(Confidentiality, GpsrBaselineSendsPlaintext) {
  // The contrast case: the non-anonymous baseline has no payload crypto.
  const auto pos = connected_topology(8, 60, 250.0);
  ProtocolFixture f(pos, 250.0);
  GpsrRouter router(*f.network, *f.location, {});
  SnoopingListener snoop;
  f.network->add_listener(&snoop);
  f.warm_up();
  router.send(0, 59, 512, 0, 0);
  f.simulator.run_until(10.0);
  EXPECT_GT(snoop.frames, 0);
  EXPECT_EQ(snoop.plaintext_frames, snoop.frames);  // all-zero payloads
}

}  // namespace
}  // namespace alert::routing
