// Unit tests for alert::perf: the measurement statistics, the
// "alertsim-bench/1" report codec, the regression-gate arithmetic behind
// tools/alertsim-perf --check, and the smoke-scale suites end to end.

#include <gtest/gtest.h>

#include <sstream>

#include "obs/manifest.hpp"
#include "obs/resource.hpp"
#include "perf/compare.hpp"
#include "perf/kernels.hpp"
#include "perf/measure.hpp"
#include "perf/report.hpp"
#include "perf/suite.hpp"

namespace alert::perf {
namespace {

// --- measure.hpp ------------------------------------------------------------

TEST(Measure, QuantileInterpolatesSortedSamples) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted({7.0}, 0.9), 7.0);
}

TEST(Measure, SummarizeComputesMedianAndIqr) {
  const Measurement m = summarize({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(m.median, 3.0);
  EXPECT_DOUBLE_EQ(m.iqr, 2.0);  // q75=4, q25=2
  EXPECT_DOUBLE_EQ(m.min, 1.0);
  EXPECT_DOUBLE_EQ(m.max, 5.0);
  EXPECT_EQ(m.repeats, 5u);
  EXPECT_TRUE(std::is_sorted(m.samples.begin(), m.samples.end()));
}

TEST(Measure, MedianIsRobustToOneOutlier) {
  // One preempted repeat must not move the committed value.
  const Measurement m = summarize({10.0, 10.0, 10.0, 10.0, 500.0});
  EXPECT_DOUBLE_EQ(m.median, 10.0);
}

TEST(Measure, MeasureDiscardsWarmupRuns) {
  MeasureOptions options;
  options.warmup = 2;
  options.repeats = 3;
  int calls = 0;
  const Measurement m = measure(
      [&calls] {
        ++calls;
        return static_cast<double>(calls);  // warmups are 1,2; kept 3,4,5
      },
      options);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(m.repeats, 3u);
  EXPECT_DOUBLE_EQ(m.median, 4.0);
  EXPECT_DOUBLE_EQ(m.min, 3.0);
}

// --- report.hpp -------------------------------------------------------------

BenchMetric metric(const char* name, double value, bool higher_is_better,
                   double tolerance_pct = 25.0) {
  BenchMetric m;
  m.name = name;
  m.unit = higher_is_better ? "events/s" : "ns/op";
  m.value = value;
  m.iqr = value / 100.0;
  m.repeats = 7;
  m.higher_is_better = higher_is_better;
  m.tolerance_pct = tolerance_pct;
  return m;
}

BenchReport sample_report() {
  BenchReport r;
  r.suite = "core";
  r.version = "v1.2-test";
  r.host = HostFingerprint::current();
  r.add_metric(metric("ns_per_event_dispatch", 250.0, false));
  r.add_metric(metric("events_per_s", 1.0e6, true));
  r.add_metric(metric("peak_rss_bytes", 8.0e6, false, 50.0));
  return r;
}

TEST(Report, AddKeepsMetricsSortedAndFindable) {
  const BenchReport r = sample_report();
  ASSERT_EQ(r.metrics.size(), 3u);
  EXPECT_EQ(r.metrics[0].name, "events_per_s");
  EXPECT_EQ(r.metrics[1].name, "ns_per_event_dispatch");
  EXPECT_EQ(r.metrics[2].name, "peak_rss_bytes");
  ASSERT_NE(r.find("events_per_s"), nullptr);
  EXPECT_DOUBLE_EQ(r.find("events_per_s")->value, 1.0e6);
  EXPECT_EQ(r.find("nonexistent"), nullptr);
}

TEST(Report, JsonRoundTripPreservesEverything) {
  const BenchReport r = sample_report();
  std::ostringstream out;
  r.write_json(out);
  std::string error;
  const auto parsed = load_report(out.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->suite, r.suite);
  EXPECT_EQ(parsed->version, r.version);
  EXPECT_TRUE(parsed->host == r.host);
  ASSERT_EQ(parsed->metrics.size(), r.metrics.size());
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    EXPECT_EQ(parsed->metrics[i].name, r.metrics[i].name);
    EXPECT_EQ(parsed->metrics[i].unit, r.metrics[i].unit);
    EXPECT_DOUBLE_EQ(parsed->metrics[i].value, r.metrics[i].value);
    EXPECT_DOUBLE_EQ(parsed->metrics[i].iqr, r.metrics[i].iqr);
    EXPECT_EQ(parsed->metrics[i].repeats, r.metrics[i].repeats);
    EXPECT_EQ(parsed->metrics[i].higher_is_better,
              r.metrics[i].higher_is_better);
    EXPECT_DOUBLE_EQ(parsed->metrics[i].tolerance_pct,
                     r.metrics[i].tolerance_pct);
  }
  // A second encode of the parse is byte-identical: the codec is stable.
  std::ostringstream again;
  parsed->write_json(again);
  EXPECT_EQ(again.str(), out.str());
}

TEST(Report, LoadRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(load_report("not json at all", &error).has_value());
  EXPECT_FALSE(load_report("{}", &error).has_value());
  EXPECT_FALSE(
      load_report(R"({"schema":"alertsim-bench/999","suite":"core",)"
                  R"("version":"v","host":{},"metrics":[]})",
                  &error)
          .has_value());
  EXPECT_NE(error.find("schema"), std::string::npos);
  // Missing required metric fields.
  EXPECT_FALSE(
      load_report(R"({"schema":"alertsim-bench/1","suite":"core",)"
                  R"("version":"v","host":{"os":"linux","compiler":"x",)"
                  R"("build_type":"release","hardware_threads":1},)"
                  R"("metrics":[{"name":"a"}]})",
                  &error)
          .has_value());
  // Duplicate metric names.
  EXPECT_FALSE(
      load_report(
          R"({"schema":"alertsim-bench/1","suite":"core","version":"v",)"
          R"("host":{"os":"linux","compiler":"x","build_type":"release",)"
          R"("hardware_threads":1},"metrics":[)"
          R"({"name":"a","unit":"ns/op","value":1,"tolerance_pct":10},)"
          R"({"name":"a","unit":"ns/op","value":2,"tolerance_pct":10}]})",
          &error)
          .has_value());
  // Non-positive tolerance would make the gate vacuous.
  EXPECT_FALSE(
      load_report(
          R"({"schema":"alertsim-bench/1","suite":"core","version":"v",)"
          R"("host":{"os":"linux","compiler":"x","build_type":"release",)"
          R"("hardware_threads":1},"metrics":[)"
          R"({"name":"a","unit":"ns/op","value":1,"tolerance_pct":0}]})",
          &error)
          .has_value());
}

// --- compare.hpp ------------------------------------------------------------

TEST(Compare, IdenticalReportsPass) {
  const BenchReport r = sample_report();
  const ComparisonReport cmp = compare_reports(r, r, {});
  EXPECT_TRUE(cmp.passed());
  EXPECT_EQ(cmp.count(Verdict::Ok), r.metrics.size());
  EXPECT_TRUE(cmp.notes.empty());
}

TEST(Compare, WithinToleranceIsOk) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  // +20% on a 25%-tolerance lower-is-better metric: inside the gate.
  cur.metrics[1].value = 300.0;
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_TRUE(cmp.passed());
  EXPECT_EQ(cmp.items[1].verdict, Verdict::Ok);
  EXPECT_NEAR(cmp.items[1].delta_pct, 20.0, 1e-9);
}

TEST(Compare, LowerIsBetterRegressionTripsGate) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics[1].value = 400.0;  // ns/op +60% > 25%
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_FALSE(cmp.passed());
  EXPECT_EQ(cmp.items[1].verdict, Verdict::Regressed);
}

TEST(Compare, HigherIsBetterRegressionTripsGate) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics[0].value = 0.5e6;  // events/s -50% > 25%
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_FALSE(cmp.passed());
  EXPECT_EQ(cmp.items[0].verdict, Verdict::Regressed);
}

TEST(Compare, ImprovementIsReportedNotFailed) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics[1].value = 100.0;  // ns/op -60%: improvement
  cur.metrics[0].value = 2.0e6;  // events/s +100%: improvement
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_TRUE(cmp.passed());
  EXPECT_EQ(cmp.items[0].verdict, Verdict::Improved);
  EXPECT_EQ(cmp.items[1].verdict, Verdict::Improved);
}

TEST(Compare, ToleranceScaleWidensTheGate) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics[1].value = 400.0;  // +60%: fails at scale 1
  CompareOptions wide;
  wide.tolerance_scale = 3.0;  // 25% -> 75%: passes
  EXPECT_FALSE(compare_reports(base, cur, {}).passed());
  EXPECT_TRUE(compare_reports(base, cur, wide).passed());
}

TEST(Compare, MissingBaselineMetricFailsTheGate) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics.erase(cur.metrics.begin());  // drop events_per_s
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_FALSE(cmp.passed());
  EXPECT_EQ(cmp.count(Verdict::MissingInCurrent), 1u);
}

TEST(Compare, NewCurrentMetricIsNoteOnly) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.add_metric(metric("ns_per_new_thing", 10.0, false));
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_TRUE(cmp.passed());
  EXPECT_EQ(cmp.count(Verdict::NewInCurrent), 1u);
  ASSERT_FALSE(cmp.notes.empty());
  EXPECT_NE(cmp.notes[0].find("ns_per_new_thing"), std::string::npos);
}

TEST(Compare, ZeroBaselineOnlyFailsOnWorseDirection) {
  BenchReport base = sample_report();
  base.metrics[1].value = 0.0;  // lower-is-better baseline at zero
  BenchReport cur = base;
  EXPECT_TRUE(compare_reports(base, cur, {}).passed());
  cur.metrics[1].value = 5.0;  // any growth from zero is unbounded
  EXPECT_FALSE(compare_reports(base, cur, {}).passed());
}

TEST(Compare, HostMismatchIsANoteNotAFailure) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.host.compiler = "different-compiler";
  const ComparisonReport cmp = compare_reports(base, cur, {});
  EXPECT_TRUE(cmp.passed());
  ASSERT_FALSE(cmp.notes.empty());
  EXPECT_NE(cmp.notes.back().find("fingerprint"), std::string::npos);
}

TEST(Compare, RenderMentionsEveryMetricAndVerdict) {
  const BenchReport base = sample_report();
  BenchReport cur = base;
  cur.metrics[1].value = 1000.0;
  const std::string table = compare_reports(base, cur, {}).render();
  EXPECT_NE(table.find("ns_per_event_dispatch"), std::string::npos);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
}

// --- kernels + suites (smoke scale) ----------------------------------------

TEST(Kernels, DispatchBatchExecutesEveryEvent) {
  EXPECT_EQ(run_dispatch_batch(1000), 1000u);
}

TEST(Kernels, QueryTopologyIsDeterministic) {
  const QueryTopology a(50);
  const QueryTopology b(50);
  const std::uint64_t found = a.run_queries(200);
  EXPECT_GT(found, 0u);
  EXPECT_EQ(found, b.run_queries(200));
  EXPECT_EQ(found, a.run_queries(200));  // re-query: same centers, same count
}

TEST(Suite, SmokeCoreSuiteProducesThePinnedMetrics) {
  SuiteOptions options;
  options.smoke = true;
  options.repeats = 1;
  const auto report = run_suite("core", options);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->suite, "core");
  EXPECT_FALSE(report->version.empty());
  for (const char* name :
       {"ns_per_event_dispatch", "ns_per_neighbour_query", "events_per_s",
        "packets_per_s", "peak_rss_bytes"}) {
    const BenchMetric* m = report->find(name);
    ASSERT_NE(m, nullptr) << name;
    EXPECT_GT(m->value, 0.0) << name;
    EXPECT_GT(m->tolerance_pct, 0.0) << name;
  }
}

TEST(Suite, UnknownSuiteIsRejected) {
  EXPECT_FALSE(run_suite("nonsense", {}).has_value());
  EXPECT_EQ(baseline_filename("core"), "BENCH_core.json");
}

// --- satellite: peak RSS plumbing ------------------------------------------

TEST(Resource, PeakRssIsNonZeroOnThisPlatform) {
  EXPECT_GT(obs::peak_rss_bytes(), 0u);
}

TEST(Resource, ManifestEmitsPeakRssOnlyWhenStamped) {
  obs::RunManifest manifest;
  std::ostringstream without;
  manifest.write_json(without);
  EXPECT_EQ(without.str().find("peak_rss_bytes"), std::string::npos);

  manifest.peak_rss_bytes = obs::peak_rss_bytes();
  std::ostringstream with;
  manifest.write_json(with);
  EXPECT_NE(with.str().find("\"peak_rss_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace alert::perf
