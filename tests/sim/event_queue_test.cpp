#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace alert::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, PopSkipsCancelledEntries) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>((i * 37) % 100);
    ids.push_back(q.schedule(t, [&fired, t] { fired.push_back(t); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  double last = -1.0;
  while (!q.empty()) {
    const auto f = q.pop();
    EXPECT_GE(f.time, last);
    last = f.time;
    f.action();
  }
  EXPECT_EQ(fired.size(), 66u);
}

}  // namespace
}  // namespace alert::sim
