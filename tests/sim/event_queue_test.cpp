#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace alert::sim {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  q.schedule(2.5, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, PopSkipsCancelledEntries) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    const double t = static_cast<double>((i * 37) % 100);
    ids.push_back(q.schedule(t, [&fired, t] { fired.push_back(t); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) q.cancel(ids[i]);
  double last = -1.0;
  while (!q.empty()) {
    const auto f = q.pop();
    EXPECT_GE(f.time, last);
    last = f.time;
    f.action();
  }
  EXPECT_EQ(fired.size(), 66u);
}

TEST(EventQueue, CompactionBoundsTombstones) {
  // Tombstones must never exceed half the physical store: cancelling most
  // of a large batch triggers compaction instead of unbounded lazy growth.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 10'000; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    }
    EXPECT_LE(q.tombstone_count() * 2, q.physical_size() + 1)
        << "after cancel " << i;
  }
  EXPECT_EQ(q.size(), 1000u);
  // The compacted store is within the bound, not merely the tombstones.
  EXPECT_LE(q.physical_size(), 2 * q.size() + 2);
  double last = -1.0;
  while (!q.empty()) {
    const auto f = q.pop();
    EXPECT_GT(f.time, last);
    last = f.time;
  }
  EXPECT_EQ(q.tombstone_count(), 0u);
}

TEST(EventQueue, CompactionAlsoTriggersOnPop) {
  // pop() shrinks the store, so buried tombstones can cross the half-store
  // bound during a pure drain as well.
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(static_cast<double>(i), [] {}));
  }
  // Cancel a band in the middle: just under the compaction threshold.
  for (std::size_t i = 600; i < 1000; ++i) EXPECT_TRUE(q.cancel(ids[i]));
  while (!q.empty()) {
    (void)q.pop();
    EXPECT_LE(q.tombstone_count() * 2, q.physical_size() + 1);
  }
}

TEST(EventQueue, BackendsPopIdenticalOrder) {
  // The calendar backend must reproduce the heap's (time, seq) pop order
  // bit-for-bit, including ties and cancellations.
  auto build = [](QueueBackend backend) {
    auto q = std::make_unique<EventQueue>();
    q->set_backend(backend);
    std::vector<EventId> ids;
    std::uint64_t state = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 5000; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      // Coarse quantization forces plenty of exact time ties.
      const double t = static_cast<double>((state >> 33) % 4096) * 0.25;
      ids.push_back(q->schedule(t, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 7) q->cancel(ids[i]);
    return q;
  };
  auto heap = build(QueueBackend::BinaryHeap);
  auto calendar = build(QueueBackend::Calendar);
  ASSERT_EQ(heap->size(), calendar->size());
  while (!heap->empty()) {
    const auto a = heap->pop();
    const auto b = calendar->pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(calendar->empty());
}

TEST(EventQueue, CalendarBackendSurvivesForeverSentinels) {
  EventQueue q;
  q.set_backend(QueueBackend::Calendar);
  bool near_fired = false;
  const EventId forever =
      q.schedule(std::numeric_limits<double>::max() / 4.0, [] {});
  q.schedule(1.0, [&] { near_fired = true; });
  q.pop().action();
  EXPECT_TRUE(near_fired);
  EXPECT_TRUE(q.cancel(forever));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, BackendSwitchAfterUseIsRejected) {
  EventQueue q;
  q.schedule(1.0, [] {});
  EXPECT_DEATH(q.set_backend(QueueBackend::Calendar),
               "before the first schedule");
}

}  // namespace
}  // namespace alert::sim
