#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.hpp"  // alert-lint: allow(module-layering) determinism is asserted over full core scenarios
#include "core/scenario.hpp"  // alert-lint: allow(module-layering) determinism is asserted over full core scenarios
#include "sim/simulator.hpp"

/// Bit-reproducibility contract: two runs with the same seed must replay the
/// exact same event trace (verified by the simulator's running digest over
/// every executed event and every audited transmission); a different seed
/// must diverge. This is the guarantee the bench figures rest on — silent
/// nondeterminism is how simulator reproductions drift apart.

namespace alert {
namespace {

core::ScenarioConfig small_scenario(core::ProtocolKind proto,
                                    std::uint64_t seed) {
  core::ScenarioConfig cfg;
  cfg.protocol = proto;
  cfg.node_count = 40;
  cfg.flow_count = 4;
  cfg.duration_s = 30.0;
  cfg.seed = seed;
  return cfg;
}

TEST(Determinism, SimulatorDigestIsOrderSensitive) {
  sim::Simulator a;
  sim::Simulator b;
  int fired = 0;
  auto noop = [&fired] { ++fired; };
  a.schedule_in(1.0, noop);
  a.schedule_in(2.0, noop);
  b.schedule_in(1.0, noop);
  b.schedule_in(2.0, noop);
  a.run_until(10.0);
  b.run_until(10.0);
  EXPECT_EQ(a.trace_digest(), b.trace_digest());

  // Same events, opposite scheduling order → different digest.
  sim::Simulator c;
  c.schedule_in(2.0, noop);
  c.schedule_in(1.0, noop);
  c.run_until(10.0);
  EXPECT_NE(a.trace_digest(), c.trace_digest());
  EXPECT_EQ(fired, 6);
}

TEST(Determinism, AuditWordsFoldIntoDigest) {
  sim::Simulator a;
  sim::Simulator b;
  a.audit(7);
  b.audit(8);
  EXPECT_NE(a.trace_digest(), b.trace_digest());
}

TEST(Determinism, SameSeedSameTraceAlert) {
  const auto cfg = small_scenario(core::ProtocolKind::Alert, 42);
  const core::RunResult first = core::run_once(cfg, 0);
  const core::RunResult second = core::run_once(cfg, 0);
  EXPECT_EQ(first.trace_digest, second.trace_digest);
  EXPECT_NE(first.trace_digest, 0u);
  // The coarse outcomes must agree too, not just the hash.
  EXPECT_EQ(first.sent, second.sent);
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.packets_opened, second.packets_opened);
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  const core::RunResult a =
      core::run_once(small_scenario(core::ProtocolKind::Alert, 42), 0);
  const core::RunResult b =
      core::run_once(small_scenario(core::ProtocolKind::Alert, 43), 0);
  EXPECT_NE(a.trace_digest, b.trace_digest);
}

TEST(Determinism, ReplicationIndexSeparatesTraces) {
  const auto cfg = small_scenario(core::ProtocolKind::Alert, 42);
  const core::RunResult rep0 = core::run_once(cfg, 0);
  const core::RunResult rep1 = core::run_once(cfg, 1);
  EXPECT_NE(rep0.trace_digest, rep1.trace_digest);
}

TEST(Determinism, HoldsForEveryProtocol) {
  for (const auto proto :
       {core::ProtocolKind::Gpsr, core::ProtocolKind::Alarm,
        core::ProtocolKind::Ao2p, core::ProtocolKind::Zap}) {
    const auto cfg = small_scenario(proto, 7);
    const core::RunResult first = core::run_once(cfg, 0);
    const core::RunResult second = core::run_once(cfg, 0);
    EXPECT_EQ(first.trace_digest, second.trace_digest)
        << "protocol " << core::protocol_name(proto);
  }
}

TEST(Determinism, LedgerAccountsForEveryPacket) {
  // After a full replication the ledger must balance: every uid delivered,
  // dropped, or expired — none forgotten.
  const auto cfg = small_scenario(core::ProtocolKind::Alert, 5);
  const core::RunResult run = core::run_once(cfg, 0);
  EXPECT_GT(run.packets_opened, 0u);
  EXPECT_GE(run.packets_opened, run.delivered);
}

}  // namespace
}  // namespace alert
