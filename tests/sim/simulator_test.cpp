#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace alert::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, ScheduleInAdvancesClock) {
  Simulator s;
  double seen = -1.0;
  s.schedule_in(2.5, [&] { seen = s.now(); });
  s.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);  // clock lands on the horizon
}

TEST(Simulator, EventsAtHorizonStillFire) {
  Simulator s;
  bool fired = false;
  s.schedule_at(5.0, [&] { fired = true; });
  s.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsPastHorizonDoNotFire) {
  Simulator s;
  bool fired = false;
  s.schedule_at(5.0001, [&] { fired = true; });
  s.run_until(5.0);
  EXPECT_FALSE(fired);
  EXPECT_FALSE(s.idle());  // still pending
}

TEST(Simulator, NestedScheduling) {
  Simulator s;
  std::vector<double> times;
  s.schedule_in(1.0, [&] {
    times.push_back(s.now());
    s.schedule_in(1.0, [&] { times.push_back(s.now()); });
  });
  s.run_until(10.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, PeriodicFiresAtFixedCadence) {
  Simulator s;
  std::vector<double> times;
  s.schedule_periodic(0.5, 1.0, [&] { times.push_back(s.now()); });
  s.run_until(4.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_DOUBLE_EQ(times[3], 3.5);
}

TEST(Simulator, RunUntilReturnsEventCount) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.schedule_in(static_cast<double>(i), [] {});
  EXPECT_EQ(s.run_until(10.0), 5u);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_in(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_until(5.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator s;
  int count = 0;
  s.schedule_in(1.0, [&] { ++count; });
  s.schedule_in(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ResumableAcrossHorizons) {
  Simulator s;
  std::vector<double> times;
  s.schedule_periodic(1.0, 2.0, [&] { times.push_back(s.now()); });
  s.run_until(3.0);
  EXPECT_EQ(times.size(), 2u);
  s.run_until(7.0);
  EXPECT_EQ(times.size(), 4u);
}

TEST(Simulator, ZeroDelayFiresAtCurrentTime) {
  Simulator s;
  s.schedule_in(1.0, [] {});
  s.run_until(1.0);
  double seen = -1.0;
  s.schedule_in(0.0, [&] { seen = s.now(); });
  s.run_until(1.0);
  EXPECT_DOUBLE_EQ(seen, 1.0);
}

}  // namespace
}  // namespace alert::sim
