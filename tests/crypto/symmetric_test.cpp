#include "crypto/symmetric.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace alert::crypto {
namespace {

TEST(SymmetricKey, FromSeedDeterministic) {
  EXPECT_EQ(SymmetricKey::from_seed(1), SymmetricKey::from_seed(1));
  EXPECT_NE(SymmetricKey::from_seed(1), SymmetricKey::from_seed(2));
}

TEST(Xtea, BlockRoundTrip) {
  const Xtea cipher(SymmetricKey::from_seed(42));
  for (std::uint64_t pt : {0ull, 1ull, 0xDEADBEEFCAFEBABEull, ~0ull}) {
    EXPECT_EQ(cipher.decrypt_block(cipher.encrypt_block(pt)), pt);
  }
}

TEST(Xtea, EncryptionChangesValue) {
  const Xtea cipher(SymmetricKey::from_seed(42));
  EXPECT_NE(cipher.encrypt_block(0), 0u);
  EXPECT_NE(cipher.encrypt_block(1), cipher.encrypt_block(2));
}

TEST(Xtea, DifferentKeysDifferentCiphertext) {
  const Xtea a(SymmetricKey::from_seed(1)), b(SymmetricKey::from_seed(2));
  EXPECT_NE(a.encrypt_block(12345), b.encrypt_block(12345));
}

TEST(Xtea, AvalancheOnPlaintextBitFlip) {
  const Xtea cipher(SymmetricKey::from_seed(7));
  const std::uint64_t c1 = cipher.encrypt_block(0x1000);
  const std::uint64_t c2 = cipher.encrypt_block(0x1001);
  // Count differing bits; a good cipher averages 32.
  const int diff = __builtin_popcountll(c1 ^ c2);
  EXPECT_GT(diff, 16);
  EXPECT_LT(diff, 48);
}

TEST(Ctr, ApplyTwiceIsIdentity) {
  const SymmetricKey key = SymmetricKey::from_seed(9);
  std::vector<std::uint8_t> data(513);
  std::iota(data.begin(), data.end(), 0);
  const auto original = data;
  xtea_ctr_apply(key, 777, data);
  EXPECT_NE(data, original);
  xtea_ctr_apply(key, 777, data);
  EXPECT_EQ(data, original);
}

TEST(Ctr, WrongKeyDoesNotDecrypt) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const auto original = data;
  xtea_ctr_apply(SymmetricKey::from_seed(1), 5, data);
  xtea_ctr_apply(SymmetricKey::from_seed(2), 5, data);
  EXPECT_NE(data, original);
}

TEST(Ctr, WrongNonceDoesNotDecrypt) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const auto original = data;
  const SymmetricKey key = SymmetricKey::from_seed(1);
  xtea_ctr_apply(key, 5, data);
  xtea_ctr_apply(key, 6, data);
  EXPECT_NE(data, original);
}

TEST(Ctr, NonBlockAlignedLengths) {
  const SymmetricKey key = SymmetricKey::from_seed(11);
  for (const std::size_t len : {0u, 1u, 7u, 8u, 9u, 15u, 17u, 511u}) {
    std::vector<std::uint8_t> data(len, 0x5C);
    const auto original = data;
    xtea_ctr_apply(key, 42, data);
    xtea_ctr_apply(key, 42, data);
    EXPECT_EQ(data, original) << "len=" << len;
  }
}

TEST(Ctr, EncryptCopyLeavesInputIntact) {
  const SymmetricKey key = SymmetricKey::from_seed(13);
  const std::vector<std::uint8_t> plaintext(32, 0x11);
  const auto ct = xtea_ctr_encrypt(key, 3, plaintext);
  EXPECT_EQ(plaintext, std::vector<std::uint8_t>(32, 0x11));
  EXPECT_NE(ct, plaintext);
  EXPECT_EQ(ct.size(), plaintext.size());
}

TEST(Ctr, KeystreamVariesAcrossBlocks) {
  const SymmetricKey key = SymmetricKey::from_seed(17);
  std::vector<std::uint8_t> zeros(32, 0);
  xtea_ctr_apply(key, 1, zeros);
  // Encrypted zeros expose the keystream: first and second block differ.
  EXPECT_NE(std::vector<std::uint8_t>(zeros.begin(), zeros.begin() + 8),
            std::vector<std::uint8_t>(zeros.begin() + 8, zeros.begin() + 16));
}

}  // namespace
}  // namespace alert::crypto
