#include "crypto/bitmap.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace alert::crypto {
namespace {

TEST(Bitmap, AlterThenRestoreIsIdentity) {
  util::Rng rng(1);
  std::vector<std::uint8_t> payload(64, 0x3C);
  const auto original = payload;
  const auto bm = AlterationBitmap::alter(payload, 16, rng);
  EXPECT_NE(payload, original);
  bm.restore(payload);
  EXPECT_EQ(payload, original);
}

TEST(Bitmap, FlipsRequestedNumberOfDistinctBits) {
  util::Rng rng(2);
  std::vector<std::uint8_t> payload(32, 0);
  const auto bm = AlterationBitmap::alter(payload, 10, rng);
  EXPECT_EQ(bm.positions().size(), 10u);
  const std::set<std::uint32_t> distinct(bm.positions().begin(),
                                         bm.positions().end());
  EXPECT_EQ(distinct.size(), 10u);
  // Exactly 10 bits set in the zero payload.
  int set_bits = 0;
  for (const std::uint8_t b : payload) set_bits += __builtin_popcount(b);
  EXPECT_EQ(set_bits, 10);
}

TEST(Bitmap, FlipCountClampedToPayloadBits) {
  util::Rng rng(3);
  std::vector<std::uint8_t> payload(2, 0);  // 16 bits
  const auto bm = AlterationBitmap::alter(payload, 100, rng);
  EXPECT_EQ(bm.positions().size(), 16u);
  EXPECT_EQ(payload, std::vector<std::uint8_t>(2, 0xFF));
}

TEST(Bitmap, EmptyPayloadYieldsEmptyBitmap) {
  util::Rng rng(4);
  std::vector<std::uint8_t> payload;
  const auto bm = AlterationBitmap::alter(payload, 5, rng);
  EXPECT_TRUE(bm.positions().empty());
}

TEST(Bitmap, SerializeDeserializeRoundTrip) {
  util::Rng rng(5);
  std::vector<std::uint8_t> payload(512, 0xAA);
  const auto original = payload;
  const auto bm = AlterationBitmap::alter(payload, 16, rng);
  const auto wire = bm.serialize();
  EXPECT_EQ(wire.size(), 64u);
  const auto recovered = AlterationBitmap::deserialize(wire);
  EXPECT_EQ(recovered.positions(), bm.positions());
  recovered.restore(payload);
  EXPECT_EQ(payload, original);
}

TEST(Bitmap, LayeredAlterationsRestoreInReverse) {
  util::Rng rng(6);
  std::vector<std::uint8_t> payload(128, 0x77);
  const auto original = payload;
  const auto layer1 = AlterationBitmap::alter(payload, 8, rng);
  const auto layer2 = AlterationBitmap::alter(payload, 8, rng);
  layer2.restore(payload);
  layer1.restore(payload);
  EXPECT_EQ(payload, original);
}

TEST(Bitmap, DifferentRngStatesDifferentPositions) {
  util::Rng r1(7), r2(8);
  std::vector<std::uint8_t> p1(512, 0), p2(512, 0);
  const auto b1 = AlterationBitmap::alter(p1, 16, r1);
  const auto b2 = AlterationBitmap::alter(p2, 16, r2);
  EXPECT_NE(b1.positions(), b2.positions());
}

}  // namespace
}  // namespace alert::crypto
