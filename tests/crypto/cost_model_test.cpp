#include "crypto/cost_model.hpp"

#include <gtest/gtest.h>

namespace alert::crypto {
namespace {

TEST(CostModel, DefaultsMatchPaperSection52) {
  const CostModel m;
  // "A typical symmetric encryption costs several milliseconds while a
  // public key encryption operation costs 2-3 hundred milliseconds."
  EXPECT_GE(m.symmetric_encrypt_s, 0.001);
  EXPECT_LE(m.symmetric_encrypt_s, 0.010);
  EXPECT_GE(m.public_encrypt_s, 0.200);
  EXPECT_LE(m.public_encrypt_s, 0.300);
  // Ref. [26]: public-key ops cost hundreds of times more than symmetric.
  EXPECT_GE(m.public_encrypt_s / m.symmetric_encrypt_s, 50.0);
}

TEST(CostModel, SymmetricCostScalesWithPayload) {
  const CostModel m;
  EXPECT_DOUBLE_EQ(m.symmetric_encrypt_for(512), m.symmetric_encrypt_s);
  EXPECT_DOUBLE_EQ(m.symmetric_encrypt_for(1024),
                   2.0 * m.symmetric_encrypt_s);
  EXPECT_DOUBLE_EQ(m.symmetric_decrypt_for(2048),
                   4.0 * m.symmetric_decrypt_s);
}

TEST(CostModel, SmallPayloadsPayTheBlockMinimum) {
  const CostModel m;
  EXPECT_DOUBLE_EQ(m.symmetric_encrypt_for(1), m.symmetric_encrypt_s);
  EXPECT_DOUBLE_EQ(m.symmetric_encrypt_for(0), m.symmetric_encrypt_s);
}

TEST(CostModel, VerificationCheaperThanSigning) {
  const CostModel m;
  // e = 65537 makes verification much cheaper than the private-key op.
  EXPECT_LT(m.verify_s, m.sign_s / 5.0);
}

}  // namespace
}  // namespace alert::crypto
