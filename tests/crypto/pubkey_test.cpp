#include "crypto/pubkey.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace alert::crypto {
namespace {

TEST(ModArith, MulModSmall) {
  EXPECT_EQ(mul_mod(7, 8, 5), 1u);
  EXPECT_EQ(mul_mod(0, 99, 7), 0u);
}

TEST(ModArith, MulModLargeOperandsNoOverflow) {
  const std::uint64_t big = 0xFFFFFFFFFFFFFFC5ull;  // largest 64-bit prime
  EXPECT_EQ(mul_mod(big - 1, big - 1, big), 1u);  // (-1)^2 = 1 mod p
}

TEST(ModArith, PowModKnownValues) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(5, 3, 13), 125 % 13);
}

TEST(ModArith, FermatLittleTheorem) {
  const std::uint64_t p = 1000000007ull;
  for (std::uint64_t a : {2ull, 12345ull, 999999999ull}) {
    EXPECT_EQ(pow_mod(a, p - 1, p), 1u);
  }
}

TEST(ModArith, InverseModCorrect) {
  const auto inv = inverse_mod(3, 7);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ((*inv * 3) % 7, 1u);
}

TEST(ModArith, InverseModOfNonCoprimeIsNull) {
  EXPECT_FALSE(inverse_mod(6, 9).has_value());
}

TEST(ModArith, InverseModLarge) {
  const std::uint64_t m = 0xFFFFFFFFFFFFFFC5ull;
  const auto inv = inverse_mod(65537, m);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(mul_mod(*inv, 65537, m), 1u);
}

TEST(MillerRabin, SmallPrimesAndComposites) {
  EXPECT_TRUE(is_probable_prime(2));
  EXPECT_TRUE(is_probable_prime(3));
  EXPECT_TRUE(is_probable_prime(97));
  EXPECT_FALSE(is_probable_prime(0));
  EXPECT_FALSE(is_probable_prime(1));
  EXPECT_FALSE(is_probable_prime(91));  // 7 * 13
}

TEST(MillerRabin, CarmichaelNumbersRejected) {
  for (std::uint64_t n : {561ull, 1105ull, 1729ull, 2465ull, 6601ull}) {
    EXPECT_FALSE(is_probable_prime(n)) << n;
  }
}

TEST(MillerRabin, LargePrimes) {
  EXPECT_TRUE(is_probable_prime((1ull << 61) - 1));  // Mersenne prime
  EXPECT_TRUE(is_probable_prime(0xFFFFFFFFFFFFFFC5ull));
  EXPECT_FALSE(is_probable_prime((1ull << 61) - 3));
}

TEST(KeyGen, ProducesWorkingKeyPair) {
  util::Rng rng(1);
  const KeyPair kp = generate_keypair(rng);
  EXPECT_GT(kp.pub.n, 1ull << 55);
  EXPECT_EQ(kp.pub.e, 65537u);
  EXPECT_EQ(kp.pub.n, kp.priv.n);
}

TEST(KeyGen, DeterministicGivenRngState) {
  util::Rng a(5), b(5);
  const KeyPair ka = generate_keypair(a);
  const KeyPair kb = generate_keypair(b);
  EXPECT_EQ(ka.pub, kb.pub);
}

class RsaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RsaRoundTrip, ValueEncryptDecrypt) {
  util::Rng rng(GetParam());
  const KeyPair kp = generate_keypair(rng);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t m = rng.below(kp.pub.n);
    const std::uint64_t c = rsa_encrypt_value(kp.pub, m);
    EXPECT_EQ(rsa_decrypt_value(kp.priv, c), m);
  }
}

TEST_P(RsaRoundTrip, BytesEncryptDecrypt) {
  util::Rng rng(GetParam() + 1000);
  const KeyPair kp = generate_keypair(rng);
  for (const std::size_t len : {0u, 1u, 6u, 7u, 8u, 16u, 32u, 100u}) {
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    const auto blocks = rsa_encrypt_bytes(kp.pub, data);
    EXPECT_EQ(blocks.size(), (len + 6) / 7);
    EXPECT_EQ(rsa_decrypt_bytes(kp.priv, blocks, len), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RsaRoundTrip,
                         ::testing::Values(1, 2, 3, 7, 11, 101, 4242));

TEST(Rsa, WrongKeyFailsToDecrypt) {
  util::Rng rng(77);
  const KeyPair a = generate_keypair(rng);
  const KeyPair b = generate_keypair(rng);
  ASSERT_NE(a.pub.n, b.pub.n);
  const std::uint64_t m = 123456789;
  const std::uint64_t c = rsa_encrypt_value(a.pub, m);
  EXPECT_NE(rsa_decrypt_value(b.priv, c % b.priv.n), m);
}

TEST(Rsa, CiphertextDiffersFromPlaintext) {
  util::Rng rng(88);
  const KeyPair kp = generate_keypair(rng);
  int unchanged = 0;
  for (std::uint64_t m = 2; m < 100; ++m) {
    if (rsa_encrypt_value(kp.pub, m) == m) ++unchanged;
  }
  EXPECT_LE(unchanged, 2);  // fixed points are astronomically rare
}

}  // namespace
}  // namespace alert::crypto
