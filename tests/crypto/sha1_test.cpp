#include "crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace alert::crypto {
namespace {

// FIPS 180-1 reference vectors.
TEST(Sha1, FipsVectorAbc) {
  EXPECT_EQ(to_hex(Sha1::hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, FipsVectorTwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha1::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyString) {
  EXPECT_EQ(to_hex(Sha1::hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  Sha1 ctx;
  for (const char c : msg) ctx.update(std::string_view(&c, 1));
  EXPECT_EQ(ctx.finish(), Sha1::hash(msg));
}

TEST(Sha1, BlockBoundaryLengths) {
  // Lengths straddling the 64-byte block and the 56-byte padding cutoff.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u}) {
    const std::string msg(len, 'x');
    Sha1 a;
    a.update(msg);
    Sha1 b;
    b.update(msg.substr(0, len / 2));
    b.update(msg.substr(len / 2));
    EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
  }
}

TEST(Sha1, ResetClearsState) {
  Sha1 ctx;
  ctx.update("garbage");
  (void)ctx.finish();
  ctx.reset();
  ctx.update("abc");
  EXPECT_EQ(to_hex(ctx.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, DifferentInputsDiffer) {
  EXPECT_NE(Sha1::hash("node-1|t=5"), Sha1::hash("node-1|t=6"));
  EXPECT_NE(Sha1::hash("a"), Sha1::hash("b"));
}

TEST(Sha1, DigestPrefix64BigEndian) {
  Sha1Digest d{};
  d[0] = 0x01;
  d[7] = 0xFF;
  EXPECT_EQ(digest_prefix64(d), 0x01000000000000FFull);
}

TEST(Sha1, HexLengthAndAlphabet) {
  const std::string hex = to_hex(Sha1::hash("x"));
  EXPECT_EQ(hex.size(), 40u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Sha1, ByteSpanOverload) {
  const std::vector<std::uint8_t> bytes{'a', 'b', 'c'};
  EXPECT_EQ(Sha1::hash(std::span<const std::uint8_t>(bytes)),
            Sha1::hash("abc"));
}

}  // namespace
}  // namespace alert::crypto
