#include "scale/pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace alert::scale {
namespace {

struct Payload {
  std::vector<std::uint8_t> bytes;
  int tag = 0;
};

TEST(SlabPool, AcquireHandsOutDistinctHandles) {
  SlabPool<int> pool;
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(SlabPool, ReleasedSlotIsReusedBeforeGrowing) {
  SlabPool<int> pool;
  const auto a = pool.acquire();
  pool.release(a);
  const auto b = pool.acquire();
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.capacity(), SlabPool<int>::kChunkSlots);
}

TEST(SlabPool, HandlesAreStableAcrossChunkGrowth) {
  SlabPool<Payload> pool;
  std::vector<SlabPool<Payload>::Handle> handles;
  for (int i = 0; i < 1000; ++i) {
    const auto h = pool.acquire();
    pool.at(h).tag = i;
    handles.push_back(h);
  }
  EXPECT_GT(pool.capacity(), SlabPool<Payload>::kChunkSlots);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.at(handles[static_cast<std::size_t>(i)]).tag, i);
  }
  EXPECT_EQ(pool.high_water(), 1000u);
  for (const auto h : handles) pool.release(h);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.high_water(), 1000u);
}

TEST(SlabPool, RetainedCapacityIsReused) {
  // The point of the pool: a slot keeps whatever buffer its previous user
  // grew, so steady-state reuse allocates nothing.
  SlabPool<Payload> pool;
  const auto h = pool.acquire();
  pool.at(h).bytes.assign(512, 0xAB);
  const std::uint8_t* data = pool.at(h).bytes.data();
  pool.release(h);
  const auto h2 = pool.acquire();
  ASSERT_EQ(h2, h);
  pool.at(h2).bytes.assign(512, 0xCD);  // same size: must reuse the buffer
  EXPECT_EQ(pool.at(h2).bytes.data(), data);
}

TEST(SlabPool, LeakedReportsUnreleasedSlots) {
  SlabPool<int> pool;
  (void)pool.acquire();
  const auto b = pool.acquire();
  pool.release(b);
  EXPECT_EQ(pool.leaked(), 1u);
}

TEST(SlabPool, AcquireReleaseChurnKeepsCapacityBounded) {
  SlabPool<int> pool;
  for (int round = 0; round < 10'000; ++round) {
    const auto h = pool.acquire();
    pool.release(h);
  }
  EXPECT_EQ(pool.capacity(), SlabPool<int>::kChunkSlots);
  EXPECT_EQ(pool.high_water(), 1u);
}

}  // namespace
}  // namespace alert::scale
