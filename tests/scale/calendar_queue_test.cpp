#include "scale/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace alert::scale {
namespace {

struct Item {
  double time = 0.0;
  std::uint64_t seq = 0;
  int payload = 0;
};

/// Reference order: strict (time, seq) ascending.
bool precedes(const Item& a, const Item& b) {
  return a.time != b.time ? a.time < b.time : a.seq < b.seq;
}

TEST(CalendarQueue, EmptyInitially) {
  CalendarQueue<Item> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(CalendarQueue, PopsInTimeSeqOrder) {
  CalendarQueue<Item> q;
  q.push({3.0, 0, 30});
  q.push({1.0, 1, 10});
  q.push({2.0, 2, 20});
  q.push({1.0, 3, 11});  // same time, later seq
  std::vector<int> order;
  while (!q.empty()) order.push_back(q.pop_min().payload);
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 30}));
}

TEST(CalendarQueue, MinIsStable) {
  CalendarQueue<Item> q;
  q.push({5.0, 0, 1});
  q.push({2.0, 1, 2});
  EXPECT_EQ(q.min().payload, 2);
  EXPECT_EQ(q.min().payload, 2);  // min() must not extract
  EXPECT_EQ(q.size(), 2u);
}

TEST(CalendarQueue, PushEarlierThanCursorRewinds) {
  CalendarQueue<Item> q;
  q.push({100.0, 0, 1});
  EXPECT_EQ(q.pop_min().payload, 1);  // cursor now at year(100.0)
  q.push({100.5, 1, 2});
  q.push({100.1, 2, 3});
  EXPECT_EQ(q.pop_min().payload, 3);
  EXPECT_EQ(q.pop_min().payload, 2);
}

TEST(CalendarQueue, RandomizedMatchesSortedReference) {
  util::Rng rng(42);
  CalendarQueue<Item> q;
  std::vector<Item> reference;
  std::uint64_t seq = 0;
  // Interleave pushes and pops across several magnitudes of time scale so
  // rebuilds fire in both directions.
  for (int round = 0; round < 20; ++round) {
    const double scale = rng.uniform(0.001, 1000.0);
    for (int i = 0; i < 200; ++i) {
      Item item{rng.uniform(0.0, scale), seq++, static_cast<int>(seq)};
      reference.push_back(item);
      q.push(item);
    }
    std::sort(reference.begin(), reference.end(), precedes);
    const int pops = static_cast<int>(rng.uniform(0.0, 150.0));
    for (int i = 0; i < pops && !reference.empty(); ++i) {
      const Item got = q.pop_min();
      EXPECT_DOUBLE_EQ(got.time, reference.front().time);
      EXPECT_EQ(got.seq, reference.front().seq);
      reference.erase(reference.begin());
    }
    // Later rounds must push times >= the popped front to respect the
    // queue's monotonic-cursor contract... which push() itself handles by
    // rewinding; no constraint needed. Keep draining unordered.
  }
  while (!reference.empty()) {
    const Item got = q.pop_min();
    EXPECT_EQ(got.seq, reference.front().seq);
    reference.erase(reference.begin());
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarFutureTimesShareOneYear) {
  // kForever-scale sentinels must neither overflow year arithmetic nor
  // stretch rebuild width estimation.
  CalendarQueue<Item> q;
  const double far = 4.4e307;  // sim's kForever scale
  q.push({far, 0, 1});
  q.push({1.0, 1, 2});
  q.push({far, 2, 3});
  EXPECT_EQ(q.pop_min().payload, 2);
  EXPECT_EQ(q.pop_min().payload, 1);
  EXPECT_EQ(q.pop_min().payload, 3);
}

TEST(CalendarQueue, RemoveIfUnlinksMatches) {
  CalendarQueue<Item> q;
  for (int i = 0; i < 100; ++i) {
    q.push({static_cast<double>(i), static_cast<std::uint64_t>(i), i});
  }
  const std::size_t removed =
      q.remove_if([](const Item& item) { return item.payload % 2 == 0; });
  EXPECT_EQ(removed, 50u);
  EXPECT_EQ(q.size(), 50u);
  std::vector<int> rest;
  while (!q.empty()) rest.push_back(q.pop_min().payload);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    EXPECT_EQ(rest[i], static_cast<int>(2 * i + 1));
  }
}

TEST(CalendarQueue, RebuildGrowsAndShrinksBuckets) {
  CalendarQueue<Item> q;
  const std::size_t initial = q.bucket_count();
  for (int i = 0; i < 4096; ++i) {
    q.push({static_cast<double>(i) * 0.5, static_cast<std::uint64_t>(i), i});
  }
  EXPECT_GT(q.bucket_count(), initial);
  for (int i = 0; i < 4090; ++i) (void)q.pop_min();
  EXPECT_LT(q.bucket_count(), 4096u);
  std::vector<int> tail;
  while (!q.empty()) tail.push_back(q.pop_min().payload);
  EXPECT_EQ(tail, (std::vector<int>{4090, 4091, 4092, 4093, 4094, 4095}));
}

TEST(CalendarQueue, ForEachVisitsEveryLiveItem) {
  CalendarQueue<Item> q;
  for (int i = 0; i < 10; ++i) {
    q.push({static_cast<double>(i), static_cast<std::uint64_t>(i), i});
  }
  (void)q.pop_min();
  int visited = 0;
  int sum = 0;
  q.for_each([&](const Item& item) {
    ++visited;
    sum += item.payload;
  });
  EXPECT_EQ(visited, 9);
  EXPECT_EQ(sum, 45 - 0);
}

TEST(CalendarQueue, SparseBacklogStillFindsMin) {
  // A handful of items spread over a huge span exercises the global-scan
  // fallback (a full bucket lap without a cursor-year hit).
  CalendarQueue<Item> q;
  q.push({1e6, 0, 1});
  q.push({2e6, 1, 2});
  q.push({0.5, 2, 3});
  EXPECT_EQ(q.pop_min().payload, 3);
  EXPECT_EQ(q.pop_min().payload, 1);
  EXPECT_EQ(q.pop_min().payload, 2);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace alert::scale
