#include "scale/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace alert::scale {
namespace {

constexpr util::Rect kField{0.0, 0.0, 1000.0, 1000.0};

/// Brute-force reference: ids whose position is within radius, ascending.
std::vector<std::uint32_t> scan_disc(const std::vector<util::Vec2>& pos,
                                     util::Vec2 center, double radius) {
  std::vector<std::uint32_t> out;
  const double r_sq = radius * radius;
  for (std::uint32_t id = 0; id < pos.size(); ++id) {
    if (util::distance_sq(pos[id], center) <= r_sq) out.push_back(id);
  }
  return out;
}

std::vector<std::uint32_t> grid_disc(SpatialGrid& grid,
                                     const std::vector<util::Vec2>& pos,
                                     util::Vec2 center, double radius) {
  std::vector<std::uint32_t> out(pos.size());
  const std::size_t n = grid.collect_in_disc(
      center, radius, [&pos](std::uint32_t id) { return pos[id]; },
      out.data());
  out.resize(n);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(SpatialGrid, DimensionsCoverField) {
  const SpatialGrid grid(kField, 250.0, 8);
  EXPECT_EQ(grid.cols(), 4u);
  EXPECT_EQ(grid.rows(), 4u);
}

TEST(SpatialGrid, PointQueryMatchesScan) {
  util::Rng rng(7);
  std::vector<util::Vec2> pos;
  SpatialGrid grid(kField, 250.0, 200);
  for (std::uint32_t id = 0; id < 200; ++id) {
    pos.push_back(rng.point_in(kField));
    grid.update(id, pos.back(), pos.back());
  }
  for (int q = 0; q < 100; ++q) {
    const util::Vec2 center = rng.point_in(kField);
    EXPECT_EQ(grid_disc(grid, pos, center, 250.0),
              scan_disc(pos, center, 250.0));
  }
}

TEST(SpatialGrid, CountAgreesWithCollect) {
  util::Rng rng(8);
  std::vector<util::Vec2> pos;
  SpatialGrid grid(kField, 250.0, 100);
  for (std::uint32_t id = 0; id < 100; ++id) {
    pos.push_back(rng.point_in(kField));
    grid.update(id, pos.back(), pos.back());
  }
  for (int q = 0; q < 50; ++q) {
    const util::Vec2 center = rng.point_in(kField);
    const auto fn = [&pos](std::uint32_t id) { return pos[id]; };
    EXPECT_EQ(grid.count_in_disc(center, 250.0, fn),
              grid_disc(grid, pos, center, 250.0).size());
  }
}

TEST(SpatialGrid, SegmentCoverageFindsEveryInterpolatedPosition) {
  // A moving id must be findable at every time within its segment: sample
  // the interpolation densely and query a tight disc around each sample.
  util::Rng rng(9);
  SpatialGrid grid(kField, 250.0, 1);
  for (int trial = 0; trial < 50; ++trial) {
    const util::Vec2 a = rng.point_in(kField);
    const util::Vec2 b = rng.point_in(kField);
    grid.update(0, a, b);
    for (int s = 0; s <= 20; ++s) {
      const double t = static_cast<double>(s) / 20.0;
      const util::Vec2 p{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
      const std::vector<util::Vec2> pos{p};
      EXPECT_EQ(grid_disc(grid, pos, p, 1.0), std::vector<std::uint32_t>{0})
          << "trial " << trial << " s " << s;
    }
  }
}

TEST(SpatialGrid, UpdateReplacesCoverage) {
  SpatialGrid grid(kField, 250.0, 1);
  grid.update(0, {10.0, 10.0}, {990.0, 990.0});  // long diagonal: many cells
  const std::size_t long_cover = grid.coverage(0);
  EXPECT_GT(long_cover, 3u);
  grid.update(0, {10.0, 10.0}, {10.0, 10.0});  // shrink to a point
  EXPECT_LE(grid.coverage(0), 2u);  // corner points may pad to a neighbour
  const std::vector<util::Vec2> pos{{500.0, 500.0}};
  EXPECT_TRUE(grid_disc(grid, pos, {500.0, 500.0}, 10.0).empty())
      << "stale coverage from the previous segment survived update()";
}

TEST(SpatialGrid, RemoveDropsId) {
  SpatialGrid grid(kField, 250.0, 2);
  grid.update(0, {100.0, 100.0}, {100.0, 100.0});
  grid.update(1, {100.0, 100.0}, {100.0, 100.0});
  grid.remove(0);
  const std::vector<util::Vec2> pos{{100.0, 100.0}, {100.0, 100.0}};
  EXPECT_EQ(grid_disc(grid, pos, {100.0, 100.0}, 50.0),
            std::vector<std::uint32_t>{1});
  EXPECT_EQ(grid.coverage(0), 0u);
}

TEST(SpatialGrid, OutOfFieldPositionsAreClamped) {
  SpatialGrid grid(kField, 250.0, 1);
  grid.update(0, {-50.0, 1500.0}, {-50.0, 1500.0});
  const std::vector<util::Vec2> pos{{0.0, 1000.0}};
  EXPECT_EQ(grid_disc(grid, pos, {0.0, 1000.0}, 1.0),
            std::vector<std::uint32_t>{0});
}

TEST(SpatialGrid, MovingIdsMatchScanAtInterpolatedTimes) {
  // The Network usage pattern: segments indexed once, queried at arbitrary
  // intermediate times with interpolated positions.
  util::Rng rng(11);
  const std::uint32_t n = 150;
  std::vector<util::Vec2> from;
  std::vector<util::Vec2> to;
  SpatialGrid grid(kField, 250.0, n);
  for (std::uint32_t id = 0; id < n; ++id) {
    from.push_back(rng.point_in(kField));
    to.push_back(rng.point_in(kField));
    grid.update(id, from[id], to[id]);
  }
  for (int q = 0; q < 60; ++q) {
    const double t = rng.uniform(0.0, 1.0);
    std::vector<util::Vec2> pos;
    for (std::uint32_t id = 0; id < n; ++id) {
      pos.push_back({from[id].x + (to[id].x - from[id].x) * t,
                     from[id].y + (to[id].y - from[id].y) * t});
    }
    const util::Vec2 center = rng.point_in(kField);
    const double radius = rng.uniform(50.0, 400.0);
    EXPECT_EQ(grid_disc(grid, pos, center, radius),
              scan_disc(pos, center, radius));
  }
}

TEST(SpatialGrid, TinyCellSizeIsClamped) {
  // Degenerate cell sizes must not explode the cell table.
  const SpatialGrid grid(kField, 0.0, 1);
  EXPECT_GE(grid.cols(), 1u);
  EXPECT_GE(grid.rows(), 1u);
}

}  // namespace
}  // namespace alert::scale
