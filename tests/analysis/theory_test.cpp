#include "analysis/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"  // alert-lint: allow(module-layering) test uses util helpers; src-level analysis stays dependency-free

namespace alert::analysis {
namespace {

TEST(Theory, SideLengthsEquations1And2) {
  // Paper Eqs. (3)-(4): after 3 partitions, a = 0.5 l_A, b = 0.25 l_B.
  EXPECT_DOUBLE_EQ(side_a(3, 1000.0), 500.0);
  EXPECT_DOUBLE_EQ(side_b(3, 1000.0), 250.0);
  EXPECT_DOUBLE_EQ(side_a(0, 1000.0), 1000.0);
  EXPECT_DOUBLE_EQ(side_b(0, 1000.0), 1000.0);
  EXPECT_DOUBLE_EQ(side_a(4, 1000.0), 250.0);
  EXPECT_DOUBLE_EQ(side_b(4, 1000.0), 250.0);
}

TEST(Theory, SideProductHalvesPerPartition) {
  for (int h = 0; h < 10; ++h) {
    const double area_h = side_a(h, 1000.0) * side_b(h, 1000.0);
    const double area_h1 = side_a(h + 1, 1000.0) * side_b(h + 1, 1000.0);
    EXPECT_NEAR(area_h1, area_h / 2.0, 1e-9);
  }
}

TEST(Theory, PartitionsForK) {
  // H = log2(rho G / k); for 200 nodes and k = 6.25, H = 5.
  EXPECT_NEAR(partitions_for_k(200.0 / 1e6, 1e6, 6.25), 5.0, 1e-12);
}

TEST(Theory, DestZonePopulation) {
  const NetworkShape net{1000.0, 1000.0, 200.0};
  EXPECT_NEAR(dest_zone_population(net, 5), 6.25, 1e-12);
  EXPECT_NEAR(dest_zone_population(net, 0), 200.0, 1e-12);
}

TEST(Theory, SeparationProbabilityEq5) {
  EXPECT_DOUBLE_EQ(separation_probability(1), 0.5);
  EXPECT_DOUBLE_EQ(separation_probability(2), 0.25);
  EXPECT_DOUBLE_EQ(separation_probability(5), 1.0 / 32.0);
}

TEST(Theory, SeparationProbabilityMatchesGeometry) {
  // p_s(sigma) is the probability D lands in a position separated from S
  // after exactly sigma partitions — i.e. D falls in the "other half" at
  // level sigma, which has measure 2^-sigma of the field.
  const NetworkShape net;
  double total = 0.0;
  for (int sigma = 1; sigma <= 20; ++sigma) {
    total += separation_probability(sigma);
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
  (void)net;
}

TEST(Theory, ExpectedPossibleNodesEq7Monotone) {
  const NetworkShape net{1000.0, 1000.0, 200.0};
  double prev = 0.0;
  for (int H = 1; H <= 8; ++H) {
    const double ne = expected_possible_nodes(net, H);
    EXPECT_GT(ne, prev);
    prev = ne;
  }
}

TEST(Theory, ExpectedPossibleNodesApproachesQuarterOfN) {
  // Fig. 7a's observation: N_e tends to about N/4 for large H (each term
  // a(s)b(s)rho * 2^-s = N * 4^-s... summed geometric to N/3 for the
  // alternating pattern it settles near N/4-N/3).
  const NetworkShape net{1000.0, 1000.0, 400.0};
  const double ne = expected_possible_nodes(net, 10);
  EXPECT_GT(ne, 400.0 * 0.2);
  EXPECT_LT(ne, 400.0 * 0.45);
}

TEST(Theory, ExpectedPossibleNodesScalesWithN) {
  const NetworkShape n100{1000.0, 1000.0, 100.0};
  const NetworkShape n400{1000.0, 1000.0, 400.0};
  EXPECT_NEAR(expected_possible_nodes(n400, 5),
              4.0 * expected_possible_nodes(n100, 5), 1e-9);
}

TEST(Theory, BinomialKnownValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(binomial(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial(52, 5), 2598960.0);
}

class PmfSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PmfSweep, RfCountPmfSumsToOne) {
  const auto [H, sigma] = GetParam();
  double total = 0.0;
  for (int i = 0; i <= H - sigma; ++i) total += rf_count_pmf(H, sigma, i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST_P(PmfSweep, ExpectedRfsMatchesClosedForm) {
  // Eq. (9) has the closed form E = (H - sigma) / 2 (mean of a Binomial
  // with p = 1/2).
  const auto [H, sigma] = GetParam();
  EXPECT_NEAR(expected_rfs_at(H, sigma),
              static_cast<double>(H - sigma) / 2.0, 1e-12);
}

constexpr std::pair<int, int> kPmfCases[] = {
    {5, 1}, {5, 3}, {7, 2}, {10, 1}, {4, 4}};

INSTANTIATE_TEST_SUITE_P(Cases, PmfSweep, ::testing::ValuesIn(kPmfCases));

TEST(Theory, ExpectedRfsIncreasesLinearlyWithH) {
  // Fig. 7b: approximately linear growth. Check successive differences
  // converge to a constant.
  const double d1 = expected_rfs(5) - expected_rfs(4);
  const double d2 = expected_rfs(9) - expected_rfs(8);
  EXPECT_NEAR(d1, d2, 0.05);
  EXPECT_GT(expected_rfs(8), expected_rfs(4));
}

TEST(Theory, ExpectedRfsMonteCarloAgreement) {
  // Simulate the RF+/RF- coin-flip process of Sec. 4.2 directly and
  // compare with Eq. (10).
  constexpr int kH = 6;
  util::Rng rng(99);
  double total = 0.0;
  constexpr int kTrials = 200000;
  for (int t = 0; t < kTrials; ++t) {
    // Draw closeness sigma with p_s(sigma) = 2^-sigma (renormalized over
    // 1..H by rejection).
    int sigma;
    do {
      sigma = 1;
      while (rng.bernoulli(0.5)) ++sigma;  // geometric, p = 1/2
    } while (sigma > kH);                  // reject beyond H (renormalize)
    int rfs = 0;
    for (int i = 0; i < kH - sigma; ++i) rfs += rng.bernoulli(0.5) ? 1 : 0;
    total += rfs;
  }
  // Renormalize the analytical value over the truncated sigma range.
  double expected = 0.0, mass = 0.0;
  for (int sigma = 1; sigma <= kH; ++sigma) {
    expected += expected_rfs_at(kH, sigma) * separation_probability(sigma);
    mass += separation_probability(sigma);
  }
  expected /= mass;
  EXPECT_NEAR(total / kTrials, expected, 0.02);
}

TEST(Theory, BetaFormulas) {
  // Eq. (12): beta = pi r / (2 v).
  EXPECT_NEAR(beta_circle(100.0, 2.0), M_PI * 100.0 / 4.0, 1e-12);
  // Eq. (14): beta = sqrt(pi) r' / v with r' = side / 2.
  EXPECT_NEAR(beta_square_zone(200.0, 2.0), std::sqrt(M_PI) * 50.0, 1e-12);
}

TEST(Theory, SquareCircleApproximationConsistent) {
  // Eq. (13): r = 2 r' / sqrt(pi) makes the circle area equal the square.
  const double side = 250.0;
  const double r = 2.0 * (side / 2.0) / std::sqrt(M_PI);
  EXPECT_NEAR(M_PI * r * r, side * side, 1e-9);
  EXPECT_NEAR(beta_circle(r, 2.0), beta_square_zone(side, 2.0), 1e-9);
}

TEST(Theory, RemainProbabilityDecays) {
  const double beta = beta_square_zone(176.0, 2.0);
  EXPECT_DOUBLE_EQ(remain_probability(0.0, beta), 1.0);
  EXPECT_GT(remain_probability(10.0, beta), remain_probability(20.0, beta));
  EXPECT_NEAR(remain_probability(beta, beta), std::exp(-1.0), 1e-12);
}

TEST(Theory, RemainingNodesEq15Properties) {
  const NetworkShape net{1000.0, 1000.0, 200.0};
  // t = 0: full zone population.
  EXPECT_NEAR(remaining_nodes(net, 5, 2.0, 0.0),
              dest_zone_population(net, 5), 1e-9);
  // Decreasing in time and in speed; increasing in density.
  EXPECT_GT(remaining_nodes(net, 5, 2.0, 10.0),
            remaining_nodes(net, 5, 2.0, 30.0));
  EXPECT_GT(remaining_nodes(net, 5, 2.0, 10.0),
            remaining_nodes(net, 5, 4.0, 10.0));
  const NetworkShape denser{1000.0, 1000.0, 400.0};
  EXPECT_GT(remaining_nodes(denser, 5, 2.0, 10.0),
            remaining_nodes(net, 5, 2.0, 10.0));
  // Static nodes never leave.
  EXPECT_NEAR(remaining_nodes(net, 5, 0.0, 1000.0),
              dest_zone_population(net, 5), 1e-9);
}

TEST(Theory, FewerPartitionsMoreRemainingNodes) {
  // Fig. 13a: H = 4 keeps more nodes than H = 5 at any time.
  const NetworkShape net{1000.0, 1000.0, 200.0};
  for (double t = 0.0; t <= 40.0; t += 10.0) {
    EXPECT_GT(remaining_nodes(net, 4, 2.0, t),
              remaining_nodes(net, 5, 2.0, t));
  }
}

TEST(Theory, RequiredNodeCountInvertsEq15) {
  const NetworkShape net{1000.0, 1000.0, 200.0};
  const double needed = required_node_count(net, 5, 3.0, 10.0, 8.0);
  NetworkShape check = net;
  check.node_count = needed;
  EXPECT_NEAR(remaining_nodes(check, 5, 3.0, 10.0), 8.0, 1e-9);
}

TEST(Theory, RequiredDensityGrowsWithSpeed) {
  // Fig. 13b: faster movement demands higher density for the same k.
  const NetworkShape net{1000.0, 1000.0, 200.0};
  double prev = 0.0;
  for (double v = 1.0; v <= 8.0; v += 1.0) {
    const double n = required_node_count(net, 5, v, 10.0, 8.0);
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(Theory, LocationOverheadSmallForSqrtNServers) {
  // Sec. 4.3: N_L ~ sqrt(N) and f << F give ratio << 1.
  const double ratio = location_overhead_ratio(200.0, 14.0, 1.0, 30.0);
  EXPECT_LT(ratio, 0.1);
  // More servers or more frequent updates raise it.
  EXPECT_GT(location_overhead_ratio(200.0, 100.0, 1.0, 30.0), ratio);
  EXPECT_GT(location_overhead_ratio(200.0, 14.0, 10.0, 30.0), ratio);
}

}  // namespace
}  // namespace alert::analysis
