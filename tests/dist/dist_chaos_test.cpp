// Chaos test for the distributed campaign fan-out (ISSUE acceptance): a
// 1000-unit sweep over three forked worker processes, one of which is
// SIGKILLed mid-run; a fresh worker replaces it, the fleet self-heals by
// reclaiming the dangling lease, and the aggregated manifest is
// byte-identical to an uninterrupted single-worker run. Execution is a
// synthetic runner (pure function of the unit identity) so the thousand
// units exercise the queue, not the simulator.
//
// Fork-based by design — SIGKILL must take a whole process, not a thread —
// so the test is skipped under ThreadSanitizer, which does not support
// multi-threaded children after fork (run_worker starts a heartbeat
// thread). Children leave via _exit: no gtest teardown, no atexit, no
// sanitizer leak check in the child.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstddef>
#include <chrono>
#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "campaign/cache.hpp"
#include "campaign/engine.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "dist/aggregate.hpp"
#include "dist/progress.hpp"
#include "dist/queue.hpp"
#include "dist/worker.hpp"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ALERTSIM_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define ALERTSIM_TSAN 1
#endif

namespace alert::dist {
namespace {

namespace fs = std::filesystem;

constexpr std::size_t kPoints = 10;
constexpr std::size_t kReps = 100;  // 10 x 100 = 1000 units

campaign::CampaignSpec chaos_spec() {
  campaign::CampaignSpec spec;
  spec.name = "chaos";
  spec.banner = "test — dist chaos";
  spec.title = "dist chaos";
  spec.x_label = "nodes";
  spec.y_label = "delivery rate";
  spec.y_metric = "delivery_rate";
  for (std::size_t p = 0; p < kPoints; ++p) {
    campaign::PointSpec point;
    point.curve = "grid";
    point.x = static_cast<double>(20 + p);
    point.config = campaign::paper_default_scenario();
    point.config.node_count = 20 + p;
    point.config.duration_s = 10.0;
    spec.points.push_back(std::move(point));
  }
  return spec;
}

core::RunResult synthetic_result(const campaign::WorkUnit& unit) {
  core::RunResult run;
  run.sent = 100;
  run.delivered = 90 - (unit.point % 7) - (unit.rep % 3);
  run.mean_latency_s = 0.125 * static_cast<double>(unit.point + 1);
  run.mean_hops = 2.0 + static_cast<double>(unit.rep % 5);
  run.trace_digest = 1000003ULL * (unit.point + 1) + unit.rep;
  run.events_executed = 10 + unit.rep;
  return run;
}

/// Synthetic execution with a per-unit delay, so a worker is reliably
/// mid-sweep when the parent delivers SIGKILL.
UnitRunner slow_runner(int delay_us) {
  return [delay_us](const campaign::CampaignSpec&,
                    const campaign::WorkUnit& unit) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    return std::optional<core::RunResult>(synthetic_result(unit));
  };
}

WorkerOptions chaos_options(const std::string& cache_dir,
                            const std::string& id) {
  WorkerOptions options;
  options.worker_id = id;
  options.reps = kReps;
  options.cache_dir = cache_dir;
  options.lease_ttl_s = 0.5;  // dangling leases reclaim fast
  options.poll_interval_s = 0.02;
  return options;
}

std::string manifest_bytes(const obs::RunManifest& manifest) {
  std::ostringstream out;
  manifest.write_json(out);
  return out.str();
}

AggregateOutcome aggregate_quiet(const campaign::CampaignSpec& spec,
                                 const std::string& cache_dir) {
  AggregateOptions options;
  options.reps = kReps;
  options.cache_dir = cache_dir;
  options.print = false;
  return aggregate_campaign(spec, options);
}

/// Fork one worker process; it never returns to gtest.
pid_t spawn_worker(const campaign::CampaignSpec& spec,
                   const std::string& cache_dir, const std::string& id,
                   int delay_us) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    const WorkerOutcome outcome =
        run_worker(spec, chaos_options(cache_dir, id), slow_runner(delay_us));
    ::_exit(outcome.exit_code);
  }
  return pid;
}

TEST(DistChaos, KilledWorkerIsReplacedAndManifestMatchesSerial) {
#ifdef ALERTSIM_TSAN
  GTEST_SKIP() << "fork + threaded children is unsupported under TSan";
#endif
  const std::string base = (fs::path(::testing::TempDir()) /
                            ("alertsim-dist-chaos-" +
                             std::to_string(static_cast<unsigned long>(
                                 ::getpid()))))
                               .string();
  fs::remove_all(base);
  fs::create_directories(base);
  const campaign::CampaignSpec spec = chaos_spec();

  // Uninterrupted single-worker reference on its own cache.
  const std::string serial_cache = base + "/serial";
  const WorkerOutcome serial = run_worker(
      spec, chaos_options(serial_cache, "serial"), slow_runner(0));
  ASSERT_EQ(serial.exit_code, 0);
  ASSERT_EQ(serial.executed, kPoints * kReps);
  const AggregateOutcome serial_agg = aggregate_quiet(spec, serial_cache);
  ASSERT_EQ(serial_agg.exit_code, 0);

  // Fleet: three workers on a shared cache. The victim runs its units 4x
  // slower than its peers, so it is still mid-sweep when the kill lands.
  const std::string fleet_cache = base + "/fleet";
  campaign::ResultCache cache(fleet_cache);
  const WorkQueue queue(cache, spec.name);  // creates the progress dir

  const pid_t victim = spawn_worker(spec, fleet_cache, "chaos-w0", 2000);
  ASSERT_GT(victim, 0);
  std::vector<pid_t> healthy;
  healthy.push_back(spawn_worker(spec, fleet_cache, "chaos-w1", 500));
  healthy.push_back(spawn_worker(spec, fleet_cache, "chaos-w2", 500));
  for (const pid_t pid : healthy) ASSERT_GT(pid, 0);

  // SIGKILL the victim once its progress stream shows it mid-sweep (a few
  // claims in, certainly holding or about to hold a lease).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool victim_seen = false;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const WorkerProgress& p : read_progress(queue.progress_dir())) {
      if (p.worker == "chaos-w0" && p.claimed >= 5) victim_seen = true;
    }
    if (victim_seen) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(victim_seen) << "victim never reported progress";
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // A fresh worker joins the fleet and helps finish the sweep.
  healthy.push_back(spawn_worker(spec, fleet_cache, "chaos-w3", 500));
  ASSERT_GT(healthy.back(), 0);

  int status = 0;
  ASSERT_EQ(::waitpid(victim, &status, 0), victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  for (const pid_t pid : healthy) {
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  // The interrupted fleet's manifest is byte-identical to the serial run.
  const AggregateOutcome fleet_agg = aggregate_quiet(spec, fleet_cache);
  ASSERT_EQ(fleet_agg.exit_code, 0);
  EXPECT_EQ(fleet_agg.units_done, kPoints * kReps);
  EXPECT_EQ(fleet_agg.units_poisoned, 0u);
  EXPECT_EQ(manifest_bytes(fleet_agg.manifest),
            manifest_bytes(serial_agg.manifest));

  // Converged journal: the fleet participated (>= 3 claimers — the
  // replacement usually claims too, but the sweep may drain first on a
  // fast machine), no unit was claimed past the retry budget, and any
  // lease the victim left dangling was reclaimed.
  campaign::Journal journal(fleet_cache + "/journal", spec.name);
  EXPECT_GE(journal.workers().size(), 3u);
  // The replacement worker did start and stream progress.
  bool replacement_seen = false;
  for (const WorkerProgress& p : read_progress(queue.progress_dir())) {
    if (p.worker == "chaos-w3") replacement_seen = true;
  }
  EXPECT_TRUE(replacement_seen);
  EXPECT_LE(journal.max_claim_count(), 1u + RetryPolicy{}.max_retries);
  EXPECT_EQ(journal.done_count(), kPoints * kReps);

  fs::remove_all(base);
}

}  // namespace
}  // namespace alert::dist
