// Unit tests for the distributed campaign fan-out (src/dist/): lease
// acquisition/renewal/break races, the work-queue state machine with retry
// backoff and poison quarantine, per-worker progress round-trips, and the
// worker-loop/aggregator contract — N workers over one shared cache
// converge on a manifest byte-identical to a single worker's.
//
// Execution is replaced by a synthetic UnitRunner (a pure function of
// (point, replication)), so a thousand-unit grid costs filesystem traffic
// only; the real-simulation path is covered by campaign_test.cpp and the
// dist smoke script.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/engine.hpp"
#include "campaign/journal.hpp"
#include "campaign/spec.hpp"
#include "dist/aggregate.hpp"
#include "dist/lease.hpp"
#include "dist/progress.hpp"
#include "dist/queue.hpp"
#include "dist/reclaim.hpp"
#include "dist/worker.hpp"

namespace alert::dist {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::path(::testing::TempDir()) /
               (tag + std::to_string(counter_++)))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

/// A small sweep whose unit keys are real (distinct configs per point) but
/// whose execution the tests replace with synthetic results.
campaign::CampaignSpec grid_spec(const std::string& name,
                                 std::size_t point_count) {
  campaign::CampaignSpec spec;
  spec.name = name;
  spec.banner = "test — dist grid";
  spec.title = "dist grid";
  spec.x_label = "nodes";
  spec.y_label = "delivery rate";
  spec.y_metric = "delivery_rate";
  for (std::size_t p = 0; p < point_count; ++p) {
    campaign::PointSpec point;
    point.curve = "grid";
    point.x = static_cast<double>(20 + p);
    point.config = campaign::paper_default_scenario();
    point.config.node_count = 20 + p;
    point.config.duration_s = 10.0;
    spec.points.push_back(std::move(point));
  }
  return spec;
}

/// Deterministic stand-in for core::run_once — a pure function of the unit
/// identity, so every worker (and every retry) stores identical bytes.
core::RunResult synthetic_result(const campaign::WorkUnit& unit) {
  core::RunResult run;
  run.sent = 100;
  run.delivered = 90 - (unit.point % 7) - (unit.rep % 3);
  run.mean_latency_s = 0.125 * static_cast<double>(unit.point + 1);
  run.mean_hops = 2.0 + static_cast<double>(unit.rep);
  run.trace_digest = 1000003ULL * (unit.point + 1) + unit.rep;
  run.events_executed = 10 + unit.rep;
  return run;
}

UnitRunner synthetic_runner() {
  return [](const campaign::CampaignSpec&, const campaign::WorkUnit& unit) {
    return std::optional<core::RunResult>(synthetic_result(unit));
  };
}

WorkerOptions worker_options(const std::string& cache_dir,
                             const std::string& id, std::size_t reps) {
  WorkerOptions options;
  options.worker_id = id;
  options.reps = reps;
  options.cache_dir = cache_dir;
  options.lease_ttl_s = 10.0;  // own leases never go stale in-test
  options.poll_interval_s = 0.01;
  options.retry.backoff_base_s = 0.01;  // retries are near-immediate
  options.retry.backoff_cap_s = 0.05;
  return options;
}

std::string manifest_bytes(const obs::RunManifest& manifest) {
  std::ostringstream out;
  manifest.write_json(out);
  return out.str();
}

AggregateOutcome aggregate_quiet(const campaign::CampaignSpec& spec,
                                 const std::string& cache_dir,
                                 std::size_t reps,
                                 bool dist_summary = false) {
  AggregateOptions options;
  options.reps = reps;
  options.cache_dir = cache_dir;
  options.print = false;
  options.dist_summary = dist_summary;
  return aggregate_campaign(spec, options);
}

// --- lease protocol ---------------------------------------------------------

TEST(Lease, FirstClaimerWinsUntilReleased) {
  TempDir dir("alertsim-lease-test-");
  LeaseDir leases(dir.path() + "/leases");

  ASSERT_TRUE(leases.try_acquire("unit-a", "w1"));
  EXPECT_FALSE(leases.try_acquire("unit-a", "w2"));  // held
  EXPECT_FALSE(leases.try_acquire("unit-a", "w1"));  // not reentrant either

  const auto held = leases.read("unit-a");
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->owner, "w1");
  EXPECT_EQ(held->sequence, 0u);

  leases.release("unit-a", "w2");  // wrong owner: no-op
  EXPECT_TRUE(leases.read("unit-a").has_value());
  leases.release("unit-a", "w1");
  EXPECT_FALSE(leases.read("unit-a").has_value());
  EXPECT_TRUE(leases.try_acquire("unit-a", "w2"));
}

TEST(Lease, RenewRefreshesOwnerOnlyAndBumpsSequence) {
  TempDir dir("alertsim-lease-test-");
  LeaseDir leases(dir.path() + "/leases");
  ASSERT_TRUE(leases.try_acquire("unit-a", "w1"));

  EXPECT_FALSE(leases.renew("unit-a", "w2"));  // not the holder
  EXPECT_TRUE(leases.renew("unit-a", "w1"));
  EXPECT_TRUE(leases.renew("unit-a", "w1"));
  const auto held = leases.read("unit-a");
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->sequence, 2u);
  EXPECT_FALSE(leases.renew("unit-b", "w1"));  // never acquired
}

TEST(Lease, AgeTracksAcquisitionAndBreakReturnsHolderOnce) {
  TempDir dir("alertsim-lease-test-");
  LeaseDir leases(dir.path() + "/leases");
  EXPECT_FALSE(leases.age_seconds("unit-a").has_value());
  ASSERT_TRUE(leases.try_acquire("unit-a", "w1"));
  const auto age = leases.age_seconds("unit-a");
  ASSERT_TRUE(age.has_value());
  EXPECT_GE(*age, 0.0);
  EXPECT_LT(*age, 30.0);

  const auto broken = leases.try_break("unit-a");
  ASSERT_TRUE(broken.has_value());
  EXPECT_EQ(broken->owner, "w1");
  EXPECT_FALSE(leases.try_break("unit-a").has_value());  // already gone
  EXPECT_FALSE(leases.read("unit-a").has_value());
  EXPECT_TRUE(leases.try_acquire("unit-a", "w2"));
}

TEST(Lease, ConcurrentBreakersProduceExactlyOneWinner) {
  TempDir dir("alertsim-lease-test-");
  LeaseDir leases(dir.path() + "/leases");
  ASSERT_TRUE(leases.try_acquire("unit-a", "stale-worker"));

  constexpr int kBreakers = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kBreakers);
  for (int i = 0; i < kBreakers; ++i) {
    threads.emplace_back([&leases, &winners] {
      if (leases.try_break("unit-a").has_value()) winners.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(Lease, ConcurrentClaimersProduceExactlyOneWinner) {
  TempDir dir("alertsim-lease-test-");
  LeaseDir leases(dir.path() + "/leases");

  constexpr int kClaimers = 8;
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  threads.reserve(kClaimers);
  for (int i = 0; i < kClaimers; ++i) {
    std::string owner = "w";
    owner += std::to_string(i);
    threads.emplace_back([&leases, &winners, owner = std::move(owner)] {
      if (leases.try_acquire("unit-a", owner)) winners.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
}

// --- retry policy ------------------------------------------------------------

TEST(RetryPolicy, BackoffDoublesFromBaseAndCaps) {
  RetryPolicy policy;
  policy.backoff_base_s = 0.25;
  policy.backoff_cap_s = 1.0;
  EXPECT_DOUBLE_EQ(policy.backoff_s(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 0.25);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2), 0.5);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(10), 1.0);  // capped
}

// --- work queue state machine ------------------------------------------------

TEST(WorkQueue, StateMachineWalksReadyLeasedDonePoisoned) {
  TempDir dir("alertsim-queue-test-");
  campaign::ResultCache cache(dir.path());
  RetryPolicy policy;
  policy.max_retries = 1;
  policy.backoff_base_s = 60.0;  // failures park the unit for this test
  WorkQueue queue(cache, "qtest", policy);

  const campaign::CampaignSpec spec = grid_spec("qtest", 1);
  const campaign::UnitGrid grid = campaign::expand_units(spec, 2);
  ASSERT_EQ(grid.units.size(), 2u);
  const std::string& key = grid.units[0].key;
  const std::string& other = grid.units[1].key;

  EXPECT_EQ(queue.state(key), UnitState::Ready);
  ASSERT_TRUE(queue.try_claim(key, "w1"));
  EXPECT_EQ(queue.state(key), UnitState::Leased);
  EXPECT_FALSE(queue.try_claim(key, "w2"));  // not Ready

  // Completion: store the result, release — Done wins every other state.
  ASSERT_TRUE(cache.store(key, synthetic_result(grid.units[0])));
  queue.release(key, "w1");
  EXPECT_EQ(queue.state(key), UnitState::Done);
  EXPECT_FALSE(queue.try_claim(key, "w2"));

  // Failure: first failure parks the unit in Backoff (base 60s)...
  ASSERT_TRUE(queue.try_claim(other, "w1"));
  EXPECT_EQ(queue.record_failure(other, "w1"), 1u);
  EXPECT_EQ(queue.state(other), UnitState::Backoff);
  EXPECT_EQ(queue.failures(other), 1u);
  EXPECT_FALSE(queue.leases().read(other).has_value());  // lease dropped

  // ...and the next failure exceeds max_retries=1: quarantined.
  // (Claim is refused in Backoff, so drive record_failure directly as a
  // reclaim would.)
  ASSERT_TRUE(queue.leases().try_acquire(other, "w2"));
  EXPECT_EQ(queue.record_failure(other, "w2"), 2u);
  EXPECT_EQ(queue.state(other), UnitState::Poisoned);
  EXPECT_TRUE(queue.is_poisoned(other));
  EXPECT_EQ(queue.poisoned_keys(), std::vector<std::string>{other});
  EXPECT_FALSE(queue.try_claim(other, "w3"));
}

TEST(WorkQueue, BackoffExpiresBackToReady) {
  TempDir dir("alertsim-queue-test-");
  campaign::ResultCache cache(dir.path());
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_s = 0.05;
  WorkQueue queue(cache, "qtest", policy);

  ASSERT_TRUE(queue.try_claim("unit-key", "w1"));
  (void)queue.record_failure("unit-key", "w1");
  // Freshly failed: parked. After the 50 ms backoff: claimable again.
  EXPECT_EQ(queue.state("unit-key"), UnitState::Backoff);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(queue.state("unit-key"), UnitState::Ready);
  EXPECT_TRUE(queue.try_claim("unit-key", "w2"));
}

TEST(WorkQueue, ReclaimChargesCrashButNotCompletedUnits) {
  TempDir dir("alertsim-queue-test-");
  campaign::ResultCache cache(dir.path());
  WorkQueue queue(cache, "qtest");

  const campaign::CampaignSpec spec = grid_spec("qtest", 1);
  const campaign::UnitGrid grid = campaign::expand_units(spec, 2);
  const std::string& crashed = grid.units[0].key;
  const std::string& finished = grid.units[1].key;

  // Fresh leases are never reclaimed.
  ASSERT_TRUE(queue.try_claim(crashed, "dead-worker"));
  EXPECT_FALSE(queue.try_reclaim(crashed, 3600.0).has_value());

  // Stale lease on an unfinished unit: break + charge one failure.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto broken = queue.try_reclaim(crashed, 0.02);
  ASSERT_TRUE(broken.has_value());
  EXPECT_EQ(broken->owner, "dead-worker");
  EXPECT_EQ(queue.failures(crashed), 1u);

  // Stale lease on a unit whose result landed (holder died after the store
  // but before the release): reclaimed without a failure charge.
  ASSERT_TRUE(queue.try_claim(finished, "dead-worker"));
  ASSERT_TRUE(cache.store(finished, synthetic_result(grid.units[1])));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const auto done_break = queue.try_reclaim(finished, 0.02);
  ASSERT_TRUE(done_break.has_value());
  EXPECT_EQ(queue.failures(finished), 0u);
  EXPECT_EQ(queue.state(finished), UnitState::Done);
}

TEST(ReclaimPass, JournalsEachBreakExactlyOnce) {
  TempDir dir("alertsim-reclaim-test-");
  campaign::ResultCache cache(dir.path());
  WorkQueue queue(cache, "rtest");
  campaign::Journal journal(dir.path() + "/journal", "rtest");

  const campaign::CampaignSpec spec = grid_spec("rtest", 2);
  const campaign::UnitGrid grid = campaign::expand_units(spec, 2);
  ASSERT_TRUE(queue.try_claim(grid.units[0].key, "dead-worker"));
  ASSERT_TRUE(queue.try_claim(grid.units[2].key, "dead-worker"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const ReclaimStats stats =
      reclaim_stale_leases(queue, grid.units, 0.02, &journal);
  EXPECT_EQ(stats.reclaimed, 2u);
  EXPECT_EQ(journal.total_reclaimed(), 2u);

  const ReclaimStats again =
      reclaim_stale_leases(queue, grid.units, 0.02, &journal);
  EXPECT_EQ(again.reclaimed, 0u);  // nothing left to break
  EXPECT_EQ(journal.total_reclaimed(), 2u);
}

// --- progress files ----------------------------------------------------------

TEST(Progress, RoundTripsAtomicallyAndAggregates) {
  TempDir dir("alertsim-progress-test-");
  WorkerProgress a;
  a.worker = "w-a";
  a.campaign = "ptest";
  a.claimed = 5;
  a.executed = 4;
  a.failed = 1;
  a.reclaimed = 2;
  WorkerProgress b = a;
  b.worker = "w-b";
  b.store_errors = 3;
  ASSERT_TRUE(write_progress_atomic(dir.path(), a));
  ASSERT_TRUE(write_progress_atomic(dir.path(), b));
  // Overwrites replace (same worker id), never accumulate files.
  a.executed = 5;
  ASSERT_TRUE(write_progress_atomic(dir.path(), a));

  // Garbage files are skipped, not fatal.
  std::ofstream(dir.path() + "/junk.json") << "{not json";

  const std::vector<WorkerProgress> all = read_progress(dir.path());
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].worker, "w-a");
  EXPECT_EQ(all[0].executed, 5u);
  EXPECT_EQ(all[1].worker, "w-b");

  const AggregateProgress total = aggregate_progress(all);
  EXPECT_EQ(total.workers, 2u);
  EXPECT_EQ(total.claimed, 10u);
  EXPECT_EQ(total.executed, 9u);
  EXPECT_EQ(total.failed, 2u);
  EXPECT_EQ(total.reclaimed, 4u);
  EXPECT_EQ(total.store_errors, 3u);
}

// --- worker loop + aggregator --------------------------------------------------

TEST(Worker, ThreeConcurrentWorkersMatchOneWorkerByteForByte) {
  TempDir dir("alertsim-worker-test-");
  const campaign::CampaignSpec spec = grid_spec("wtest", 3);
  constexpr std::size_t kReps = 4;

  // Reference: one worker, its own cache.
  const std::string solo_cache = dir.path() + "/solo";
  const WorkerOutcome solo = run_worker(
      spec, worker_options(solo_cache, "solo", kReps), synthetic_runner());
  EXPECT_EQ(solo.exit_code, 0);
  EXPECT_EQ(solo.executed, 12u);
  const AggregateOutcome solo_agg = aggregate_quiet(spec, solo_cache, kReps);
  ASSERT_EQ(solo_agg.exit_code, 0);

  // Fleet: three workers racing one shared cache.
  const std::string fleet_cache = dir.path() + "/fleet";
  std::vector<WorkerOutcome> outcomes(3);
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i) {
      threads.emplace_back([&, i] {
        outcomes[static_cast<std::size_t>(i)] = run_worker(
            spec, worker_options(fleet_cache, "w" + std::to_string(i), kReps),
            synthetic_runner());
      });
    }
    for (std::thread& t : threads) t.join();
  }
  std::size_t fleet_executed = 0;
  for (const WorkerOutcome& o : outcomes) {
    EXPECT_EQ(o.exit_code, 0);
    EXPECT_EQ(o.units_total, 12u);
    fleet_executed += o.executed;
  }
  EXPECT_EQ(fleet_executed, 12u);  // leases made the split exact

  const AggregateOutcome fleet_agg =
      aggregate_quiet(spec, fleet_cache, kReps);
  ASSERT_EQ(fleet_agg.exit_code, 0);
  EXPECT_EQ(manifest_bytes(fleet_agg.manifest),
            manifest_bytes(solo_agg.manifest));

  // The converged journal shows one claim per unit and all three workers.
  campaign::Journal journal(fleet_cache + "/journal", spec.name);
  EXPECT_EQ(journal.max_claim_count(), 1u);
  EXPECT_EQ(journal.done_count(), 12u);
}

TEST(Worker, PoisonUnitQuarantinesWithoutStallingTheSweep) {
  TempDir dir("alertsim-worker-test-");
  const campaign::CampaignSpec spec = grid_spec("ptest", 2);
  const std::string cache_dir = dir.path() + "/cache";

  // The runner fails every attempt at (point 1, rep 0).
  const UnitRunner runner = [](const campaign::CampaignSpec&,
                               const campaign::WorkUnit& unit)
      -> std::optional<core::RunResult> {
    if (unit.point == 1 && unit.rep == 0) return std::nullopt;
    return synthetic_result(unit);
  };
  WorkerOptions options = worker_options(cache_dir, "w0", 2);
  options.retry.max_retries = 1;
  const WorkerOutcome outcome = run_worker(spec, options, runner);
  EXPECT_EQ(outcome.exit_code, 0);  // converged: every unit terminal
  EXPECT_EQ(outcome.executed, 3u);
  EXPECT_EQ(outcome.failed, 2u);  // initial attempt + one retry
  EXPECT_EQ(outcome.poisoned_total, 1u);

  const AggregateOutcome agg = aggregate_quiet(spec, cache_dir, 2);
  EXPECT_EQ(agg.exit_code, 3);
  EXPECT_EQ(agg.units_done, 3u);
  EXPECT_EQ(agg.units_poisoned, 1u);
  ASSERT_EQ(agg.poisoned_keys.size(), 1u);

  // The retry budget bounds executions: 1 + max_retries claims at most.
  campaign::Journal journal(cache_dir + "/journal", spec.name);
  EXPECT_LE(journal.max_claim_count(), 2u);
  EXPECT_EQ(journal.total_failed(), 2u);
}

TEST(Worker, FlakyUnitRetriesThenConverges) {
  TempDir dir("alertsim-worker-test-");
  const campaign::CampaignSpec spec = grid_spec("ftest", 2);
  const std::string cache_dir = dir.path() + "/cache";

  std::atomic<int> attempts{0};
  const UnitRunner runner = [&attempts](const campaign::CampaignSpec&,
                                        const campaign::WorkUnit& unit)
      -> std::optional<core::RunResult> {
    if (unit.point == 0 && unit.rep == 1 && attempts.fetch_add(1) == 0) {
      return std::nullopt;  // first attempt only
    }
    return synthetic_result(unit);
  };
  const WorkerOutcome outcome =
      run_worker(spec, worker_options(cache_dir, "w0", 2), runner);
  EXPECT_EQ(outcome.exit_code, 0);
  EXPECT_EQ(outcome.executed, 4u);
  EXPECT_EQ(outcome.failed, 1u);
  EXPECT_EQ(outcome.poisoned_total, 0u);

  const AggregateOutcome agg = aggregate_quiet(spec, cache_dir, 2, true);
  ASSERT_EQ(agg.exit_code, 0);
  EXPECT_TRUE(agg.manifest.has_dist);
  EXPECT_EQ(agg.manifest.dist.workers, 1u);
  EXPECT_EQ(agg.manifest.dist.retries, 1u);
  EXPECT_EQ(agg.manifest.dist.poisoned_units, 0u);
}

TEST(Aggregate, HealsCorruptEntryAndReportsIncomplete) {
  TempDir dir("alertsim-aggregate-test-");
  const campaign::CampaignSpec spec = grid_spec("atest", 2);
  const std::string cache_dir = dir.path() + "/cache";

  const WorkerOutcome filled = run_worker(
      spec, worker_options(cache_dir, "w0", 2), synthetic_runner());
  ASSERT_EQ(filled.exit_code, 0);
  const AggregateOutcome before = aggregate_quiet(spec, cache_dir, 2);
  ASSERT_EQ(before.exit_code, 0);

  // Corrupt one entry in place: present under the final name, unparsable.
  const campaign::UnitGrid grid = campaign::expand_units(spec, 2);
  campaign::ResultCache cache(cache_dir);
  std::ofstream(cache.object_path(grid.units[1].key), std::ios::trunc)
      << "{torn";

  AggregateOutcome healed = aggregate_quiet(spec, cache_dir, 2);
  EXPECT_EQ(healed.exit_code, 3);  // refuses to emit a manifest with a hole
  EXPECT_EQ(healed.healed_corrupt, 1u);
  EXPECT_EQ(healed.units_pending, 1u);
  EXPECT_FALSE(cache.entry_exists(grid.units[1].key));  // deleted for rerun

  // One more worker pass re-executes exactly the healed unit; the final
  // manifest byte-matches the pre-corruption aggregate.
  const WorkerOutcome repair = run_worker(
      spec, worker_options(cache_dir, "w1", 2), synthetic_runner());
  EXPECT_EQ(repair.executed, 1u);
  const AggregateOutcome after = aggregate_quiet(spec, cache_dir, 2);
  ASSERT_EQ(after.exit_code, 0);
  EXPECT_EQ(manifest_bytes(after.manifest), manifest_bytes(before.manifest));
}

TEST(Aggregate, PendingUnitsReportIncompleteWithoutManifest) {
  TempDir dir("alertsim-aggregate-test-");
  const campaign::CampaignSpec spec = grid_spec("pending", 2);
  const AggregateOutcome agg = aggregate_quiet(spec, dir.path() + "/c", 2);
  EXPECT_EQ(agg.exit_code, 3);
  EXPECT_EQ(agg.units_done, 0u);
  EXPECT_EQ(agg.units_pending, 4u);
}

}  // namespace
}  // namespace alert::dist
