#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace alert::core {
namespace {

/// Small, fast scenario for harness tests.
ScenarioConfig small_scenario() {
  ScenarioConfig cfg;
  cfg.node_count = 80;
  cfg.flow_count = 3;
  cfg.duration_s = 20.0;
  cfg.seed = 7;
  return cfg;
}

TEST(Experiment, RunOnceIsDeterministic) {
  const ScenarioConfig cfg = small_scenario();
  const RunResult a = run_once(cfg, 0);
  const RunResult b = run_once(cfg, 0);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_DOUBLE_EQ(a.mean_hops, b.mean_hops);
  EXPECT_DOUBLE_EQ(a.mean_participants, b.mean_participants);
}

TEST(Experiment, DifferentReplicationsDiffer) {
  const ScenarioConfig cfg = small_scenario();
  const RunResult a = run_once(cfg, 0);
  const RunResult b = run_once(cfg, 1);
  // Same config, different seeds: traffic endpoints differ.
  EXPECT_NE(a.mean_latency_s, b.mean_latency_s);
}

TEST(Experiment, TrafficIsGenerated) {
  const RunResult r = run_once(small_scenario(), 0);
  // 3 flows, one packet each 2 s from t=3 to t=20: ~8 packets per flow.
  EXPECT_GE(r.sent, 20u);
  EXPECT_LE(r.sent, 30u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.mean_hops, 0.0);
  EXPECT_GT(r.mean_latency_s, 0.0);
}

TEST(Experiment, PacketsPerFlowCapRespected) {
  ScenarioConfig cfg = small_scenario();
  cfg.packets_per_flow = 2;
  const RunResult r = run_once(cfg, 0);
  EXPECT_EQ(r.sent, 6u);  // 3 flows x 2 packets
}

class ProtocolSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(ProtocolSweep, EveryProtocolDeliversTraffic) {
  ScenarioConfig cfg = small_scenario();
  cfg.node_count = 120;  // dense enough for all baselines
  cfg.protocol = GetParam();
  const RunResult r = run_once(cfg, 0);
  EXPECT_GT(r.sent, 0u);
  EXPECT_GT(r.delivery_rate(), 0.5)
      << "protocol " << protocol_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(All, ProtocolSweep,
                         ::testing::Values(ProtocolKind::Alert,
                                           ProtocolKind::Gpsr,
                                           ProtocolKind::Alarm,
                                           ProtocolKind::Ao2p),
                         [](const auto& param_info) {
                           return protocol_name(param_info.param);
                         });

TEST(Experiment, AlertHasMoreParticipantsThanGpsr) {
  ScenarioConfig cfg = small_scenario();
  cfg.node_count = 150;
  cfg.duration_s = 40.0;
  cfg.protocol = ProtocolKind::Alert;
  const RunResult alert_run = run_once(cfg, 0);
  cfg.protocol = ProtocolKind::Gpsr;
  const RunResult gpsr_run = run_once(cfg, 0);
  EXPECT_GT(alert_run.mean_participants, gpsr_run.mean_participants);
  EXPECT_GT(alert_run.rf_per_packet, 0.0);
  EXPECT_DOUBLE_EQ(gpsr_run.rf_per_packet, 0.0);
}

TEST(Experiment, DestinationUpdateTogglesFreezing) {
  ScenarioConfig cfg = small_scenario();
  cfg.speed_mps = 8.0;
  cfg.duration_s = 60.0;
  cfg.protocol = ProtocolKind::Gpsr;
  cfg.destination_update = true;
  const RunResult with = run_once(cfg, 0);
  cfg.destination_update = false;
  const RunResult without = run_once(cfg, 0);
  // Stale destination positions cannot beat fresh ones.
  EXPECT_GE(with.delivery_rate() + 0.05, without.delivery_rate());
}

TEST(Experiment, ResidencySamplesCollected) {
  const RunResult r = run_once(small_scenario(), 0);
  EXPECT_FALSE(r.remaining_by_sample.empty());
  // First sample is the initial population: at least as large as later.
  EXPECT_GE(r.remaining_by_sample.front() + 1e-9,
            r.remaining_by_sample.back());
}

TEST(Experiment, RunExperimentAggregatesReplications) {
  const ExperimentResult r = run_experiment(small_scenario(), 3, 1);
  EXPECT_EQ(r.replications, 3u);
  EXPECT_EQ(r.delivery_rate.count(), 3u);
  EXPECT_GT(r.latency_s.mean(), 0.0);
  EXPECT_GE(r.delivery_rate.ci95_halfwidth(), 0.0);
}

TEST(Experiment, ParallelAndSerialAggregationMatch) {
  const ScenarioConfig cfg = small_scenario();
  const ExperimentResult serial = run_experiment(cfg, 3, 1);
  const ExperimentResult parallel = run_experiment(cfg, 3, 3);
  // Exact: aggregation happens in replication order regardless of thread
  // count, so parallel and serial results are bit-identical.
  EXPECT_EQ(serial.latency_s.mean(), parallel.latency_s.mean());
  EXPECT_EQ(serial.delivery_rate.mean(), parallel.delivery_rate.mean());
  EXPECT_EQ(serial.trace_digests, parallel.trace_digests);
}

TEST(Experiment, GroupMobilityScenarioRuns) {
  ScenarioConfig cfg = small_scenario();
  cfg.mobility = MobilityKind::Group;
  cfg.group_count = 5;
  cfg.group_range_m = 200.0;
  const RunResult r = run_once(cfg, 0);
  EXPECT_GT(r.delivered, 0u);
}

TEST(Experiment, AttacksOnlyRunWhenRequested) {
  ScenarioConfig cfg = small_scenario();
  cfg.run_attacks = false;
  const RunResult off = run_once(cfg, 0);
  EXPECT_DOUBLE_EQ(off.timing_source_rate, 0.0);
  cfg.run_attacks = true;
  cfg.protocol = ProtocolKind::Gpsr;
  const RunResult on = run_once(cfg, 0);
  EXPECT_GT(on.timing_source_rate, 0.5);  // GPSR is exposed
}

TEST(Experiment, BenchReplicationsHonoursEnv) {
  ::unsetenv("ALERTSIM_REPS");
  EXPECT_EQ(bench_replications(10), 10u);
  ::setenv("ALERTSIM_REPS", "4", 1);
  EXPECT_EQ(bench_replications(10), 4u);
  ::unsetenv("ALERTSIM_REPS");
}

TEST(ExperimentDeathTest, BenchReplicationsRejectsBadEnv) {
  // A typo'd ALERTSIM_REPS must never silently fall back — a user asking
  // for 30 replications and getting 10 wastes hours of sweeps.
  for (const char* bad : {"junk", "0", "-3", "10x", "999999999999999999999"}) {
    ::setenv("ALERTSIM_REPS", bad, 1);
    EXPECT_EXIT((void)bench_replications(10), ::testing::ExitedWithCode(2),
                "is invalid")
        << "ALERTSIM_REPS=" << bad;
  }
  ::unsetenv("ALERTSIM_REPS");
}

TEST(Scenario, ProtocolNames) {
  EXPECT_STREQ(protocol_name(ProtocolKind::Alert), "ALERT");
  EXPECT_STREQ(protocol_name(ProtocolKind::Gpsr), "GPSR");
  EXPECT_STREQ(protocol_name(ProtocolKind::Alarm), "ALARM");
  EXPECT_STREQ(protocol_name(ProtocolKind::Ao2p), "AO2P");
}

TEST(Scenario, NetworkConfigDerivation) {
  ScenarioConfig cfg;
  cfg.radio_range_m = 123.0;
  cfg.hello_period_s = 2.0;
  const net::NetworkConfig n = cfg.network_config();
  EXPECT_DOUBLE_EQ(n.radio_range_m, 123.0);
  EXPECT_DOUBLE_EQ(n.neighbor_max_age_s, 5.0);
}

}  // namespace
}  // namespace alert::core
