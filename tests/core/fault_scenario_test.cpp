#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "campaign/spec.hpp"  // alert-lint: allow(module-layering) test checks fault scenarios round-trip campaign specs
#include "core/scenario_codec.hpp"

namespace alert::core {
namespace {

/// Value of `key` in a canonical dump, or "" when the key is absent.
std::string value_of(const std::string& dump, std::string_view key) {
  const std::string needle = std::string(key) + "=";
  std::size_t pos = 0;
  while (pos < dump.size()) {
    const std::size_t eol = dump.find('\n', pos);
    const std::string_view line(dump.data() + pos, eol - pos);
    if (line.substr(0, needle.size()) == needle) {
      return std::string(line.substr(needle.size()));
    }
    pos = eol + 1;
  }
  return "";
}

ScenarioConfig faulty_scenario() {
  ScenarioConfig cfg;
  cfg.node_count = 80;
  cfg.flow_count = 3;
  cfg.duration_s = 20.0;
  cfg.seed = 7;
  cfg.faults.loss.iid = 0.2;
  cfg.faults.churn.mttf_s = 8.0;
  cfg.faults.churn.mttr_s = 3.0;
  cfg.faults.outages.push_back({{250.0, 250.0}, 100.0, 5.0, 12.0});
  cfg.mac.arq.enabled = true;
  return cfg;
}

// --- codec: conditional emission + golden regression -----------------------

TEST(FaultCodec, DefaultDumpCarriesNoFaultKeys) {
  const std::string dump = canonical_scenario(ScenarioConfig{});
  EXPECT_EQ(dump.find("faults."), std::string::npos);
  EXPECT_EQ(dump.find("mac.arq"), std::string::npos);
}

TEST(FaultCodec, DefaultUnitKeysMatchPreFaultGoldens) {
  // Pinned before the fault layer existed: any change here invalidates
  // every warm campaign cache and breaks the defaults-are-inert contract.
  EXPECT_EQ(scenario_unit_key(ScenarioConfig{}, 0),
            "4a25d63079def6e2ca4937f1865e8d61feae5907");
  EXPECT_EQ(scenario_unit_key(campaign::paper_default_scenario(), 0),
            "70a531c203713def02848ccb57c5ac480fe76522");
}

TEST(FaultCodec, ActivePlanEmitsEveryKnob) {
  const std::string dump = canonical_scenario(faulty_scenario());
  for (const char* key :
       {"faults.loss.iid", "faults.loss.gilbert", "faults.loss.ge_p_good_bad",
        "faults.loss.ge_p_bad_good", "faults.loss.ge_loss_good",
        "faults.loss.ge_loss_bad", "faults.churn.mttf_s",
        "faults.churn.mttr_s", "faults.outages", "mac.arq.enabled",
        "mac.arq.retry_limit", "mac.arq.ack_timeout_s",
        "mac.arq.backoff_base_s", "mac.arq.ack_bytes"}) {
    EXPECT_NE(dump.find(std::string(key) + "="), std::string::npos) << key;
  }
  // ARQ alone (no fault plan) must also surface — it changes behaviour.
  ScenarioConfig arq_only;
  arq_only.mac.arq.enabled = true;
  EXPECT_NE(canonical_scenario(arq_only).find("mac.arq.enabled=true"),
            std::string::npos);
}

TEST(FaultCodec, FaultKnobsRoundTripThroughParams) {
  const ScenarioConfig original = faulty_scenario();
  const std::string dump = canonical_scenario(original);
  ScenarioConfig rebuilt;
  rebuilt.node_count = original.node_count;
  rebuilt.flow_count = original.flow_count;
  rebuilt.duration_s = original.duration_s;
  rebuilt.seed = original.seed;
  std::string error;
  for (const char* key :
       {"faults.loss.iid", "faults.loss.gilbert", "faults.loss.ge_p_good_bad",
        "faults.loss.ge_p_bad_good", "faults.loss.ge_loss_good",
        "faults.loss.ge_loss_bad", "faults.churn.mttf_s",
        "faults.churn.mttr_s", "faults.outages", "mac.arq.enabled",
        "mac.arq.retry_limit", "mac.arq.ack_timeout_s",
        "mac.arq.backoff_base_s", "mac.arq.ack_bytes"}) {
    ASSERT_TRUE(apply_scenario_param(rebuilt, key, value_of(dump, key),
                                     &error))
        << key << ": " << error;
  }
  EXPECT_EQ(canonical_scenario(rebuilt), dump);
  EXPECT_EQ(scenario_unit_key(rebuilt, 0), scenario_unit_key(original, 0));
}

TEST(FaultCodec, FaultKnobsChangeTheUnitKey) {
  const ScenarioConfig base;
  ScenarioConfig lossy = base;
  lossy.faults.loss.iid = 0.1;
  EXPECT_NE(scenario_unit_key(lossy, 0), scenario_unit_key(base, 0));
  ScenarioConfig arq = base;
  arq.mac.arq.enabled = true;
  EXPECT_NE(scenario_unit_key(arq, 0), scenario_unit_key(base, 0));
  EXPECT_NE(scenario_unit_key(arq, 0), scenario_unit_key(lossy, 0));
}

TEST(FaultCodec, MalformedOutagesAreRejected) {
  ScenarioConfig cfg;
  std::string error;
  for (const char* bad : {"1:2:3", "1:2:3:4:5:6", "a:b:c:d:e", "1:2:3:4:"}) {
    EXPECT_FALSE(apply_scenario_param(cfg, "faults.outages", bad, &error))
        << bad;
  }
  EXPECT_TRUE(apply_scenario_param(cfg, "faults.outages",
                                   "250:250:100:5:12;10:10:5:0:1", &error))
      << error;
  ASSERT_EQ(cfg.faults.outages.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.faults.outages[1].radius_m, 5.0);
}

// --- scenario validation: hard exit-2 contract -----------------------------

using FaultScenarioDeathTest = ::testing::Test;

TEST(FaultScenarioDeathTest, RunOnceRejectsBadLossProbability) {
  ScenarioConfig cfg;
  cfg.faults.loss.iid = 2.0;
  EXPECT_EXIT((void)run_once(cfg, 0), ::testing::ExitedWithCode(2),
              "invalid scenario");
}

TEST(FaultScenarioDeathTest, RunOnceRejectsBadChurn) {
  ScenarioConfig cfg;
  cfg.faults.churn.mttf_s = -1.0;
  EXPECT_EXIT((void)run_once(cfg, 0), ::testing::ExitedWithCode(2),
              "invalid scenario");
}

TEST(FaultScenarioDeathTest, RunOnceRejectsUselessArqBudget) {
  ScenarioConfig cfg;
  cfg.mac.arq.enabled = true;
  cfg.mac.arq.retry_limit = 0;
  EXPECT_EXIT((void)run_once(cfg, 0), ::testing::ExitedWithCode(2),
              "invalid scenario");
}

TEST(FaultScenarioDeathTest, ValidateScenarioIsCallableUpFront) {
  ScenarioConfig cfg;
  cfg.faults.outages.push_back({{0.0, 0.0}, 10.0, 5.0, 1.0});  // end < start
  EXPECT_EXIT(validate_scenario(cfg), ::testing::ExitedWithCode(2),
              "invalid scenario");
}

// --- fault runs: determinism + graceful degradation ------------------------

TEST(FaultExperiment, FaultRunsAreByteStable) {
  const ScenarioConfig cfg = faulty_scenario();
  const RunResult a = run_once(cfg, 0);
  const RunResult b = run_once(cfg, 0);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_EQ(a.sent, b.sent);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_DOUBLE_EQ(a.mean_latency_s, b.mean_latency_s);
}

TEST(FaultExperiment, FaultsActuallyPerturbTheRun) {
  ScenarioConfig plain;
  plain.node_count = 80;
  plain.flow_count = 3;
  plain.duration_s = 20.0;
  plain.seed = 7;
  const RunResult ideal = run_once(plain, 0);
  const RunResult faulty = run_once(faulty_scenario(), 0);
  EXPECT_NE(ideal.trace_digest, faulty.trace_digest);
  EXPECT_LT(faulty.delivered, ideal.delivered);
}

TEST(FaultExperiment, ArqRecoversDeliveryUnderLoss) {
  ScenarioConfig lossy;
  lossy.node_count = 80;
  lossy.flow_count = 3;
  lossy.duration_s = 20.0;
  lossy.seed = 7;
  lossy.faults.loss.iid = 0.3;
  const RunResult without = run_once(lossy, 0);
  lossy.mac.arq.enabled = true;
  const RunResult with = run_once(lossy, 0);
  EXPECT_GT(with.delivered, without.delivered);
  EXPECT_GT(with.delivered, 0u);
}

}  // namespace
}  // namespace alert::core
