#include "attack/compromise.hpp"

#include <algorithm>

#include "attack/route_tracer.hpp"

namespace alert::attack {

namespace {

/// Relay sets per flow/seq with the flow's endpoints removed.
std::map<std::uint32_t, std::map<std::uint32_t, std::set<net::NodeId>>>
relay_sets_without_endpoints(const std::vector<ObservedEvent>& events) {
  auto by_flow = transmitters_by_flow(events);
  std::map<std::uint32_t, std::pair<net::NodeId, net::NodeId>> endpoints;
  for (const auto& e : events) {
    if (e.packet_kind == net::PacketKind::Data) {
      endpoints[e.flow] = {e.true_source, e.true_dest};
    }
  }
  for (auto& [flow, by_seq] : by_flow) {
    const auto [s, d] = endpoints[flow];
    for (auto& [seq, relays] : by_seq) {
      relays.erase(s);
      relays.erase(d);
    }
  }
  return by_flow;
}

}  // namespace

double targeted_next_packet_interception(
    const std::vector<ObservedEvent>& events, std::size_t budget,
    util::Rng& rng) {
  const auto by_flow = relay_sets_without_endpoints(events);
  std::size_t pairs = 0, hits = 0;
  for (const auto& [flow, by_seq] : by_flow) {
    const std::set<net::NodeId>* prev = nullptr;
    for (const auto& [seq, relays] : by_seq) {
      if (prev != nullptr && !prev->empty()) {
        // Compromise up to `budget` random relays of the previous packet.
        std::vector<net::NodeId> pool(prev->begin(), prev->end());
        std::set<net::NodeId> compromised;
        for (std::size_t i = 0; i < budget && i < pool.size(); ++i) {
          const std::size_t j =
              i + static_cast<std::size_t>(rng.below(pool.size() - i));
          std::swap(pool[i], pool[j]);
          compromised.insert(pool[i]);
        }
        ++pairs;
        const bool hit =
            std::any_of(relays.begin(), relays.end(),
                        [&](net::NodeId id) { return compromised.contains(id); });
        hits += hit ? 1u : 0u;
      }
      prev = &relays;
    }
  }
  return pairs == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(pairs);
}

CompromiseResult compromise_analysis(
    const std::vector<ObservedEvent>& events, std::size_t node_count,
    std::size_t compromised, std::size_t trials, util::Rng& rng) {
  const auto by_flow = relay_sets_without_endpoints(events);
  CompromiseResult result;
  result.compromised = compromised;
  if (by_flow.empty() || trials == 0) return result;

  double intercept_sum = 0.0, blocked_sum = 0.0, touched_sum = 0.0;
  std::vector<net::NodeId> pool(node_count);
  for (net::NodeId i = 0; i < node_count; ++i) pool[i] = i;

  for (std::size_t t = 0; t < trials; ++t) {
    // Draw a random compromised set (partial Fisher-Yates).
    for (std::size_t i = 0; i < compromised && i < pool.size(); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(pool.size() - i));
      std::swap(pool[i], pool[j]);
    }
    const auto is_compromised = [&](net::NodeId id) {
      return std::find(pool.begin(),
                       pool.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(compromised, pool.size())),
                       id) !=
             pool.begin() + static_cast<std::ptrdiff_t>(
                                std::min(compromised, pool.size()));
    };

    std::size_t packets = 0, intercepted = 0, flows_blocked = 0,
                flows_touched = 0;
    for (const auto& [flow, by_seq] : by_flow) {
      std::size_t flow_hits = 0;
      for (const auto& [seq, relays] : by_seq) {
        ++packets;
        const bool hit = std::any_of(relays.begin(), relays.end(),
                                     is_compromised);
        intercepted += hit ? 1u : 0u;
        flow_hits += hit ? 1u : 0u;
      }
      if (flow_hits == by_seq.size()) ++flows_blocked;
      if (flow_hits > 0) ++flows_touched;
    }
    intercept_sum +=
        static_cast<double>(intercepted) / static_cast<double>(packets);
    blocked_sum +=
        static_cast<double>(flows_blocked) / static_cast<double>(by_flow.size());
    touched_sum +=
        static_cast<double>(flows_touched) / static_cast<double>(by_flow.size());
  }
  result.packet_interception = intercept_sum / static_cast<double>(trials);
  result.flow_blockage = blocked_sum / static_cast<double>(trials);
  result.flow_touched = touched_sum / static_cast<double>(trials);
  return result;
}

}  // namespace alert::attack
