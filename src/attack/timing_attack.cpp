#include "attack/timing_attack.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace alert::attack {

double TimingAttackResult::source_identification_rate() const {
  if (guesses.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& g : guesses) ok += g.source_correct ? 1u : 0u;
  return static_cast<double>(ok) / static_cast<double>(guesses.size());
}

double TimingAttackResult::dest_identification_rate() const {
  if (guesses.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& g : guesses) ok += g.dest_correct ? 1u : 0u;
  return static_cast<double>(ok) / static_cast<double>(guesses.size());
}

double TimingAttackResult::pair_identification_rate() const {
  if (guesses.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& g : guesses) {
    ok += (g.source_correct && g.dest_correct) ? 1u : 0u;
  }
  return static_cast<double>(ok) / static_cast<double>(guesses.size());
}

TimingAttackResult timing_attack(const std::vector<ObservedEvent>& events) {
  // Group events by flow, then by packet uid. Cover traffic intentionally
  // has no flow/uid linkage, but its transmissions fall inside the same
  // observation window as the source's first transmission; we model the
  // confusion it causes by pooling Cover transmissions that occur within
  // the origination window of each uid.
  struct UidLog {
    std::vector<const ObservedEvent*> tx;
    std::vector<const ObservedEvent*> rx;
  };
  std::map<std::uint32_t, std::map<std::uint64_t, UidLog>> flows;
  std::vector<const ObservedEvent*> covers;
  for (const auto& e : events) {
    if (e.packet_kind == net::PacketKind::Cover) {
      if (e.kind == EventKind::Transmit) covers.push_back(&e);
      continue;
    }
    if (e.packet_kind != net::PacketKind::Data) continue;
    auto& log = flows[e.flow][e.uid];
    (e.kind == EventKind::Transmit ? log.tx : log.rx).push_back(&e);
  }

  TimingAttackResult result;
  for (auto& [flow, uids] : flows) {
    // Candidate origination: per uid, every node transmitting within one
    // cover window (10 ms) of the earliest transmission — including cover
    // transmitters nearby in time.
    std::map<net::NodeId, std::size_t> origin_votes;
    std::map<net::NodeId, std::size_t> sink_votes;
    std::vector<double> delays;
    net::NodeId truth_src = net::kInvalidNode;
    net::NodeId truth_dst = net::kInvalidNode;

    for (auto& [uid, log] : uids) {
      if (log.tx.empty()) continue;
      auto first_tx = *std::min_element(
          log.tx.begin(), log.tx.end(),
          [](const ObservedEvent* a, const ObservedEvent* b) {
            return a->time < b->time;
          });
      truth_src = first_tx->true_source;
      truth_dst = first_tx->true_dest;

      constexpr double kWindowS = 0.010;
      std::set<net::NodeId> origin_candidates{first_tx->node};
      for (const auto* c : covers) {
        if (std::abs(c->time - first_tx->time) <= kWindowS) {
          origin_candidates.insert(c->node);
        }
      }
      // Attack heuristic: among simultaneous candidates the attacker
      // cannot discriminate; it splits its vote (we give the vote to the
      // lowest-id candidate — an arbitrary but fixed tie-break, which is
      // exactly as good as the attacker can do).
      origin_votes[*origin_candidates.begin()] += 1;

      // Terminal receivers: nodes that received the uid and never
      // re-transmitted it.
      std::set<net::NodeId> transmitters;
      for (const auto* t : log.tx) transmitters.insert(t->node);
      std::set<net::NodeId> terminals;
      double last_rx_time = 0.0;
      for (const auto* r : log.rx) {
        if (!transmitters.contains(r->node)) {
          terminals.insert(r->node);
          last_rx_time = std::max(last_rx_time, r->time);
        }
      }
      if (!terminals.empty()) {
        // With a zone broadcast there are k terminals; the attacker again
        // must pick one.
        sink_votes[*terminals.begin()] += 1;
        delays.push_back(last_rx_time - first_tx->time);
      }
    }
    if (origin_votes.empty()) continue;

    auto best = [](const std::map<net::NodeId, std::size_t>& votes) {
      net::NodeId id = net::kInvalidNode;
      std::size_t n = 0;
      for (const auto& [node, count] : votes) {
        if (count > n) {
          n = count;
          id = node;
        }
      }
      return id;
    };

    TimingAttackResult::FlowGuess g;
    g.flow = flow;
    g.guessed_source = best(origin_votes);
    g.guessed_dest = best(sink_votes);
    g.source_correct = g.guessed_source == truth_src;
    g.dest_correct = g.guessed_dest == truth_dst;
    if (delays.size() > 1) {
      double mean = 0.0;
      for (const double d : delays) mean += d;
      mean /= static_cast<double>(delays.size());
      double var = 0.0;
      for (const double d : delays) var += (d - mean) * (d - mean);
      g.delay_stddev_s =
          std::sqrt(var / static_cast<double>(delays.size() - 1));
    }
    result.guesses.push_back(g);
  }
  return result;
}

}  // namespace alert::attack
