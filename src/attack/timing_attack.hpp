#pragma once

/// \file timing_attack.hpp
/// Timing attack (Sec. 3.2): from packet departure and arrival times the
/// intruder tries to identify the communicating pair. The attacker scores
/// every (A, B) candidate pair by how consistently A originates a burst
/// (A's transmission is the earliest it has seen for that packet uid) and
/// B terminally receives it (B receives but never re-transmits the uid),
/// with a stable time offset. GPSR exposes a fixed S->D delay; ALERT's
/// per-packet route randomization, notify-and-go cover bursts and k-node
/// zone broadcast destroy both signals.

#include <vector>

#include "attack/observer.hpp"

namespace alert::attack {

struct TimingAttackResult {
  /// The attacker's best guess per flow and whether it was right.
  struct FlowGuess {
    std::uint32_t flow = 0;
    net::NodeId guessed_source = net::kInvalidNode;
    net::NodeId guessed_dest = net::kInvalidNode;
    bool source_correct = false;
    bool dest_correct = false;
    double delay_stddev_s = 0.0;  ///< jitter of the S->D delays observed
  };
  std::vector<FlowGuess> guesses;

  [[nodiscard]] double source_identification_rate() const;
  [[nodiscard]] double dest_identification_rate() const;
  [[nodiscard]] double pair_identification_rate() const;
};

/// Mount the timing attack over an observer log.
[[nodiscard]] TimingAttackResult timing_attack(
    const std::vector<ObservedEvent>& events);

}  // namespace alert::attack
