#include "attack/route_tracer.hpp"

#include <algorithm>

namespace alert::attack {

std::map<std::uint32_t, std::map<std::uint32_t, std::set<net::NodeId>>>
transmitters_by_flow(const std::vector<ObservedEvent>& events) {
  std::map<std::uint32_t, std::map<std::uint32_t, std::set<net::NodeId>>> out;
  for (const auto& e : events) {
    if (e.kind != EventKind::Transmit) continue;
    if (e.packet_kind != net::PacketKind::Data) continue;
    out[e.flow][e.seq].insert(e.node);
  }
  return out;
}

RouteTraceResult trace_routes(const std::vector<ObservedEvent>& events) {
  const auto by_flow = transmitters_by_flow(events);
  RouteTraceResult result;
  if (by_flow.empty()) return result;

  double overlap_sum = 0.0;
  std::size_t overlap_count = 0;
  double participants_sum = 0.0;
  std::size_t max_packets = 0;
  for (const auto& [flow, by_seq] : by_flow) {
    max_packets = std::max(max_packets, by_seq.size());
  }
  std::vector<double> cumulative(max_packets, 0.0);
  std::vector<std::size_t> cumulative_n(max_packets, 0);

  for (const auto& [flow, by_seq] : by_flow) {
    std::set<net::NodeId> all;
    const std::set<net::NodeId>* prev = nullptr;
    std::size_t idx = 0;
    for (const auto& [seq, nodes] : by_seq) {
      if (prev != nullptr) {
        std::vector<net::NodeId> inter, uni;
        std::set_intersection(prev->begin(), prev->end(), nodes.begin(),
                              nodes.end(), std::back_inserter(inter));
        std::set_union(prev->begin(), prev->end(), nodes.begin(),
                       nodes.end(), std::back_inserter(uni));
        if (!uni.empty()) {
          overlap_sum += static_cast<double>(inter.size()) /
                         static_cast<double>(uni.size());
          ++overlap_count;
        }
      }
      prev = &nodes;
      all.insert(nodes.begin(), nodes.end());
      if (idx < cumulative.size()) {
        cumulative[idx] += static_cast<double>(all.size());
        ++cumulative_n[idx];
      }
      ++idx;
    }
    participants_sum += static_cast<double>(all.size());
  }

  result.mean_consecutive_overlap =
      overlap_count > 0 ? overlap_sum / static_cast<double>(overlap_count)
                        : 0.0;
  result.mean_participating_nodes =
      participants_sum / static_cast<double>(by_flow.size());
  result.cumulative_participants_by_packet.resize(max_packets, 0.0);
  for (std::size_t i = 0; i < max_packets; ++i) {
    if (cumulative_n[i] > 0) {
      result.cumulative_participants_by_packet[i] =
          cumulative[i] / static_cast<double>(cumulative_n[i]);
    }
  }
  return result;
}

}  // namespace alert::attack
