#pragma once

/// \file trace_writer.hpp
/// JSONL trace export: a TraceListener that streams every on-air event to
/// a file, one JSON object per line — suitable for offline visualization
/// (plotting routes, animating the notify-and-go bursts, replaying an
/// attack's view). Lives in the attack module because its output is
/// exactly the adversary's observation record.

#include <cstdio>
#include <string>

#include "net/network.hpp"

namespace alert::attack {

class JsonlTraceWriter final : public net::TraceListener {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceWriter(const std::string& path);
  ~JsonlTraceWriter() override;

  JsonlTraceWriter(const JsonlTraceWriter&) = delete;
  JsonlTraceWriter& operator=(const JsonlTraceWriter&) = delete;

  void on_transmit(const net::Node& sender, const net::Packet& pkt,
                   sim::Time air_start) override;
  void on_deliver(const net::Node& receiver, const net::Packet& pkt,
                  sim::Time when) override;
  void on_drop(const net::Node& last_holder, const net::Packet& pkt,
               sim::Time when, net::DropReason why) override;

  /// Flush and report how many events were written.
  [[nodiscard]] std::uint64_t events_written() const { return count_; }
  void flush();

 private:
  void write(const char* kind, const net::Node& node,
             const net::Packet& pkt, sim::Time when, const char* extra);

  std::FILE* file_;
  std::uint64_t count_ = 0;
};

/// Render one packet kind as a stable lowercase token (shared with tests).
[[nodiscard]] const char* packet_kind_token(net::PacketKind kind);

}  // namespace alert::attack
