#pragma once

/// \file route_tracer.hpp
/// Route-anonymity analysis (Sec. 3.1): an adversary that observed one
/// packet's full path tries to predict the path of subsequent packets of
/// the same flow. ALERT defeats this by re-randomizing the RF set per
/// packet; GPSR-family protocols repeat (nearly) the same shortest path.

#include <map>
#include <set>
#include <vector>

#include "attack/observer.hpp"

namespace alert::attack {

struct RouteTraceResult {
  /// Mean Jaccard overlap |route_i ∩ route_{i+1}| / |route_i ∪ route_{i+1}|
  /// between consecutive packets' transmitter sets, averaged over flows.
  double mean_consecutive_overlap = 0.0;
  /// Mean number of distinct nodes that transmitted data of a flow
  /// (the "actual participating nodes" metric of Sec. 5.3).
  double mean_participating_nodes = 0.0;
  /// Distinct participating nodes per flow, cumulative after each packet —
  /// the curve of Fig. 10a.
  std::vector<double> cumulative_participants_by_packet;
};

/// Analyze Data-packet transmitter sets per (flow, seq).
[[nodiscard]] RouteTraceResult trace_routes(
    const std::vector<ObservedEvent>& events);

/// Per-(flow, seq) transmitter sets, ordered by seq (exposed for tests and
/// for the intersection attack's session structure).
[[nodiscard]] std::map<std::uint32_t,
                       std::map<std::uint32_t, std::set<net::NodeId>>>
transmitters_by_flow(const std::vector<ObservedEvent>& events);

}  // namespace alert::attack
