#pragma once

/// \file observer.hpp
/// Passive eavesdropper substrate (Sec. 2.1 attack model): battery-powered
/// adversaries that receive packets and record activity in their vicinity.
/// The observer is a net::TraceListener; it records what a radio-equipped
/// attacker could actually capture — who transmitted what, when, and which
/// nodes received zone broadcasts. Attack analyses (timing, intersection,
/// route tracing) run over this event log; ground-truth oracle fields are
/// used only to *score* attacks, never to mount them.

#include <vector>

#include "net/network.hpp"

namespace alert::attack {

enum class EventKind : std::uint8_t { Transmit, Receive };

struct ObservedEvent {
  EventKind kind;
  sim::Time time = 0.0;
  net::NodeId node = net::kInvalidNode;  ///< transmitter or receiver
  net::Pseudonym pseudonym = 0;          ///< what the attacker can read
  net::PacketKind packet_kind = net::PacketKind::Data;
  std::uint64_t uid = 0;
  std::uint32_t flow = 0;
  std::uint32_t seq = 0;
  bool zone_broadcast = false;  ///< ALERT destination-zone phase frame
  /// Second-step countermeasure rebroadcast: the frame is bit-altered, so
  /// an attacker cannot link it to the packet it re-delivers.
  bool second_step = false;
  /// For Receive events of zone broadcasts: whether the receiver sits
  /// inside the packet's advertised destination zone (the adversary knows
  /// node positions, Sec. 2.1, and reads L_ZD from the header, so it can
  /// discard the out-of-zone radio halo).
  bool in_dest_zone = false;
  /// For Receive events of zone broadcasts: whether this receiver is an
  /// *addressed* recipient — with the m-of-k multicast the attacker reads
  /// the recipient list from the frame; a node outside the list merely
  /// overhears and is not evidence of being the destination.
  bool addressed = true;
  // Ground truth for scoring only:
  net::NodeId true_source = net::kInvalidNode;
  net::NodeId true_dest = net::kInvalidNode;
};

/// Records protocol traffic (Data/Confirm/Nak/Cover; hellos excluded —
/// they carry no flow information). Optionally restricted to events within
/// `vicinity_radius` of any of a set of monitor positions, modeling a
/// bounded adversary; by default the adversary is global (strongest case).
class PassiveObserver final : public net::TraceListener {
 public:
  explicit PassiveObserver(net::Network& network) : net_(network) {}

  /// Restrict observation to discs around fixed monitor positions.
  void set_vicinity(std::vector<util::Vec2> monitors, double radius_m);

  void on_transmit(const net::Node& sender, const net::Packet& pkt,
                   sim::Time air_start) override;
  void on_deliver(const net::Node& receiver, const net::Packet& pkt,
                  sim::Time when) override;

  [[nodiscard]] const std::vector<ObservedEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 private:
  [[nodiscard]] bool in_vicinity(util::Vec2 pos) const;
  void record(EventKind kind, const net::Node& node, const net::Packet& pkt,
              sim::Time when);

  net::Network& net_;
  std::vector<ObservedEvent> events_;
  std::vector<util::Vec2> monitors_;
  double vicinity_radius_ = 0.0;  ///< 0 = global observer
};

}  // namespace alert::attack
