#pragma once

/// \file compromise.hpp
/// Node-compromise analysis (Sec. 3.1): an adversary that has intruded on
/// c nodes intercepts every packet one of them relays, and can try to
/// sever an S-D flow by holding a cut of its routes. Against GPSR-family
/// protocols the same few nodes relay every packet of a flow, so a single
/// well-placed compromise intercepts (or blocks) the whole session; under
/// ALERT the per-packet relay set is re-randomized, so interception decays
/// and total blockage requires compromising a large node population.

#include "attack/observer.hpp"
#include "util/rng.hpp"

namespace alert::attack {

struct CompromiseResult {
  std::size_t compromised = 0;      ///< c
  double packet_interception = 0.0; ///< mean fraction of packets seen
  double flow_blockage = 0.0;       ///< fraction of flows fully intercepted
  double flow_touched = 0.0;        ///< fraction of flows seen at least once
};

/// Monte-Carlo over random compromised sets of size `compromised` drawn
/// from `node_count` nodes (`trials` draws): what fraction of the logged
/// data packets had at least one compromised relay, and how many flows
/// were *fully* intercepted (every packet seen — the paper's "completely
/// stopped" criterion). Sources and destinations are excluded from the
/// per-flow relay sets: compromising an endpoint trivially intercepts the
/// flow under any protocol and says nothing about the route.
[[nodiscard]] CompromiseResult compromise_analysis(
    const std::vector<ObservedEvent>& events, std::size_t node_count,
    std::size_t compromised, std::size_t trials, util::Rng& rng);

/// The paper's actual Sec. 3.1 scenario, targeted: the adversary observes
/// packet i's relay set, compromises up to `budget` of those relays, and
/// tries to intercept packet i+1 of the same flow. Returns the mean
/// next-packet interception rate over all consecutive pairs. Against a
/// fixed-route protocol this is ~1; ALERT's per-packet re-randomization
/// drives it toward the chance level.
[[nodiscard]] double targeted_next_packet_interception(
    const std::vector<ObservedEvent>& events, std::size_t budget,
    util::Rng& rng);

}  // namespace alert::attack
