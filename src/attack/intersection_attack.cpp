#include "attack/intersection_attack.hpp"

#include <algorithm>
#include <map>

namespace alert::attack {

double IntersectionAttackResult::identification_rate() const {
  if (flows.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& f : flows) ok += f.identified ? 1u : 0u;
  return static_cast<double>(ok) / static_cast<double>(flows.size());
}

double IntersectionAttackResult::frequency_identification_rate() const {
  if (flows.empty()) return 0.0;
  std::size_t ok = 0;
  for (const auto& f : flows) ok += f.frequency_correct ? 1u : 0u;
  return static_cast<double>(ok) / static_cast<double>(flows.size());
}

double IntersectionAttackResult::mean_success_probability() const {
  if (flows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& f : flows) {
    if (f.dest_in_candidates && !f.candidates.empty()) {
      sum += 1.0 / static_cast<double>(f.candidates.size());
    }
  }
  return sum / static_cast<double>(flows.size());
}

IntersectionAttackResult intersection_attack(
    const std::vector<ObservedEvent>& events) {
  // Recipient sets per (flow, uid) for zone-broadcast data frames. Only
  // first-step broadcasts are used: an attacker cannot tell which packet a
  // second-step (bit-altered) rebroadcast carries — that is precisely the
  // countermeasure — so it can only intersect per-delivery recipient sets.
  std::map<std::uint32_t, std::map<std::uint64_t, std::set<net::NodeId>>>
      recipient_sets;
  std::map<std::uint32_t, net::NodeId> truth;
  for (const auto& e : events) {
    if (e.kind != EventKind::Receive) continue;
    if (e.packet_kind != net::PacketKind::Data || !e.zone_broadcast) continue;
    if (e.second_step) continue;  // unlinkable to its packet (bit-altered)
    if (!e.addressed) continue;   // overhearing is not recipient evidence
    if (!e.in_dest_zone) continue;  // out-of-zone radio halo discarded
    recipient_sets[e.flow][e.uid].insert(e.node);
    truth[e.flow] = e.true_dest;
  }

  IntersectionAttackResult result;
  for (const auto& [flow, by_uid] : recipient_sets) {
    IntersectionAttackResult::FlowAnalysis fa;
    fa.flow = flow;
    std::set<net::NodeId> inter;
    bool first = true;
    for (const auto& [uid, recipients] : by_uid) {
      if (first) {
        inter = recipients;
        first = false;
      } else {
        std::set<net::NodeId> next;
        std::set_intersection(inter.begin(), inter.end(), recipients.begin(),
                              recipients.end(),
                              std::inserter(next, next.begin()));
        inter = std::move(next);
      }
      ++fa.observations;
      fa.candidate_counts.push_back(inter.size());
    }
    fa.candidates = inter;
    fa.dest_in_candidates = inter.contains(truth[flow]);
    fa.identified = inter.size() == 1 && fa.dest_in_candidates;

    // Frequency attack: count appearances per node over all observations.
    std::map<net::NodeId, std::size_t> appearances;
    for (const auto& [uid, recipients] : by_uid) {
      for (const net::NodeId n : recipients) ++appearances[n];
    }
    net::NodeId top = net::kInvalidNode;
    std::size_t top_n = 0, second_n = 0;
    for (const auto& [node, n] : appearances) {
      if (n > top_n) {
        second_n = top_n;
        top_n = n;
        top = node;
      } else if (n > second_n) {
        second_n = n;
      }
    }
    fa.frequency_guess = top;
    fa.frequency_correct = top == truth[flow];
    if (fa.observations > 0) {
      fa.top_rate =
          static_cast<double>(top_n) / static_cast<double>(fa.observations);
      fa.runner_up_rate = static_cast<double>(second_n) /
                          static_cast<double>(fa.observations);
    }
    result.flows.push_back(std::move(fa));
  }
  return result;
}

}  // namespace alert::attack
