#include "attack/zone_residency.hpp"

namespace alert::attack {

ZoneResidency::ZoneResidency(const net::Network& network, util::Rect zone)
    : net_(network), zone_(zone) {
  const sim::Time now = net_.now();
  for (net::NodeId id = 0; id < net_.size(); ++id) {
    if (zone_.contains(net_.node(id).position(now))) {
      initial_members_.push_back(id);
    }
  }
}

std::size_t ZoneResidency::remaining_at(sim::Time t) const {
  std::size_t count = 0;
  for (const net::NodeId id : initial_members_) {
    if (zone_.contains(net_.node(id).position(t))) ++count;
  }
  return count;
}

std::vector<net::NodeId> ZoneResidency::occupants_at(sim::Time t) const {
  std::vector<net::NodeId> out;
  for (net::NodeId id = 0; id < net_.size(); ++id) {
    if (zone_.contains(net_.node(id).position(t))) out.push_back(id);
  }
  return out;
}

}  // namespace alert::attack
