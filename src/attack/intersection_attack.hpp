#pragma once

/// \file intersection_attack.hpp
/// Intersection attack (Sec. 3.3 / Fig. 5): the attacker watches the
/// recipient set of every destination-zone broadcast of a flow. Because D
/// must receive every packet while camouflage nodes drift out of the zone,
/// the intersection of the recipient sets converges to {D} over a long
/// session. ALERT's countermeasure makes D *miss* some first-step
/// multicasts (receiving those packets only in the delayed second step),
/// so D drops out of some observed recipient sets and the intersection
/// loses it.

#include <set>
#include <vector>

#include "attack/observer.hpp"

namespace alert::attack {

struct IntersectionAttackResult {
  struct FlowAnalysis {
    std::uint32_t flow = 0;
    std::size_t observations = 0;        ///< zone broadcasts observed
    std::set<net::NodeId> candidates;    ///< final intersection set
    bool dest_in_candidates = false;
    bool identified = false;             ///< candidates == {true D}
    /// |intersection| after each successive observation — the anonymity
    /// decay curve the paper describes ("the longer an attacker watches,
    /// the easier").
    std::vector<std::size_t> candidate_counts;
    /// Frequency variant (robust to missed deliveries): the attacker ranks
    /// recipients by how often they appear and guesses the most frequent.
    net::NodeId frequency_guess = net::kInvalidNode;
    bool frequency_correct = false;
    /// D's appearance rate vs the runner-up's — the margin the
    /// countermeasure is designed to erase (Sec. 3.3).
    double top_rate = 0.0;
    double runner_up_rate = 0.0;
  };
  std::vector<FlowAnalysis> flows;

  [[nodiscard]] double identification_rate() const;
  /// Fraction of flows whose most-frequent recipient is the destination.
  [[nodiscard]] double frequency_identification_rate() const;
  /// Mean probability of picking D from the candidate set (1/|set| when D
  /// is inside, 0 when the countermeasure expelled it).
  [[nodiscard]] double mean_success_probability() const;
};

/// Mount the intersection attack over an observer log. Recipient sets are
/// taken from Receive events of zone-broadcast Data frames, per (flow,
/// first-step broadcast); the attacker intersects them per flow.
[[nodiscard]] IntersectionAttackResult intersection_attack(
    const std::vector<ObservedEvent>& events);

}  // namespace alert::attack
