#include "attack/observer.hpp"

#include <algorithm>

namespace alert::attack {

void PassiveObserver::set_vicinity(std::vector<util::Vec2> monitors,
                                   double radius_m) {
  monitors_ = std::move(monitors);
  vicinity_radius_ = radius_m;
}

bool PassiveObserver::in_vicinity(util::Vec2 pos) const {
  if (vicinity_radius_ <= 0.0 || monitors_.empty()) return true;
  for (const util::Vec2 m : monitors_) {
    if (util::distance(pos, m) <= vicinity_radius_) return true;
  }
  return false;
}

void PassiveObserver::record(EventKind kind, const net::Node& node,
                             const net::Packet& pkt, sim::Time when) {
  if (pkt.kind == net::PacketKind::Hello) return;
  if (!in_vicinity(node.position(when))) return;
  ObservedEvent e;
  e.kind = kind;
  e.time = when;
  e.node = node.id();
  e.pseudonym = kind == EventKind::Transmit ? pkt.src_pseudonym
                                            : node.pseudonym();
  e.packet_kind = pkt.kind;
  e.uid = pkt.uid;
  e.flow = pkt.flow;
  e.seq = pkt.seq;
  e.zone_broadcast = pkt.alert.has_value() && pkt.alert->in_dest_zone_phase;
  e.second_step =
      pkt.alert.has_value() && pkt.alert->countermeasure_second_step;
  if (kind == EventKind::Receive && e.zone_broadcast && pkt.alert) {
    e.in_dest_zone = pkt.alert->dest_zone.contains(node.position(when));
  }
  if (kind == EventKind::Receive && e.zone_broadcast && pkt.alert &&
      !pkt.alert->multicast_set.empty()) {
    e.addressed = std::find(pkt.alert->multicast_set.begin(),
                            pkt.alert->multicast_set.end(),
                            node.pseudonym()) !=
                  pkt.alert->multicast_set.end();
  }
  e.true_source = pkt.true_source;
  e.true_dest = pkt.true_dest;
  events_.push_back(e);
}

void PassiveObserver::on_transmit(const net::Node& sender,
                                  const net::Packet& pkt,
                                  sim::Time air_start) {
  record(EventKind::Transmit, sender, pkt, air_start);
}

void PassiveObserver::on_deliver(const net::Node& receiver,
                                 const net::Packet& pkt, sim::Time when) {
  record(EventKind::Receive, receiver, pkt, when);
}

}  // namespace alert::attack
