#pragma once

/// \file zone_residency.hpp
/// Destination-zone residency tracking — the "number of remaining nodes in
/// a destination zone" metric (Sec. 5.2 metric 3, Figs. 12/13). The degree
/// of k-anonymity D enjoys is exactly how many of the zone's original
/// occupants are still present after time t; node mobility erodes it,
/// which is what the intersection attacker exploits.

#include <vector>

#include "net/network.hpp"

namespace alert::attack {

class ZoneResidency {
 public:
  /// Snapshot the occupants of `zone` at the current simulation time.
  ZoneResidency(const net::Network& network, util::Rect zone);

  [[nodiscard]] const util::Rect& zone() const { return zone_; }
  [[nodiscard]] std::size_t initial_count() const {
    return initial_members_.size();
  }
  [[nodiscard]] const std::vector<net::NodeId>& initial_members() const {
    return initial_members_;
  }

  /// How many of the initial occupants are inside the zone at time `t`.
  [[nodiscard]] std::size_t remaining_at(sim::Time t) const;

  /// Current occupants (initial or not) at time `t`.
  [[nodiscard]] std::vector<net::NodeId> occupants_at(sim::Time t) const;

 private:
  const net::Network& net_;
  util::Rect zone_;
  std::vector<net::NodeId> initial_members_;
};

}  // namespace alert::attack
