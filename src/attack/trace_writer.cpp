#include "attack/trace_writer.hpp"

#include <stdexcept>

namespace alert::attack {

const char* packet_kind_token(net::PacketKind kind) {
  switch (kind) {
    case net::PacketKind::Hello: return "hello";
    case net::PacketKind::Data: return "data";
    case net::PacketKind::Confirm: return "confirm";
    case net::PacketKind::Nak: return "nak";
    case net::PacketKind::Cover: return "cover";
    case net::PacketKind::IdDissemination: return "id_dissemination";
  }
  return "unknown";
}

namespace {
const char* drop_token(net::DropReason why) {
  switch (why) {
    case net::DropReason::OutOfRange: return "out_of_range";
    case net::DropReason::NoHandler: return "no_handler";
    case net::DropReason::TtlExpired: return "ttl_expired";
    case net::DropReason::ChannelLoss: return "channel_loss";
    case net::DropReason::NodeDown: return "node_down";
    case net::DropReason::RetryExhausted: return "retry_exhausted";
  }
  return "unknown";
}
}  // namespace

JsonlTraceWriter::JsonlTraceWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("JsonlTraceWriter: cannot open " + path);
  }
}

JsonlTraceWriter::~JsonlTraceWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlTraceWriter::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

void JsonlTraceWriter::write(const char* kind, const net::Node& node,
                             const net::Packet& pkt, sim::Time when,
                             const char* extra) {
  const util::Vec2 pos = node.position(when);
  std::fprintf(
      file_,
      "{\"event\":\"%s\",\"t\":%.6f,\"node\":%u,\"x\":%.1f,\"y\":%.1f,"
      "\"pkt\":\"%s\",\"uid\":%llu,\"flow\":%u,\"seq\":%u,\"hops\":%d,"
      "\"bytes\":%zu,\"zone_phase\":%s%s}\n",
      kind, when, node.id(), pos.x, pos.y, packet_kind_token(pkt.kind),
      static_cast<unsigned long long>(pkt.uid), pkt.flow, pkt.seq,
      pkt.hop_count, pkt.size_bytes,
      (pkt.alert && pkt.alert->in_dest_zone_phase) ? "true" : "false",
      extra);
  ++count_;
}

void JsonlTraceWriter::on_transmit(const net::Node& sender,
                                   const net::Packet& pkt,
                                   sim::Time air_start) {
  write("tx", sender, pkt, air_start, "");
}

void JsonlTraceWriter::on_deliver(const net::Node& receiver,
                                  const net::Packet& pkt, sim::Time when) {
  write("rx", receiver, pkt, when, "");
}

void JsonlTraceWriter::on_drop(const net::Node& last_holder,
                               const net::Packet& pkt, sim::Time when,
                               net::DropReason why) {
  char extra[48];
  std::snprintf(extra, sizeof extra, ",\"reason\":\"%s\"", drop_token(why));
  write("drop", last_holder, pkt, when, extra);
}

}  // namespace alert::attack
