#pragma once

/// \file rng.hpp
/// Deterministic, explicitly-seeded pseudo-random number generation.
///
/// Every stochastic component of the simulator (mobility, TD selection,
/// traffic, backoff, cover traffic, ...) draws from an Rng owned by its
/// scenario, so any experiment is exactly reproducible from its seed. The
/// generator is xoshiro256**, seeded through SplitMix64 per the reference
/// recommendation; both are implemented here so results do not depend on a
/// standard library's unspecified distribution algorithms.

#include <array>
#include <cstdint>

#include "util/geometry.hpp"

namespace alert::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds (seed sequences) for sub-components.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derive an independently-seeded child generator (for a sub-component),
  /// keyed by a caller-chosen stream id so call order does not matter.
  [[nodiscard]] Rng fork(std::uint64_t stream) const {
    SplitMix64 sm(state_[0] ^ (stream * 0x9e3779b97f4a7c15ULL) ^ state_[3]);
    Rng child(sm.next());
    return child;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) using Lemire's unbiased method.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform point in a rectangle.
  Vec2 point_in(const Rect& r) {
    return {uniform(r.min.x, r.max.x), uniform(r.min.y, r.max.y)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace alert::util
