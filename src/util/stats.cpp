#include "util/stats.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

namespace alert::util {

Accumulator Accumulator::from_state(const State& s) {
  Accumulator a;
  a.n_ = s.n;
  a.mean_ = s.mean;
  a.m2_ = s.m2;
  a.min_ = s.min;
  a.max_ = s.max;
  return a;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(n_));
  return student_t_975(n_ - 1) * se;
}

void Accumulator::merge(const Accumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(o.n_);
  mean_ += delta * m / (n + m);
  m2_ += o.m2_ + delta * delta * n * m / (n + m);
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double student_t_975(std::size_t dof) {
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof < kTable.size()) return kTable[dof];
  return 1.96;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(bins_.size());
}

void Histogram::merge(const Histogram& o) {
  assert(lo_ == o.lo_ && hi_ == o.hi_ && bins_.size() == o.bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  total_ += o.total_;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    cum += static_cast<double>(bins_[i]);
    if (cum >= target) return bin_low(i);
  }
  return hi_;
}

}  // namespace alert::util
