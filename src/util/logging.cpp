#include "util/logging.hpp"

#include <cstdarg>

namespace alert::util {

namespace {
LogLevel g_level = LogLevel::None;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::None: break;
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "none") return LogLevel::None;
  if (name == "error") return LogLevel::Error;
  if (name == "warn") return LogLevel::Warn;
  if (name == "info") return LogLevel::Info;
  if (name == "debug") return LogLevel::Debug;
  return std::nullopt;
}

namespace detail {
void vlog(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list ap;
  va_start(ap, fmt);
  std::vfprintf(stderr, fmt, ap);
  va_end(ap);
  std::fputc('\n', stderr);
}
}  // namespace detail

}  // namespace alert::util
