#pragma once

/// \file logging.hpp
/// Minimal leveled logging. Disabled by default so experiment output stays
/// clean; tests and examples can raise the level to trace protocol events.

#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace alert::util {

enum class LogLevel { None = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Process-wide log threshold. Not synchronized: set it once at startup.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a --log-level value ("none", "error", "warn", "info", "debug",
/// case-sensitive). nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

namespace detail {
void vlog(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;
}  // namespace detail

#define ALERT_LOG(level, ...)                                     \
  do {                                                            \
    if (static_cast<int>(level) <=                                \
        static_cast<int>(::alert::util::log_level())) {           \
      ::alert::util::detail::vlog(level, __VA_ARGS__);            \
    }                                                             \
  } while (0)

#define ALERT_LOG_DEBUG(...) ALERT_LOG(::alert::util::LogLevel::Debug, __VA_ARGS__)
#define ALERT_LOG_INFO(...) ALERT_LOG(::alert::util::LogLevel::Info, __VA_ARGS__)
#define ALERT_LOG_WARN(...) ALERT_LOG(::alert::util::LogLevel::Warn, __VA_ARGS__)
#define ALERT_LOG_ERROR(...) ALERT_LOG(::alert::util::LogLevel::Error, __VA_ARGS__)

}  // namespace alert::util
