#include "util/geometry.hpp"

#include <ostream>

namespace alert::util {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << '[' << r.min << " - " << r.max << ']';
}

namespace {

int orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double v = (b - a).cross(c - a);
  constexpr double kEps = 1e-12;
  if (v > kEps) return 1;
  if (v < -kEps) return -1;
  return 0;
}

bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const int o1 = orientation(a, b, c);
  const int o2 = orientation(a, b, d);
  const int o3 = orientation(c, d, a);
  const int o4 = orientation(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(a, b, c)) return true;
  if (o2 == 0 && on_segment(a, b, d)) return true;
  if (o3 == 0 && on_segment(c, d, a)) return true;
  if (o4 == 0 && on_segment(c, d, b)) return true;
  return false;
}

}  // namespace alert::util
