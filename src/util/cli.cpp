#include "util/cli.hpp"

#include <cstdlib>

namespace alert::util {

std::optional<CliArgs> CliArgs::parse(int argc, const char* const* argv,
                                      std::string* error) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      if (error != nullptr) *error = "unexpected argument: " + token;
      return std::nullopt;
    }
    token.erase(0, 2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      args.values_[token.substr(0, eq)] = {token.substr(eq + 1), false};
      continue;
    }
    // `--key value` when the next token is not itself a flag; otherwise a
    // boolean `--flag`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.values_[token] = {argv[i + 1], false};
      ++i;
    } else {
      args.values_[token] = {"true", false};
    }
  }
  return args;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return it->second.first;
}

double CliArgs::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return std::strtod(it->second.first.c_str(), nullptr);
}

std::int64_t CliArgs::get(const std::string& key,
                          std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  return std::strtoll(it->second.first.c_str(), nullptr, 10);
}

bool CliArgs::get(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  it->second.second = true;
  const std::string& v = it->second.first;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

CommonFlags CommonFlags::from(const CliArgs& args) {
  CommonFlags flags;
  flags.trace_out = args.get("trace-out", std::string());
  flags.metrics_out = args.get("metrics-out", std::string());
  flags.log_level = args.get("log-level", std::string("none"));
  flags.reps = args.get("reps", static_cast<std::int64_t>(0));
  flags.threads = args.get("threads", static_cast<std::int64_t>(0));
  return flags;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!value.second) out.push_back(key);
  }
  return out;
}

}  // namespace alert::util
