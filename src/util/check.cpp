#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace alert::util::check {

namespace {

[[noreturn]] void default_handler(const FailureInfo& info) {
  std::fprintf(stderr,
               "\nALERT invariant violated: %s\n  at %s:%d\n%s%s%s",
               info.expression, info.file, info.line,
               info.message.empty() ? "" : "  ",
               info.message.c_str(), info.message.empty() ? "" : "\n");
  std::fflush(stderr);
  std::abort();
}

// Raw pointer in an atomic: handlers are stateless function pointers so a
// racy install (tests run single-threaded anyway) cannot tear.
std::atomic<FailureHandler> g_handler{nullptr};
std::atomic<std::uint64_t> g_failures{0};

void throwing_handler(const FailureInfo& info) { throw CheckFailure(info); }

}  // namespace

CheckFailure::CheckFailure(const FailureInfo& info)
    : std::runtime_error(std::string("check failed: ") + info.expression +
                         " at " + info.file + ":" + std::to_string(info.line) +
                         (info.message.empty() ? "" : " — " + info.message)),
      info_(info) {}

FailureHandler set_failure_handler(FailureHandler handler) {
  return g_handler.exchange(handler);
}

ScopedFailureHandler::ScopedFailureHandler(FailureHandler handler)
    : previous_(set_failure_handler(handler != nullptr ? handler
                                                       : &throwing_handler)) {}

ScopedFailureHandler::~ScopedFailureHandler() {
  set_failure_handler(previous_);
}

void fail(const char* expression, const char* file, int line,
          const std::string& message) {
  const FailureInfo info{expression, file, line, message};
  if (FailureHandler h = g_handler.load()) {
    g_failures.fetch_add(1, std::memory_order_relaxed);
    h(info);  // may throw or exit;
    std::abort();  // handler returned: violations are never recoverable
  }
  default_handler(info);
}

std::uint64_t failure_count() {
  return g_failures.load(std::memory_order_relaxed);
}

}  // namespace alert::util::check
