#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace alert::util {

std::uint64_t Rng::below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  have_cached_normal_ = true;
  return mean + stddev * u * f;
}

}  // namespace alert::util
