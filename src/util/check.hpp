#pragma once

/// \file check.hpp
/// Runtime invariant layer.
///
/// Two macro tiers, both carrying expression text, location and an optional
/// message to the failure handler:
///
///   ALERT_INVARIANT(cond, "msg")  — cheap O(1) checks, compiled into every
///                                   build type. Use for conditions whose
///                                   violation means the simulation state is
///                                   already corrupt (heap ordering, time
///                                   monotonicity, index validity).
///   ALERT_ASSERT(cond, "msg")     — expensive checks (whole-container
///                                   scans, ledger audits). Compiled only
///                                   when ALERTSIM_CHECKED is defined (the
///                                   Debug-checked build / `checked`,
///                                   `asan-ubsan` and `tsan` presets); the
///                                   condition is NOT evaluated otherwise.
///
/// The default failure handler prints the violation and aborts — violations
/// must never be recoverable in production. Tests install a throwing handler
/// (ScopedFailureHandler) to observe violations without dying.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace alert::util::check {

/// Everything known about a failed check, handed to the failure handler.
struct FailureInfo {
  const char* expression;  ///< stringified condition
  const char* file;
  int line;
  std::string message;  ///< optional context ("" when none given)
};

/// Thrown by the test handler installed via ScopedFailureHandler.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const FailureInfo& info);
  [[nodiscard]] const FailureInfo& info() const { return info_; }

 private:
  FailureInfo info_;
};

using FailureHandler = void (*)(const FailureInfo&);

/// Replace the process-wide failure handler; returns the previous one.
/// Passing nullptr restores the default print-and-abort handler. If a
/// custom handler returns normally the process still aborts.
FailureHandler set_failure_handler(FailureHandler handler);

/// RAII: route check failures into CheckFailure exceptions for the scope's
/// lifetime (unit tests asserting that a violation is detected).
class ScopedFailureHandler {
 public:
  explicit ScopedFailureHandler(FailureHandler handler = nullptr);
  ~ScopedFailureHandler();
  ScopedFailureHandler(const ScopedFailureHandler&) = delete;
  ScopedFailureHandler& operator=(const ScopedFailureHandler&) = delete;

 private:
  FailureHandler previous_;
};

/// Invoked by the macros; dispatches to the installed handler and aborts if
/// the handler declines to throw or exit.
void fail(const char* expression, const char* file, int line,
          const std::string& message);

/// Number of check failures routed through non-default handlers since
/// process start (test instrumentation).
[[nodiscard]] std::uint64_t failure_count();

}  // namespace alert::util::check

// Always-on cheap invariants.
#define ALERT_INVARIANT(cond, ...)                                        \
  do {                                                                    \
    if (!(cond)) [[unlikely]] {                                           \
      ::alert::util::check::fail(#cond, __FILE__, __LINE__,               \
                                 ::std::string{__VA_ARGS__});             \
    }                                                                     \
  } while (false)

// Expensive checks: only in the Debug-checked build; the condition is not
// evaluated (and must not be relied on for side effects) otherwise.
#if defined(ALERTSIM_CHECKED) && ALERTSIM_CHECKED
#define ALERT_ASSERT(cond, ...) ALERT_INVARIANT(cond, __VA_ARGS__)
#define ALERT_CHECKED_BUILD 1
#else
#define ALERT_ASSERT(cond, ...) ((void)0)
#define ALERT_CHECKED_BUILD 0
#endif
