#pragma once

/// \file thread_pool.hpp
/// A small fixed-size thread pool used to run independent experiment
/// replications in parallel. Each replication owns its simulator and RNG, so
/// tasks share nothing; the pool only provides fan-out/join.
///
/// Task contract (the one place it is documented — submit() and
/// parallel_for() both inherit it):
///   * Tasks must not throw. An exception escaping a task unwinds a worker
///     thread and terminates the process (there is nowhere to rethrow: the
///     submitter may have moved on). Catch and convert failures inside the
///     task.
///   * Tasks must not submit to the pool they run on (no recursive
///     submission) — wait_idle() would deadlock waiting for a queue the
///     waiter keeps feeding.
///   * submit() after the pool has begun destruction is a programming
///     error and fails an ALERT_INVARIANT (it would either lose the task
///     silently or race the worker join).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace alert::util {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task (see the task contract in the file comment). Calling
  /// this after the destructor has begun is an invariant failure.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// With a single worker this degrades gracefully to a serial loop.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace alert::util
