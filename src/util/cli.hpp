#pragma once

/// \file cli.hpp
/// Minimal command-line flag parser for the alertsim driver binaries:
/// `--key=value` / `--key value` / boolean `--flag`. No dependencies,
/// deterministic error reporting, typed getters with defaults.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace alert::util {

class CliArgs {
 public:
  /// Parse argv (argv[0] skipped). Returns nullopt and fills `error` on a
  /// malformed token (anything not starting with "--").
  static std::optional<CliArgs> parse(int argc, const char* const* argv,
                                      std::string* error = nullptr);

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get(const std::string& key,
                                 std::int64_t fallback) const;
  [[nodiscard]] bool get(const std::string& key, bool fallback) const;

  /// Keys the program never consumed (typo detection).
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  mutable std::map<std::string, std::pair<std::string, bool>> values_;
};

/// Observability flags shared by every alertsim driver binary (figure
/// benches, examples):
///   --trace-out=FILE    structured per-event trace; extension picks the
///                       sink (.jsonl / .csv / else Chrome trace_event JSON)
///   --metrics-out=FILE  run-manifest JSON (config, seed, digests, metrics,
///                       profile, series) — schema alertsim-run-manifest/1
///   --log-level=LEVEL   none|error|warn|info|debug (default none)
///   --reps=N            replications per point (overrides ALERTSIM_REPS)
///   --threads=N         worker threads for replication fan-out
///                       (0 = hardware concurrency, the default)
struct CommonFlags {
  std::string trace_out;
  std::string metrics_out;
  std::string log_level = "none";
  std::int64_t reps = 0;     ///< 0 = ALERTSIM_REPS / bench default
  std::int64_t threads = 0;  ///< 0 = hardware concurrency

  /// Extract (and mark consumed) the shared keys from parsed args.
  static CommonFlags from(const CliArgs& args);
};

}  // namespace alert::util
