#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace alert::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mutex_);
    ALERT_INVARIANT(!stop_, "ThreadPool::submit after stop/destruction");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mutex_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;  // nothing to do — never touch the queue
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mutex_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ was set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lk(mutex_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace alert::util
