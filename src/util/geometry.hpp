#pragma once

/// \file geometry.hpp
/// 2-D vector and axis-aligned rectangle primitives used throughout the
/// simulator: node positions, velocities, network-field and zone rectangles.

#include <algorithm>
#include <cmath>
#include <iosfwd>
#include <limits>

namespace alert::util {

/// A point or displacement in the plane, in metres.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }
  [[nodiscard]] constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product; sign gives turn direction.
  [[nodiscard]] constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  /// Unit vector in this direction; returns {0,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }

  /// Polar angle in [-pi, pi].
  [[nodiscard]] double angle() const { return std::atan2(y, x); }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }
[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) {
  return (a - b).norm_sq();
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

/// Which axis a zone partition cuts across. A Horizontal cut splits the
/// rectangle with a horizontal line (halving the height); a Vertical cut
/// splits with a vertical line (halving the width).
enum class Axis { Horizontal, Vertical };

[[nodiscard]] constexpr Axis flip(Axis a) {
  return a == Axis::Horizontal ? Axis::Vertical : Axis::Horizontal;
}

struct Rect;

/// Result of bisecting a rectangle along an axis.
struct RectSplit;

/// Closed axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
/// Zones in ALERT are represented by their bottom-left and top-right corners
/// (equivalently the paper's "upper left and bottom-right coordinates").
struct Rect {
  Vec2 min;
  Vec2 max;

  constexpr Rect() = default;
  constexpr Rect(Vec2 mn, Vec2 mx) : min(mn), max(mx) {}
  constexpr Rect(double x0, double y0, double x1, double y1)
      : min(x0, y0), max(x1, y1) {}

  constexpr bool operator==(const Rect&) const = default;

  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
  [[nodiscard]] constexpr double area() const { return width() * height(); }
  [[nodiscard]] constexpr Vec2 center() const {
    return {(min.x + max.x) * 0.5, (min.y + max.y) * 0.5};
  }

  [[nodiscard]] constexpr bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  /// True when `inner` lies entirely within this rectangle.
  [[nodiscard]] constexpr bool contains(const Rect& inner) const {
    return inner.min.x >= min.x && inner.max.x <= max.x &&
           inner.min.y >= min.y && inner.max.y <= max.y;
  }
  [[nodiscard]] constexpr bool intersects(const Rect& o) const {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y &&
           o.min.y <= max.y;
  }

  /// Clamp a point into the rectangle (used to keep mobile nodes in-field).
  [[nodiscard]] constexpr Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  /// Bisect at the midpoint. Axis::Vertical cuts with a vertical line
  /// (first = left half); Axis::Horizontal cuts with a horizontal line
  /// (first = bottom half).
  [[nodiscard]] constexpr RectSplit split(Axis axis) const;

  /// The half (after a midpoint split along `axis`) containing `p`.
  /// Points exactly on the cut line belong to the first half.
  [[nodiscard]] constexpr Rect half_containing(Axis axis, Vec2 p) const;
};

struct RectSplit {
  Rect first;   ///< lower/left half
  Rect second;  ///< upper/right half
};

constexpr RectSplit Rect::split(Axis axis) const {
  if (axis == Axis::Vertical) {
    const double mid = (min.x + max.x) * 0.5;
    return {Rect{min, {mid, max.y}}, Rect{{mid, min.y}, max}};
  }
  const double mid = (min.y + max.y) * 0.5;
  return {Rect{min, {max.x, mid}}, Rect{{min.x, mid}, max}};
}

constexpr Rect Rect::half_containing(Axis axis, Vec2 p) const {
  const RectSplit s = split(axis);
  return s.first.contains(p) ? s.first : s.second;
}

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Segment intersection test used by perimeter-mode face routing: does the
/// open segment (a,b) cross segment (c,d)?
[[nodiscard]] bool segments_intersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

}  // namespace alert::util
