#pragma once

/// \file stats.hpp
/// Statistics helpers for experiment aggregation: online accumulators,
/// Student-t 95% confidence intervals (the paper draws "I"-shaped CI bars
/// from 30 runs), histograms, and small series containers used by the
/// figure-reproduction benches.

#include <cstddef>
#include <string>
#include <vector>

namespace alert::util {

/// Welford online mean/variance accumulator.
class Accumulator {
 public:
  /// The complete internal state, exposed so accumulators can be serialized
  /// exactly (the campaign result cache must replay a cached replication
  /// bit-for-bit; mean/stddev alone cannot reconstruct m2).
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Accumulator() = default;
  [[nodiscard]] static Accumulator from_state(const State& s);
  [[nodiscard]] State state() const { return {n_, mean_, m2_, min_, max_}; }

  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< unbiased sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Half-width of the two-sided 95% Student-t confidence interval of the
  /// mean. Zero for fewer than two samples.
  [[nodiscard]] double ci95_halfwidth() const;

  void merge(const Accumulator& o);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// 97.5th percentile of Student's t distribution with `dof` degrees of
/// freedom (exact table through 30, asymptotic 1.96 beyond).
[[nodiscard]] double student_t_975(std::size_t dof);

/// Fixed-width histogram over [lo, hi); samples outside are clamped into the
/// edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bins() const { return bins_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double low() const { return lo_; }
  [[nodiscard]] double high() const { return hi_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double quantile(double q) const;  ///< approximate, q in [0,1]

  /// Bin-wise sum with an identically-shaped histogram (same [lo, hi) and
  /// bin count — asserted); the merge primitive behind cross-replication
  /// metric aggregation.
  void merge(const Histogram& o);

 private:
  double lo_, hi_;
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
};

/// One point of a figure series: x, mean y, 95% CI half-width.
struct SeriesPoint {
  double x = 0.0;
  double y = 0.0;
  double ci = 0.0;
};

/// A named line on a figure (e.g. "ALERT", "GPSR").
struct Series {
  std::string name;
  std::vector<SeriesPoint> points;
};

// The table/JSON presentation of Series lives in obs/series.hpp — stdout
// output is confined to util/logging and the obs exporters (alert-lint
// raw-stdout rule).

}  // namespace alert::util
