#pragma once

/// \file fault_plan.hpp
/// Declarative adversity model for a run: what the channel and the nodes do
/// to the protocol besides mobility. A FaultPlan travels inside
/// ScenarioConfig (and therefore inside the canonical scenario dump and the
/// campaign cache key — see core/scenario_codec.cpp), and every random
/// decision it induces is drawn from forked streams of the replication RNG,
/// so fault runs are exactly as reproducible as ideal ones.
///
/// Three fault families, composable:
///  * frame loss — i.i.d. per-frame loss, or a per-link Gilbert–Elliott
///    two-state chain for bursty loss (channel_model.hpp);
///  * node churn — crash/recover schedules with exponential up/down times
///    (injector.hpp); a crashed radio neither transmits nor receives and
///    its neighbour table is wiped on reboot;
///  * region outages — jammer discs: frames with either endpoint inside an
///    active disc are lost (pure function of the plan, evaluated by the
///    Network at delivery time).
///
/// An all-defaults plan is inert: `any()` is false, the Network allocates
/// no channel model, the experiment harness schedules no injector, and no
/// extra RNG draw or audit word is ever made — byte-identical digests and
/// manifests with pre-fault builds are a tested invariant.

#include <optional>
#include <string>
#include <vector>

#include "util/geometry.hpp"

namespace alert::faults {

/// Per-frame loss process. `iid` is the memoryless baseline; switching
/// `gilbert` on replaces it with a two-state Gilbert–Elliott chain advanced
/// once per frame per directed link (loss clusters into bursts, the failure
/// mode that defeats naive single-retry recovery).
struct LossModel {
  double iid = 0.0;           ///< P(frame lost), memoryless; 0 = off
  bool gilbert = false;       ///< use the bursty two-state chain instead
  double ge_p_good_bad = 0.05;  ///< P(good -> bad) per frame
  double ge_p_bad_good = 0.30;  ///< P(bad -> good) per frame
  double ge_loss_good = 0.0;    ///< P(loss | good)
  double ge_loss_bad = 0.6;     ///< P(loss | bad)

  [[nodiscard]] bool active() const { return iid > 0.0 || gilbert; }
};

/// Crash/recover churn: each node alternates exponential up-times (mean
/// `mttf_s`) and down-times (mean `mttr_s`). `mttf_s == 0` disables churn;
/// `mttr_s == 0` makes every crash permanent (fail-stop).
struct Churn {
  double mttf_s = 0.0;   ///< mean time to failure; 0 = no churn
  double mttr_s = 10.0;  ///< mean time to recovery; 0 = never recover

  [[nodiscard]] bool active() const { return mttf_s > 0.0; }
};

/// Circular jammer: frames with an endpoint inside the disc during
/// [start_s, end_s) are lost at the channel.
struct Outage {
  util::Vec2 center;
  double radius_m = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
};

struct FaultPlan {
  LossModel loss;
  Churn churn;
  std::vector<Outage> outages;

  /// True when the plan changes anything at all about a run.
  [[nodiscard]] bool any() const {
    return loss.active() || churn.active() || !outages.empty();
  }

  /// Whether `pos` sits inside an outage disc active at `now`.
  [[nodiscard]] bool jammed(util::Vec2 pos, double now) const;
};

/// Reject unusable plans before any simulation runs: a loss probability
/// outside [0,1] or a negative MTTF/MTTR silently produces garbage results,
/// so scenario load treats them as fatal (exit 2 at the harness layer, same
/// contract as a malformed ALERTSIM_REPS). Returns the rejection reason, or
/// nullopt when the plan is usable.
[[nodiscard]] std::optional<std::string> validate(const FaultPlan& plan);

}  // namespace alert::faults
