#pragma once

/// \file injector.hpp
/// Runtime half of a FaultPlan's node-level faults: schedules crash/recover
/// churn on the simulator and emits outage window markers. The injector
/// does not know net::Network (that would cycle the library graph — net
/// already depends on faults for the plan); the harness hands it a
/// `set_alive(node, up)` callback instead.
///
/// Every state flip is folded into the determinism audit and, when obs is
/// wired, emitted as a TraceEvent (layer Sim, kinds "fault.crash" /
/// "fault.recover" / "fault.outage_on" / "fault.outage_off") and counted in
/// the metrics registry ("faults.crashes", "faults.recoveries",
/// "faults.outages"). With no plan scheduled, none of these counters exist,
/// keeping all-defaults metrics snapshots byte-identical to pre-fault runs.

#include <cstdint>
#include <functional>

#include "faults/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace alert::faults {

class FaultInjector {
 public:
  using SetAlive = std::function<void(std::uint32_t node, bool up)>;

  /// Schedules the plan's churn and outage events on `simulator` up to
  /// `horizon`. `metrics` may be null (no counters); `tracer` may be
  /// disabled (no events). `set_alive` flips the radio state of one node.
  FaultInjector(sim::Simulator& simulator, const FaultPlan& plan,
                std::size_t node_count, util::Rng rng, double horizon,
                SetAlive set_alive, obs::MetricsRegistry* metrics,
                obs::Tracer tracer);

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

 private:
  void schedule_crash(std::uint32_t node, double at);
  void crash(std::uint32_t node);
  void recover(std::uint32_t node);
  void mark(std::uint32_t node, const char* kind, std::uint64_t audit_tag);

  sim::Simulator& sim_;
  FaultPlan plan_;
  util::Rng rng_;
  double horizon_;
  SetAlive set_alive_;
  obs::Counter* crash_counter_ = nullptr;
  obs::Counter* recover_counter_ = nullptr;
  obs::Tracer tracer_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace alert::faults
