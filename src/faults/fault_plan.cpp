#include "faults/fault_plan.hpp"

namespace alert::faults {

namespace {

bool probability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultPlan::jammed(util::Vec2 pos, double now) const {
  for (const Outage& o : outages) {
    if (now < o.start_s || now >= o.end_s) continue;
    if (util::distance_sq(pos, o.center) <= o.radius_m * o.radius_m) {
      return true;
    }
  }
  return false;
}

std::optional<std::string> validate(const FaultPlan& plan) {
  if (!probability(plan.loss.iid)) {
    return "faults.loss.iid must be a probability in [0, 1]";
  }
  if (!probability(plan.loss.ge_p_good_bad) ||
      !probability(plan.loss.ge_p_bad_good) ||
      !probability(plan.loss.ge_loss_good) ||
      !probability(plan.loss.ge_loss_bad)) {
    return "faults.loss.ge_* must all be probabilities in [0, 1]";
  }
  if (plan.churn.mttf_s < 0.0) {
    return "faults.churn.mttf_s must be >= 0";
  }
  if (plan.churn.mttr_s < 0.0) {
    return "faults.churn.mttr_s must be >= 0";
  }
  for (const Outage& o : plan.outages) {
    if (o.radius_m < 0.0) return "fault outage radius must be >= 0";
    if (o.end_s < o.start_s) {
      return "fault outage window must have end >= start";
    }
  }
  return std::nullopt;
}

}  // namespace alert::faults
