#pragma once

/// \file channel_model.hpp
/// Runtime frame-loss process for a FaultPlan's LossModel. Owned by
/// net::Network (allocated only when the loss model is active, so ideal
/// channels pay nothing) and consulted once per frame arrival — unicast
/// attempts and every broadcast receiver independently.
///
/// Determinism: the model owns a forked RNG stream; frame arrivals are
/// discrete-event-ordered, so the draw sequence — and therefore every loss
/// decision — replays exactly for a given scenario + seed.

#include <cstdint>
#include <unordered_map>

#include "faults/fault_plan.hpp"
#include "util/rng.hpp"

namespace alert::faults {

class ChannelModel {
 public:
  ChannelModel(const LossModel& cfg, util::Rng rng)
      : cfg_(cfg), rng_(rng) {}

  /// One frame on the directed link sender -> receiver: advances the
  /// per-link Gilbert–Elliott chain (when configured) and returns whether
  /// the frame is lost.
  [[nodiscard]] bool lose_frame(std::uint32_t sender, std::uint32_t receiver);

  [[nodiscard]] std::uint64_t frames_lost() const { return frames_lost_; }
  [[nodiscard]] std::uint64_t frames_seen() const { return frames_seen_; }

 private:
  LossModel cfg_;
  util::Rng rng_;
  /// Gilbert–Elliott chain state per directed link; true = bad (bursty)
  /// state. Links start good; map order is never iterated, so the
  /// unordered container cannot perturb determinism.
  std::unordered_map<std::uint64_t, bool> link_bad_;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_seen_ = 0;
};

}  // namespace alert::faults
