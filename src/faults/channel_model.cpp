#include "faults/channel_model.hpp"

namespace alert::faults {

bool ChannelModel::lose_frame(std::uint32_t sender, std::uint32_t receiver) {
  ++frames_seen_;
  bool lost = false;
  if (cfg_.gilbert) {
    const std::uint64_t link =
        (static_cast<std::uint64_t>(sender) << 32) | receiver;
    bool& bad = link_bad_[link];
    bad = rng_.bernoulli(bad ? 1.0 - cfg_.ge_p_bad_good : cfg_.ge_p_good_bad);
    lost = rng_.bernoulli(bad ? cfg_.ge_loss_bad : cfg_.ge_loss_good);
  } else {
    lost = rng_.bernoulli(cfg_.iid);
  }
  if (lost) ++frames_lost_;
  return lost;
}

}  // namespace alert::faults
