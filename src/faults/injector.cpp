#include "faults/injector.hpp"

namespace alert::faults {

namespace {

/// Audit-word tags for the determinism digest (node id in the low bits).
constexpr std::uint64_t kCrashTag = 0xFA01'0000'0000'0000ULL;
constexpr std::uint64_t kRecoverTag = 0xFA02'0000'0000'0000ULL;
constexpr std::uint64_t kOutageTag = 0xFA03'0000'0000'0000ULL;

}  // namespace

FaultInjector::FaultInjector(sim::Simulator& simulator, const FaultPlan& plan,
                             std::size_t node_count, util::Rng rng,
                             double horizon, SetAlive set_alive,
                             obs::MetricsRegistry* metrics,
                             obs::Tracer tracer)
    : sim_(simulator),
      plan_(plan),
      rng_(rng),
      horizon_(horizon),
      set_alive_(std::move(set_alive)),
      tracer_(tracer) {
  if (metrics != nullptr) {
    crash_counter_ = &metrics->counter("faults.crashes");
    recover_counter_ = &metrics->counter("faults.recoveries");
    if (!plan_.outages.empty()) {
      metrics->counter("faults.outages").inc(plan_.outages.size());
    }
  }
  if (plan_.churn.active()) {
    for (std::uint32_t id = 0; id < node_count; ++id) {
      schedule_crash(id, rng_.exponential(plan_.churn.mttf_s));
    }
  }
  // Outage windows are enforced by FaultPlan::jammed() as a pure function
  // of time; the injector only marks the window edges for the audit and
  // the trace timeline.
  for (std::size_t i = 0; i < plan_.outages.size(); ++i) {
    const Outage& o = plan_.outages[i];
    const auto tag = kOutageTag | i;
    if (o.start_s < horizon_) {
      sim_.schedule_at(o.start_s, [this, tag] {
        mark(0, "fault.outage_on", tag);
      });
    }
    if (o.end_s < horizon_) {
      sim_.schedule_at(o.end_s, [this, tag] {
        mark(0, "fault.outage_off", tag ^ 1ULL << 32);
      });
    }
  }
}

void FaultInjector::schedule_crash(std::uint32_t node, double in) {
  const double at = sim_.now() + in;
  if (at >= horizon_) return;
  sim_.schedule_at(at, [this, node] { crash(node); });
}

void FaultInjector::crash(std::uint32_t node) {
  ++crashes_;
  if (crash_counter_ != nullptr) crash_counter_->inc();
  set_alive_(node, false);
  mark(node, "fault.crash", kCrashTag | node);
  if (plan_.churn.mttr_s <= 0.0) return;  // fail-stop: down for good
  const double at = sim_.now() + rng_.exponential(plan_.churn.mttr_s);
  if (at >= horizon_) return;
  sim_.schedule_at(at, [this, node] { recover(node); });
}

void FaultInjector::recover(std::uint32_t node) {
  ++recoveries_;
  if (recover_counter_ != nullptr) recover_counter_->inc();
  set_alive_(node, true);
  mark(node, "fault.recover", kRecoverTag | node);
  schedule_crash(node, rng_.exponential(plan_.churn.mttf_s));
}

void FaultInjector::mark(std::uint32_t node, const char* kind,
                         std::uint64_t audit_tag) {
  sim_.audit(audit_tag);
  if (tracer_.enabled()) {
    tracer_.emit(obs::TraceEvent{sim_.now(), node, 0, obs::TraceLayer::Sim,
                                 kind, 0.0, audit_tag});
  }
}

}  // namespace alert::faults
