#include "analysis/theory.hpp"

#include <cassert>
#include <cmath>

namespace alert::analysis {

double side_a(int h, double la) {
  assert(h >= 0);
  return la / std::exp2(static_cast<double>(h / 2));
}

double side_b(int h, double lb) {
  assert(h >= 0);
  return lb / std::exp2(static_cast<double>((h + 1) / 2));
}

double partitions_for_k(double density, double area, double k) {
  assert(density > 0 && area > 0 && k > 0);
  return std::log2(density * area / k);
}

double dest_zone_population(const NetworkShape& net, int H) {
  return side_a(H, net.la) * side_b(H, net.lb) * net.density();
}

double separation_probability(int sigma) {
  assert(sigma > 0);
  return std::exp2(-static_cast<double>(sigma));
}

double possible_nodes_at(const NetworkShape& net, int sigma) {
  return side_a(sigma, net.la) * side_b(sigma, net.lb) * net.density();
}

double expected_possible_nodes(const NetworkShape& net, int H) {
  double total = 0.0;
  for (int sigma = 1; sigma <= H; ++sigma) {
    total += possible_nodes_at(net, sigma) * separation_probability(sigma);
  }
  return total;
}

double binomial(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result = result * static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return result;
}

double rf_count_pmf(int H, int sigma, int i) {
  assert(sigma >= 0 && sigma <= H && i >= 0);
  const int m = H - sigma;
  if (i > m) return 0.0;
  return binomial(m, i) * std::exp2(-static_cast<double>(m));
}

double expected_rfs_at(int H, int sigma) {
  // Eq. (9). (The sum equals (H - sigma) / 2 in closed form; we evaluate
  // the series as written so tests can verify the identity.)
  double total = 0.0;
  for (int i = 1; i <= H - sigma; ++i) {
    total += rf_count_pmf(H, sigma, i) * static_cast<double>(i);
  }
  return total;
}

double expected_rfs(int H) {
  double total = 0.0;
  for (int sigma = 1; sigma <= H; ++sigma) {
    total += expected_rfs_at(H, sigma) * separation_probability(sigma);
  }
  return total;
}

double beta_circle(double radius_m, double speed_mps) {
  assert(speed_mps > 0);
  return M_PI * radius_m / (2.0 * speed_mps);
}

double beta_square_zone(double side_m, double speed_mps) {
  assert(speed_mps > 0);
  const double r_prime = side_m / 2.0;
  return std::sqrt(M_PI) * r_prime / speed_mps;
}

double remain_probability(double t_s, double beta_s) {
  assert(beta_s > 0);
  return std::exp(-t_s / beta_s);
}

double remaining_nodes(const NetworkShape& net, int H, double speed_mps,
                       double t_s) {
  const double population = dest_zone_population(net, H);
  if (speed_mps <= 0.0) return population;  // static nodes never leave
  const double side = side_a(H, net.la);
  return remain_probability(t_s, beta_square_zone(side, speed_mps)) *
         population;
}

double required_node_count(const NetworkShape& net, int H, double speed_mps,
                           double t_s, double k_required) {
  // N_r scales linearly with node count; solve for the count where
  // N_r(t) == k_required.
  NetworkShape unit = net;
  unit.node_count = 1.0;
  const double per_node = remaining_nodes(unit, H, speed_mps, t_s);
  assert(per_node > 0.0);
  return k_required / per_node;
}

double location_overhead_ratio(double n_nodes, double n_servers,
                               double update_freq, double regular_freq) {
  assert(n_nodes > 0 && regular_freq > 0);
  return (n_servers * (n_servers - 1.0) * update_freq +
          n_nodes * update_freq) /
         (n_nodes * regular_freq);
}

}  // namespace alert::analysis
