#pragma once

/// \file theory.hpp
/// Closed-form theoretical analysis of ALERT, Section 4 of the paper.
/// Each function implements one numbered equation; figure benches evaluate
/// them to regenerate Figs. 7 and 9, and property tests cross-check them
/// against Monte-Carlo simulation of the same random processes.

#include <cstdint>

namespace alert::analysis {

/// Parameters shared by the Section 4 formulas.
struct NetworkShape {
  double la = 1000.0;  ///< field side length l_A (m)
  double lb = 1000.0;  ///< field side length l_B (m)
  double node_count = 200.0;

  [[nodiscard]] double area() const { return la * lb; }
  /// Node density rho (nodes per square metre).
  [[nodiscard]] double density() const { return node_count / area(); }
};

/// Eq. (1): side length a(h, l_A) = l_A / 2^{floor(h/2)} of the h-th
/// partitioned zone.
[[nodiscard]] double side_a(int h, double la);

/// Eq. (2): side length b(h, l_B) = l_B / 2^{ceil(h/2)}.
[[nodiscard]] double side_b(int h, double lb);

/// Number of partitions H = log2(rho * G / k) producing a k-node
/// destination zone (Sec. 2.4). Returns the real-valued H; callers round.
[[nodiscard]] double partitions_for_k(double density, double area, double k);

/// Expected nodes in the destination zone after H partitions: rho*G/2^H.
[[nodiscard]] double dest_zone_population(const NetworkShape& net, int H);

/// Eq. (5): probability that sigma partitions separate S from D,
/// p_s(sigma) = 2^{-sigma}, 0 < sigma <= H.
[[nodiscard]] double separation_probability(int sigma);

/// Eq. (6): expected possible participating nodes for closeness sigma,
/// N_e(sigma) = a(sigma) * b(sigma) * rho.
[[nodiscard]] double possible_nodes_at(const NetworkShape& net, int sigma);

/// Eq. (7): expected possible participating nodes over all closeness,
/// N_e = sum_{sigma=1..H} N_e(sigma) p_s(sigma).
[[nodiscard]] double expected_possible_nodes(const NetworkShape& net, int H);

/// Eq. (8): pmf of the RF count given closeness sigma —
/// p_i(sigma, i) = C(H - sigma, i) (1/2)^{H - sigma}.
[[nodiscard]] double rf_count_pmf(int H, int sigma, int i);

/// Eq. (9): expected RFs given closeness sigma.
[[nodiscard]] double expected_rfs_at(int H, int sigma);

/// Eq. (10): expected RFs over all closeness,
/// N_RF = sum_sigma sum_i C(H-sigma, i) (1/2)^{H-sigma} * i / 2^sigma.
[[nodiscard]] double expected_rfs(int H);

/// Eq. (12)/(14): residence time constant beta(r) = pi * r / (2 v); with
/// the square-to-circle approximation r = 2 r' / sqrt(pi) this becomes
/// beta = sqrt(pi) r' / v, where 2 r' is the zone side length.
[[nodiscard]] double beta_circle(double radius_m, double speed_mps);
[[nodiscard]] double beta_square_zone(double side_m, double speed_mps);

/// Eq. (11): probability a node remains in the zone after time t,
/// p_r(t) = exp(-t / beta).
[[nodiscard]] double remain_probability(double t_s, double beta_s);

/// Eq. (15): expected nodes remaining in the destination zone after t,
/// N_r(t) = p_r(t) * a(H, l_A) * b(H, l_B) * rho. Requires a square field
/// and even H for the circle approximation to be exact; we evaluate the
/// general product anyway (the paper does the same in Fig. 9).
[[nodiscard]] double remaining_nodes(const NetworkShape& net, int H,
                                     double speed_mps, double t_s);

/// Inverse of Eq. (15) in density: the node count a network needs so that
/// `k_required` nodes still remain after `t_s` at `speed_mps` (Fig. 13b).
[[nodiscard]] double required_node_count(const NetworkShape& net, int H,
                                         double speed_mps, double t_s,
                                         double k_required);

/// Sec. 4.3: location-service overhead ratio
/// (N_L(N_L-1)f + Nf) / (NF); usability requires << 1.
[[nodiscard]] double location_overhead_ratio(double n_nodes, double n_servers,
                                             double update_freq,
                                             double regular_freq);

/// Binomial coefficient C(n, k) as double (n small; exact for n <= 60).
[[nodiscard]] double binomial(int n, int k);

}  // namespace alert::analysis
