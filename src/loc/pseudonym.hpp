#pragma once

/// \file pseudonym.hpp
/// Dynamic pseudonyms (Sec. 2.2): each node's identifier on air is
/// SHA-1(MAC address || timestamp), where the timestamp keeps 1-second
/// precision but its sub-second digits are randomized so an eavesdropper
/// cannot recompute the hash by enumerating plausible timestamps. Pseudonyms
/// expire after a configured lifetime; the manager records history so tests
/// can audit collision-freedom and expiry behaviour.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace alert::loc {

struct PseudonymPolicy {
  /// Lifetime after which a pseudonym must be rotated (Sec. 2.2 discusses
  /// the too-frequent / too-infrequent tradeoff).
  double lifetime_s = 20.0;
  /// Timestamp precision retained in the hashed value, seconds.
  double timestamp_precision_s = 1.0;
  /// Randomized sub-precision range (the paper randomizes "within 1/10th").
  std::uint64_t randomized_digits = 100'000'000;
};

class PseudonymManager final : public net::PseudonymProvider {
 public:
  PseudonymManager(PseudonymPolicy policy, util::Rng rng)
      : policy_(policy), rng_(rng) {}

  /// net::PseudonymProvider: derive a fresh pseudonym for `node` at `now`.
  net::Pseudonym make(const net::Node& node, sim::Time now) override;

  [[nodiscard]] const PseudonymPolicy& policy() const { return policy_; }

  /// True if `p` was issued no later than `lifetime_s` before `now`.
  [[nodiscard]] bool is_live(net::Pseudonym p, sim::Time now) const;

  /// Total pseudonyms issued and how many collided with an earlier issue
  /// (collision-resistance audit; expected 0 for SHA-1).
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

  /// All pseudonyms ever issued to a node, oldest first (test hook; a real
  /// adversary cannot obtain this linkage — that is the point).
  [[nodiscard]] std::vector<net::Pseudonym> history(net::NodeId id) const;

 private:
  PseudonymPolicy policy_;
  util::Rng rng_;
  struct Issue {
    net::NodeId node;
    sim::Time when;
  };
  std::unordered_map<net::Pseudonym, Issue> issues_;
  std::unordered_map<net::NodeId, std::vector<net::Pseudonym>> by_node_;
  std::uint64_t issued_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace alert::loc
