#pragma once

/// \file location_service.hpp
/// The secure location service of Sec. 2.2: trusted servers that hold each
/// node's (position, public key), replicated among themselves for
/// reliability. A source that knows a destination's *identity* obtains its
/// location and public key here — the real identity is never exposed on the
/// MANET itself.
///
/// Faithfulness notes:
///  * Nodes push position updates every `update_period_s`; queries return
///    the *last pushed* snapshot, so routing targets go stale exactly as in
///    the paper's "without destination update" runs (freeze_updates()
///    models that switch; Figs. 14b/15b/16b).
///  * A query costs the signer a signature and a symmetric decryption
///    (Sec. 2.2's signed request / encrypted reply with the predistributed
///    shared key); the caller charges those through crypto::CostModel.
///  * Servers may fail; a query succeeds while at least one replica is
///    alive (Sec. 2.2: "location servers are allowed to fail").
///  * Message counters implement the overhead accounting of Sec. 4.3
///    (N_L(N_L-1)fT inter-server + NfT update messages), which the
///    analysis module compares against the f ≪ F usability condition.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/pubkey.hpp"
#include "net/network.hpp"

namespace alert::loc {

struct LocationRecord {
  util::Vec2 position;
  crypto::PublicKey pubkey;
  net::Pseudonym pseudonym = 0;
  sim::Time updated_at = 0.0;
};

struct LocationServiceConfig {
  std::size_t server_count = 14;   ///< ≈ sqrt(N) for N=200 (Sec. 4.3)
  double update_period_s = 1.0;    ///< node position push frequency f
  double replication_period_s = 1.0;  ///< inter-server sync frequency
};

class LocationService {
 public:
  /// Registers periodic update/replication processes on the network's
  /// simulator until `horizon`.
  LocationService(net::Network& network, LocationServiceConfig config,
                  sim::Time horizon);

  /// Look up a destination by its real identity. Returns nullopt when every
  /// server replica has failed. The caller is responsible for charging
  /// crypto cost (query_crypto_cost_s()).
  [[nodiscard]] std::optional<LocationRecord> query(net::NodeId requester,
                                                    net::NodeId target);

  /// Simulated crypto latency of one query: sign request + decrypt reply.
  [[nodiscard]] double query_crypto_cost_s() const;

  /// Stop applying position updates (the paper's "without destination
  /// update" runs): queries keep returning the snapshot taken before the
  /// freeze. Pseudonym/pubkey data stays current — only positions freeze.
  void freeze_updates() { frozen_ = true; }
  void unfreeze_updates() { frozen_ = false; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Fail / restore a replica (reliability tests).
  void fail_server(std::size_t index);
  void restore_server(std::size_t index);
  [[nodiscard]] std::size_t alive_servers() const;
  [[nodiscard]] std::size_t server_count() const { return alive_.size(); }

  // --- Sec. 4.3 overhead accounting --------------------------------------
  [[nodiscard]] std::uint64_t update_messages() const {
    return update_messages_;
  }
  [[nodiscard]] std::uint64_t inter_server_messages() const {
    return inter_server_messages_;
  }
  [[nodiscard]] std::uint64_t query_messages() const {
    return query_messages_;
  }
  /// The Sec. 4.3 ratio (N_L(N_L-1)f + Nf) / (NF) for a given regular
  /// communication frequency F; must be ≪ 1 for usability.
  [[nodiscard]] double overhead_ratio(double regular_msg_frequency) const;

 private:
  void push_updates();

  net::Network& net_;
  LocationServiceConfig config_;
  std::vector<LocationRecord> records_;
  std::vector<bool> alive_;
  bool frozen_ = false;
  std::uint64_t update_messages_ = 0;
  std::uint64_t inter_server_messages_ = 0;
  std::uint64_t query_messages_ = 0;
};

}  // namespace alert::loc
