#include "loc/location_service.hpp"

#include <algorithm>
#include <cassert>

namespace alert::loc {

LocationService::LocationService(net::Network& network,
                                 LocationServiceConfig config,
                                 sim::Time horizon)
    : net_(network), config_(config) {
  assert(config_.server_count > 0);
  alive_.assign(config_.server_count, true);
  records_.resize(net_.size());
  push_updates();  // initial registration at t=0

  net_.simulator().schedule_periodic(
      config_.update_period_s, config_.update_period_s,
      [this] { push_updates(); });
  net_.simulator().schedule_periodic(
      config_.replication_period_s, config_.replication_period_s, [this] {
        // Full mesh replication: N_L * (N_L - 1) messages per round.
        const auto nl = static_cast<std::uint64_t>(alive_servers());
        inter_server_messages_ += nl * (nl - 1);
      });
  (void)horizon;  // periodic processes are bounded by the simulator run
}

void LocationService::push_updates() {
  const sim::Time now = net_.now();
  for (net::NodeId id = 0; id < net_.size(); ++id) {
    const net::Node& n = net_.node(id);
    ++update_messages_;
    LocationRecord& rec = records_[id];
    if (!frozen_) {
      rec.position = n.position(now);
      rec.updated_at = now;
    }
    // Identity material stays current even when positions are frozen: the
    // "without destination update" experiments disable *location* updates
    // only.
    rec.pubkey = n.public_key();
    rec.pseudonym = n.pseudonym();
  }
}

std::optional<LocationRecord> LocationService::query(net::NodeId requester,
                                                     net::NodeId target) {
  (void)requester;
  if (alive_servers() == 0) return std::nullopt;
  ++query_messages_;
  if (target >= records_.size()) return std::nullopt;
  return records_[target];
}

double LocationService::query_crypto_cost_s() const {
  const crypto::CostModel& c = net_.config().crypto_cost;
  // Sign the request with own identity; decrypt the reply with the
  // predistributed shared key.
  return c.sign_s + c.symmetric_decrypt_s;
}

void LocationService::fail_server(std::size_t index) {
  alive_.at(index) = false;
}

void LocationService::restore_server(std::size_t index) {
  alive_.at(index) = true;
}

std::size_t LocationService::alive_servers() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

double LocationService::overhead_ratio(double regular_msg_frequency) const {
  const auto nl = static_cast<double>(config_.server_count);
  const auto n = static_cast<double>(net_.size());
  const double f = 1.0 / config_.update_period_s;
  return (nl * (nl - 1.0) * f + n * f) / (n * regular_msg_frequency);
}

}  // namespace alert::loc
