#include "loc/pseudonym.hpp"

#include <cmath>

#include "crypto/sha1.hpp"

namespace alert::loc {

net::Pseudonym PseudonymManager::make(const net::Node& node, sim::Time now) {
  // Quantize the timestamp to the retained precision, then append
  // randomized sub-precision digits the attacker cannot enumerate cheaply.
  const auto quantized = static_cast<std::uint64_t>(
      std::floor(now / policy_.timestamp_precision_s));
  const std::uint64_t jitter = rng_.below(policy_.randomized_digits);

  std::uint8_t buf[24];
  auto put = [&buf](std::size_t off, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf[off + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    }
  };
  put(0, node.mac_address());
  put(8, quantized);
  put(16, jitter);
  net::Pseudonym p = crypto::digest_prefix64(
      crypto::Sha1::hash(std::span<const std::uint8_t>(buf, sizeof buf)));

  ++issued_;
  if (issues_.contains(p)) ++collisions_;
  issues_[p] = Issue{node.id(), now};
  by_node_[node.id()].push_back(p);
  return p;
}

bool PseudonymManager::is_live(net::Pseudonym p, sim::Time now) const {
  const auto it = issues_.find(p);
  return it != issues_.end() && now - it->second.when <= policy_.lifetime_s;
}

std::vector<net::Pseudonym> PseudonymManager::history(net::NodeId id) const {
  const auto it = by_node_.find(id);
  return it == by_node_.end() ? std::vector<net::Pseudonym>{} : it->second;
}

}  // namespace alert::loc
