#include "net/mobility.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace alert::net {

namespace {
constexpr sim::Time kForever = std::numeric_limits<sim::Time>::max() / 4;

/// Build a segment from `from` toward `to` at `speed`; returns end time.
sim::Time segment_toward(Node& node, util::Vec2 from, util::Vec2 to,
                         double speed, sim::Time now) {
  const double d = util::distance(from, to);
  if (speed <= 0.0 || d < 1e-9) {
    node.set_motion(from, now, {}, kForever);
    return kForever;
  }
  const sim::Time end = now + d / speed;
  node.set_motion(from, now, (to - from).normalized() * speed, end);
  return end;
}
}  // namespace

// --- RandomWaypoint --------------------------------------------------------

void RandomWaypoint::initialize(std::vector<std::unique_ptr<Node>>& nodes,
                                util::Rng& rng) {
  for (auto& n : nodes) {
    const util::Vec2 start = rng.point_in(field_);
    segment_toward(*n, start, rng.point_in(field_), speed_, 0.0);
  }
}

void RandomWaypoint::next_segment(Node& node, sim::Time now, util::Rng& rng) {
  const util::Vec2 here = node.position(now);
  if (pause_ > 0.0 && node.velocity().norm_sq() > 0.0) {
    // Arrived: pause in place before the next leg.
    node.set_motion(here, now, {}, now + pause_);
    return;
  }
  segment_toward(node, here, rng.point_in(field_), speed_, now);
}

// --- GroupMobility ---------------------------------------------------------

GroupMobility::GroupMobility(util::Rect field, double speed_mps,
                             std::size_t groups, double group_range_m)
    : field_(field), speed_(speed_mps), range_(group_range_m), refs_(groups) {
  assert(groups > 0);
}

std::size_t GroupMobility::group_of(NodeId id) const {
  return id % refs_.size();
}

util::Vec2 GroupMobility::reference_point(std::size_t g, sim::Time t) const {
  const GroupRef& r = refs_[g];
  const sim::Time eff = std::clamp(t, r.start, r.end);
  return r.start_pos + r.velocity * (eff - r.start);
}

void GroupMobility::advance_reference(std::size_t g, sim::Time now,
                                      util::Rng& rng) {
  GroupRef& r = refs_[g];
  const util::Vec2 here = reference_point(g, now);
  const util::Vec2 target = rng.point_in(field_);
  const double d = util::distance(here, target);
  r.start_pos = here;
  r.start = now;
  if (speed_ <= 0.0 || d < 1e-9) {
    r.velocity = {};
    r.end = kForever;
  } else {
    // The reference point moves at the member speed; members inside the
    // disc add their own local motion on top.
    r.velocity = (target - here).normalized() * speed_;
    r.end = now + d / speed_;
  }
}

void GroupMobility::initialize(std::vector<std::unique_ptr<Node>>& nodes,
                               util::Rng& rng) {
  node_count_ = nodes.size();
  for (std::size_t g = 0; g < refs_.size(); ++g) {
    refs_[g].start_pos = rng.point_in(field_);
    refs_[g].start = 0.0;
    advance_reference(g, 0.0, rng);
  }
  for (auto& n : nodes) {
    const std::size_t g = group_of(n->id());
    const double ang = rng.uniform(0.0, 2.0 * M_PI);
    const double rad = range_ * std::sqrt(rng.uniform());
    const util::Vec2 start = field_.clamp(
        reference_point(g, 0.0) +
        util::Vec2{rad * std::cos(ang), rad * std::sin(ang)});
    next_segment(*n, 0.0, rng);
    // next_segment set a segment from the reference area; restart it from
    // the sampled start position instead.
    segment_toward(*n, start, field_.clamp(reference_point(g, 0.0)), speed_,
                   0.0);
  }
}

void GroupMobility::next_segment(Node& node, sim::Time now, util::Rng& rng) {
  const std::size_t g = group_of(node.id());
  if (now >= refs_[g].end) advance_reference(g, now, rng);
  // Member waypoint: a point in the disc around where the reference point
  // will be a few seconds from now, so members chase the moving group.
  constexpr double kLookaheadS = 5.0;
  const util::Vec2 future_ref =
      reference_point(g, std::min(now + kLookaheadS, refs_[g].end));
  const double ang = rng.uniform(0.0, 2.0 * M_PI);
  const double rad = range_ * std::sqrt(rng.uniform());
  const util::Vec2 target = field_.clamp(
      future_ref + util::Vec2{rad * std::cos(ang), rad * std::sin(ang)});
  const util::Vec2 here = node.position(now);
  // Cap the segment so the member re-evaluates the group position often.
  const sim::Time end = segment_toward(node, here, target, speed_, now);
  if (end > now + kLookaheadS && speed_ > 0.0) {
    node.set_motion(here, now, node.velocity(), now + kLookaheadS);
  }
}

// --- StaticPlacement -------------------------------------------------------

void StaticPlacement::initialize(std::vector<std::unique_ptr<Node>>& nodes,
                                 util::Rng& rng) {
  if (!positions_.empty()) {
    assert(positions_.size() == nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->set_motion(positions_[i], 0.0, {}, kForever);
    }
    return;
  }
  for (auto& n : nodes) {
    n->set_motion(rng.point_in(field_), 0.0, {}, kForever);
  }
}

void StaticPlacement::next_segment(Node& node, sim::Time now,
                                   util::Rng& rng) {
  (void)rng;
  node.set_motion(node.position(now), now, {}, kForever);
}

}  // namespace alert::net
