#pragma once

/// \file mobility.hpp
/// Node movement models used by the paper's evaluation (Sec. 5.1):
///  * random waypoint [17] — each node independently picks a uniform point
///    in the field and moves there at constant speed, optionally pausing;
///  * reference-point group mobility [18] — groups follow a moving logical
///    reference point doing random waypoint over the field; each member
///    picks successive waypoints inside a disc of `group_range` metres
///    around its group's reference point (paper configs: 10 groups/150 m
///    and 5 groups/200 m).
///
/// Motion is piecewise linear and event-driven: a model sets a node's
/// current segment and is asked for the next one when the segment ends, so
/// position lookup is O(1) with no per-tick updates.

#include <memory>
#include <vector>

#include "net/node.hpp"
#include "sim/event_queue.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace alert::net {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Place every node and give it its first motion segment at time 0.
  virtual void initialize(std::vector<std::unique_ptr<Node>>& nodes,
                          util::Rng& rng) = 0;

  /// A node's segment expired at `now`: give it the next one.
  virtual void next_segment(Node& node, sim::Time now, util::Rng& rng) = 0;
};

/// Random waypoint with constant speed and optional pause time.
class RandomWaypoint final : public MobilityModel {
 public:
  RandomWaypoint(util::Rect field, double speed_mps, double pause_s = 0.0)
      : field_(field), speed_(speed_mps), pause_(pause_s) {}

  void initialize(std::vector<std::unique_ptr<Node>>& nodes,
                  util::Rng& rng) override;
  void next_segment(Node& node, sim::Time now, util::Rng& rng) override;

 private:
  util::Rect field_;
  double speed_;
  double pause_;
};

/// Reference-point group mobility.
class GroupMobility final : public MobilityModel {
 public:
  GroupMobility(util::Rect field, double speed_mps, std::size_t groups,
                double group_range_m);

  void initialize(std::vector<std::unique_ptr<Node>>& nodes,
                  util::Rng& rng) override;
  void next_segment(Node& node, sim::Time now, util::Rng& rng) override;

  [[nodiscard]] std::size_t groups() const { return refs_.size(); }
  /// The logical reference point of group `g` at time t (for tests).
  [[nodiscard]] util::Vec2 reference_point(std::size_t g, sim::Time t) const;

 private:
  struct GroupRef {
    util::Vec2 start_pos;
    sim::Time start = 0.0;
    util::Vec2 velocity;
    sim::Time end = 0.0;
  };

  void advance_reference(std::size_t g, sim::Time now, util::Rng& rng);
  [[nodiscard]] std::size_t group_of(NodeId id) const;

  util::Rect field_;
  double speed_;
  double range_;
  std::vector<GroupRef> refs_;
  std::size_t node_count_ = 0;
};

/// Degenerate model for static scenarios (speed 0 in Fig. 13a) and unit
/// tests needing fixed topologies.
class StaticPlacement final : public MobilityModel {
 public:
  /// Uniform random static placement in `field`.
  explicit StaticPlacement(util::Rect field) : field_(field) {}
  /// Exact positions (size must match the node count at initialize()).
  explicit StaticPlacement(std::vector<util::Vec2> positions)
      : positions_(std::move(positions)) {}

  void initialize(std::vector<std::unique_ptr<Node>>& nodes,
                  util::Rng& rng) override;
  void next_segment(Node& node, sim::Time now, util::Rng& rng) override;

 private:
  util::Rect field_;
  std::vector<util::Vec2> positions_;
};

}  // namespace alert::net
