#include "net/mac.hpp"

#include <algorithm>

#include "net/node.hpp"

namespace alert::net {

MacGrant Mac::acquire(Node& node, std::size_t bytes, sim::Time earliest,
                      std::size_t contending_neighbors, util::Rng& rng) {
  ALERT_OBS_TIMED(profiler_, acquire_scope_);
  const double backoff =
      cfg_.difs_s +
      cfg_.slot_s * rng.uniform() *
          (1.0 + cfg_.contention_per_neighbor *
                     static_cast<double>(contending_neighbors));
  const sim::Time start =
      std::max(earliest, node.mac_busy_until) + backoff;
  const double tx = tx_time(bytes);
  node.mac_busy_until = start + tx;
  return MacGrant{start, tx};
}

}  // namespace alert::net
