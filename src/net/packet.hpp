#pragma once

/// \file packet.hpp
/// The simulated over-the-air packet, including ALERT's universal
/// RREQ/RREP/NAK format (paper Fig. 4):
///
///   | P_S | P_D | L_ZS | L_ZD | L_TD | h | H | K_s^S | (TTL)_{K_pub^RN} |
///   | (Bitmap)_{K_pub^D} | data |
///
/// Fields an adversary could read on air are stored in the clear here only
/// when the paper sends them in the clear; everything the paper encrypts is
/// held as RSA/XTEA ciphertext blocks. A few `true_*` members are
/// simulation-oracle metadata used exclusively by metrics and attack-ground-
/// truth bookkeeping — they are never read by protocol code.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/pubkey.hpp"
#include "util/geometry.hpp"

namespace alert::net {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Pseudonyms are SHA-1 prefixes (see loc::PseudonymManager).
using Pseudonym = std::uint64_t;

enum class PacketKind : std::uint8_t {
  Hello,            ///< periodic beacon: pseudonym + position + public key
  Data,             ///< RREQ carrying application payload
  Confirm,          ///< destination's delivery confirmation (RREP role)
  Nak,              ///< negative acknowledgement (data field empty)
  Cover,            ///< notify-and-go cover traffic (TTL=0 equivalent)
  IdDissemination,  ///< ALARM periodic identity flooding
};

/// ALERT-specific header fields (Fig. 4).
struct AlertFields {
  util::Rect dest_zone;   ///< L_ZD: position of the Hth partitioned zone
  util::Vec2 td;          ///< L_TD: current temporary destination
  std::uint8_t h = 0;     ///< partitions performed so far
  std::uint8_t cap_h = 0; ///< H: maximum number of partitions
  bool next_partition_horizontal = false;  ///< direction bit, flipped per RF

  /// L_ZS — source's Hth partitioned zone, encrypted under K_pub^D
  /// (rsa_encrypt_bytes blocks of the 32-byte rect encoding).
  std::vector<std::uint64_t> src_zone_enc;
  /// Session key K_s^S wrapped under K_pub^D.
  std::vector<std::uint64_t> session_key_enc;
  /// TTL under the next relay's public key; absent on cover packets whose
  /// TTL failed to issue (cover packets carry garbage ciphertext instead).
  std::optional<std::uint64_t> ttl_enc;
  /// Intersection-countermeasure bit-alteration layers (Sec. 3.3): each
  /// zone broadcast of the packet flips fresh payload bits and appends one
  /// RSA-encrypted bitmap layer under K_pub^D. D restores layers in
  /// reverse. Empty when the countermeasure is off.
  std::vector<std::vector<std::uint64_t>> bitmap_layers_enc;
  std::uint32_t bitmap_flips_per_layer = 0;

  /// D's public key, carried so the last RF can encrypt bitmap layers (the
  /// paper assumes public keys are public via the location service; we
  /// carry it in-band — it reveals no more than P_D already does).
  crypto::PublicKey dest_pubkey;

  /// First-step multicast recipient set (m of the k zone nodes, Sec. 3.3).
  std::vector<Pseudonym> multicast_set;

  /// Set once the packet enters the destination-zone delivery phase.
  bool in_dest_zone_phase = false;
  /// Second-step one-hop rebroadcast of the countermeasure (Sec. 3.3).
  bool countermeasure_second_step = false;
};

/// Fields used by the geographic baselines (GPSR/ALARM/AO2P).
struct GeoFields {
  util::Vec2 dest_pos;             ///< where the protocol believes D is
  /// GPSR perimeter-mode state (Karp & Kung).
  bool perimeter_mode = false;
  util::Vec2 perimeter_entry;      ///< L_p: where greedy failed
  util::Vec2 face_cross_start;     ///< first edge point of current face walk
  NodeId perimeter_first_hop = kInvalidNode;
};

struct Packet {
  PacketKind kind = PacketKind::Data;
  Pseudonym src_pseudonym = 0;  ///< P_S
  Pseudonym dst_pseudonym = 0;  ///< P_D

  std::uint32_t flow = 0;  ///< S-D pair index
  std::uint32_t seq = 0;   ///< per-flow sequence number

  /// Over-the-air size in bytes (payload + header), used for tx time.
  std::size_t size_bytes = 0;
  /// Application payload (encrypted under the flow's session key for Data).
  std::vector<std::uint8_t> payload;

  std::optional<AlertFields> alert;
  std::optional<GeoFields> geo;

  /// Remaining link-layer hops (the TTL=10 bound of Sec. 5.6 for baselines;
  /// ALERT bounds per-TD GPSR legs the same way).
  int hops_remaining = 64;
  int hop_count = 0;  ///< hops traversed so far (metrics)

  std::uint64_t uid = 0;         ///< unique per original application packet
  /// When the current delivery *attempt* left the source (reset by
  /// retransmissions) — basis of the per-packet latency metric.
  double app_send_time = 0.0;
  /// When the application first issued the packet (never reset) — basis of
  /// the end-to-end delay metric, which includes retransmission waits.
  double first_send_time = 0.0;

  // --- simulation-oracle metadata (metrics / attack ground truth only) ---
  NodeId true_source = kInvalidNode;
  NodeId true_dest = kInvalidNode;
  NodeId prev_hop = kInvalidNode;  ///< physical sender of this transmission
};

/// Serialized size of the protocol header (rough per-field accounting used
/// to charge realistic on-air bytes on top of the payload).
[[nodiscard]] std::size_t header_bytes(const Packet& pkt);

}  // namespace alert::net
