#pragma once

/// \file mac.hpp
/// Simplified 802.11-DCF cost model. We do not simulate RTS/CTS frame
/// exchange; we charge the first-order latency terms a DCF MAC produces:
///   * serialization: a node transmits one frame at a time
///     (`Node::mac_busy_until`),
///   * transmission time: bytes * 8 / bandwidth (2 Mb/s default, the
///     802.11 basic rate used with NS-2.29 in the paper),
///   * contention backoff: a random slot-scaled wait growing with the
///     number of contending neighbours,
///   * propagation delay at c.
/// DESIGN.md's substitution table records why this preserves the paper's
/// latency comparison.

#include "obs/profile.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace alert::net {

class Node;

/// Link-layer unicast ARQ (stop-and-wait with binary-exponential backoff).
/// Off by default: the ideal-channel runs that reproduce the paper's
/// figures are byte-identical with or without this struct existing. When
/// enabled, every unicast frame is acked by the receiver; a missing ack
/// triggers up to `retry_limit` retransmissions, after which the failure is
/// surfaced to the router as DropReason::RetryExhausted via
/// PacketHandler::on_send_failed. docs/FAULTS.md spells out the model
/// (acks are charged for but never lost — their loss rate is second-order
/// and collapsing it keeps packet conservation exact).
struct ArqConfig {
  bool enabled = false;
  int retry_limit = 4;          ///< attempts per frame, including the first
  double ack_timeout_s = 3e-3;  ///< wait for the ack before retrying
  double backoff_base_s = 1e-3; ///< binary-exponential backoff unit
  std::size_t ack_bytes = 14;   ///< ack frame size (energy + air time)
};

struct MacConfig {
  double bandwidth_bps = 2e6;       ///< 802.11 basic rate
  double slot_s = 100e-6;           ///< contention slot scale
  double difs_s = 50e-6;            ///< fixed per-frame overhead
  double propagation_mps = 3.0e8;   ///< radio propagation speed
  double contention_per_neighbor = 0.15;  ///< backoff growth per contender
  ArqConfig arq;
};

/// Outcome of scheduling one frame on the channel.
struct MacGrant {
  sim::Time start;    ///< when the frame begins on air
  sim::Time tx_time;  ///< serialization time
};

class Mac {
 public:
  explicit Mac(MacConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const MacConfig& config() const { return cfg_; }

  [[nodiscard]] double tx_time(std::size_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / cfg_.bandwidth_bps;
  }

  [[nodiscard]] double propagation_delay(double meters) const {
    return meters / cfg_.propagation_mps;
  }

  /// Reserve the channel at `node` for a `bytes`-long frame, not before
  /// `earliest`. Applies DIFS + density-dependent random backoff and
  /// advances the node's busy horizon.
  MacGrant acquire(Node& node, std::size_t bytes, sim::Time earliest,
                   std::size_t contending_neighbors, util::Rng& rng);

  /// Attach the owning network's self-profiler (scope "mac.acquire").
  void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    acquire_scope_ =
        profiler_ != nullptr ? profiler_->scope("mac.acquire") : 0;
  }

 private:
  MacConfig cfg_;
  obs::Profiler* profiler_ = nullptr;  // non-owning
  obs::ScopeId acquire_scope_ = 0;
};

}  // namespace alert::net
