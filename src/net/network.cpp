#include "net/network.hpp"

#include <algorithm>
#include <cassert>

#include "crypto/sha1.hpp"

namespace alert::net {

namespace {

/// Fallback pseudonym provider: SHA-1(MAC || nanosecond timestamp with
/// randomized sub-second digits), per Sec. 2.2. loc::PseudonymManager
/// implements the full policy (expiry windows, collision audit); this
/// default keeps Network usable standalone.
class DefaultPseudonyms final : public PseudonymProvider {
 public:
  explicit DefaultPseudonyms(std::uint64_t seed) : rng_(seed) {}

  Pseudonym make(const Node& node, sim::Time now) override {
    // Keep 1-second precision and randomize within a tenth (Sec. 2.2's
    // randomization): attacker cannot recompute the exact timestamp.
    const auto seconds = static_cast<std::uint64_t>(now);
    const std::uint64_t jitter = rng_.below(100'000'000);  // sub-second ns
    std::uint8_t buf[24];
    auto put = [&buf](std::size_t off, std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        buf[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
      }
    };
    put(0, node.mac_address());
    put(8, seconds);
    put(16, jitter);
    return crypto::digest_prefix64(crypto::Sha1::hash(
        std::span<const std::uint8_t>(buf, sizeof buf)));
  }

 private:
  util::Rng rng_;
};

}  // namespace

PacketFate fate_for(DropReason why) {
  switch (why) {
    case DropReason::OutOfRange: return PacketFate::Dropped;
    case DropReason::NoHandler: return PacketFate::Dropped;
    case DropReason::TtlExpired: return PacketFate::Dropped;
    case DropReason::ChannelLoss: return PacketFate::LostChannel;
    case DropReason::NodeDown: return PacketFate::OwnerCrashed;
    case DropReason::RetryExhausted: return PacketFate::RetryExhausted;
  }
  return PacketFate::Dropped;
}

Network::Network(sim::Simulator& simulator, NetworkConfig config,
                 std::unique_ptr<MobilityModel> mobility, util::Rng rng,
                 sim::Time horizon)
    : sim_(simulator),
      config_(config),
      mobility_(std::move(mobility)),
      rng_(rng),
      horizon_(horizon),
      mac_(config.mac),
      energy_(config.energy, config.node_count) {
  assert(mobility_ != nullptr);
  if (obs::Profiler* profiler = sim_.profiler(); profiler != nullptr) {
    tx_scope_ = profiler->scope("net.transmit");
    deliver_scope_ = profiler->scope("net.deliver");
    query_scope_ = profiler->scope("net.query");
    mac_.set_profiler(profiler);
  }
  default_provider_ =
      std::make_unique<DefaultPseudonyms>(rng_.fork(0xA11CE).next());
  pseudonym_provider_ = default_provider_.get();

  // Frame-loss process: only materialized when the plan asks for loss
  // (fork() is const on the parent, so merely checking costs no draws and
  // the ideal-channel RNG stream is untouched).
  if (config_.faults.loss.active()) {
    channel_ = std::make_unique<faults::ChannelModel>(
        config_.faults.loss, rng_.fork(0xFA17));
  }

  util::Rng keygen = rng_.fork(0x6E75);
  nodes_.reserve(config_.node_count);
  for (NodeId id = 0; id < config_.node_count; ++id) {
    const std::uint64_t mac_addr = 0x02'00'00'00'00'00ULL + id;
    nodes_.push_back(std::make_unique<Node>(
        id, mac_addr, crypto::generate_keypair(keygen,
                                               config_.rsa_modulus_bits)));
  }
  handlers_.assign(nodes_.size(), nullptr);

  delivery_ids_.resize(nodes_.size());
  if (config_.scale.grid) {
    grid_ = std::make_unique<scale::SpatialGrid>(
        config_.field, config_.radio_range_m,
        static_cast<std::uint32_t>(nodes_.size()));
  }
  if (config_.scale.pool_packets) {
    packet_pool_ = std::make_unique<scale::SlabPool<PooledFrame>>();
  }

  mobility_->initialize(nodes_, rng_);
  for (auto& n : nodes_) {
    rotate_pseudonym(*n);
    if (grid_ != nullptr) index_segment(*n);
    schedule_mobility(*n);
  }

  // Hello beaconing: desynchronized start within one period.
  for (auto& n : nodes_) {
    Node* node = n.get();
    const double phase = rng_.uniform(0.0, config_.hello_period_s);
    sim_.schedule_periodic(phase, config_.hello_period_s,
                           [this, node] { send_hello(*node); });
  }
  // Pseudonym rotation.
  for (auto& n : nodes_) {
    Node* node = n.get();
    const double phase = rng_.uniform(0.0, config_.pseudonym_period_s);
    sim_.schedule_periodic(phase, config_.pseudonym_period_s,
                           [this, node] { rotate_pseudonym(*node); });
  }
}

Network::~Network() = default;

std::vector<NodeId> Network::nodes_within(util::Vec2 center, double radius,
                                          sim::Time t) const {
  std::vector<NodeId> out;
  if (grid_ != nullptr) {
    // The grid's candidates pass the same exact distance filter the scan
    // applies, so after the ascending sort the result is identical.
    out.resize(nodes_.size());
    const std::size_t found = grid_->collect_in_disc(
        center, radius,
        [this, t](std::uint32_t id) { return nodes_[id]->position(t); },
        out.data());
    out.resize(found);
    std::sort(out.begin(), out.end());
    return out;
  }
  const double r2 = radius * radius;
  for (const auto& n : nodes_) {
    if (util::distance_sq(n->position(t), center) <= r2) {
      out.push_back(n->id());
    }
  }
  return out;
}

std::size_t Network::neighbour_count(util::Vec2 center, double radius,
                                     sim::Time t) const {
  ALERT_OBS_TIMED(sim_.profiler(), query_scope_);
  if (grid_ != nullptr) {
    return grid_->count_in_disc(center, radius, [this, t](std::uint32_t id) {
      return nodes_[id]->position(t);
    });
  }
  const double r2 = radius * radius;
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (util::distance_sq(n->position(t), center) <= r2) ++count;
  }
  return count;
}

std::size_t Network::gather_receivers(util::Vec2 center, double radius,
                                      sim::Time t) {
  ALERT_OBS_TIMED(sim_.profiler(), query_scope_);
  if (grid_ != nullptr) {
    const std::size_t found = grid_->collect_in_disc(
        center, radius,
        [this, t](std::uint32_t id) { return nodes_[id]->position(t); },
        delivery_ids_.data());
    std::sort(delivery_ids_.begin(),
              delivery_ids_.begin() + static_cast<std::ptrdiff_t>(found));
    return found;
  }
  const double r2 = radius * radius;
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (util::distance_sq(n->position(t), center) <= r2) {
      delivery_ids_[count++] = n->id();
    }
  }
  return count;
}

void Network::index_segment(Node& node) {
  // Cover only the sub-segment queries can reach: from the node's position
  // now (reindexing happens at waypoint events, i.e. segment starts) to
  // where it will be at the earlier of segment end and horizon. This keeps
  // a far-future leg — or a hold-forever segment — from smearing coverage
  // across cells no query will ever need.
  const sim::Time now = sim_.now();
  const sim::Time end = std::max(std::min(node.segment_end(), horizon_), now);
  grid_->update(node.id(), node.position(now), node.position(end));
}

NodeId Network::resolve_pseudonym(Pseudonym p) const {
  const auto it = pseudonym_registry_.find(p);
  return it == pseudonym_registry_.end() ? kInvalidNode : it->second;
}

void Network::attach_handler(NodeId id, PacketHandler* handler) {
  handlers_.at(id) = handler;
}

void Network::add_listener(TraceListener* listener) {
  listeners_.push_back(listener);
}

void Network::set_pseudonym_provider(PseudonymProvider* provider) {
  pseudonym_provider_ = provider != nullptr ? provider
                                            : default_provider_.get();
}

void Network::rotate_pseudonym(Node& node) {
  // Old pseudonym stays resolvable until overwritten by another node —
  // mirrors neighbours' stale tables remaining temporarily usable.
  const Pseudonym p = pseudonym_provider_->make(node, sim_.now());
  node.set_pseudonym(p);
  pseudonym_registry_[p] = node.id();
}

void Network::schedule_mobility(Node& node) {
  const sim::Time end = node.segment_end();
  if (end >= horizon_) return;
  Node* n = &node;
  sim_.schedule_at(end, [this, n] {
    mobility_->next_segment(*n, sim_.now(), rng_);
    if (grid_ != nullptr) index_segment(*n);
    schedule_mobility(*n);
  });
}

void Network::send_hello(Node& node) {
  if (!node.alive()) return;  // a crashed radio does not beacon
  ++hello_count_;
  Packet pkt;
  pkt.kind = PacketKind::Hello;
  pkt.src_pseudonym = node.pseudonym();
  pkt.size_bytes = 32;
  pkt.true_source = node.id();
  pkt.prev_hop = node.id();
  broadcast(node, std::move(pkt));
}

void Network::unicast(Node& from, Pseudonym to, Packet pkt,
                      double processing_delay) {
  ALERT_OBS_TIMED(sim_.profiler(), tx_scope_);
  pkt.prev_hop = from.id();
  // Fold the transmission into the determinism audit: uid, kind and sender
  // are all seed-deterministic words (never addresses or wall-clock).
  sim_.audit((pkt.uid << 8) ^ static_cast<std::uint64_t>(pkt.kind));
  sim_.audit(from.id());
  if (!from.alive()) {
    // The holder's radio died with the frame still queued (e.g. a timer
    // fired on a node that crashed since): no air time was spent.
    drop_and_notify(from, to, pkt, DropReason::NodeDown);
    return;
  }
  transmit_unicast(from, to, std::move(pkt), processing_delay, 1);
}

void Network::transmit_unicast(Node& from, Pseudonym to, Packet pkt,
                               double processing_delay, int attempt) {
  const sim::Time now = sim_.now();
  const util::Vec2 pos = from.position(now);
  const std::size_t contenders =
      neighbour_count(pos, config_.radio_range_m, now);
  const MacGrant grant =
      mac_.acquire(from, pkt.size_bytes, now + processing_delay, contenders,
                   rng_);
  energy_.charge_tx(from.id(), pkt.size_bytes, config_.radio_range_m);
  const NodeId receiver = resolve_pseudonym(to);
  for (auto* l : listeners_) l->on_transmit(from, pkt, grant.start);

  const NodeId sender = from.id();
  const sim::Time arrive =
      grant.start + grant.tx_time +
      mac_.propagation_delay(config_.radio_range_m);
  if (packet_pool_ != nullptr) {
    const auto h = packet_pool_->acquire();
    PooledFrame& frame = packet_pool_->at(h);
    frame.pkt = std::move(pkt);
    frame.sender = sender;
    frame.receiver = receiver;
    frame.to = to;
    frame.attempt = attempt;
    sim_.schedule_at(arrive, [this, h] {
      // Slots live in fixed chunks, so the reference survives any pool
      // growth a nested (re)transmission causes during delivery.
      const PooledFrame& f = packet_pool_->at(h);
      deliver_unicast(f.sender, f.receiver, f.to, f.pkt, f.attempt);
      packet_pool_->release(h);
    });
    return;
  }
  sim_.schedule_at(arrive,
                   [this, sender, receiver, to, attempt,
                    pkt = std::move(pkt)] {
                     deliver_unicast(sender, receiver, to, pkt, attempt);
                   });
}

void Network::broadcast(Node& from, Packet pkt, double processing_delay) {
  ALERT_OBS_TIMED(sim_.profiler(), tx_scope_);
  pkt.prev_hop = from.id();
  sim_.audit((pkt.uid << 8) ^ static_cast<std::uint64_t>(pkt.kind));
  sim_.audit(from.id());
  if (!from.alive()) return;  // dead radio: the broadcast never airs
  const sim::Time now = sim_.now();
  const util::Vec2 pos = from.position(now);
  const std::size_t contenders =
      neighbour_count(pos, config_.radio_range_m, now);
  const MacGrant grant =
      mac_.acquire(from, pkt.size_bytes, now + processing_delay, contenders,
                   rng_);
  energy_.charge_tx(from.id(), pkt.size_bytes, config_.radio_range_m);
  for (auto* l : listeners_) l->on_transmit(from, pkt, grant.start);

  const NodeId sender = from.id();
  const sim::Time arrive =
      grant.start + grant.tx_time +
      mac_.propagation_delay(config_.radio_range_m);
  // Capture the sender position at transmission time: receivers are the
  // nodes inside the range disc around where the frame was emitted.
  if (packet_pool_ != nullptr) {
    const auto h = packet_pool_->acquire();
    PooledFrame& frame = packet_pool_->at(h);
    frame.pkt = std::move(pkt);
    frame.origin = pos;
    frame.sender = sender;
    sim_.schedule_at(arrive, [this, h] {
      const PooledFrame& f = packet_pool_->at(h);
      deliver_broadcast(f.sender, f.pkt, f.origin);
      packet_pool_->release(h);
    });
    return;
  }
  sim_.schedule_at(arrive, [this, sender, pos, pkt = std::move(pkt)] {
    deliver_broadcast(sender, pkt, pos);
  });
}

void Network::deliver_broadcast(NodeId sender, const Packet& pkt,
                                util::Vec2 sender_pos) {
  ALERT_OBS_TIMED(sim_.profiler(), deliver_scope_);
  const sim::Time now = sim_.now();
  const std::size_t receiver_count =
      gather_receivers(sender_pos, config_.radio_range_m, now);
  for (std::size_t i = 0; i < receiver_count; ++i) {
    const NodeId id = delivery_ids_[i];
    if (id == sender) continue;
    Node& receiver = *nodes_[id];
    if (!receiver.alive()) continue;  // crashed radios hear nothing
    // Per-receiver channel faults: jammer discs over either endpoint, then
    // the loss model's independent draw for this receiver. No ack exists
    // for broadcasts, so a loss is simply a missed reception (this is what
    // starves neighbour tables under loss — hellos are broadcasts too).
    if (config_.faults.jammed(sender_pos, now) ||
        config_.faults.jammed(receiver.position(now), now) ||
        (channel_ != nullptr && channel_->lose_frame(sender, id))) {
      ++broadcast_losses_;
      continue;
    }
    energy_.charge_rx(id, pkt.size_bytes);
    if (pkt.kind == PacketKind::Hello) {
      const Node& s = *nodes_[sender];
      receiver.observe_neighbor(
          NeighborInfo{pkt.src_pseudonym, s.position(now), s.public_key(),
                       now},
          now);
      receiver.expire_neighbors(now, config_.neighbor_max_age_s);
      continue;  // hellos are consumed by the neighbour layer
    }
    for (auto* l : listeners_) l->on_deliver(receiver, pkt, now);
    if (handlers_[id] != nullptr) handlers_[id]->handle(receiver, pkt);
  }
}

void Network::deliver_unicast(NodeId sender, NodeId receiver, Pseudonym to,
                              const Packet& pkt, int attempt) {
  ALERT_OBS_TIMED(sim_.profiler(), deliver_scope_);
  const sim::Time now = sim_.now();

  // Did this attempt's frame reach a live radio? Causes are checked from
  // the outside in: addressing, geometry, receiver liveness, then channel.
  bool lost = false;
  DropReason why = DropReason::OutOfRange;
  if (receiver == kInvalidNode) {
    lost = true;  // stale pseudonym: nobody owns this address any more
  } else {
    Node& rx = *nodes_[receiver];
    const util::Vec2 from_pos = nodes_[sender]->position(now);
    const util::Vec2 to_pos = rx.position(now);
    if (util::distance(from_pos, to_pos) > config_.radio_range_m) {
      lost = true;
    } else if (!rx.alive()) {
      lost = true;
      why = DropReason::NodeDown;
    } else if (config_.faults.jammed(from_pos, now) ||
               config_.faults.jammed(to_pos, now) ||
               (channel_ != nullptr && channel_->lose_frame(sender,
                                                            receiver))) {
      lost = true;
      why = DropReason::ChannelLoss;
    }
  }

  if (!lost) {
    Node& rx = *nodes_[receiver];
    energy_.charge_rx(receiver, pkt.size_bytes);
    if (config_.mac.arq.enabled) {
      // Link-layer ack: a short frame back to the sender, charged as air
      // time and energy on both radios (latency is folded into the ARQ
      // timeout the sender already waits out on loss).
      energy_.charge_tx(receiver, config_.mac.arq.ack_bytes,
                        config_.radio_range_m);
      energy_.charge_rx(sender, config_.mac.arq.ack_bytes);
    }
    for (auto* l : listeners_) l->on_deliver(rx, pkt, now);
    if (handlers_[receiver] != nullptr) {
      handlers_[receiver]->handle(rx, pkt);
    } else {
      for (auto* l : listeners_)
        l->on_drop(rx, pkt, now, DropReason::NoHandler);
    }
    return;
  }

  Node& tx = *nodes_[sender];
  if (config_.mac.arq.enabled && tx.alive() &&
      attempt < config_.mac.arq.retry_limit) {
    // No ack within the timeout: binary-exponential backoff, then try
    // again. The retry is audited (uid + attempt) so fault runs digest
    // reproducibly, and re-acquires the MAC at current contention.
    ++arq_retries_;
    sim_.audit((std::uint64_t{0xA49} << 48) ^ (pkt.uid << 8) ^
               static_cast<std::uint64_t>(attempt));
    const double wait =
        config_.mac.arq.ack_timeout_s +
        config_.mac.arq.backoff_base_s *
            static_cast<double>(1ULL << (attempt - 1)) *
            rng_.uniform(0.5, 1.5);
    sim_.schedule_in(wait, [this, sender, to, attempt, pkt] {
      Node& from = *nodes_[sender];
      if (!from.alive()) {
        drop_and_notify(from, to, pkt, DropReason::NodeDown);
        return;
      }
      transmit_unicast(from, to, pkt, 0.0, attempt + 1);
    });
    return;
  }
  if (config_.mac.arq.enabled && attempt >= config_.mac.arq.retry_limit) {
    why = DropReason::RetryExhausted;
  }
  drop_and_notify(tx, to, pkt, why);
}

void Network::drop_and_notify(Node& holder, Pseudonym to, const Packet& pkt,
                              DropReason why) {
  const sim::Time now = sim_.now();
  for (auto* l : listeners_) l->on_drop(holder, pkt, now, why);
  // Failure feedback exists only when the link layer can actually detect
  // failure (ARQ acks). Ideal-channel runs keep the pre-fault contract:
  // the drop is observed by listeners and the uid ages out at the horizon.
  if (!config_.mac.arq.enabled) return;
  if (handlers_[holder.id()] != nullptr) {
    handlers_[holder.id()]->on_send_failed(holder, pkt, to, why);
  } else if (pkt.uid != 0 && ledger_.is_open(pkt.uid)) {
    ledger_.close(pkt.uid, fate_for(why), now);
  }
}

}  // namespace alert::net
