#pragma once

/// \file node.hpp
/// A mobile node: identity material (MAC address, RSA key pair, dynamic
/// pseudonym slot), kinematic state (piecewise-linear motion segment set by
/// the mobility model), and the neighbour table built from received hello
/// beacons — the only view of the network a protocol is allowed to use.

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/pubkey.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "util/geometry.hpp"

namespace alert::net {

/// What a node knows about a neighbour, learned from hello beacons
/// (pseudonym + position + public key, Sec. 2.2). Position is as of the
/// last hello, so it goes stale as nodes move — exactly the staleness that
/// degrades geographic forwarding at speed.
struct NeighborInfo {
  Pseudonym pseudonym = 0;
  util::Vec2 position;
  crypto::PublicKey pubkey;
  sim::Time last_heard = 0.0;
};

class Node {
 public:
  Node(NodeId id, std::uint64_t mac_address, crypto::KeyPair keys)
      : id_(id), mac_address_(mac_address), keys_(keys) {}

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] std::uint64_t mac_address() const { return mac_address_; }
  [[nodiscard]] const crypto::PublicKey& public_key() const {
    return keys_.pub;
  }
  [[nodiscard]] const crypto::PrivateKey& private_key() const {
    return keys_.priv;
  }

  [[nodiscard]] Pseudonym pseudonym() const { return pseudonym_; }
  void set_pseudonym(Pseudonym p) { pseudonym_ = p; }

  // --- kinematics -------------------------------------------------------
  /// Replace the current motion segment: from `start_pos` at `start_time`,
  /// move with `velocity` until `end_time`, then hold position.
  void set_motion(util::Vec2 start_pos, sim::Time start_time,
                  util::Vec2 velocity, sim::Time end_time);

  [[nodiscard]] util::Vec2 position(sim::Time t) const;
  [[nodiscard]] util::Vec2 velocity() const { return velocity_; }
  [[nodiscard]] sim::Time segment_end() const { return seg_end_; }

  // --- radio liveness (fault churn, src/faults) -------------------------
  [[nodiscard]] bool alive() const { return alive_; }
  /// Power the radio down/up. Crashing wipes the neighbour table and the
  /// MAC busy horizon: a rebooted node rediscovers the world from hellos,
  /// and whatever it was transmitting died with it.
  void set_alive(bool up) {
    alive_ = up;
    if (!up) {
      neighbors_.clear();
      mac_busy_until = 0.0;
    }
  }

  // --- neighbour table --------------------------------------------------
  /// Record a received hello beacon.
  void observe_neighbor(const NeighborInfo& info, sim::Time now);
  /// Drop entries not refreshed within `max_age`.
  void expire_neighbors(sim::Time now, double max_age);
  /// Drop one entry by pseudonym (link-layer failure feedback: the ARQ gave
  /// up on this neighbour, stop routing through it).
  void remove_neighbor(Pseudonym p);

  [[nodiscard]] const std::vector<NeighborInfo>& neighbors() const {
    return neighbors_;
  }
  [[nodiscard]] const NeighborInfo* find_neighbor(Pseudonym p) const;

  /// Neighbour whose (beaconed) position is closest to `target`, or nullptr
  /// if the table is empty. Excludes `exclude` when provided.
  [[nodiscard]] const NeighborInfo* closest_neighbor_to(
      util::Vec2 target, std::optional<Pseudonym> exclude = {}) const;

  // --- MAC state (owned by Mac, stored inline for locality) -------------
  sim::Time mac_busy_until = 0.0;

 private:
  NodeId id_;
  std::uint64_t mac_address_;
  crypto::KeyPair keys_;
  Pseudonym pseudonym_ = 0;
  bool alive_ = true;

  util::Vec2 seg_start_pos_;
  sim::Time seg_start_ = 0.0;
  util::Vec2 velocity_;
  sim::Time seg_end_ = 0.0;

  std::vector<NeighborInfo> neighbors_;
};

}  // namespace alert::net
