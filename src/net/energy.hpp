#pragma once

/// \file energy.hpp
/// Per-node energy accounting. The paper's core pitch is *low-cost*
/// anonymity: "existing anonymous routing protocols generate a
/// significantly high cost, which exacerbates the resource constraint
/// problem in MANETs" (Sec. 1), and Sec. 5's summary claims ALERT "has
/// significantly lower energy consumption compared to AO2P and ALARM".
/// This model makes that claim measurable.
///
/// Radio energy follows the standard first-order model (Heinzelman et
/// al.): E_tx(k, d) = k * (e_elec + e_amp * d^2), E_rx(k) = k * e_elec.
/// Cryptographic energy follows the paper's ref. [26] (Potlapally et al.,
/// "Analyzing the energy consumption of security protocols"): public-key
/// operations cost hundreds of times more than symmetric ones; we charge
/// energy proportional to the modeled computation time at a nominal CPU
/// power draw.

#include <cstddef>
#include <vector>

#include "net/packet.hpp"

namespace alert::net {

struct EnergyConfig {
  double e_elec_j_per_bit = 50e-9;   ///< electronics, J/bit (tx and rx)
  double e_amp_j_per_bit_m2 = 100e-12;  ///< amplifier, J/bit/m^2
  double cpu_power_w = 0.5;          ///< draw during crypto computation
  double idle_listen_w = 0.0;        ///< optional idle cost (off by default)
};

/// Per-node cumulative meters, in joules.
struct EnergyMeter {
  double tx_j = 0.0;
  double rx_j = 0.0;
  double crypto_j = 0.0;

  [[nodiscard]] double total() const { return tx_j + rx_j + crypto_j; }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyConfig config, std::size_t node_count)
      : config_(config), meters_(node_count) {}

  [[nodiscard]] const EnergyConfig& config() const { return config_; }

  /// Charge a transmission of `bytes` reaching radius `range_m`.
  void charge_tx(NodeId node, std::size_t bytes, double range_m) {
    const double bits = static_cast<double>(bytes) * 8.0;
    meters_[node].tx_j += bits * (config_.e_elec_j_per_bit +
                                  config_.e_amp_j_per_bit_m2 *
                                      range_m * range_m);
  }

  /// Charge a reception of `bytes`.
  void charge_rx(NodeId node, std::size_t bytes) {
    meters_[node].rx_j +=
        static_cast<double>(bytes) * 8.0 * config_.e_elec_j_per_bit;
  }

  /// Charge `seconds` of cryptographic computation.
  void charge_crypto(NodeId node, double seconds) {
    meters_[node].crypto_j += seconds * config_.cpu_power_w;
  }

  [[nodiscard]] const EnergyMeter& meter(NodeId node) const {
    return meters_[node];
  }
  [[nodiscard]] std::size_t size() const { return meters_.size(); }

  /// Network-wide totals.
  [[nodiscard]] EnergyMeter total() const {
    EnergyMeter sum;
    for (const auto& m : meters_) {
      sum.tx_j += m.tx_j;
      sum.rx_j += m.rx_j;
      sum.crypto_j += m.crypto_j;
    }
    return sum;
  }

  /// Highest per-node drain — battery-death hotspot (greedy protocols
  /// concentrate load on shortest-path relays; ALERT spreads it).
  [[nodiscard]] double max_node_total() const {
    double mx = 0.0;
    for (const auto& m : meters_) mx = std::max(mx, m.total());
    return mx;
  }

 private:
  EnergyConfig config_;
  std::vector<EnergyMeter> meters_;
};

}  // namespace alert::net
