#include "net/packet_ledger.hpp"

namespace alert::net {

PacketLedger::Entry* PacketLedger::find(std::uint64_t uid) {
  if (uid == 0 || uid >= entries_.size()) return nullptr;
  Entry& e = entries_[uid];
  return e.uid == uid ? &e : nullptr;
}

const PacketLedger::Entry* PacketLedger::find(std::uint64_t uid) const {
  if (uid == 0 || uid >= entries_.size()) return nullptr;
  const Entry& e = entries_[uid];
  return e.uid == uid ? &e : nullptr;
}

void PacketLedger::open(std::uint64_t uid, sim::Time now) {
  ALERT_INVARIANT(uid != 0, "packet ledger cannot track uid 0");
  ALERT_INVARIANT(find(uid) == nullptr,
                  "packet uid opened twice — uids must be unique per run");
  if (uid >= entries_.size()) {
    entries_.resize(uid + 1);
  }
  entries_[uid] = Entry{uid, now, 0.0, PacketFate::InFlight};
  ++totals_.opened;
  ++open_count_;
}

void PacketLedger::open_if_new(std::uint64_t uid, sim::Time now) {
  if (uid == 0 || find(uid) != nullptr) return;
  open(uid, now);
}

void PacketLedger::close(std::uint64_t uid, PacketFate fate, sim::Time now) {
  ALERT_INVARIANT(fate != PacketFate::InFlight,
                  "InFlight is not a terminal packet fate");
  Entry* e = find(uid);
  ALERT_INVARIANT(e != nullptr,
                  "closing a packet uid the ledger never saw opened");
  if (e->fate != PacketFate::InFlight) return;  // first close wins
  ALERT_INVARIANT(now >= e->opened_at, "packet closed before it was opened");
  e->fate = fate;
  e->closed_at = now;
  ALERT_INVARIANT(open_count_ > 0, "ledger close with no open packets");
  --open_count_;
  switch (fate) {
    case PacketFate::Delivered: ++totals_.delivered; break;
    case PacketFate::Dropped: ++totals_.dropped; break;
    case PacketFate::Expired: ++totals_.expired; break;
    case PacketFate::LostChannel: ++totals_.lost_channel; break;
    case PacketFate::RetryExhausted: ++totals_.retry_exhausted; break;
    case PacketFate::OwnerCrashed: ++totals_.owner_crashed; break;
    case PacketFate::InFlight: break;  // unreachable
  }
  ALERT_ASSERT(balanced(), "ledger totals out of balance after close");
}

bool PacketLedger::is_open(std::uint64_t uid) const {
  const Entry* e = find(uid);
  return e != nullptr && e->fate == PacketFate::InFlight;
}

std::uint64_t PacketLedger::expire_open(sim::Time now) {
  std::uint64_t expired = 0;
  for (Entry& e : entries_) {
    if (e.uid == 0 || e.fate != PacketFate::InFlight) continue;
    e.fate = PacketFate::Expired;
    e.closed_at = now;
    ++totals_.expired;
    --open_count_;
    ++expired;
  }
  ALERT_INVARIANT(open_count_ == 0, "packets still open after expire_open");
  return expired;
}

std::vector<PacketLedger::Entry> PacketLedger::leaked() const {
  std::vector<Entry> out;
  for (const Entry& e : entries_) {
    if (e.uid != 0 && e.fate == PacketFate::InFlight) out.push_back(e);
  }
  return out;
}

}  // namespace alert::net
