#pragma once

/// \file packet_ledger.hpp
/// Packet-lifecycle accounting: every tracked packet (any packet carrying a
/// nonzero uid — application data, confirmations, NAKs) must end its life
/// exactly one way: Delivered, Dropped, or Expired (still in flight when the
/// simulation horizon cut it off). A uid that is opened and never closed by
/// the time the event queue drains is a *leak* — protocol state that forgot
/// a packet — and fails tests.
///
/// Wiring:
///  - Network::unicast/broadcast open a uid on its first transmission;
///  - routers close Data uids at their delivered/dropped accounting sites;
///  - Network closes control uids (Confirm/Nak/Cover) at net-layer terminal
///    events, since no retransmission logic sits above them;
///  - the experiment harness calls expire_open(horizon) after run_until, so
///    packets legitimately in flight at the horizon are Expired, not leaks.
///
/// First close wins: late duplicate copies of an already-closed uid (e.g. a
/// retransmission arriving after the original was delivered) are ignored.

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/check.hpp"

namespace alert::net {

enum class PacketFate : std::uint8_t {
  InFlight,   ///< opened, no terminal event yet
  Delivered,  ///< reached its application-level destination
  Dropped,    ///< protocol or channel gave up on it
  Expired,    ///< still in flight when the horizon ended the run
  // Fault-injection terminal states (src/faults): distinct from Dropped so
  // fault-era accounting can separate "the protocol gave up" from "the
  // channel or a crash took it" — and so the leak check stays meaningful
  // under injected adversity.
  LostChannel,     ///< frame lost to channel faults, unrecoverable
  RetryExhausted,  ///< ARQ retry budget spent without an ack
  OwnerCrashed,    ///< the node holding the packet crashed
};

class PacketLedger {
 public:
  struct Entry {
    std::uint64_t uid = 0;
    sim::Time opened_at = 0.0;
    sim::Time closed_at = 0.0;
    PacketFate fate = PacketFate::InFlight;
  };

  struct Totals {
    std::uint64_t opened = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t expired = 0;
    std::uint64_t lost_channel = 0;
    std::uint64_t retry_exhausted = 0;
    std::uint64_t owner_crashed = 0;

    [[nodiscard]] std::uint64_t closed() const {
      return delivered + dropped + expired + lost_channel + retry_exhausted +
             owner_crashed;
    }
  };

  /// Begin tracking `uid`. Opening an already-open or already-closed uid is
  /// an invariant violation (uids are globally unique per run).
  void open(std::uint64_t uid, sim::Time now);

  /// Begin tracking `uid` unless it is already known (the Network transmit
  /// choke point calls this on every hop of a multi-hop packet).
  void open_if_new(std::uint64_t uid, sim::Time now);

  /// Record `uid`'s terminal fate. Closing a uid that was never opened is
  /// an invariant violation; closing an already-closed uid is ignored
  /// (duplicate copies of one application packet are expected).
  void close(std::uint64_t uid, PacketFate fate, sim::Time now);

  /// Whether `uid` is currently open (tracked and not yet closed).
  [[nodiscard]] bool is_open(std::uint64_t uid) const;

  /// Close every still-open uid as Expired (horizon cut it off mid-flight).
  /// Returns how many were expired.
  std::uint64_t expire_open(sim::Time now);

  /// Uids opened but never closed. After the event queue has drained (no
  /// packet can still be in flight), a non-empty result is a packet leak.
  [[nodiscard]] std::vector<Entry> leaked() const;

  [[nodiscard]] const Totals& totals() const { return totals_; }

  /// Accounting identity: every opened uid is in-flight or has exactly one
  /// terminal fate. Cheap; called from ALERT_ASSERT sites and tests.
  [[nodiscard]] bool balanced() const {
    return totals_.opened == totals_.closed() + open_count_;
  }

  [[nodiscard]] std::uint64_t open_count() const { return open_count_; }

 private:
  // Dense storage keyed by uid: Network::next_uid() hands out 1,2,3,... so
  // a vector indexed by uid stays compact; uid 0 ("untracked") is unused.
  [[nodiscard]] Entry* find(std::uint64_t uid);
  [[nodiscard]] const Entry* find(std::uint64_t uid) const;

  std::vector<Entry> entries_;  // index = uid; fate InFlight + opened_at<0 = unknown
  Totals totals_;
  std::uint64_t open_count_ = 0;
};

}  // namespace alert::net
