#include "net/packet.hpp"

namespace alert::net {

std::size_t header_bytes(const Packet& pkt) {
  // MAC-independent header accounting: pseudonyms, flow/seq, kind.
  std::size_t bytes = 8u + 8u + 4u + 4u + 1u;
  if (pkt.alert) {
    const auto& a = *pkt.alert;
    bytes += 4 * 8;  // dest zone rect
    bytes += 2 * 8;  // TD
    bytes += 2;      // h, H
    bytes += 1;      // direction bit + phase flags
    bytes += a.src_zone_enc.size() * 8;
    bytes += a.session_key_enc.size() * 8;
    bytes += a.ttl_enc ? 8u : 0u;
    for (const auto& layer : a.bitmap_layers_enc) bytes += layer.size() * 8;
    bytes += a.multicast_set.size() * 8;
    bytes += 16;  // carried destination public key
  }
  if (pkt.geo) {
    bytes += 2 * 8;  // destination position
    bytes += 1 + 4 * 8;  // perimeter-mode state
  }
  return bytes;
}

}  // namespace alert::net
