#include "net/node.hpp"

#include <algorithm>

namespace alert::net {

void Node::set_motion(util::Vec2 start_pos, sim::Time start_time,
                      util::Vec2 velocity, sim::Time end_time) {
  seg_start_pos_ = start_pos;
  seg_start_ = start_time;
  velocity_ = velocity;
  seg_end_ = end_time;
}

util::Vec2 Node::position(sim::Time t) const {
  const sim::Time effective = std::clamp(t, seg_start_, seg_end_);
  return seg_start_pos_ + velocity_ * (effective - seg_start_);
}

void Node::observe_neighbor(const NeighborInfo& info, sim::Time now) {
  for (auto& n : neighbors_) {
    if (n.pseudonym == info.pseudonym) {
      n = info;
      n.last_heard = now;
      return;
    }
  }
  NeighborInfo entry = info;
  entry.last_heard = now;
  neighbors_.push_back(entry);
}

void Node::expire_neighbors(sim::Time now, double max_age) {
  std::erase_if(neighbors_, [now, max_age](const NeighborInfo& n) {
    return now - n.last_heard > max_age;
  });
}

void Node::remove_neighbor(Pseudonym p) {
  std::erase_if(neighbors_,
                [p](const NeighborInfo& n) { return n.pseudonym == p; });
}

const NeighborInfo* Node::find_neighbor(Pseudonym p) const {
  for (const auto& n : neighbors_) {
    if (n.pseudonym == p) return &n;
  }
  return nullptr;
}

const NeighborInfo* Node::closest_neighbor_to(
    util::Vec2 target, std::optional<Pseudonym> exclude) const {
  const NeighborInfo* best = nullptr;
  double best_d = 0.0;
  for (const auto& n : neighbors_) {
    if (exclude && n.pseudonym == *exclude) continue;
    const double d = util::distance_sq(n.position, target);
    if (best == nullptr || d < best_d) {
      best = &n;
      best_d = d;
    }
  }
  return best;
}

}  // namespace alert::net
