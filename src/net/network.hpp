#pragma once

/// \file network.hpp
/// The MANET: nodes + radio channel + mobility + hello beaconing +
/// pseudonym rotation, glued to the discrete-event simulator. Protocols
/// (src/routing) attach one PacketHandler per node and use the unicast /
/// broadcast primitives; metrics and attack models register TraceListeners
/// that see every on-air event.

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/cost_model.hpp"
#include "faults/channel_model.hpp"
#include "faults/fault_plan.hpp"
#include "net/energy.hpp"
#include "net/mac.hpp"
#include "net/mobility.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/packet_ledger.hpp"
#include "scale/options.hpp"
#include "scale/pool.hpp"
#include "scale/spatial_grid.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace alert::net {

enum class DropReason : std::uint8_t;

/// Per-node protocol entry point, implemented by routers.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  /// A frame addressed to (or overheard by, for broadcasts) `self`.
  virtual void handle(Node& self, const Packet& pkt) = 0;
  /// The link layer gave up on a unicast from `self` to `next_hop`: the
  /// ARQ retry budget is spent, or `self`'s own radio died with the frame
  /// queued. Fires only in fault-aware runs (ARQ enabled — an ideal
  /// channel has no ack mechanism to detect failure with, and the default
  /// configuration must replay byte-identically). Routers override this to
  /// degrade gracefully: evict the dead neighbour, re-forward to the
  /// next-best candidate, or close the packet's ledger entry.
  virtual void on_send_failed(Node& self, const Packet& pkt,
                              Pseudonym next_hop, DropReason why) {
    (void)self, (void)pkt, (void)next_hop, (void)why;
  }
};

/// Pseudonym generation strategy (implemented by loc::PseudonymManager; the
/// interface lives here so net does not depend on loc).
class PseudonymProvider {
 public:
  virtual ~PseudonymProvider() = default;
  virtual Pseudonym make(const Node& node, sim::Time now) = 0;
};

enum class DropReason : std::uint8_t {
  OutOfRange,     ///< unicast receiver moved out of radio range
  NoHandler,      ///< no protocol attached
  TtlExpired,     ///< hops_remaining exhausted (counted by routers)
  ChannelLoss,    ///< frame lost to fault injection (loss model / jammer)
  NodeDown,       ///< a crashed radio was involved (fault churn)
  RetryExhausted, ///< ARQ retry budget spent without an ack
};

/// Number of DropReason enumerators (sizes per-reason counter arrays; the
/// alert-lint drop-reason-exhaustive rule keeps switches in sync).
inline constexpr std::size_t kDropReasonCount = 6;

/// Ledger fate matching a net-layer drop cause, for closing a uid whose
/// packet the link layer terminally gave up on.
[[nodiscard]] PacketFate fate_for(DropReason why);

/// Observer of every on-air event — the eyes of metrics collection and of
/// the adversary models.
class TraceListener {
 public:
  virtual ~TraceListener() = default;
  virtual void on_transmit(const Node& sender, const Packet& pkt,
                           sim::Time air_start) {
    (void)sender, (void)pkt, (void)air_start;
  }
  virtual void on_deliver(const Node& receiver, const Packet& pkt,
                          sim::Time when) {
    (void)receiver, (void)pkt, (void)when;
  }
  virtual void on_drop(const Node& last_holder, const Packet& pkt,
                       sim::Time when, DropReason why) {
    (void)last_holder, (void)pkt, (void)when, (void)why;
  }
};

struct NetworkConfig {
  util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  std::size_t node_count = 200;
  double radio_range_m = 250.0;
  MacConfig mac;
  double hello_period_s = 1.0;
  double neighbor_max_age_s = 2.5;
  double pseudonym_period_s = 20.0;  ///< pseudonym rotation interval
  crypto::CostModel crypto_cost;
  EnergyConfig energy;
  int rsa_modulus_bits = 62;
  /// Channel/node adversity (src/faults). Inert by default: an all-off
  /// plan allocates nothing, draws nothing, audits nothing.
  faults::FaultPlan faults;
  /// Scale backends (src/scale). Inert by default: with every flag off the
  /// grid/pool are never allocated and behaviour is byte-identical to the
  /// pre-scale implementation; with flags on, results stay digest-identical
  /// (docs/SCALE.md) — only the asymptotics change.
  scale::Backends scale;
};

class Network {
 public:
  /// Builds nodes (keys, MAC addresses), places them with `mobility`, and
  /// schedules hello/pseudonym/mobility processes on `simulator` up to
  /// `horizon`.
  Network(sim::Simulator& simulator, NetworkConfig config,
          std::unique_ptr<MobilityModel> mobility, util::Rng rng,
          sim::Time horizon);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology access ---------------------------------------------------
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_[id]; }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_[id]; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] sim::Time now() const { return sim_.now(); }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Ids of nodes within `radius` of `center` at time `t`, ascending (the
  /// channel equivalent of carrier range). O(N) scan by default; an O(k)
  /// grid lookup with the identical result set when `scale.grid` is on.
  [[nodiscard]] std::vector<NodeId> nodes_within(util::Vec2 center,
                                                 double radius,
                                                 sim::Time t) const;

  /// Resolve a pseudonym to the node currently owning it (simulator-level
  /// registry standing in for MAC-layer addressing). kInvalidNode if stale.
  [[nodiscard]] NodeId resolve_pseudonym(Pseudonym p) const;

  // --- protocol attachment ------------------------------------------------
  void attach_handler(NodeId id, PacketHandler* handler);
  void add_listener(TraceListener* listener);
  void set_pseudonym_provider(PseudonymProvider* provider);

  // --- transmission primitives --------------------------------------------
  /// Unicast `pkt` from `from` to the node owning pseudonym `to`.
  /// `processing_delay` models protocol computation (e.g. crypto) performed
  /// before the frame can be handed to the MAC. Delivery fails (on_drop)
  /// if the receiver is out of range when the frame lands.
  void unicast(Node& from, Pseudonym to, Packet pkt,
               double processing_delay = 0.0);

  /// Broadcast to every node in radio range at delivery time.
  void broadcast(Node& from, Packet pkt, double processing_delay = 0.0);

  /// Fresh application-packet uid, registered with the packet ledger: the
  /// caller owns getting it to a terminal fate (see packet_ledger.hpp).
  std::uint64_t next_uid() {
    const std::uint64_t uid = next_uid_++;
    ledger_.open(uid, sim_.now());
    return uid;
  }

  /// Lifecycle ledger for every uid-carrying packet in this network.
  [[nodiscard]] PacketLedger& ledger() { return ledger_; }
  [[nodiscard]] const PacketLedger& ledger() const { return ledger_; }

  /// Immediately rotate one node's pseudonym (also runs periodically).
  void rotate_pseudonym(Node& node);

  // --- fault injection (src/faults) --------------------------------------
  /// Flip one node's radio state (FaultInjector churn callback). Crashing
  /// clears the node's neighbour table; recovery lets hello beaconing
  /// repopulate it.
  void set_node_alive(NodeId id, bool up) { nodes_[id]->set_alive(up); }

  /// Whether this run can diverge from the ideal-channel baseline (any
  /// fault active or ARQ enabled). Gates failure callbacks and the
  /// fault-era metrics so all-defaults runs stay byte-identical.
  [[nodiscard]] bool fault_aware() const {
    return config_.faults.any() || config_.mac.arq.enabled;
  }

  /// ARQ retransmissions performed so far (fault-era overhead accounting).
  [[nodiscard]] std::uint64_t arq_retries() const { return arq_retries_; }
  /// Broadcast receptions suppressed by the loss model / jammers.
  [[nodiscard]] std::uint64_t broadcast_losses() const {
    return broadcast_losses_;
  }
  /// Frame-loss decisions taken by the channel model (0 when loss is off).
  [[nodiscard]] std::uint64_t channel_frames_lost() const {
    return channel_ != nullptr ? channel_->frames_lost() : 0;
  }

  /// Count of hello beacons sent so far (overhead accounting).
  [[nodiscard]] std::uint64_t hello_count() const { return hello_count_; }

  /// Delivery-frame pool occupancy (all zero unless `scale.pool_packets`).
  /// in_use counts frames still in flight — bounded by pending deliveries,
  /// and the PacketLedger still accounts every uid to a terminal fate.
  struct PoolStats {
    std::size_t in_use = 0;
    std::size_t high_water = 0;
    std::size_t capacity = 0;
  };
  [[nodiscard]] PoolStats packet_pool_stats() const {
    if (packet_pool_ == nullptr) return {};
    return {packet_pool_->in_use(), packet_pool_->high_water(),
            packet_pool_->capacity()};
  }

  /// Per-node energy meters (radio charges applied automatically on every
  /// transmission/reception; protocols charge their crypto time through
  /// charge_crypto so the Sec. 5 energy comparison is measurable).
  [[nodiscard]] const EnergyModel& energy() const { return energy_; }
  void charge_crypto(NodeId node, double seconds) {
    energy_.charge_crypto(node, seconds);
  }

 private:
  /// A frame parked in the slab pool while its delivery event is pending.
  /// Moving the Packet (and the per-kind delivery context) out of the
  /// scheduled closure leaves a capture of {this, handle} — small enough
  /// for std::function's inline storage, so the pooled hot path performs
  /// no per-transmission allocation at all.
  struct PooledFrame {
    Packet pkt;
    util::Vec2 origin;
    NodeId sender = kInvalidNode;
    NodeId receiver = kInvalidNode;
    Pseudonym to = 0;
    int attempt = 0;
  };

  void schedule_mobility(Node& node);
  /// Reindex `node`'s grid coverage for its current motion segment,
  /// clipped to the simulation horizon (queries never look further).
  void index_segment(Node& node);
  /// Nodes within `radius` of `center` at `t` — count only, no id
  /// materialization (what MAC contention needs; allocation-free on both
  /// the scan and grid paths).
  [[nodiscard]] std::size_t neighbour_count(util::Vec2 center, double radius,
                                            sim::Time t) const;
  /// Fill delivery_ids_[0..count) with the ascending ids within range.
  /// Exclusively for deliver_broadcast: its synchronous callees only ever
  /// re-enter neighbour_count (deliver events themselves never nest), so
  /// the one shared buffer cannot be clobbered mid-iteration.
  [[nodiscard]] std::size_t gather_receivers(util::Vec2 center, double radius,
                                             sim::Time t);
  void send_hello(Node& node);
  void deliver_broadcast(NodeId sender, const Packet& pkt,
                         util::Vec2 sender_pos);
  /// One MAC acquisition + airtime for unicast attempt number `attempt`
  /// (1-based; attempts > 1 are ARQ retransmissions).
  void transmit_unicast(Node& from, Pseudonym to, Packet pkt,
                        double processing_delay, int attempt);
  void deliver_unicast(NodeId sender, NodeId receiver, Pseudonym to,
                       const Packet& pkt, int attempt);
  /// Terminal unicast failure: on_drop listeners, then (fault-aware runs
  /// only) the sender's router callback — or a direct ledger close when no
  /// handler is attached.
  void drop_and_notify(Node& holder, Pseudonym to, const Packet& pkt,
                       DropReason why);

  sim::Simulator& sim_;
  NetworkConfig config_;
  std::unique_ptr<MobilityModel> mobility_;
  util::Rng rng_;
  sim::Time horizon_;

  // Self-profiling scopes (ids resolved once from sim_.profiler(); null
  // profiler → single branch per transmission).
  obs::ScopeId tx_scope_ = 0;
  obs::ScopeId deliver_scope_ = 0;
  obs::ScopeId query_scope_ = 0;

  Mac mac_;
  EnergyModel energy_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PacketHandler*> handlers_;
  std::vector<TraceListener*> listeners_;
  std::unordered_map<Pseudonym, NodeId> pseudonym_registry_;
  PseudonymProvider* pseudonym_provider_ = nullptr;  // non-owning
  std::unique_ptr<PseudonymProvider> default_provider_;
  std::uint64_t next_uid_ = 1;
  std::uint64_t hello_count_ = 0;
  PacketLedger ledger_;
  /// Frame-loss process; allocated only when the plan's loss model is
  /// active, so ideal channels take no RNG draws from it.
  std::unique_ptr<faults::ChannelModel> channel_;
  std::uint64_t arq_retries_ = 0;
  std::uint64_t broadcast_losses_ = 0;

  // --- scale backends (all null/empty unless config_.scale opts in) -------
  /// Spatial index over current motion segments (scale.grid).
  std::unique_ptr<scale::SpatialGrid> grid_;
  /// In-flight delivery frames (scale.pool_packets).
  std::unique_ptr<scale::SlabPool<PooledFrame>> packet_pool_;
  /// Receiver scratch for deliver_broadcast, pre-sized to node_count so the
  /// gather writes by index (see gather_receivers).
  std::vector<NodeId> delivery_ids_;
};

}  // namespace alert::net
