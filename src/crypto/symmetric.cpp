#include "crypto/symmetric.hpp"

#include "util/rng.hpp"

namespace alert::crypto {

SymmetricKey SymmetricKey::from_seed(std::uint64_t seed) {
  util::SplitMix64 sm(seed);
  SymmetricKey k;
  for (auto& w : k.words) w = static_cast<std::uint32_t>(sm.next());
  return k;
}

namespace {
constexpr std::uint32_t kDelta = 0x9E3779B9u;
constexpr int kCycles = 32;
}  // namespace

std::uint64_t Xtea::encrypt_block(std::uint64_t plaintext) const {
  auto v0 = static_cast<std::uint32_t>(plaintext >> 32);
  auto v1 = static_cast<std::uint32_t>(plaintext);
  std::uint32_t sum = 0;
  for (int i = 0; i < kCycles; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key_[(sum >> 11) & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

std::uint64_t Xtea::decrypt_block(std::uint64_t ciphertext) const {
  auto v0 = static_cast<std::uint32_t>(ciphertext >> 32);
  auto v1 = static_cast<std::uint32_t>(ciphertext);
  std::uint32_t sum = kDelta * static_cast<std::uint32_t>(kCycles);
  for (int i = 0; i < kCycles; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key_[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key_[sum & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

void xtea_ctr_apply(const SymmetricKey& key, std::uint64_t nonce,
                    std::span<std::uint8_t> data) {
  const Xtea cipher(key);
  std::uint64_t counter = 0;
  for (std::size_t off = 0; off < data.size(); off += 8, ++counter) {
    const std::uint64_t keystream = cipher.encrypt_block(nonce ^ counter);
    const std::size_t n = std::min<std::size_t>(8, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      data[off + i] ^= static_cast<std::uint8_t>(keystream >> (8 * (7 - i)));
    }
  }
}

std::vector<std::uint8_t> xtea_ctr_encrypt(
    const SymmetricKey& key, std::uint64_t nonce,
    std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  xtea_ctr_apply(key, nonce, out);
  return out;
}

}  // namespace alert::crypto
