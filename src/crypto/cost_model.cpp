#include "crypto/cost_model.hpp"

// CostModel is header-only today; this translation unit anchors the library
// target and reserves a home for future calibration code.
