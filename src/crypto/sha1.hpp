#pragma once

/// \file sha1.hpp
/// SHA-1 (FIPS 180-1), implemented from scratch. ALERT uses a
/// collision-resistant hash of (MAC address, randomized timestamp) as each
/// node's dynamic pseudonym (Sec. 2.2). SHA-1 is the hash the paper names;
/// its known cryptanalytic weaknesses are irrelevant to a simulation whose
/// threat model only needs collision resistance against honest traffic.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace alert::crypto {

using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 context.
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);
  /// Finalize and return the digest. The context must be reset() before
  /// further use.
  [[nodiscard]] Sha1Digest finish();

  /// One-shot convenience.
  [[nodiscard]] static Sha1Digest hash(std::span<const std::uint8_t> data);
  [[nodiscard]] static Sha1Digest hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string to_hex(const Sha1Digest& d);

/// First 8 bytes of the digest as a big-endian integer — handy compact
/// pseudonym representation.
[[nodiscard]] std::uint64_t digest_prefix64(const Sha1Digest& d);

}  // namespace alert::crypto
