#pragma once

/// \file bitmap.hpp
/// Bit-alteration codec for the intersection-attack countermeasure
/// (Sec. 3.3): the last forwarding node flips a number of payload bits so an
/// on-air observer cannot match the rebroadcast packet to the original; the
/// positions of the flipped bits are recorded in a Bitmap that travels
/// encrypted under the destination's public key, letting only D restore the
/// payload.

#include <cstdint>
#include <span>
#include <vector>

namespace alert::util {
class Rng;
}

namespace alert::crypto {

/// Records which bit positions of a payload were flipped.
class AlterationBitmap {
 public:
  AlterationBitmap() = default;

  /// Flip `flips` distinct random bits of `payload` in place and remember
  /// their positions.
  static AlterationBitmap alter(std::span<std::uint8_t> payload,
                                std::size_t flips, util::Rng& rng);

  /// Undo the recorded flips (payload must be the altered buffer).
  void restore(std::span<std::uint8_t> payload) const;

  [[nodiscard]] const std::vector<std::uint32_t>& positions() const {
    return positions_;
  }

  /// Wire encoding (u32 positions, little-endian) — this is the value that
  /// gets RSA-encrypted into the (Bitmap)_{K_pub^D} packet field.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static AlterationBitmap deserialize(
      std::span<const std::uint8_t> bytes);

 private:
  std::vector<std::uint32_t> positions_;
};

}  // namespace alert::crypto
