#include "crypto/sha1.hpp"

#include <cstring>

namespace alert::crypto {

namespace {
constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffer_len_ = 0;
  total_bits_ = 0;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t off = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    off += take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    buffer_len_ = data.size() - off;
    std::memcpy(buffer_.data(), data.data() + off, buffer_len_);
  }
}

void Sha1::update(std::string_view s) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bits = total_bits_;
  const std::uint8_t pad = 0x80;
  update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::array<std::uint8_t, 8> len{};
  for (int i = 0; i < 8; ++i) {
    len[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  update(len);

  Sha1Digest out{};
  for (std::size_t i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

Sha1Digest Sha1::hash(std::string_view s) {
  Sha1 ctx;
  ctx.update(s);
  return ctx.finish();
}

std::string to_hex(const Sha1Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

std::uint64_t digest_prefix64(const Sha1Digest& d) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[static_cast<std::size_t>(i)];
  return v;
}

}  // namespace alert::crypto
