#pragma once

/// \file pubkey.hpp
/// Public-key substrate: textbook RSA over 64-bit primes, built from
/// scratch (Miller-Rabin key generation, 128-bit modular exponentiation).
///
/// The paper's nodes use RSA to (a) wrap the session key K_s under the
/// destination's public key, (b) encrypt the source-zone field L_{Z_S},
/// (c) encrypt the TTL under the next relay's key in notify-and-go, and
/// (d) encrypt the intersection-countermeasure Bitmap. All of those are
/// short values, so a 64-bit-prime RSA (≈127-bit modulus) carries them
/// faithfully; the *simulated* cost of a real RSA-1024 operation is charged
/// via crypto::CostModel, exactly as DESIGN.md's substitution table states.
/// This code must not be used for actual security.

#include <cstdint>
#include <optional>
#include <vector>

namespace alert::util {
class Rng;
}

namespace alert::crypto {

struct PublicKey {
  std::uint64_t n = 0;  ///< modulus (product of two 32-bit-ish primes)
  std::uint64_t e = 0;  ///< public exponent

  constexpr bool operator==(const PublicKey&) const = default;
};

struct PrivateKey {
  std::uint64_t n = 0;
  std::uint64_t d = 0;  ///< private exponent
};

struct KeyPair {
  PublicKey pub;
  PrivateKey priv;
};

/// Generate an RSA key pair with ~`bits`-bit modulus (default 62 to stay
/// within u64). Deterministic given the RNG state.
[[nodiscard]] KeyPair generate_keypair(util::Rng& rng, int bits = 62);

/// Raw RSA on a single residue value (< n). Asserts value < n.
[[nodiscard]] std::uint64_t rsa_encrypt_value(const PublicKey& pub,
                                              std::uint64_t value);
[[nodiscard]] std::uint64_t rsa_decrypt_value(const PrivateKey& priv,
                                              std::uint64_t value);

/// Encrypt an arbitrary byte string by splitting it into sub-modulus chunks.
/// Each 7-byte chunk becomes one 8-byte ciphertext block.
[[nodiscard]] std::vector<std::uint64_t> rsa_encrypt_bytes(
    const PublicKey& pub, const std::vector<std::uint8_t>& data);
[[nodiscard]] std::vector<std::uint8_t> rsa_decrypt_bytes(
    const PrivateKey& priv, const std::vector<std::uint64_t>& blocks,
    std::size_t original_size);

/// Miller-Rabin primality (deterministic witness set valid for u64).
[[nodiscard]] bool is_probable_prime(std::uint64_t n);

/// Modular arithmetic helpers (exposed for tests).
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m);
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                                    std::uint64_t m);
/// Modular inverse of a mod m, if gcd(a, m) == 1.
[[nodiscard]] std::optional<std::uint64_t> inverse_mod(std::uint64_t a,
                                                       std::uint64_t m);

}  // namespace alert::crypto
