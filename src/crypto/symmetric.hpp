#pragma once

/// \file symmetric.hpp
/// Symmetric encryption substrate. The paper uses AES for payload
/// protection; we implement XTEA (a well-known 64-bit block cipher) in CTR
/// mode from scratch. Functionally this provides the same properties the
/// protocol relies on — keyed, invertible, ciphertext indistinguishable from
/// noise to nodes without the key — while the *simulated latency* of an AES
/// operation is charged separately through crypto::CostModel.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace alert::crypto {

/// 128-bit symmetric key (the session key K_s of Sec. 2.5).
struct SymmetricKey {
  std::array<std::uint32_t, 4> words{};

  constexpr bool operator==(const SymmetricKey&) const = default;

  /// Derive a key deterministically from a 64-bit seed (used when a node
  /// generates a fresh session key from its RNG).
  [[nodiscard]] static SymmetricKey from_seed(std::uint64_t seed);
};

/// XTEA block cipher, 64 rounds (32 cycles).
class Xtea {
 public:
  explicit constexpr Xtea(const SymmetricKey& key) : key_(key.words) {}

  [[nodiscard]] std::uint64_t encrypt_block(std::uint64_t plaintext) const;
  [[nodiscard]] std::uint64_t decrypt_block(std::uint64_t ciphertext) const;

 private:
  std::array<std::uint32_t, 4> key_;
};

/// CTR-mode stream encryption/decryption (self-inverse). The nonce must be
/// unique per (key, message); callers use a per-packet sequence number.
void xtea_ctr_apply(const SymmetricKey& key, std::uint64_t nonce,
                    std::span<std::uint8_t> data);

/// Convenience: encrypt a copy.
[[nodiscard]] std::vector<std::uint8_t> xtea_ctr_encrypt(
    const SymmetricKey& key, std::uint64_t nonce,
    std::span<const std::uint8_t> plaintext);

}  // namespace alert::crypto
