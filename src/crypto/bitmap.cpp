#include "crypto/bitmap.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace alert::crypto {

namespace {
void flip_bit(std::span<std::uint8_t> payload, std::uint32_t pos) {
  payload[pos / 8] ^= static_cast<std::uint8_t>(1u << (pos % 8));
}
}  // namespace

AlterationBitmap AlterationBitmap::alter(std::span<std::uint8_t> payload,
                                         std::size_t flips, util::Rng& rng) {
  AlterationBitmap bm;
  const std::size_t total_bits = payload.size() * 8;
  if (total_bits == 0) return bm;
  flips = std::min(flips, total_bits);
  bm.positions_.reserve(flips);
  while (bm.positions_.size() < flips) {
    const auto pos = static_cast<std::uint32_t>(rng.below(total_bits));
    if (std::find(bm.positions_.begin(), bm.positions_.end(), pos) !=
        bm.positions_.end()) {
      continue;
    }
    bm.positions_.push_back(pos);
    flip_bit(payload, pos);
  }
  return bm;
}

void AlterationBitmap::restore(std::span<std::uint8_t> payload) const {
  for (const std::uint32_t pos : positions_) {
    assert(pos / 8 < payload.size());
    flip_bit(payload, pos);
  }
}

std::vector<std::uint8_t> AlterationBitmap::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(positions_.size() * 4);
  for (const std::uint32_t p : positions_) {
    out.push_back(static_cast<std::uint8_t>(p));
    out.push_back(static_cast<std::uint8_t>(p >> 8));
    out.push_back(static_cast<std::uint8_t>(p >> 16));
    out.push_back(static_cast<std::uint8_t>(p >> 24));
  }
  return out;
}

AlterationBitmap AlterationBitmap::deserialize(
    std::span<const std::uint8_t> bytes) {
  AlterationBitmap bm;
  bm.positions_.reserve(bytes.size() / 4);
  for (std::size_t i = 0; i + 3 < bytes.size(); i += 4) {
    const std::uint32_t p = static_cast<std::uint32_t>(bytes[i]) |
                            (static_cast<std::uint32_t>(bytes[i + 1]) << 8) |
                            (static_cast<std::uint32_t>(bytes[i + 2]) << 16) |
                            (static_cast<std::uint32_t>(bytes[i + 3]) << 24);
    bm.positions_.push_back(p);
  }
  return bm;
}

}  // namespace alert::crypto
