#include "crypto/pubkey.hpp"

#include <array>
#include <cassert>

#include "util/rng.hpp"

namespace alert::crypto {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  assert(m != 0);
  std::uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

std::optional<std::uint64_t> inverse_mod(std::uint64_t a, std::uint64_t m) {
  // Extended Euclid on signed 128-bit to avoid overflow.
  __extension__ typedef __int128 i128;
  i128 t = 0, new_t = 1;
  i128 r = static_cast<i128>(m), new_r = static_cast<i128>(a % m);
  while (new_r != 0) {
    const i128 q = r / new_r;
    const i128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const i128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) return std::nullopt;
  if (t < 0) t += static_cast<i128>(m);
  return static_cast<std::uint64_t>(t);
}

bool is_probable_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                          19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // Deterministic witnesses for all n < 2^64 (Sinclair set).
  for (std::uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL,
                          9780504ULL, 1795265022ULL}) {
    std::uint64_t x = pow_mod(a % n, d, n);
    if (x == 0 || x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 1; i < s; ++i) {
      x = mul_mod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

namespace {

std::uint64_t random_prime(util::Rng& rng, int bits) {
  assert(bits >= 8 && bits <= 32);
  const std::uint64_t lo = 1ULL << (bits - 1);
  const std::uint64_t hi = (1ULL << bits) - 1;
  for (;;) {
    std::uint64_t candidate = lo + rng.below(hi - lo + 1);
    candidate |= 1;  // odd
    if (is_probable_prime(candidate)) return candidate;
  }
}

}  // namespace

KeyPair generate_keypair(util::Rng& rng, int bits) {
  assert(bits >= 16 && bits <= 63);
  const int half = bits / 2;
  for (;;) {
    const std::uint64_t p = random_prime(rng, half);
    std::uint64_t q = random_prime(rng, bits - half);
    if (p == q) continue;
    const std::uint64_t n = p * q;
    const std::uint64_t phi = (p - 1) * (q - 1);
    constexpr std::uint64_t kE = 65537;
    const auto d = inverse_mod(kE, phi);
    if (!d) continue;  // gcd(e, phi) != 1; re-draw primes
    return KeyPair{PublicKey{n, kE}, PrivateKey{n, *d}};
  }
}

std::uint64_t rsa_encrypt_value(const PublicKey& pub, std::uint64_t value) {
  assert(value < pub.n);
  return pow_mod(value, pub.e, pub.n);
}

std::uint64_t rsa_decrypt_value(const PrivateKey& priv, std::uint64_t value) {
  assert(value < priv.n);
  return pow_mod(value, priv.d, priv.n);
}

std::vector<std::uint64_t> rsa_encrypt_bytes(
    const PublicKey& pub, const std::vector<std::uint8_t>& data) {
  std::vector<std::uint64_t> blocks;
  blocks.reserve((data.size() + 6) / 7);
  for (std::size_t off = 0; off < data.size(); off += 7) {
    std::uint64_t chunk = 0;
    const std::size_t n = std::min<std::size_t>(7, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) {
      chunk = (chunk << 8) | data[off + i];
    }
    // 7 bytes = 56 bits < 61-bit modulus floor, so chunk < pub.n always.
    blocks.push_back(rsa_encrypt_value(pub, chunk));
  }
  return blocks;
}

std::vector<std::uint8_t> rsa_decrypt_bytes(
    const PrivateKey& priv, const std::vector<std::uint64_t>& blocks,
    std::size_t original_size) {
  std::vector<std::uint8_t> out;
  out.reserve(original_size);
  std::size_t remaining = original_size;
  for (const std::uint64_t block : blocks) {
    const std::uint64_t chunk = rsa_decrypt_value(priv, block);
    const std::size_t n = std::min<std::size_t>(7, remaining);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(chunk >> (8 * (n - 1 - i))));
    }
    remaining -= n;
  }
  return out;
}

}  // namespace alert::crypto
