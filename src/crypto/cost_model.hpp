#pragma once

/// \file cost_model.hpp
/// Simulated latency of cryptographic operations.
///
/// Section 5.2 of the paper: on a 1.8 GHz single-threaded processor "a
/// typical symmetric encryption costs several milliseconds while a public
/// key encryption operation costs 2-3 hundred milliseconds". The relative
/// magnitudes of these costs — not the ciphers' real wall-clock time on the
/// host — drive the latency comparison of Fig. 14, so the simulator charges
/// these modeled durations whenever a protocol performs an operation.

#include <cstddef>

namespace alert::crypto {

/// Operation costs in simulated seconds. Defaults follow Sec. 5.2 and
/// ref. [26]'s symmetric/public-key ratio.
struct CostModel {
  double symmetric_encrypt_s = 0.004;   ///< AES-class op on 512 B
  double symmetric_decrypt_s = 0.004;
  double public_encrypt_s = 0.250;      ///< RSA-1024-class encryption
  double public_decrypt_s = 0.250;      ///< (paper: 200-300 ms)
  double sign_s = 0.250;                ///< signature ≈ private-key op
  double verify_s = 0.020;              ///< verification is cheaper (e=65537)
  double hash_s = 0.0001;               ///< SHA-1 of a short input

  /// Scale a per-512-byte symmetric cost to an arbitrary payload size.
  [[nodiscard]] double symmetric_encrypt_for(std::size_t bytes) const {
    return scale(symmetric_encrypt_s, bytes);
  }
  [[nodiscard]] double symmetric_decrypt_for(std::size_t bytes) const {
    return scale(symmetric_decrypt_s, bytes);
  }

 private:
  [[nodiscard]] static double scale(double per512, std::size_t bytes) {
    const double blocks = static_cast<double>(bytes) / 512.0;
    return per512 * (blocks < 1.0 ? 1.0 : blocks);
  }
};

}  // namespace alert::crypto
