#include "perf/report.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <system_error>
#include <thread>
#include <utility>

#include "obs/json.hpp"
#include "obs/json_value.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace alert::perf {

namespace {

[[nodiscard]] const char* platform_tag() {
#if defined(__linux__)
  return "linux";
#elif defined(__APPLE__)
  return "darwin";
#elif defined(_WIN32)
  return "windows";
#else
  return "unknown";
#endif
}

}  // namespace

HostFingerprint HostFingerprint::current() {
  HostFingerprint fp;
  fp.os = platform_tag();
#if defined(__VERSION__)
  fp.compiler = __VERSION__;
#else
  fp.compiler = "unknown";
#endif
#if defined(NDEBUG)
  fp.build_type = "release";
#else
  fp.build_type = "debug";
#endif
  fp.hardware_threads = std::thread::hardware_concurrency();
  return fp;
}

std::string HostFingerprint::summary() const {
  return os + ", " + compiler + ", " + build_type + ", " +
         std::to_string(hardware_threads) + " hw threads";
}

const BenchMetric* BenchReport::find(std::string_view name) const {
  for (const BenchMetric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void BenchReport::add_metric(BenchMetric metric) {
  ALERT_INVARIANT(find(metric.name) == nullptr,
                  "duplicate bench metric name");
  const auto pos = std::lower_bound(
      metrics.begin(), metrics.end(), metric,
      [](const BenchMetric& a, const BenchMetric& b) { return a.name < b.name; });
  metrics.insert(pos, std::move(metric));
}

void BenchReport::write_json(std::ostream& out) const {
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kBenchSchema);
  w.field("suite", suite);
  w.field("version", version);

  w.key("host");
  w.begin_object();
  w.field("os", host.os);
  w.field("compiler", host.compiler);
  w.field("build_type", host.build_type);
  w.field("hardware_threads",
          static_cast<std::uint64_t>(host.hardware_threads));
  w.end_object();

  w.key("metrics");
  w.begin_array();
  for (const BenchMetric& m : metrics) {
    w.begin_object();
    w.field("name", m.name);
    w.field("unit", m.unit);
    w.field("value", m.value);
    w.field("iqr", m.iqr);
    w.field("repeats", static_cast<std::uint64_t>(m.repeats));
    w.field("higher_is_better", m.higher_is_better);
    w.field("tolerance_pct", m.tolerance_pct);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << '\n';
}

bool BenchReport::write_file(const std::string& path) const {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      ALERT_LOG_ERROR("perf: cannot open '%s' for writing", tmp.c_str());
      return false;
    }
    write_json(out);
    if (!out.good()) {
      ALERT_LOG_ERROR("perf: short write to '%s'", tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ALERT_LOG_ERROR("perf: cannot rename '%s' -> '%s': %s", tmp.c_str(),
                    path.c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

std::optional<BenchReport> load_report(std::string_view json,
                                       std::string* error) {
  const auto fail = [error](std::string message) -> std::optional<BenchReport> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };
  const auto doc = obs::parse_json(json, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) return fail("bench report must be a JSON object");
  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->as_string() != kBenchSchema) {
    return fail(std::string("bench report schema must be '") + kBenchSchema +
                "'");
  }

  BenchReport report;
  const obs::JsonValue* suite = doc->find("suite");
  if (suite == nullptr || !suite->is_string() || suite->as_string().empty()) {
    return fail("bench report needs a non-empty string 'suite'");
  }
  report.suite = suite->as_string();
  const obs::JsonValue* version = doc->find("version");
  if (version == nullptr || !version->is_string()) {
    return fail("bench report needs a string 'version'");
  }
  report.version = version->as_string();

  const obs::JsonValue* host = doc->find("host");
  if (host == nullptr || !host->is_object()) {
    return fail("bench report needs a 'host' object");
  }
  const auto host_str = [host](const char* key) {
    const obs::JsonValue* v = host->find(key);
    return v != nullptr ? v->as_string() : std::string();
  };
  report.host.os = host_str("os");
  report.host.compiler = host_str("compiler");
  report.host.build_type = host_str("build_type");
  if (const obs::JsonValue* v = host->find("hardware_threads")) {
    report.host.hardware_threads = static_cast<unsigned>(v->as_u64());
  }

  const obs::JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return fail("bench report needs a 'metrics' array");
  }
  for (std::size_t i = 0; i < metrics->size(); ++i) {
    const obs::JsonValue& m = metrics->at(i);
    const std::string where = "metrics[" + std::to_string(i) + "]";
    if (!m.is_object()) return fail(where + " must be an object");
    BenchMetric metric;
    const obs::JsonValue* name = m.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return fail(where + " needs a non-empty string 'name'");
    }
    metric.name = name->as_string();
    const obs::JsonValue* unit = m.find("unit");
    if (unit == nullptr || !unit->is_string()) {
      return fail(where + " needs a string 'unit'");
    }
    metric.unit = unit->as_string();
    const obs::JsonValue* value = m.find("value");
    if (value == nullptr || !value->is_number()) {
      return fail(where + " needs a numeric 'value'");
    }
    metric.value = value->as_double();
    if (const obs::JsonValue* v = m.find("iqr")) metric.iqr = v->as_double();
    if (const obs::JsonValue* v = m.find("repeats")) {
      metric.repeats = static_cast<std::size_t>(v->as_u64());
    }
    if (const obs::JsonValue* v = m.find("higher_is_better")) {
      metric.higher_is_better = v->as_bool();
    }
    const obs::JsonValue* tolerance = m.find("tolerance_pct");
    if (tolerance == nullptr || !tolerance->is_number() ||
        tolerance->as_double() <= 0.0) {
      return fail(where + " needs a positive numeric 'tolerance_pct'");
    }
    metric.tolerance_pct = tolerance->as_double();
    if (report.find(metric.name) != nullptr) {
      return fail(where + " duplicates metric '" + metric.name + "'");
    }
    report.add_metric(std::move(metric));
  }
  return report;
}

std::optional<BenchReport> load_report_file(const std::string& path,
                                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_report(buffer.str(), error);
}

}  // namespace alert::perf
