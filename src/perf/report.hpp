#pragma once

/// \file report.hpp
/// The committed perf artifact: a BenchReport is one suite's measured
/// metrics plus the provenance needed to interpret them (git describe, host
/// fingerprint, repeat counts). Serialized as schema "alertsim-bench/1" —
/// the format of the repo-root baselines BENCH_core.json /
/// BENCH_campaign.json that the CI perf-gate compares against
/// (tools/alertsim-perf, docs/BENCHMARKS.md).
///
/// Each metric carries its own gate tolerance: the thresholds are part of
/// the committed baseline, so tightening or loosening a metric's noise
/// policy is an ordinary reviewed diff.

#include <cstddef>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace alert::perf {

inline constexpr const char* kBenchSchema = "alertsim-bench/1";

/// One measured metric of a suite.
struct BenchMetric {
  std::string name;  ///< e.g. "ns_per_event_dispatch"
  std::string unit;  ///< e.g. "ns/op", "events/s", "bytes"
  double value = 0.0;          ///< median over repeats
  double iqr = 0.0;            ///< interquartile range of the repeats
  std::size_t repeats = 1;
  bool higher_is_better = false;
  /// Relative gate threshold in percent: the check fails when the current
  /// value is worse than baseline by more than this (times the CLI's
  /// --scale multiplier; see compare.hpp).
  double tolerance_pct = 25.0;
};

/// Where the numbers came from. Compared fingerprints that differ produce a
/// warning note, never a failure — baselines are refreshed per machine
/// class, and CI uses a widened --scale instead (docs/BENCHMARKS.md).
struct HostFingerprint {
  std::string os;         ///< compile-target platform tag
  std::string compiler;   ///< __VERSION__
  std::string build_type; ///< "release" / "debug" (NDEBUG probe)
  unsigned hardware_threads = 0;

  [[nodiscard]] static HostFingerprint current();
  [[nodiscard]] std::string summary() const;
  [[nodiscard]] bool operator==(const HostFingerprint&) const = default;
};

struct BenchReport {
  std::string suite;    ///< "core" | "campaign"
  std::string version;  ///< obs::build_version() (git describe)
  HostFingerprint host;
  std::vector<BenchMetric> metrics;  ///< sorted by name

  [[nodiscard]] const BenchMetric* find(std::string_view name) const;
  /// Insert keeping the by-name order (duplicate names are an invariant
  /// violation — metric names identify gate rows).
  void add_metric(BenchMetric metric);

  void write_json(std::ostream& out) const;
  /// Atomic write (temp file + rename); returns false and logs on I/O
  /// failure.
  [[nodiscard]] bool write_file(const std::string& path) const;
};

/// Parse an "alertsim-bench/1" document. Returns nullopt and fills `error`
/// on malformed JSON, a schema mismatch, or missing/mistyped fields.
[[nodiscard]] std::optional<BenchReport> load_report(
    std::string_view json, std::string* error = nullptr);

/// Read and parse a report file.
[[nodiscard]] std::optional<BenchReport> load_report_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace alert::perf
