#pragma once

/// \file measure.hpp
/// Noise-aware measurement methodology for the pinned benchmark suite
/// (docs/BENCHMARKS.md): every metric is the median of N identical repeats
/// after a discarded warmup, with the interquartile range as the dispersion
/// figure. Median-of-N is robust to the one-sided noise a shared machine
/// injects (preemption, frequency ramps, cold caches all make repeats
/// slower, never faster); the IQR is reported alongside so a baseline
/// refresh can tell a drifting machine from a drifting program.
///
/// All host timing goes through obs::monotonic_ns(); nothing here touches
/// simulated time, RNG streams, determinism digests or cache keys.

#include <cstddef>
#include <functional>
#include <vector>

namespace alert::perf {

struct MeasureOptions {
  std::size_t warmup = 1;   ///< discarded leading runs (cache/branch warm)
  std::size_t repeats = 7;  ///< kept runs; the metric is their median
};

/// One measured metric: order statistics over `repeats` runs of the same
/// deterministic workload.
struct Measurement {
  double median = 0.0;
  double iqr = 0.0;  ///< q75 - q25, the committed dispersion figure
  double min = 0.0;
  double max = 0.0;
  std::size_t repeats = 0;
  std::vector<double> samples;  ///< sorted ascending
};

/// Linear-interpolation quantile of an ascending-sorted sample vector
/// (q in [0,1]; empty input yields 0).
[[nodiscard]] double quantile_sorted(const std::vector<double>& sorted,
                                     double q);

/// Median / IQR / min / max of an arbitrary sample set.
[[nodiscard]] Measurement summarize(std::vector<double> samples);

/// Run `once` warmup-times discarded, then repeats-times recorded. `once`
/// returns the metric value for one repeat (e.g. ns per operation over a
/// fixed batch); it must be deterministic in everything but wall time.
[[nodiscard]] Measurement measure(const std::function<double()>& once,
                                  const MeasureOptions& options);

}  // namespace alert::perf
