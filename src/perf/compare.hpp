#pragma once

/// \file compare.hpp
/// The regression-gate arithmetic: compare a freshly measured BenchReport
/// against a committed baseline, metric by metric, using each baseline
/// metric's own relative tolerance (optionally widened by a scale factor —
/// CI runners are noisier than the machine that minted the baseline).
///
/// Verdicts are direction-aware: for lower-is-better metrics (ns/op, peak
/// RSS) a regression is current > baseline * (1 + tol); for
/// higher-is-better (events/s, units/s) it is current < baseline *
/// (1 - tol). A baseline metric absent from the current run fails the gate
/// (a silently dropped bench would otherwise hide forever); a new current
/// metric only produces a note until the baseline is refreshed.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/report.hpp"

namespace alert::perf {

enum class Verdict : std::uint8_t {
  Ok,                ///< within tolerance of the baseline
  Improved,          ///< better than baseline by more than the tolerance
  Regressed,         ///< worse than baseline by more than the tolerance
  MissingInCurrent,  ///< baseline metric the current run did not produce
  NewInCurrent,      ///< current metric with no baseline row (note only)
};

[[nodiscard]] const char* verdict_name(Verdict v);

struct MetricComparison {
  std::string name;
  std::string unit;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed relative change in percent, (current - baseline) / baseline.
  double delta_pct = 0.0;
  /// Effective threshold applied (baseline tolerance_pct * scale).
  double tolerance_pct = 0.0;
  bool higher_is_better = false;
  Verdict verdict = Verdict::Ok;
};

struct CompareOptions {
  /// Multiplier on every metric's tolerance_pct (CI passes > 1 to absorb
  /// runner-class noise; see docs/BENCHMARKS.md noise policy).
  double tolerance_scale = 1.0;
};

struct ComparisonReport {
  std::vector<MetricComparison> items;  ///< baseline order, then new metrics
  std::vector<std::string> notes;       ///< host mismatch, new metrics, ...

  [[nodiscard]] std::size_t count(Verdict v) const;
  /// Gate verdict: no regressions and no baseline metric missing.
  [[nodiscard]] bool passed() const;
  /// Aligned human-readable table plus the notes, for the driver / CI log.
  [[nodiscard]] std::string render() const;
};

/// Compare `current` against `baseline`. The suites must match — compare
/// BENCH_core.json against a core run, not a campaign run (the driver
/// enforces this with exit 2 before calling).
[[nodiscard]] ComparisonReport compare_reports(const BenchReport& baseline,
                                               const BenchReport& current,
                                               const CompareOptions& options);

}  // namespace alert::perf
