#include "perf/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace alert::perf {

namespace {

[[nodiscard]] std::string format_value(double v) {
  char buffer[64];
  if (v == 0.0 || (std::fabs(v) >= 0.01 && std::fabs(v) < 1e7)) {
    std::snprintf(buffer, sizeof buffer, "%.2f", v);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.3g", v);
  }
  return buffer;
}

[[nodiscard]] std::string format_signed_pct(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%+.1f%%", v);
  return buffer;
}

}  // namespace

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Ok: return "ok";
    case Verdict::Improved: return "improved";
    case Verdict::Regressed: return "REGRESSED";
    case Verdict::MissingInCurrent: return "MISSING";
    case Verdict::NewInCurrent: return "new";
  }
  return "?";
}

std::size_t ComparisonReport::count(Verdict v) const {
  return static_cast<std::size_t>(
      std::count_if(items.begin(), items.end(),
                    [v](const MetricComparison& c) { return c.verdict == v; }));
}

bool ComparisonReport::passed() const {
  return count(Verdict::Regressed) == 0 &&
         count(Verdict::MissingInCurrent) == 0;
}

std::string ComparisonReport::render() const {
  std::string out;
  out += "  metric                          baseline      current       "
         "delta     tol       verdict\n";
  for (const MetricComparison& c : items) {
    char line[256];
    const bool compared = c.verdict == Verdict::Ok ||
                          c.verdict == Verdict::Improved ||
                          c.verdict == Verdict::Regressed;
    std::snprintf(
        line, sizeof line, "  %-30s  %-12s  %-12s  %-8s  %-8s  %s\n",
        (c.name + " [" + c.unit + "]").c_str(),
        c.verdict == Verdict::NewInCurrent ? "-"
                                           : format_value(c.baseline).c_str(),
        c.verdict == Verdict::MissingInCurrent
            ? "-"
            : format_value(c.current).c_str(),
        compared ? format_signed_pct(c.delta_pct).c_str() : "-",
        compared ? (format_value(c.tolerance_pct) + "%").c_str() : "-",
        verdict_name(c.verdict));
    out += line;
  }
  for (const std::string& note : notes) {
    out += "  note: " + note + "\n";
  }
  return out;
}

ComparisonReport compare_reports(const BenchReport& baseline,
                                 const BenchReport& current,
                                 const CompareOptions& options) {
  ALERT_INVARIANT(options.tolerance_scale > 0.0,
                  "tolerance scale must be positive");
  ComparisonReport report;
  for (const BenchMetric& base : baseline.metrics) {
    MetricComparison c;
    c.name = base.name;
    c.unit = base.unit;
    c.baseline = base.value;
    c.higher_is_better = base.higher_is_better;
    c.tolerance_pct = base.tolerance_pct * options.tolerance_scale;
    const BenchMetric* cur = current.find(base.name);
    if (cur == nullptr) {
      c.verdict = Verdict::MissingInCurrent;
      report.items.push_back(std::move(c));
      continue;
    }
    c.current = cur->value;
    if (base.value == 0.0) {
      // No meaningful relative change from a zero baseline; any non-zero
      // current in the bad direction is an unbounded regression.
      c.delta_pct = 0.0;
      const bool worse = base.higher_is_better ? cur->value < 0.0
                                               : cur->value > 0.0;
      c.verdict = worse ? Verdict::Regressed : Verdict::Ok;
    } else {
      c.delta_pct = (cur->value - base.value) / base.value * 100.0;
      const double worse_pct =
          base.higher_is_better ? -c.delta_pct : c.delta_pct;
      if (worse_pct > c.tolerance_pct) {
        c.verdict = Verdict::Regressed;
      } else if (-worse_pct > c.tolerance_pct) {
        c.verdict = Verdict::Improved;
      } else {
        c.verdict = Verdict::Ok;
      }
    }
    report.items.push_back(std::move(c));
  }
  for (const BenchMetric& cur : current.metrics) {
    if (baseline.find(cur.name) != nullptr) continue;
    MetricComparison c;
    c.name = cur.name;
    c.unit = cur.unit;
    c.current = cur.value;
    c.higher_is_better = cur.higher_is_better;
    c.verdict = Verdict::NewInCurrent;
    report.items.push_back(std::move(c));
    report.notes.push_back("metric '" + cur.name +
                           "' has no baseline row — refresh the baseline "
                           "(alertsim-perf --update-baseline) to start "
                           "gating it");
  }
  if (!(baseline.host == current.host)) {
    report.notes.push_back(
        "host fingerprint differs from the baseline's (baseline: " +
        baseline.host.summary() + "; current: " + current.host.summary() +
        ") — absolute comparisons are indicative only; see the noise "
        "policy in docs/BENCHMARKS.md");
  }
  return report;
}

}  // namespace alert::perf
