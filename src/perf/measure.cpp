#include "perf/measure.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace alert::perf {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  ALERT_INVARIANT(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Measurement summarize(std::vector<double> samples) {
  Measurement m;
  if (samples.empty()) return m;
  std::sort(samples.begin(), samples.end());
  m.median = quantile_sorted(samples, 0.5);
  m.iqr = quantile_sorted(samples, 0.75) - quantile_sorted(samples, 0.25);
  m.min = samples.front();
  m.max = samples.back();
  m.repeats = samples.size();
  m.samples = std::move(samples);
  return m;
}

Measurement measure(const std::function<double()>& once,
                    const MeasureOptions& options) {
  ALERT_INVARIANT(options.repeats > 0, "measure needs at least one repeat");
  for (std::size_t i = 0; i < options.warmup; ++i) (void)once();
  std::vector<double> samples;
  samples.reserve(options.repeats);
  for (std::size_t i = 0; i < options.repeats; ++i) {
    samples.push_back(once());
  }
  return summarize(std::move(samples));
}

}  // namespace alert::perf
