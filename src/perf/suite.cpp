#include "perf/suite.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "lint/analyzer.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "perf/kernels.hpp"
#include "util/logging.hpp"

namespace alert::perf {

namespace {

namespace fs = std::filesystem;

/// Pinned workload sizes, full scale vs smoke scale.
struct Pin {
  std::size_t full;
  std::size_t smoke;
  [[nodiscard]] std::size_t at(bool smoke_scale) const {
    return smoke_scale ? smoke : full;
  }
};

constexpr Pin kDispatchEvents{400'000, 20'000};
constexpr Pin kQueryNodes{2'000, 300};
constexpr Pin kQueryCount{4'000, 400};
constexpr Pin kMacroNodes{200, 60};      ///< 200 = paper scale (Sec. 5.2)
constexpr Pin kMacroDurationS{100, 20};  ///< 100 s = paper scale
constexpr Pin kMicroRepeats{9, 3};
constexpr Pin kMacroRepeats{3, 2};
constexpr Pin kCampaignColdRepeats{3, 2};
constexpr Pin kCampaignWarmRepeats{7, 3};

/// Campaign-kernel sweep shape (4 units: 2 speeds x 2 replications).
constexpr Pin kCampaignNodes{100, 50};
constexpr Pin kCampaignDurationS{60, 15};
constexpr std::size_t kCampaignReps = 2;

[[nodiscard]] MeasureOptions options_for(const SuiteOptions& suite,
                                         const Pin& repeats,
                                         std::size_t warmup) {
  MeasureOptions m;
  m.warmup = warmup;
  m.repeats = suite.repeats != 0 ? suite.repeats : repeats.at(suite.smoke);
  return m;
}

/// Which order statistic a metric commits. Median for wall-clock
/// throughput (two-sided noise once I/O and scheduling are in the loop);
/// min for pure-CPU ns/op kernels, where interference only ever adds time,
/// so the minimum is the stable estimate of the true cost and the median
/// tracks whatever else the machine was doing.
enum class Stat { Median, Min };

[[nodiscard]] BenchMetric metric_from(std::string name, std::string unit,
                                      const Measurement& m, Stat stat,
                                      bool higher_is_better,
                                      double tolerance_pct) {
  BenchMetric out;
  out.name = std::move(name);
  out.unit = std::move(unit);
  out.value = stat == Stat::Min ? m.min : m.median;
  out.iqr = m.iqr;
  out.repeats = m.repeats;
  out.higher_is_better = higher_is_better;
  out.tolerance_pct = tolerance_pct;
  return out;
}

void add_peak_rss(BenchReport& report) {
  BenchMetric rss;
  rss.name = "peak_rss_bytes";
  rss.unit = "bytes";
  rss.value = static_cast<double>(obs::peak_rss_bytes());
  rss.repeats = 1;
  rss.higher_is_better = false;
  // Wide: RSS folds in allocator behaviour and whatever ran earlier in the
  // process; the gate is for catching leaks-at-scale, not kB drift.
  rss.tolerance_pct = 50.0;
  report.add_metric(std::move(rss));
}

[[nodiscard]] BenchReport make_report(const char* suite) {
  BenchReport report;
  report.suite = suite;
  report.version = obs::build_version();
  report.host = HostFingerprint::current();
  return report;
}

// --- core suite -------------------------------------------------------------

[[nodiscard]] BenchReport run_core_suite(const SuiteOptions& options) {
  BenchReport report = make_report("core");

  const std::size_t dispatch_events = kDispatchEvents.at(options.smoke);
  const Measurement dispatch = measure(
      [dispatch_events] {
        const std::uint64_t start = obs::monotonic_ns();
        const std::uint64_t executed = run_dispatch_batch(dispatch_events);
        const std::uint64_t elapsed = obs::monotonic_ns() - start;
        return static_cast<double>(elapsed) / static_cast<double>(executed);
      },
      options_for(options, kMicroRepeats, 1));
  // 40%: the pure-CPU kernels see sustained host-frequency drift of
  // +-15% between invocations even on the min statistic; a genuine
  // regression that matters is well past 1.4x.
  report.add_metric(metric_from("ns_per_event_dispatch", "ns/op", dispatch,
                         Stat::Min, /*higher_is_better=*/false, 40.0));
  ALERT_LOG_INFO("perf core: ns_per_event_dispatch %.1f (iqr %.1f)",
                 dispatch.median, dispatch.iqr);

  const QueryTopology topology(kQueryNodes.at(options.smoke));
  const std::size_t queries = kQueryCount.at(options.smoke);
  const Measurement query = measure(
      [&topology, queries] {
        const std::uint64_t start = obs::monotonic_ns();
        const std::uint64_t found = topology.run_queries(queries);
        const std::uint64_t elapsed = obs::monotonic_ns() - start;
        ALERT_INVARIANT(found > 0, "query kernel found no neighbours");
        return static_cast<double>(elapsed) / static_cast<double>(queries);
      },
      options_for(options, kMicroRepeats, 1));
  report.add_metric(metric_from("ns_per_neighbour_query", "ns/op", query,
                         Stat::Min, /*higher_is_better=*/false, 40.0));
  ALERT_LOG_INFO("perf core: ns_per_neighbour_query %.1f (iqr %.1f)",
                 query.median, query.iqr);

  // One timed fig14a-style replication yields both throughput metrics, so
  // events/s and packets/s always describe the same runs.
  const core::ScenarioConfig macro = macro_scenario(
      kMacroNodes.at(options.smoke),
      static_cast<double>(kMacroDurationS.at(options.smoke)));
  const MeasureOptions macro_opts = options_for(options, kMacroRepeats, 1);
  std::vector<double> events_per_s;
  std::vector<double> packets_per_s;
  for (std::size_t i = 0; i < macro_opts.warmup + macro_opts.repeats; ++i) {
    const std::uint64_t start = obs::monotonic_ns();
    const MacroRunStats stats = run_macro_once(macro);
    const double wall_s =
        static_cast<double>(obs::monotonic_ns() - start) / 1e9;
    ALERT_INVARIANT(stats.events_executed > 0 && wall_s > 0.0,
                    "macro kernel executed no events");
    if (i < macro_opts.warmup) continue;
    events_per_s.push_back(static_cast<double>(stats.events_executed) /
                           wall_s);
    packets_per_s.push_back(static_cast<double>(stats.frames_tx) / wall_s);
  }
  report.add_metric(metric_from("events_per_s", "events/s",
                         summarize(std::move(events_per_s)), Stat::Median,
                         /*higher_is_better=*/true, 30.0));
  report.add_metric(metric_from("packets_per_s", "packets/s",
                         summarize(std::move(packets_per_s)), Stat::Median,
                         /*higher_is_better=*/true, 30.0));

  add_peak_rss(report);
  return report;
}

// --- campaign suite ---------------------------------------------------------

/// The campaign kernel sweep: 2 speed points x kCampaignReps replications
/// through the real engine + result cache. The reducer is a no-op — the
/// kernel measures scheduling/cache throughput, not figures.
[[nodiscard]] campaign::CampaignSpec campaign_kernel_spec(bool smoke) {
  campaign::CampaignSpec spec;
  spec.name = "perf_campaign_kernel";
  spec.title = "perf: campaign kernel sweep";
  spec.fallback_reps = kCampaignReps;
  spec.reduce = [](const std::vector<campaign::PointResult>&,
                   const campaign::ReduceContext&, obs::RunManifest&) {};
  core::ScenarioConfig base = campaign::paper_default_scenario();
  base.node_count = kCampaignNodes.at(smoke);
  base.duration_s = static_cast<double>(kCampaignDurationS.at(smoke));
  base.flow_count = 6;
  for (const double speed : {2.0, 4.0}) {
    campaign::PointSpec point;
    point.curve = "kernel";
    point.x = speed;
    point.config = base;
    point.config.speed_mps = speed;
    spec.points.push_back(std::move(point));
  }
  return spec;
}

[[nodiscard]] BenchReport run_campaign_suite(const SuiteOptions& options) {
  BenchReport report = make_report("campaign");

  const fs::path work_dir =
      options.work_dir.empty()
          ? fs::temp_directory_path() / "alertsim-perf-campaign"
          : fs::path(options.work_dir);
  const campaign::CampaignSpec spec = campaign_kernel_spec(options.smoke);

  campaign::CampaignOptions engine_options;
  engine_options.reps = kCampaignReps;
  engine_options.threads = 1;  // serial scheduling: stable units/s
  engine_options.cache_dir = (work_dir / "cache").string();
  engine_options.print = false;

  const auto reset_cache = [&engine_options] {
    std::error_code ec;
    fs::remove_all(engine_options.cache_dir, ec);
  };

  // Cold path: every repeat starts from an empty cache, so the measured
  // units/s covers simulation + content-addressed store + journal.
  const Measurement cold = measure(
      [&spec, &engine_options, &reset_cache] {
        reset_cache();
        const std::uint64_t start = obs::monotonic_ns();
        const campaign::CampaignOutcome outcome =
            campaign::run_campaign(spec, engine_options);
        const double wall_s =
            static_cast<double>(obs::monotonic_ns() - start) / 1e9;
        ALERT_INVARIANT(outcome.executed == outcome.units_total,
                        "cold campaign kernel served units from cache");
        return static_cast<double>(outcome.executed) / wall_s;
      },
      options_for(options, kCampaignColdRepeats, 1));
  report.add_metric(metric_from("campaign_units_per_s_cold", "units/s", cold,
                         Stat::Median, /*higher_is_better=*/true, 35.0));
  ALERT_LOG_INFO("perf campaign: cold %.2f units/s (iqr %.2f)", cold.median,
                 cold.iqr);

  // Warm path: the last cold repeat left a fully populated cache; every
  // warm repeat must execute 0 units (pure replay throughput).
  const Measurement warm = measure(
      [&spec, &engine_options] {
        const std::uint64_t start = obs::monotonic_ns();
        const campaign::CampaignOutcome outcome =
            campaign::run_campaign(spec, engine_options);
        const double wall_s =
            static_cast<double>(obs::monotonic_ns() - start) / 1e9;
        ALERT_INVARIANT(outcome.executed == 0,
                        "warm campaign kernel executed units");
        return static_cast<double>(outcome.units_total) / wall_s;
      },
      options_for(options, kCampaignWarmRepeats, 1));
  // Warm replay is milliseconds of wall time, so the relative noise floor
  // is intrinsically higher than the cold path's.
  report.add_metric(metric_from("campaign_units_per_s_warm", "units/s", warm,
                         Stat::Median, /*higher_is_better=*/true, 60.0));
  ALERT_LOG_INFO("perf campaign: warm %.2f units/s (iqr %.2f)", warm.median,
                 warm.iqr);

  {
    std::error_code ec;
    fs::remove_all(work_dir, ec);
  }
  add_peak_rss(report);
  return report;
}

// --- scale suite ------------------------------------------------------------

/// Arena-scale pins: 10k nodes is the smallest population where the
/// backend complexity gap dominates constant factors, yet a full-scale
/// suite run still finishes in minutes.
constexpr Pin kScaleQueryNodes{10'000, 2'000};
constexpr Pin kScaleQueryCount{4'000, 400};
constexpr Pin kScaleDispatchEvents{400'000, 20'000};
constexpr Pin kScaleMacroNodes{10'000, 1'000};
constexpr Pin kScaleMacroDurationS{5, 2};

/// Median events/s over the pinned repeats of one macro configuration
/// (warmup discarded). Same timing shape as the core suite's macro leg.
[[nodiscard]] Measurement measure_macro_events_per_s(
    const core::ScenarioConfig& config, const MeasureOptions& opts) {
  std::vector<double> events_per_s;
  for (std::size_t i = 0; i < opts.warmup + opts.repeats; ++i) {
    const std::uint64_t start = obs::monotonic_ns();
    const MacroRunStats stats = run_macro_once(config);
    const double wall_s =
        static_cast<double>(obs::monotonic_ns() - start) / 1e9;
    ALERT_INVARIANT(stats.events_executed > 0 && wall_s > 0.0,
                    "scale macro kernel executed no events");
    if (i < opts.warmup) continue;
    events_per_s.push_back(static_cast<double>(stats.events_executed) /
                           wall_s);
  }
  return summarize(std::move(events_per_s));
}

[[nodiscard]] BenchReport run_scale_suite(const SuiteOptions& options) {
  BenchReport report = make_report("scale");

  // Calendar-queue dispatch: the same batch shape as the core suite's
  // ns_per_event_dispatch, so the two baselines are directly comparable.
  const std::size_t dispatch_events = kScaleDispatchEvents.at(options.smoke);
  const Measurement dispatch = measure(
      [dispatch_events] {
        const std::uint64_t start = obs::monotonic_ns();
        const std::uint64_t executed = run_dispatch_batch(
            dispatch_events, sim::QueueBackend::Calendar);
        const std::uint64_t elapsed = obs::monotonic_ns() - start;
        return static_cast<double>(elapsed) / static_cast<double>(executed);
      },
      options_for(options, kMicroRepeats, 1));
  report.add_metric(metric_from("ns_per_event_dispatch_calendar", "ns/op",
                         dispatch, Stat::Min, /*higher_is_better=*/false,
                         40.0));
  ALERT_LOG_INFO("perf scale: ns_per_event_dispatch_calendar %.1f (iqr %.1f)",
                 dispatch.median, dispatch.iqr);

  // Grid neighbour query at paper density: the arena grows with the
  // population (sqrt(n/200) km side), so the disc covers O(k) nodes and
  // the measured cost is the index, not the answer size.
  const std::size_t query_nodes = kScaleQueryNodes.at(options.smoke);
  const double side =
      std::sqrt(static_cast<double>(query_nodes) / 200.0) * 1000.0;
  const QueryTopology topology(query_nodes, kKernelSeed, /*grid=*/true, side);
  const std::size_t queries = kScaleQueryCount.at(options.smoke);
  const Measurement query = measure(
      [&topology, queries] {
        const std::uint64_t start = obs::monotonic_ns();
        const std::uint64_t found = topology.run_queries(queries);
        const std::uint64_t elapsed = obs::monotonic_ns() - start;
        ALERT_INVARIANT(found > 0, "grid query kernel found no neighbours");
        return static_cast<double>(elapsed) / static_cast<double>(queries);
      },
      options_for(options, kMicroRepeats, 1));
  report.add_metric(metric_from("ns_per_neighbour_query_grid", "ns/op", query,
                         Stat::Min, /*higher_is_better=*/false, 40.0));
  ALERT_LOG_INFO("perf scale: ns_per_neighbour_query_grid %.1f (iqr %.1f)",
                 query.median, query.iqr);

  // The 10k-node fig14a-style macro run, once with every scale backend on
  // and once with the O(n)/heap/malloc defaults. Identical workload and
  // digest; only the complexity differs. The committed speedup value must
  // stay >= 5x: the scale-smoke CI job asserts that floor on the baseline
  // directly (the regression gate's scaled tolerance is too loose for an
  // absolute floor).
  const std::size_t macro_nodes = kScaleMacroNodes.at(options.smoke);
  const double macro_duration =
      static_cast<double>(kScaleMacroDurationS.at(options.smoke));
  scale::Backends all_on;
  all_on.grid = true;
  all_on.calendar = true;
  all_on.pool_packets = true;
  const MeasureOptions macro_opts = options_for(options, kMacroRepeats, 1);
  const Measurement scaled = measure_macro_events_per_s(
      scale_scenario(macro_nodes, macro_duration, all_on), macro_opts);
  const Measurement linear = measure_macro_events_per_s(
      scale_scenario(macro_nodes, macro_duration, scale::Backends{}),
      macro_opts);
  report.add_metric(metric_from("events_per_s_10k", "events/s", scaled,
                         Stat::Median, /*higher_is_better=*/true, 30.0));
  ALERT_INVARIANT(linear.median > 0.0, "linear macro kernel measured zero");
  Measurement ratio;
  ratio.median = scaled.median / linear.median;
  ratio.min = ratio.median;
  ratio.repeats = scaled.repeats;
  report.add_metric(metric_from("speedup_10k_vs_linear", "x", ratio,
                         Stat::Median, /*higher_is_better=*/true, 50.0));
  ALERT_LOG_INFO("perf scale: events_per_s_10k %.0f, speedup vs linear %.1fx",
                 scaled.median, scaled.median / linear.median);

  add_peak_rss(report);
  return report;
}

// --- lint suite -------------------------------------------------------------

/// Synthetic-tree pins: the scan workload must not drift as the real src/
/// tree grows, so the suite lints a generated tree of fixed shape instead.
/// 160 files ~ the real tree's size at the time the pin was chosen.
constexpr Pin kLintFiles{160, 24};
constexpr Pin kLintRepeats{5, 2};

/// One deterministic synthetic TU: exercises the flow-sensitive families
/// (CFG + dataflow over loops and moves, lock-graph edges from the guard
/// pair) and the token rules, while staying finding-free so the measured
/// cost is analysis, not Sink/report traffic. Only names vary with `i`.
[[nodiscard]] std::string lint_synthetic_source(std::size_t i) {
  const std::string n = std::to_string(i);
  std::string out;
  out += "#include <mutex>\n#include <string>\n#include <utility>\n";
  out += "#include <vector>\n\n";
  out += "namespace alert::sim {\n\n";
  out += "class Worker" + n + " {\n public:\n";
  out += "  double digest(const std::vector<double>& samples) {\n";
  out += "    double total = 0.0;\n";
  out += "    for (unsigned long k = 0; k < samples.size(); ++k) {\n";
  out += "      total += samples[k];\n";
  out += "    }\n";
  out += "    return total;\n";
  out += "  }\n";
  out += "  void credit() {\n";
  out += "    std::lock_guard<std::mutex> a(first_);\n";
  out += "    std::lock_guard<std::mutex> b(second_);\n";
  out += "    ++balance_;\n";
  out += "  }\n";
  out += "  void debit() {\n";
  out += "    std::lock_guard<std::mutex> a(first_);\n";
  out += "    std::lock_guard<std::mutex> b(second_);\n";
  out += "    --balance_;\n";
  out += "  }\n";
  out += "  std::string consume" + n + "(std::string label) {\n";
  out += "    std::string stored = std::move(label);\n";
  out += "    label = stored;\n";
  out += "    switch (label.size() % 3) {\n";
  out += "      case 0: stored += \"a\"; break;\n";
  out += "      case 1: stored += \"b\"; break;\n";
  out += "      default: stored += \"c\"; break;\n";
  out += "    }\n";
  out += "    return stored + label;\n";
  out += "  }\n";
  out += " private:\n";
  out += "  std::mutex first_;\n";
  out += "  std::mutex second_;\n";
  out += "  long balance_ = 0;\n";
  out += "};\n\n}  // namespace alert::sim\n";
  return out;
}

[[nodiscard]] BenchReport run_lint_suite(const SuiteOptions& options) {
  BenchReport report = make_report("lint");

  const fs::path work_dir =
      options.work_dir.empty()
          ? fs::temp_directory_path() / "alertsim-perf-lint"
          : fs::path(options.work_dir);
  const std::size_t files = kLintFiles.at(options.smoke);
  {
    std::error_code ec;
    fs::remove_all(work_dir, ec);
    fs::create_directories(work_dir / "sim");
    fs::create_directories(work_dir / "util");
    for (std::size_t i = 0; i < files; ++i) {
      const fs::path dir = work_dir / (i % 2 == 0 ? "sim" : "util");
      std::ofstream out(dir / ("gen_" + std::to_string(i) + ".cpp"));
      out << lint_synthetic_source(i);
    }
  }

  analysis_tools::AnalyzerOptions scan;
  scan.root = work_dir.string();
  scan.threads = 1;  // serial scan: stable ms independent of runner cores
  const Measurement elapsed = measure(
      [&scan, files] {
        const std::uint64_t start = obs::monotonic_ns();
        const analysis_tools::AnalyzeResult r = analysis_tools::analyze(scan);
        const double wall_ms =
            static_cast<double>(obs::monotonic_ns() - start) / 1e6;
        ALERT_INVARIANT(r.report.files_scanned == files,
                        "lint kernel scanned the wrong tree");
        ALERT_INVARIANT(r.report.findings.empty(),
                        "lint kernel tree is not finding-free");
        return wall_ms;
      },
      options_for(options, kLintRepeats, 1));
  // Wall-clock over file I/O + every rule phase; median with the usual
  // macro-style tolerance.
  report.add_metric(metric_from("lint_scan_ms", "ms", elapsed, Stat::Median,
                         /*higher_is_better=*/false, 35.0));
  ALERT_LOG_INFO("perf lint: lint_scan_ms %.1f (iqr %.1f)", elapsed.median,
                 elapsed.iqr);

  {
    std::error_code ec;
    fs::remove_all(work_dir, ec);
  }
  add_peak_rss(report);
  return report;
}

}  // namespace

const std::vector<std::string>& suite_names() {
  static const std::vector<std::string> names{"core", "campaign", "scale",
                                              "lint"};
  return names;
}

std::string baseline_filename(std::string_view suite) {
  return "BENCH_" + std::string(suite) + ".json";
}

std::optional<BenchReport> run_suite(std::string_view suite,
                                     const SuiteOptions& options) {
  if (suite == "core") return run_core_suite(options);
  if (suite == "campaign") return run_campaign_suite(options);
  if (suite == "scale") return run_scale_suite(options);
  if (suite == "lint") return run_lint_suite(options);
  return std::nullopt;
}

}  // namespace alert::perf
