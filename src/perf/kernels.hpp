#pragma once

/// \file kernels.hpp
/// Deterministic workload kernels behind the pinned perf suite (suite.cpp)
/// and the google-benchmark microbenches (bench/micro_benchmarks.cpp).
/// Both front-ends drive the exact same fixed-seed code, so a
/// google-benchmark exploration and the committed BENCH_core.json numbers
/// measure one workload.
///
/// Kernels are measurement-only: fixed seeds, no shared state, no packets
/// opened outside run_once's audited lifecycle (teardown leaves every
/// PacketLedger clean), and nothing here feeds determinism digests or
/// campaign cache keys.

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace alert::perf {

/// Seed for every kernel topology/workload (pinned: changing it invalidates
/// committed baselines).
inline constexpr std::uint64_t kKernelSeed = 0xBE7CE5EEDULL;

/// Event-dispatch batch: schedules `events` self-contained callbacks at
/// strictly increasing times on a fresh Simulator and drains it. Returns
/// the number executed (== events; the return value keeps the work
/// observable). ns/op = wall time / events. `backend` selects the event
/// queue implementation (the scale suite pins the calendar path).
std::uint64_t run_dispatch_batch(
    std::size_t events,
    sim::QueueBackend backend = sim::QueueBackend::BinaryHeap);

/// A fixed-seed static topology for neighbour/range-query benchmarking:
/// `node_count` nodes placed uniformly in a square field (the paper's
/// 1000x1000 m by default) with 250 m radio range. The simulator never
/// runs — queries read the t=0 placement, so the topology is identical
/// for a given (count, seed). `grid` routes every query through the
/// scale::SpatialGrid instead of the linear scan; `field_side_m` lets the
/// scale suite grow the arena with the population (paper density).
class QueryTopology {
 public:
  explicit QueryTopology(std::size_t node_count,
                         std::uint64_t seed = kKernelSeed, bool grid = false,
                         double field_side_m = 1000.0);
  ~QueryTopology();

  QueryTopology(const QueryTopology&) = delete;
  QueryTopology& operator=(const QueryTopology&) = delete;

  /// Run `queries` range queries at deterministic centers; returns the
  /// total number of neighbours found (an optimization barrier and a
  /// fixed-point regression check: the count depends only on the seed).
  [[nodiscard]] std::uint64_t run_queries(std::size_t queries) const;

  [[nodiscard]] const net::Network& network() const { return *network_; }

 private:
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::Network> network_;
};

/// The fig14a-style macro scenario at `node_count` nodes: the paper's
/// Sec. 5.2 defaults with fig14a's x-axis pinned (200 = paper scale).
[[nodiscard]] core::ScenarioConfig macro_scenario(std::size_t node_count,
                                                  double duration_s);

/// The fig14a-style macro scenario scaled to `node_count` nodes at the
/// paper's density (200 nodes / km^2): the field side grows as
/// sqrt(node_count / 200) * 1000 m so per-node neighbourhood size stays at
/// paper scale while the arena grows. `backends` selects the alert::scale
/// backends — the workload (and its digest) is identical either way.
[[nodiscard]] core::ScenarioConfig scale_scenario(std::size_t node_count,
                                                  double duration_s,
                                                  scale::Backends backends);

/// What one timed macro replication produced (the throughput numerators).
struct MacroRunStats {
  std::uint64_t events_executed = 0;  ///< simulator events
  std::uint64_t frames_tx = 0;        ///< net.tx counter (frames on air)
  std::uint64_t delivered = 0;        ///< application packets delivered
};

/// Run one full replication of `config` (core::run_once, replication 0)
/// and report the throughput counters. Deterministic: same config, same
/// stats, same digest as any other run of the scenario.
[[nodiscard]] MacroRunStats run_macro_once(const core::ScenarioConfig& config);

}  // namespace alert::perf
