#pragma once

/// \file suite.hpp
/// The pinned benchmark suites behind the committed baselines:
///
///   core      — event-dispatch ns/op, neighbour-query ns/op, fig14a-style
///               macro throughput at paper scale (events/s, packets/s) and
///               peak RSS → BENCH_core.json
///   campaign  — campaign-engine scheduling throughput in units/s through
///               the cold (execute + store) and warm (content-addressed
///               cache replay) paths, and peak RSS → BENCH_campaign.json
///   scale     — the alert::scale backends at arena scale: grid
///               neighbour-query ns/op and calendar event-dispatch ns/op
///               at 10k nodes, a fig14a-style 10k-node macro run with all
///               backends on (events/s) plus its speedup over the
///               linear-scan / binary-heap / malloc configuration, and
///               peak RSS → BENCH_scale.json
///   lint      — alertsim-analyzer wall time over a generated source tree
///               of pinned shape (the real tree would drift as the repo
///               grows), single-threaded, and peak RSS → BENCH_lint.json
///
/// "Pinned" means the workload shapes, seeds and repeat counts are fixed in
/// suite.cpp: a measured number is only comparable against a baseline
/// produced by the same pin (the schema's `version` records the producing
/// commit). The smoke scale shrinks every workload for CI self-tests and
/// unit tests; smoke numbers are not comparable against full-scale
/// baselines (`--check` without `--current` measures fresh with whatever
/// scale flag it was given — pass neither `--smoke` nor a smoke-scale
/// `--current` when gating against the committed baselines).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "perf/measure.hpp"
#include "perf/report.hpp"

namespace alert::perf {

struct SuiteOptions {
  /// Shrink every workload (~10x) and repeat count: wiring checks only.
  bool smoke = false;
  /// Override every bench's repeat count (0 = per-bench pinned default).
  std::size_t repeats = 0;
  /// Scratch directory for the campaign suite's result cache; "" = a
  /// subdirectory of the system temp dir. Recreated cold, removed at the
  /// end of the run.
  std::string work_dir;
};

/// The suite names run_suite accepts, in baseline-file order.
[[nodiscard]] const std::vector<std::string>& suite_names();

/// The repo-root baseline filename for a suite ("BENCH_core.json", ...).
[[nodiscard]] std::string baseline_filename(std::string_view suite);

/// Run one pinned suite and return its report (suite/version/host stamped).
/// Returns nullopt for an unknown suite name.
[[nodiscard]] std::optional<BenchReport> run_suite(std::string_view suite,
                                                   const SuiteOptions& options);

}  // namespace alert::perf
