#include "perf/kernels.hpp"

#include <cmath>
#include <utility>

#include "campaign/spec.hpp"
#include "net/mobility.hpp"
#include "util/check.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace alert::perf {

std::uint64_t run_dispatch_batch(std::size_t events,
                                 sim::QueueBackend backend) {
  sim::Simulator simulator;
  simulator.set_queue_backend(backend);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < events; ++i) {
    simulator.schedule_at(static_cast<double>(i) * 1e-6, [&acc] { ++acc; });
  }
  simulator.run_until(static_cast<double>(events) * 1e-6);
  ALERT_INVARIANT(acc == events, "dispatch batch lost events");
  return simulator.events_executed();
}

QueryTopology::QueryTopology(std::size_t node_count, std::uint64_t seed,
                             bool grid, double field_side_m)
    : simulator_(std::make_unique<sim::Simulator>()) {
  net::NetworkConfig config;
  config.node_count = node_count;
  config.field = util::Rect{0.0, 0.0, field_side_m, field_side_m};
  config.scale.grid = grid;
  // Horizon 0: the constructor places nodes but schedules no periodic
  // processes, so the topology is pure t=0 state.
  network_ = std::make_unique<net::Network>(
      *simulator_, config,
      std::make_unique<net::StaticPlacement>(config.field), util::Rng(seed),
      0.0);
}

QueryTopology::~QueryTopology() = default;

std::uint64_t QueryTopology::run_queries(std::size_t queries) const {
  // Query centers come from their own fixed-seed stream, re-created per
  // call so repeated measurements of one topology scan identical centers.
  util::Rng centers(kKernelSeed ^ 0x5EA4C4ULL);
  const double radius = network_->config().radio_range_m;
  std::uint64_t found = 0;
  for (std::size_t i = 0; i < queries; ++i) {
    const util::Vec2 center = centers.point_in(network_->config().field);
    found += network_->nodes_within(center, radius, 0.0).size();
  }
  return found;
}

core::ScenarioConfig macro_scenario(std::size_t node_count,
                                    double duration_s) {
  core::ScenarioConfig config = campaign::paper_default_scenario();
  config.node_count = node_count;
  config.duration_s = duration_s;
  return config;
}

core::ScenarioConfig scale_scenario(std::size_t node_count, double duration_s,
                                    scale::Backends backends) {
  core::ScenarioConfig config = macro_scenario(node_count, duration_s);
  // Grow the arena with the population so density (and therefore per-node
  // neighbourhood size) stays at the paper's 200 nodes / km^2. A fixed
  // field would make every broadcast physically O(n) and no index could
  // change that.
  const double side =
      std::sqrt(static_cast<double>(node_count) / 200.0) * 1000.0;
  config.field = util::Rect{0.0, 0.0, side, side};
  config.scale = backends;
  return config;
}

MacroRunStats run_macro_once(const core::ScenarioConfig& config) {
  const core::RunResult run = core::run_once(config, 0);
  MacroRunStats stats;
  stats.events_executed = run.events_executed;
  stats.delivered = run.delivered;
  if (const obs::MetricValue* tx = run.metrics.find("net.tx")) {
    stats.frames_tx = tx->total;
  }
  return stats;
}

}  // namespace alert::perf
