#include "core/scenario_codec.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <utility>

#include "crypto/sha1.hpp"

namespace alert::core {

namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_bool(bool b) { return b ? "true" : "false"; }

bool parse_double_strict(std::string_view s, double* out) {
  if (s.empty()) return false;
  const std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

bool parse_u64_strict(std::string_view s, std::uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  const std::string copy(s);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

bool parse_size_strict(std::string_view s, std::size_t* out) {
  std::uint64_t v = 0;
  if (!parse_u64_strict(s, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_int_strict(std::string_view s, int* out) {
  if (s.empty()) return false;
  const std::string copy(s);
  char* end = nullptr;
  const long v = std::strtol(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_bool_strict(std::string_view s, bool* out) {
  if (s == "true" || s == "1" || s == "yes" || s == "on") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0" || s == "no" || s == "off") {
    *out = false;
    return true;
  }
  return false;
}

/// Outage list codec: "x:y:radius:start:end" discs joined by ';' (empty
/// string = no outages). The canonical dump uses the same rendering, so a
/// round-trip through apply_scenario_param is exact.
std::string format_outages(const std::vector<faults::Outage>& outages) {
  std::string out;
  for (const faults::Outage& o : outages) {
    if (!out.empty()) out += ';';
    out += fmt_double(o.center.x) + ':' + fmt_double(o.center.y) + ':' +
           fmt_double(o.radius_m) + ':' + fmt_double(o.start_s) + ':' +
           fmt_double(o.end_s);
  }
  return out;
}

bool parse_outages(std::string_view s, std::vector<faults::Outage>* out) {
  out->clear();
  if (s.empty()) return true;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t semi = std::min(s.find(';', pos), s.size());
    const std::string_view disc = s.substr(pos, semi - pos);
    if (std::count(disc.begin(), disc.end(), ':') != 4) {
      return false;  // exactly x:y:radius:start:end — no extra fields
    }
    double vals[5];
    std::size_t field = 0, at = 0;
    while (field < 5) {
      const std::size_t colon = std::min(disc.find(':', at), disc.size());
      if (!parse_double_strict(disc.substr(at, colon - at), &vals[field])) {
        return false;
      }
      ++field;
      if (colon == disc.size()) break;
      at = colon + 1;
    }
    if (field != 5) return false;
    out->push_back(faults::Outage{{vals[0], vals[1]}, vals[2], vals[3],
                                  vals[4]});
    if (semi == s.size()) break;
    pos = semi + 1;
  }
  return true;
}

/// One sweepable parameter: how to set it from a string.
using Setter =
    std::function<bool(ScenarioConfig&, std::string_view value)>;

const std::map<std::string, Setter, std::less<>>& setters() {
  static const std::map<std::string, Setter, std::less<>> kSetters = [] {
    std::map<std::string, Setter, std::less<>> m;
    const auto size_field = [&m](const char* key, std::size_t ScenarioConfig::* f) {
      m[key] = [f](ScenarioConfig& c, std::string_view v) {
        return parse_size_strict(v, &(c.*f));
      };
    };
    const auto double_field = [&m](const char* key, double ScenarioConfig::* f) {
      m[key] = [f](ScenarioConfig& c, std::string_view v) {
        return parse_double_strict(v, &(c.*f));
      };
    };
    const auto bool_field = [&m](const char* key, bool ScenarioConfig::* f) {
      m[key] = [f](ScenarioConfig& c, std::string_view v) {
        return parse_bool_strict(v, &(c.*f));
      };
    };

    size_field("node_count", &ScenarioConfig::node_count);
    size_field("flow_count", &ScenarioConfig::flow_count);
    size_field("payload_bytes", &ScenarioConfig::payload_bytes);
    size_field("packets_per_flow", &ScenarioConfig::packets_per_flow);
    size_field("group_count", &ScenarioConfig::group_count);
    double_field("speed_mps", &ScenarioConfig::speed_mps);
    double_field("radio_range_m", &ScenarioConfig::radio_range_m);
    double_field("packet_interval_s", &ScenarioConfig::packet_interval_s);
    double_field("duration_s", &ScenarioConfig::duration_s);
    double_field("traffic_start_s", &ScenarioConfig::traffic_start_s);
    double_field("min_pair_distance_m", &ScenarioConfig::min_pair_distance_m);
    double_field("max_pair_distance_m", &ScenarioConfig::max_pair_distance_m);
    double_field("group_range_m", &ScenarioConfig::group_range_m);
    double_field("hello_period_s", &ScenarioConfig::hello_period_s);
    double_field("pseudonym_period_s", &ScenarioConfig::pseudonym_period_s);
    double_field("residency_sample_period_s",
                 &ScenarioConfig::residency_sample_period_s);
    bool_field("destination_update", &ScenarioConfig::destination_update);
    bool_field("run_attacks", &ScenarioConfig::run_attacks);

    m["seed"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_u64_strict(v, &c.seed);
    };
    m["protocol"] = [](ScenarioConfig& c, std::string_view v) {
      const auto kind = parse_protocol_kind(v);
      if (!kind) return false;
      c.protocol = *kind;
      return true;
    };
    m["mobility"] = [](ScenarioConfig& c, std::string_view v) {
      const auto kind = parse_mobility_kind(v);
      if (!kind) return false;
      c.mobility = *kind;
      return true;
    };
    m["location.server_count"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_size_strict(v, &c.location.server_count);
    };
    m["location.update_period_s"] = [](ScenarioConfig& c,
                                       std::string_view v) {
      return parse_double_strict(v, &c.location.update_period_s);
    };
    m["alert.partitions_h"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_int_strict(v, &c.alert.partitions_h);
    };
    // Alias used by the run-manifest params block and the paper's prose.
    m["partitions_h"] = m["alert.partitions_h"];
    m["alert.max_retransmissions"] = [](ScenarioConfig& c,
                                        std::string_view v) {
      return parse_int_strict(v, &c.alert.max_retransmissions);
    };
    m["alert.notify_and_go"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.alert.notify_and_go);
    };
    m["alert.notify_t0_s"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.alert.notify_t0_s);
    };
    m["alert.intersection_countermeasure"] = [](ScenarioConfig& c,
                                                std::string_view v) {
      return parse_bool_strict(v, &c.alert.intersection_countermeasure);
    };
    m["gpsr.use_perimeter"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.gpsr.use_perimeter);
    };
    m["alarm.dissemination_period_s"] = [](ScenarioConfig& c,
                                           std::string_view v) {
      return parse_double_strict(v, &c.alarm.dissemination_period_s);
    };
    m["zap.zone_side_m"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.zap.zone_side_m);
    };

    // Fault injection (src/faults) and link-layer ARQ. These keys are
    // sweepable like any other, but only appear in the canonical dump when
    // the plan is active (see canonical_scenario).
    m["faults.loss.iid"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.faults.loss.iid);
    };
    m["faults.loss.gilbert"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.faults.loss.gilbert);
    };
    m["faults.loss.ge_p_good_bad"] = [](ScenarioConfig& c,
                                        std::string_view v) {
      return parse_double_strict(v, &c.faults.loss.ge_p_good_bad);
    };
    m["faults.loss.ge_p_bad_good"] = [](ScenarioConfig& c,
                                        std::string_view v) {
      return parse_double_strict(v, &c.faults.loss.ge_p_bad_good);
    };
    m["faults.loss.ge_loss_good"] = [](ScenarioConfig& c,
                                       std::string_view v) {
      return parse_double_strict(v, &c.faults.loss.ge_loss_good);
    };
    m["faults.loss.ge_loss_bad"] = [](ScenarioConfig& c,
                                      std::string_view v) {
      return parse_double_strict(v, &c.faults.loss.ge_loss_bad);
    };
    m["faults.churn.mttf_s"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.faults.churn.mttf_s);
    };
    m["faults.churn.mttr_s"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.faults.churn.mttr_s);
    };
    m["faults.outages"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_outages(v, &c.faults.outages);
    };
    m["mac.arq.enabled"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.mac.arq.enabled);
    };
    m["mac.arq.retry_limit"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_int_strict(v, &c.mac.arq.retry_limit);
    };
    m["mac.arq.ack_timeout_s"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.mac.arq.ack_timeout_s);
    };
    m["mac.arq.backoff_base_s"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_double_strict(v, &c.mac.arq.backoff_base_s);
    };
    m["mac.arq.ack_bytes"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_size_strict(v, &c.mac.arq.ack_bytes);
    };
    m["scale.grid"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.scale.grid);
    };
    m["scale.calendar"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.scale.calendar);
    };
    m["scale.pool_packets"] = [](ScenarioConfig& c, std::string_view v) {
      return parse_bool_strict(v, &c.scale.pool_packets);
    };
    return m;
  }();
  return kSetters;
}

}  // namespace

const char* mobility_name(MobilityKind k) {
  switch (k) {
    case MobilityKind::RandomWaypoint: return "random_waypoint";
    case MobilityKind::Group: return "group";
    case MobilityKind::Static: return "static";
  }
  return "?";
}

std::optional<ProtocolKind> parse_protocol_kind(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "alert") return ProtocolKind::Alert;
  if (lower == "gpsr") return ProtocolKind::Gpsr;
  if (lower == "alarm") return ProtocolKind::Alarm;
  if (lower == "ao2p") return ProtocolKind::Ao2p;
  if (lower == "zap") return ProtocolKind::Zap;
  return std::nullopt;
}

std::optional<MobilityKind> parse_mobility_kind(std::string_view name) {
  if (name == "rwp" || name == "random_waypoint") {
    return MobilityKind::RandomWaypoint;
  }
  if (name == "group") return MobilityKind::Group;
  if (name == "static") return MobilityKind::Static;
  return std::nullopt;
}

std::string canonical_scenario(const ScenarioConfig& c) {
  // NOTE: every semantic ScenarioConfig field must appear here. When adding
  // a field to ScenarioConfig (or any nested config), add its line below —
  // and bump kSimulationEpoch if the default value changes existing
  // behaviour. The unit test pins the rendering of the default config.
  // Exception: fields whose default is provably inert (the fault plan and
  // the ARQ block — an all-off plan changes no RNG draw, event, or audit
  // word) are emitted only when active, so default dumps and campaign cache
  // keys stay byte-identical across the feature's introduction and warm
  // caches stay warm.
  std::vector<std::pair<std::string, std::string>> kv;
  const auto put = [&kv](std::string key, std::string value) {
    kv.emplace_back(std::move(key), std::move(value));
  };

  put("field.min.x", fmt_double(c.field.min.x));
  put("field.min.y", fmt_double(c.field.min.y));
  put("field.max.x", fmt_double(c.field.max.x));
  put("field.max.y", fmt_double(c.field.max.y));
  put("node_count", std::to_string(c.node_count));

  put("mobility", mobility_name(c.mobility));
  put("speed_mps", fmt_double(c.speed_mps));
  put("group_count", std::to_string(c.group_count));
  put("group_range_m", fmt_double(c.group_range_m));

  put("radio_range_m", fmt_double(c.radio_range_m));
  put("mac.bandwidth_bps", fmt_double(c.mac.bandwidth_bps));
  put("mac.slot_s", fmt_double(c.mac.slot_s));
  put("mac.difs_s", fmt_double(c.mac.difs_s));
  put("mac.propagation_mps", fmt_double(c.mac.propagation_mps));
  put("mac.contention_per_neighbor",
      fmt_double(c.mac.contention_per_neighbor));
  put("hello_period_s", fmt_double(c.hello_period_s));
  put("pseudonym_period_s", fmt_double(c.pseudonym_period_s));

  put("flow_count", std::to_string(c.flow_count));
  put("packet_interval_s", fmt_double(c.packet_interval_s));
  put("payload_bytes", std::to_string(c.payload_bytes));
  put("packets_per_flow", std::to_string(c.packets_per_flow));
  put("traffic_start_s", fmt_double(c.traffic_start_s));
  put("min_pair_distance_m", fmt_double(c.min_pair_distance_m));
  put("max_pair_distance_m", fmt_double(c.max_pair_distance_m));
  put("duration_s", fmt_double(c.duration_s));

  put("destination_update", fmt_bool(c.destination_update));
  put("location.server_count", std::to_string(c.location.server_count));
  put("location.update_period_s", fmt_double(c.location.update_period_s));
  put("location.replication_period_s",
      fmt_double(c.location.replication_period_s));

  put("crypto.symmetric_encrypt_s",
      fmt_double(c.crypto_cost.symmetric_encrypt_s));
  put("crypto.symmetric_decrypt_s",
      fmt_double(c.crypto_cost.symmetric_decrypt_s));
  put("crypto.public_encrypt_s", fmt_double(c.crypto_cost.public_encrypt_s));
  put("crypto.public_decrypt_s", fmt_double(c.crypto_cost.public_decrypt_s));
  put("crypto.sign_s", fmt_double(c.crypto_cost.sign_s));
  put("crypto.verify_s", fmt_double(c.crypto_cost.verify_s));
  put("crypto.hash_s", fmt_double(c.crypto_cost.hash_s));

  put("protocol", protocol_name(c.protocol));
  put("alert.partitions_h", std::to_string(c.alert.partitions_h));
  put("alert.k_anonymity",
      c.alert.k_anonymity ? fmt_double(*c.alert.k_anonymity) : "none");
  put("alert.max_hops", std::to_string(c.alert.max_hops));
  put("alert.per_hop_processing_s",
      fmt_double(c.alert.per_hop_processing_s));
  put("alert.notify_and_go", fmt_bool(c.alert.notify_and_go));
  put("alert.notify_t_s", fmt_double(c.alert.notify_t_s));
  put("alert.notify_t0_s", fmt_double(c.alert.notify_t0_s));
  put("alert.cover_bytes", std::to_string(c.alert.cover_bytes));
  put("alert.intersection_countermeasure",
      fmt_bool(c.alert.intersection_countermeasure));
  put("alert.countermeasure_m", std::to_string(c.alert.countermeasure_m));
  put("alert.bitmap_flips", std::to_string(c.alert.bitmap_flips));
  put("alert.send_confirmation", fmt_bool(c.alert.send_confirmation));
  put("alert.confirm_timeout_s", fmt_double(c.alert.confirm_timeout_s));
  put("alert.max_retransmissions",
      std::to_string(c.alert.max_retransmissions));
  put("alert.use_nak", fmt_bool(c.alert.use_nak));
  put("alert.use_perimeter_fallback",
      fmt_bool(c.alert.use_perimeter_fallback));

  put("gpsr.max_hops", std::to_string(c.gpsr.max_hops));
  put("gpsr.use_perimeter", fmt_bool(c.gpsr.use_perimeter));
  put("gpsr.per_hop_processing_s", fmt_double(c.gpsr.per_hop_processing_s));

  put("alarm.dissemination_period_s",
      fmt_double(c.alarm.dissemination_period_s));
  put("alarm.max_hops", std::to_string(c.alarm.max_hops));
  put("alarm.per_hop_processing_s",
      fmt_double(c.alarm.per_hop_processing_s));

  put("ao2p.max_hops", std::to_string(c.ao2p.max_hops));
  put("ao2p.per_hop_processing_s", fmt_double(c.ao2p.per_hop_processing_s));
  put("ao2p.contention_phase_s", fmt_double(c.ao2p.contention_phase_s));
  put("ao2p.virtual_extension_m", fmt_double(c.ao2p.virtual_extension_m));

  put("zap.zone_side_m", fmt_double(c.zap.zone_side_m));
  put("zap.max_hops", std::to_string(c.zap.max_hops));
  put("zap.per_hop_processing_s", fmt_double(c.zap.per_hop_processing_s));
  put("zap.flood_rebroadcast", fmt_bool(c.zap.flood_rebroadcast));

  // Fault plan + ARQ: conditional on activity (see NOTE above). Once any
  // fault knob or the ARQ is on, every knob of both blocks is emitted —
  // partial dumps would make two different active configs collide.
  if (c.faults.any() || c.mac.arq.enabled) {
    put("faults.loss.iid", fmt_double(c.faults.loss.iid));
    put("faults.loss.gilbert", fmt_bool(c.faults.loss.gilbert));
    put("faults.loss.ge_p_good_bad", fmt_double(c.faults.loss.ge_p_good_bad));
    put("faults.loss.ge_p_bad_good", fmt_double(c.faults.loss.ge_p_bad_good));
    put("faults.loss.ge_loss_good", fmt_double(c.faults.loss.ge_loss_good));
    put("faults.loss.ge_loss_bad", fmt_double(c.faults.loss.ge_loss_bad));
    put("faults.churn.mttf_s", fmt_double(c.faults.churn.mttf_s));
    put("faults.churn.mttr_s", fmt_double(c.faults.churn.mttr_s));
    put("faults.outages", format_outages(c.faults.outages));
    put("mac.arq.enabled", fmt_bool(c.mac.arq.enabled));
    put("mac.arq.retry_limit", std::to_string(c.mac.arq.retry_limit));
    put("mac.arq.ack_timeout_s", fmt_double(c.mac.arq.ack_timeout_s));
    put("mac.arq.backoff_base_s", fmt_double(c.mac.arq.backoff_base_s));
    put("mac.arq.ack_bytes", std::to_string(c.mac.arq.ack_bytes));
  }

  // Scale backends: same conditional pattern — all-off is provably inert
  // (nothing allocated, no RNG draw or event changed), and an active
  // combination emits every flag so distinct combinations never collide.
  if (c.scale.any()) {
    put("scale.grid", fmt_bool(c.scale.grid));
    put("scale.calendar", fmt_bool(c.scale.calendar));
    put("scale.pool_packets", fmt_bool(c.scale.pool_packets));
  }

  put("residency_sample_period_s", fmt_double(c.residency_sample_period_s));
  put("run_attacks", fmt_bool(c.run_attacks));
  {
    std::string budgets;
    for (const std::size_t b : c.compromise_budgets) {
      if (!budgets.empty()) budgets += ',';
      budgets += std::to_string(b);
    }
    put("compromise_budgets", budgets);
  }
  put("seed", std::to_string(c.seed));

  std::sort(kv.begin(), kv.end());
  std::string out;
  for (const auto& [key, value] : kv) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

std::string scenario_unit_key(const ScenarioConfig& config,
                              std::uint64_t replication) {
  std::string doc = canonical_scenario(config);
  doc += "replication=";
  doc += std::to_string(replication);
  doc += '\n';
  doc += "epoch=";
  doc += kSimulationEpoch;
  doc += '\n';
  const crypto::Sha1Digest digest = crypto::Sha1::hash(doc);
  static const char* kHex = "0123456789abcdef";
  std::string hex;
  hex.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xF]);
  }
  return hex;
}

bool apply_scenario_param(ScenarioConfig& config, std::string_view key,
                          std::string_view value, std::string* error) {
  const auto& table = setters();
  const auto it = table.find(key);
  if (it == table.end()) {
    if (error != nullptr) {
      *error = "unknown scenario parameter '" + std::string(key) + "'";
    }
    return false;
  }
  if (!it->second(config, value)) {
    if (error != nullptr) {
      *error = "bad value '" + std::string(value) + "' for scenario parameter '" +
               std::string(key) + "'";
    }
    return false;
  }
  return true;
}

std::vector<std::string> scenario_param_keys() {
  std::vector<std::string> keys;
  keys.reserve(setters().size());
  for (const auto& [key, setter] : setters()) keys.push_back(key);
  return keys;
}

}  // namespace alert::core
