#pragma once

/// \file obs_bridge.hpp
/// Glue between the network's on-air TraceListener stream and the obs
/// layer: one bridge per replication turns every transmit/deliver/drop into
/// metric updates and — when a sink is attached — structured TraceEvents.
/// The bridge lives in core so net stays independent of the obs sinks and
/// obs stays independent of net.

#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/router.hpp"

namespace alert::core {

/// Short lowercase verb for a packet kind ("hello", "data", ...).
[[nodiscard]] const char* packet_kind_name(net::PacketKind kind);

/// Short lowercase reason for a channel drop ("out_of_range", ...).
[[nodiscard]] const char* drop_reason_name(net::DropReason why);

/// TraceListener that feeds the metrics registry (counters "net.tx",
/// "net.rx", "net.drop.<reason>", histogram "net.tx_bytes") and the
/// structured trace stream (layer Mac for transmissions, Channel for
/// deliveries and drops). Never audits the simulator or draws RNG, so the
/// determinism digest is identical with or without a bridge attached.
class ObsBridge final : public net::TraceListener {
 public:
  ObsBridge(obs::MetricsRegistry& metrics, obs::Tracer tracer);

  void on_transmit(const net::Node& sender, const net::Packet& pkt,
                   sim::Time air_start) override;
  void on_deliver(const net::Node& receiver, const net::Packet& pkt,
                  sim::Time when) override;
  void on_drop(const net::Node& last_holder, const net::Packet& pkt,
               sim::Time when, net::DropReason why) override;

 private:
  obs::MetricsRegistry& metrics_;
  obs::Counter& tx_;
  obs::Counter& rx_;
  /// Indexed by DropReason. The three pre-fault reasons are created eagerly
  /// (their counters have always appeared in every snapshot); the fault-era
  /// reasons are created lazily on first occurrence, so all-defaults runs
  /// keep byte-identical metrics snapshots.
  obs::Counter* drops_[net::kDropReasonCount];
  util::Histogram& tx_bytes_;
  obs::Tracer tracer_;
};

/// Copy a protocol's end-of-run counters into the registry under
/// "proto.<counter>" so they travel inside every metrics snapshot.
void export_protocol_stats(obs::MetricsRegistry& metrics,
                           const routing::ProtocolStats& stats);

/// Copy end-of-run network aggregates: hello overhead, packet-ledger
/// lifecycle totals, and the energy meters.
void export_run_totals(obs::MetricsRegistry& metrics,
                       const net::Network& network);

}  // namespace alert::core
