#pragma once

/// \file scenario_codec.hpp
/// Canonical ScenarioConfig serialization and the stable content hash the
/// campaign result cache is keyed by.
///
/// canonical_scenario() renders every *semantic* field of a ScenarioConfig
/// — everything that can change what a replication computes — as sorted
/// `key=value` lines with doubles printed at full round-trip precision.
/// Two configs with equal canonical forms produce identical replications
/// (same seeds, same event trace, same digests). Observability options
/// (ScenarioConfig::obs, trace_path) are deliberately excluded: attaching a
/// trace sink or profiler never feeds the determinism digest.
///
/// scenario_unit_key() is the cache key of one (scenario, replication) work
/// unit: SHA-1 over (canonical form, replication index, kSimulationEpoch).
/// The epoch is a hand-bumped constant — NOT the git version — so cache
/// entries survive unrelated code/doc changes and are invalidated exactly
/// when simulation semantics change. Bump it whenever a change alters what
/// run_once computes for an unchanged config.
///
/// apply_scenario_param() is the string->field binding layer used by sweep
/// grids (campaign specs loaded from JSON) and exercised by the figure
/// registry; it covers the knobs the paper's evaluation sweeps.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.hpp"

namespace alert::core {

/// Simulation-semantics epoch. Part of every cache key; bump on any change
/// to run_once/simulator/protocol behaviour that alters results for an
/// unchanged ScenarioConfig.
inline constexpr const char* kSimulationEpoch = "alertsim-sim/1";

/// Sorted `key=value\n` rendering of every semantic field (see file
/// comment for the exclusion rules).
[[nodiscard]] std::string canonical_scenario(const ScenarioConfig& config);

/// SHA-1 hex digest identifying one (scenario, replication) work unit under
/// the current simulation epoch. Stable across processes and platforms.
[[nodiscard]] std::string scenario_unit_key(const ScenarioConfig& config,
                                            std::uint64_t replication);

[[nodiscard]] const char* mobility_name(MobilityKind k);
[[nodiscard]] std::optional<ProtocolKind> parse_protocol_kind(
    std::string_view name);  ///< accepts "alert"/"ALERT" etc.
[[nodiscard]] std::optional<MobilityKind> parse_mobility_kind(
    std::string_view name);  ///< "rwp"/"random_waypoint"/"group"/"static"

/// Set one sweepable parameter from its string form. Returns false and
/// fills `error` on an unknown key or unparseable value. The key namespace
/// is the same one canonical_scenario() emits (e.g. "node_count",
/// "speed_mps", "protocol", "alert.partitions_h", "mobility").
bool apply_scenario_param(ScenarioConfig& config, std::string_view key,
                          std::string_view value, std::string* error);

/// The sweepable parameter keys apply_scenario_param() understands.
[[nodiscard]] std::vector<std::string> scenario_param_keys();

}  // namespace alert::core
