#pragma once

/// \file scenario.hpp
/// Experiment scenario description: one struct capturing every knob of the
/// paper's evaluation setup (Sec. 5.2) so each figure bench is a small
/// parameter sweep over ScenarioConfig.

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "routing/alarm.hpp"
#include "routing/alert_router.hpp"
#include "routing/ao2p.hpp"
#include "routing/gpsr.hpp"
#include "routing/zap.hpp"

namespace alert::core {

enum class ProtocolKind : std::uint8_t { Alert, Gpsr, Alarm, Ao2p, Zap };

[[nodiscard]] const char* protocol_name(ProtocolKind k);

enum class MobilityKind : std::uint8_t { RandomWaypoint, Group, Static };

/// Observability wiring (src/obs). Metrics collection is one listener with
/// pointer-indirect counter bumps and is on by default; profiling reads the
/// host wall clock (it never feeds the determinism digest) and is opt-in;
/// trace_out streams replication 0's structured TraceEvents to a file whose
/// extension picks the sink (.jsonl / .csv / anything else → Chrome
/// trace_event JSON for chrome://tracing and ui.perfetto.dev).
struct ObsOptions {
  bool metrics = true;
  bool profile = false;
  std::string trace_out;
};

struct ScenarioConfig {
  // Field and population (defaults: 1000 m x 1000 m, 200 nodes, Sec. 5.2).
  util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  std::size_t node_count = 200;

  // Mobility.
  MobilityKind mobility = MobilityKind::RandomWaypoint;
  double speed_mps = 2.0;
  std::size_t group_count = 10;   ///< group mobility (Sec. 5.1)
  double group_range_m = 150.0;

  // Radio / MAC.
  double radio_range_m = 250.0;
  net::MacConfig mac;
  double hello_period_s = 1.0;
  double pseudonym_period_s = 20.0;  ///< Sec. 2.2 rotation tradeoff

  // Fault injection (src/faults): channel loss, node churn, jammer discs.
  // All-off by default — and an all-off plan is invisible: same RNG
  // streams, same digests, same canonical dump as before faults existed.
  faults::FaultPlan faults;

  // Scale backends (src/scale): spatial grid, calendar event queue, pooled
  // delivery frames. All-off by default and equally invisible (no `scale.*`
  // canonical keys, no allocations); with flags on, digests stay
  // bit-identical — the backends change complexity, not behaviour
  // (docs/SCALE.md).
  scale::Backends scale;

  // Traffic: UDP/CBR, 512-byte packets, 10 random S-D pairs, one packet
  // every 2 s (Sec. 5.2).
  std::size_t flow_count = 10;
  double packet_interval_s = 2.0;
  std::size_t payload_bytes = 512;
  std::size_t packets_per_flow = 0;  ///< 0 = bounded by duration only
  double traffic_start_s = 3.0;      ///< hello warm-up before first packet
  /// Optional S-D distance window (at t=0) for pair sampling. Defaults
  /// reproduce the paper's uniform random pairs; Fig. 17 uses a matched
  /// window so movement models are compared on equal pair geometry.
  double min_pair_distance_m = 0.0;
  double max_pair_distance_m = 1e18;

  double duration_s = 100.0;

  // Location service.
  bool destination_update = true;  ///< the Figs. 14b/15b/16b switch
  loc::LocationServiceConfig location;

  // Crypto cost model (Sec. 5.2's measured operation costs).
  crypto::CostModel crypto_cost;

  // Protocol under test + per-protocol knobs.
  ProtocolKind protocol = ProtocolKind::Alert;
  routing::AlertConfig alert;
  routing::GpsrConfig gpsr;
  routing::AlarmConfig alarm;
  routing::Ao2pConfig ao2p;
  routing::ZapConfig zap;

  // Measurement.
  double residency_sample_period_s = 2.0;  ///< zone-residency sampling grid
  bool run_attacks = false;  ///< mount timing/intersection analyses per run
  /// Node-compromise budgets c (Sec. 3.1): when non-empty, each replication
  /// additionally mounts the targeted next-packet interception and the
  /// random-c full-flow blockage analyses for every budget, filling
  /// RunResult::compromise_targeted / compromise_blocked index-for-index.
  std::vector<std::size_t> compromise_budgets;

  std::uint64_t seed = 1;

  /// When non-empty, replication 0 streams every on-air event to this
  /// JSONL file (attack::JsonlTraceWriter) for offline visualization.
  std::string trace_path;

  /// Structured observability (metrics / profiling / trace sinks).
  ObsOptions obs;

  /// Derived NetworkConfig for net::Network.
  [[nodiscard]] net::NetworkConfig network_config() const;
};

}  // namespace alert::core
