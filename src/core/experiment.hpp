#pragma once

/// \file experiment.hpp
/// The experiment harness: builds a full simulation from a ScenarioConfig
/// (network + mobility + location service + pseudonyms + protocol + traffic
/// + observers), runs R independent replications (optionally across a
/// thread pool — each replication owns its simulator and RNG), and
/// aggregates the paper's six evaluation metrics (Sec. 5.2) with 95%
/// Student-t confidence intervals over replications, exactly as the paper's
/// 30-run averages with "I"-shaped CI bars.

#include <cstdint>
#include <vector>

#include "attack/intersection_attack.hpp"
#include "attack/timing_attack.hpp"
#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/stats.hpp"

namespace alert::core {

/// Raw outcome of a single replication.
struct RunResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double mean_latency_s = 0.0;          ///< per delivery attempt
  double mean_e2e_delay_s = 0.0;        ///< incl. retransmission waits
  double mean_hops = 0.0;               ///< over delivered packets
  double mean_participants = 0.0;       ///< distinct Data transmitters/flow
  double mean_route_overlap = 0.0;      ///< consecutive-route Jaccard
  double rf_per_packet = 0.0;           ///< ALERT random forwarders
  double partitions_per_packet = 0.0;
  double control_hops_per_packet = 0.0; ///< e.g. ALARM dissemination
  std::vector<double> cumulative_participants;  ///< by packet index
  std::vector<double> remaining_by_sample;      ///< zone residency grid
  double cover_packets_per_data = 0.0;
  // Attack outcomes (when config.run_attacks):
  double timing_source_rate = 0.0;
  double timing_dest_rate = 0.0;
  double intersection_success = 0.0;    ///< mean P(pick D)
  double intersection_identified = 0.0; ///< fraction of flows pinned
  double intersection_frequency = 0.0;  ///< frequency-attack success rate
  // Node-compromise outcomes, one entry per config.compromise_budgets value
  // (empty when that list is empty; Sec. 3.1 resilience claim):
  std::vector<double> compromise_targeted;  ///< next-packet interception
  std::vector<double> compromise_blocked;   ///< full-flow blockage fraction
  std::uint64_t location_update_messages = 0;
  std::uint64_t hello_messages = 0;
  // Energy accounting (Sec. 1/Sec. 5 low-cost claim):
  double energy_total_j = 0.0;        ///< network-wide radio + crypto
  double energy_crypto_j = 0.0;       ///< crypto share
  double energy_per_delivered_j = 0.0;
  double energy_max_node_j = 0.0;     ///< battery-death hotspot
  // Correctness instrumentation (see sim/simulator.hpp, net/packet_ledger.hpp):
  std::uint64_t trace_digest = 0;     ///< seed-deterministic event-trace hash
  std::uint64_t events_executed = 0;  ///< simulator events this replication
  std::uint64_t packets_opened = 0;   ///< uids created by this replication
  std::uint64_t packets_expired = 0;  ///< still in flight at the horizon
  // Observability (config.obs): frozen per-replication registry + profile.
  obs::MetricsSnapshot metrics;
  obs::ProfileReport profile;

  [[nodiscard]] double delivery_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(delivered) /
                           static_cast<double>(sent);
  }
};

/// Aggregated over replications.
struct ExperimentResult {
  std::size_t replications = 0;
  util::Accumulator latency_s;
  util::Accumulator e2e_delay_s;
  util::Accumulator hops;
  util::Accumulator hops_with_control;  ///< Fig. 15a ALARM accounting
  util::Accumulator delivery_rate;
  util::Accumulator participants;
  util::Accumulator route_overlap;
  util::Accumulator rf_per_packet;
  util::Accumulator partitions_per_packet;
  util::Accumulator cover_per_data;
  util::Accumulator energy_total_j;
  util::Accumulator energy_crypto_j;
  util::Accumulator energy_per_delivered_j;
  util::Accumulator energy_max_node_j;
  util::Accumulator timing_source_rate;
  util::Accumulator timing_dest_rate;
  util::Accumulator intersection_success;
  util::Accumulator intersection_identified;
  util::Accumulator intersection_frequency;
  /// One accumulator per compromise budget (config.compromise_budgets).
  std::vector<util::Accumulator> compromise_targeted;
  std::vector<util::Accumulator> compromise_blocked;
  std::vector<util::Accumulator> cumulative_participants;
  std::vector<util::Accumulator> remaining_by_sample;
  obs::MetricsSnapshot metrics;   ///< ⊕-merged across replications
  obs::ProfileReport profile;     ///< wall-clock self-profile (if enabled)
  /// Per-replication determinism digests, sorted so the set is reproducible
  /// regardless of thread-pool completion order.
  std::vector<std::uint64_t> trace_digests;

  void add(const RunResult& run);
};

/// Reject unusable scenarios before any simulation runs: a fault plan with
/// a loss probability outside [0,1] or negative MTTF/MTTR, or ARQ enabled
/// with a non-positive retry budget / negative timings, silently produces
/// garbage curves. The message goes to stderr and the process exits with
/// status 2 — the same hard-error contract as a malformed ALERTSIM_REPS.
/// run_once calls this on every replication; harnesses building many
/// scenarios can call it early to fail before spending any simulation time.
void validate_scenario(const ScenarioConfig& config);

/// Run one replication with the given seed offset (deterministic).
[[nodiscard]] RunResult run_once(const ScenarioConfig& config,
                                 std::uint64_t replication_index);

/// Run `replications` independent replications (seeds seed+0..R-1) on
/// `threads` worker threads (0 = hardware concurrency) and aggregate.
[[nodiscard]] ExperimentResult run_experiment(const ScenarioConfig& config,
                                              std::size_t replications,
                                              std::size_t threads = 0);

/// Replication count for figure benches: honours the ALERTSIM_REPS
/// environment variable, defaulting to `fallback` (the paper uses 30; the
/// benches default lower to keep a full regeneration pass quick).
/// A set-but-invalid ALERTSIM_REPS (non-numeric, trailing junk, zero,
/// negative, or larger than kMaxReplications) is a hard error: the message
/// goes to stderr and the process exits with status 2 — silently falling
/// back would corrupt replication-count comparisons between runs.
[[nodiscard]] std::size_t bench_replications(std::size_t fallback = 10);

/// Upper bound on replications accepted from ALERTSIM_REPS / --reps.
inline constexpr std::size_t kMaxReplications = 100000;

}  // namespace alert::core
