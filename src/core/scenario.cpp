#include "core/scenario.hpp"

namespace alert::core {

const char* protocol_name(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::Alert: return "ALERT";
    case ProtocolKind::Gpsr: return "GPSR";
    case ProtocolKind::Alarm: return "ALARM";
    case ProtocolKind::Ao2p: return "AO2P";
    case ProtocolKind::Zap: return "ZAP";
  }
  return "?";
}

net::NetworkConfig ScenarioConfig::network_config() const {
  net::NetworkConfig cfg;
  cfg.field = field;
  cfg.node_count = node_count;
  cfg.radio_range_m = radio_range_m;
  cfg.mac = mac;
  cfg.hello_period_s = hello_period_s;
  cfg.neighbor_max_age_s = 2.5 * hello_period_s;
  cfg.pseudonym_period_s = pseudonym_period_s;
  cfg.crypto_cost = crypto_cost;
  cfg.faults = faults;
  cfg.scale = scale;
  return cfg;
}

}  // namespace alert::core
