#include "core/experiment.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <queue>
#include <unordered_set>

#include "attack/compromise.hpp"
#include "attack/observer.hpp"
#include "attack/route_tracer.hpp"
#include "attack/trace_writer.hpp"
#include "attack/zone_residency.hpp"
#include "core/obs_bridge.hpp"
#include "faults/injector.hpp"
#include "loc/pseudonym.hpp"
#include "obs/trace.hpp"
#include "routing/zone.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace alert::core {

namespace {

/// Counts end-to-end Data deliveries at the true destination, deduplicated
/// per application packet (uid): first radio arrival wins.
class DeliveryCounter final : public net::TraceListener {
 public:
  /// Optional per-delivery metric feeds (null = not collecting): latency
  /// observations and a hop-count distribution for the run's snapshot.
  DeliveryCounter(util::Accumulator* latency_sample,
                  util::Histogram* hops_hist)
      : latency_sample_(latency_sample), hops_hist_(hops_hist) {}

  void on_deliver(const net::Node& receiver, const net::Packet& pkt,
                  sim::Time when) override {
    if (pkt.kind != net::PacketKind::Data) return;
    if (receiver.id() != pkt.true_dest) return;
    if (!seen_.insert(pkt.uid).second) return;
    ++delivered_;
    latency_sum_ += when - pkt.app_send_time;
    e2e_sum_ += when - pkt.first_send_time;
    hops_sum_ += pkt.hop_count;
    if (latency_sample_ != nullptr) {
      latency_sample_->add(when - pkt.app_send_time);
    }
    if (hops_hist_ != nullptr) {
      hops_hist_->add(static_cast<double>(pkt.hop_count));
    }
  }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] double mean_latency() const {
    return delivered_ == 0
               ? 0.0
               : latency_sum_ / static_cast<double>(delivered_);
  }
  [[nodiscard]] double mean_hops() const {
    return delivered_ == 0
               ? 0.0
               : static_cast<double>(hops_sum_) /
                     static_cast<double>(delivered_);
  }
  [[nodiscard]] double mean_e2e() const {
    return delivered_ == 0 ? 0.0
                           : e2e_sum_ / static_cast<double>(delivered_);
  }

 private:
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t delivered_ = 0;
  double latency_sum_ = 0.0;
  double e2e_sum_ = 0.0;
  std::int64_t hops_sum_ = 0;
  util::Accumulator* latency_sample_;
  util::Histogram* hops_hist_;
};

std::unique_ptr<net::MobilityModel> make_mobility(
    const ScenarioConfig& cfg) {
  switch (cfg.mobility) {
    case MobilityKind::Group:
      return std::make_unique<net::GroupMobility>(
          cfg.field, cfg.speed_mps, cfg.group_count, cfg.group_range_m);
    case MobilityKind::Static:
      return std::make_unique<net::StaticPlacement>(cfg.field);
    case MobilityKind::RandomWaypoint:
      break;
  }
  return std::make_unique<net::RandomWaypoint>(cfg.field, cfg.speed_mps);
}

std::unique_ptr<routing::Protocol> make_protocol(
    const ScenarioConfig& cfg, net::Network& network,
    loc::LocationService& location) {
  switch (cfg.protocol) {
    case ProtocolKind::Gpsr:
      return std::make_unique<routing::GpsrRouter>(network, location,
                                                   cfg.gpsr);
    case ProtocolKind::Alarm:
      return std::make_unique<routing::AlarmRouter>(network, location,
                                                    cfg.alarm);
    case ProtocolKind::Ao2p:
      return std::make_unique<routing::Ao2pRouter>(network, location,
                                                   cfg.ao2p);
    case ProtocolKind::Zap:
      return std::make_unique<routing::ZapRouter>(network, location,
                                                  cfg.zap);
    case ProtocolKind::Alert:
      break;
  }
  return std::make_unique<routing::AlertRouter>(network, location, cfg.alert);
}

/// Connected-component labels of the unit-disk graph at time `t`.
/// Traffic pairs are drawn within a component: a CBR flow between nodes
/// that cannot physically communicate measures nothing about a routing
/// protocol (relevant under group mobility, where the paper's RPGM
/// configurations partition the field; see EXPERIMENTS.md).
std::vector<int> disk_components(const net::Network& network, sim::Time t) {
  const std::size_t n = network.size();
  std::vector<int> comp(n, -1);
  int next = 0;
  for (net::NodeId s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    std::queue<net::NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const net::NodeId u = q.front();
      q.pop();
      for (const net::NodeId v : network.nodes_within(
               network.node(u).position(t), network.config().radio_range_m,
               t)) {
        if (comp[v] == -1) {
          comp[v] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

}  // namespace

void validate_scenario(const ScenarioConfig& config) {
  std::optional<std::string> err = faults::validate(config.faults);
  if (!err && config.mac.arq.enabled) {
    if (config.mac.arq.retry_limit <= 0) {
      err = "mac.arq.retry_limit must be >= 1 when ARQ is enabled";
    } else if (config.mac.arq.ack_timeout_s < 0.0 ||
               config.mac.arq.backoff_base_s < 0.0) {
      err = "mac.arq timings must be non-negative";
    }
  }
  if (err) {
    std::fprintf(stderr, "invalid scenario: %s\n", err->c_str());
    std::exit(2);
  }
}

RunResult run_once(const ScenarioConfig& config,
                   std::uint64_t replication_index) {
  validate_scenario(config);
  sim::Simulator simulator;
  // Backend selection must precede the first schedule (it is a container
  // swap); both backends pop the identical (time, seq) order, so this
  // cannot change the digest — only the asymptotics at scale.
  if (config.scale.calendar) {
    simulator.set_queue_backend(sim::QueueBackend::Calendar);
  }
  // The profiler must be attached before the Network is built: the Network
  // constructor (and every router constructor) resolves its scope ids from
  // sim.profiler() exactly once.
  obs::Profiler profiler;
  if (config.obs.profile) simulator.set_profiler(&profiler);
  util::Rng rng(config.seed + replication_index * 0x9E3779B97F4A7C15ULL);

  net::Network network(simulator, config.network_config(),
                       make_mobility(config), rng.fork(1),
                       config.duration_s);

  loc::PseudonymManager pseudonyms(loc::PseudonymPolicy{}, rng.fork(2));
  network.set_pseudonym_provider(&pseudonyms);

  loc::LocationService location(network, config.location,
                                config.duration_s);

  auto protocol = make_protocol(config, network, location);

  // Observability: a per-replication metrics registry plus, on replication
  // 0 only, the structured trace sink (all replications would interleave
  // into one file otherwise). None of this feeds the determinism digest.
  obs::MetricsRegistry metrics;
  std::unique_ptr<obs::TraceSink> obs_sink;
  obs::Tracer tracer;
  if (!config.obs.trace_out.empty() && replication_index == 0) {
    obs_sink = obs::make_trace_sink(config.obs.trace_out);
    tracer = obs::Tracer(obs_sink.get());
  }
  std::unique_ptr<ObsBridge> obs_bridge;
  if (config.obs.metrics || tracer.enabled()) {
    obs_bridge = std::make_unique<ObsBridge>(metrics, tracer);
    network.add_listener(obs_bridge.get());
  }
  if (config.obs.metrics) protocol->set_metrics(&metrics);

  // Node-level fault processes (src/faults): churn and outage markers ride
  // on a dedicated RNG fork, so an inert plan leaves every existing stream
  // untouched. The channel loss model lives inside the Network itself.
  std::unique_ptr<faults::FaultInjector> injector;
  if (config.faults.churn.active() || !config.faults.outages.empty()) {
    injector = std::make_unique<faults::FaultInjector>(
        simulator, config.faults, config.node_count, rng.fork(5),
        config.duration_s,
        [&network](std::uint32_t node, bool up) {
          network.set_node_alive(node, up);
        },
        config.obs.metrics ? &metrics : nullptr, tracer);
  }

  DeliveryCounter delivery(
      config.obs.metrics ? &metrics.sample("app.latency_s") : nullptr,
      config.obs.metrics ? &metrics.histogram("app.hop_count", 0.0, 40.0, 40)
                         : nullptr);
  network.add_listener(&delivery);
  attack::PassiveObserver observer(network);
  network.add_listener(&observer);
  std::unique_ptr<attack::JsonlTraceWriter> trace_writer;
  if (!config.trace_path.empty() && replication_index == 0) {
    trace_writer =
        std::make_unique<attack::JsonlTraceWriter>(config.trace_path);
    network.add_listener(trace_writer.get());
  }

  // Traffic: flow_count random S-D pairs; CBR one packet per interval.
  util::Rng traffic_rng = rng.fork(3);
  struct Flow {
    net::NodeId src, dst;
  };
  std::vector<Flow> flows;
  flows.reserve(config.flow_count);
  const std::vector<int> comp = disk_components(network, 0.0);
  for (std::size_t f = 0; f < config.flow_count; ++f) {
    net::NodeId src = 0, dst = 0;
    for (int attempt = 0; attempt < 1024; ++attempt) {
      src = static_cast<net::NodeId>(traffic_rng.below(config.node_count));
      dst = src;
      while (dst == src) {
        dst = static_cast<net::NodeId>(traffic_rng.below(config.node_count));
      }
      if (comp[src] != comp[dst]) continue;  // physically communicable pair
      const double d = util::distance(network.node(src).position(0.0),
                                      network.node(dst).position(0.0));
      if (d < config.min_pair_distance_m || d > config.max_pair_distance_m) {
        continue;
      }
      break;
    }
    flows.push_back(Flow{src, dst});
  }

  std::uint64_t sent = 0;
  std::vector<std::uint32_t> next_seq(config.flow_count, 0);
  routing::Protocol* proto = protocol.get();
  for (std::size_t f = 0; f < config.flow_count; ++f) {
    // Small per-flow phase so flows do not transmit in lockstep.
    const double phase = traffic_rng.uniform(0.0, 0.2);
    simulator.schedule_periodic(
        config.traffic_start_s + phase, config.packet_interval_s,
        [&, f] {
          if (simulator.now() > config.duration_s) return;
          if (config.packets_per_flow != 0 &&
              next_seq[f] >= config.packets_per_flow) {
            return;
          }
          proto->send(flows[f].src, flows[f].dst, config.payload_bytes,
                      static_cast<std::uint32_t>(f), next_seq[f]++);
          ++sent;
        });
  }

  // The "without destination update" switch freezes the location service's
  // position snapshots just before traffic begins (Sec. 5.6).
  if (!config.destination_update) {
    simulator.schedule_at(config.traffic_start_s - 0.5,
                          [&location] { location.freeze_updates(); });
  }

  // Zone-residency observation (Figs. 12/13): for each flow, snapshot the
  // destination zone's occupants at traffic start and sample how many of
  // them remain on a fixed grid.
  std::vector<attack::ZoneResidency> residencies;
  std::vector<std::vector<double>> residency_samples(config.flow_count);
  simulator.schedule_at(config.traffic_start_s, [&] {
    for (std::size_t f = 0; f < config.flow_count; ++f) {
      const util::Vec2 dpos =
          network.node(flows[f].dst).position(simulator.now());
      residencies.emplace_back(
          network, routing::destination_zone(config.field, dpos,
                                             config.alert.partitions_h));
    }
  });
  const std::size_t samples =
      static_cast<std::size_t>((config.duration_s - config.traffic_start_s) /
                               config.residency_sample_period_s) +
      1;
  for (std::size_t s = 0; s < samples; ++s) {
    const double t = config.traffic_start_s +
                     static_cast<double>(s) *
                         config.residency_sample_period_s;
    simulator.schedule_at(t, [&, s] {
      if (residencies.empty()) return;
      for (std::size_t f = 0; f < residencies.size(); ++f) {
        residency_samples[f].push_back(
            static_cast<double>(residencies[f].remaining_at(simulator.now())));
      }
      (void)s;
    });
  }

  simulator.run_until(config.duration_s);

  // Lifecycle audit: whatever the horizon cut off mid-flight is Expired;
  // afterwards every uid the run created must have exactly one fate.
  network.ledger().expire_open(simulator.now());
  ALERT_ASSERT(network.ledger().balanced(),
               "packet ledger out of balance at end of replication");

  RunResult result;
  result.trace_digest = simulator.trace_digest();
  result.events_executed = simulator.events_executed();
  result.packets_opened = network.ledger().totals().opened;
  result.packets_expired = network.ledger().totals().expired;
  result.sent = sent;
  result.delivered = delivery.delivered();
  result.mean_latency_s = delivery.mean_latency();
  result.mean_e2e_delay_s = delivery.mean_e2e();
  result.mean_hops = delivery.mean_hops();
  result.hello_messages = network.hello_count();
  result.location_update_messages = location.update_messages();

  const net::EnergyMeter energy = network.energy().total();
  result.energy_total_j = energy.total();
  result.energy_crypto_j = energy.crypto_j;
  result.energy_max_node_j = network.energy().max_node_total();
  if (result.delivered > 0) {
    result.energy_per_delivered_j =
        energy.total() / static_cast<double>(result.delivered);
  }

  const auto trace = attack::trace_routes(observer.events());
  result.mean_participants = trace.mean_participating_nodes;
  result.mean_route_overlap = trace.mean_consecutive_overlap;
  result.cumulative_participants = trace.cumulative_participants_by_packet;

  const routing::ProtocolStats& stats = proto->stats();
  if (stats.data_sent > 0) {
    result.rf_per_packet = static_cast<double>(stats.random_forwarders) /
                           static_cast<double>(stats.data_sent);
    result.partitions_per_packet =
        static_cast<double>(stats.partitions) /
        static_cast<double>(stats.data_sent);
    result.control_hops_per_packet =
        static_cast<double>(stats.control_hops) /
        static_cast<double>(stats.data_sent);
    result.cover_packets_per_data =
        static_cast<double>(stats.cover_packets) /
        static_cast<double>(stats.data_sent);
  }

  // Average residency over flows per sample index.
  std::size_t max_len = 0;
  for (const auto& v : residency_samples) max_len = std::max(max_len, v.size());
  result.remaining_by_sample.assign(max_len, 0.0);
  for (std::size_t s = 0; s < max_len; ++s) {
    double sum = 0.0;
    std::size_t n = 0;
    // Index-ordered so the digest does not depend on how the samples are
    // traversed — the PDES backend may shard this reduction.
    for (std::size_t r = 0; r < residency_samples.size(); ++r) {
      const auto& v = residency_samples[r];
      if (s < v.size()) {
        sum += v[s];
        ++n;
      }
    }
    result.remaining_by_sample[s] = n ? sum / static_cast<double>(n) : 0.0;
  }

  if (config.run_attacks) {
    const auto timing = attack::timing_attack(observer.events());
    result.timing_source_rate = timing.source_identification_rate();
    result.timing_dest_rate = timing.dest_identification_rate();
    const auto inter = attack::intersection_attack(observer.events());
    result.intersection_success = inter.mean_success_probability();
    result.intersection_identified = inter.identification_rate();
    result.intersection_frequency = inter.frequency_identification_rate();
  }

  // Sec. 3.1 node-compromise battery: deterministic per replication (the
  // adversary's Monte-Carlo draws come from a forked stream of this
  // replication's RNG, so results cache and replay exactly).
  if (!config.compromise_budgets.empty()) {
    util::Rng compromise_rng = rng.fork(4);
    result.compromise_targeted.reserve(config.compromise_budgets.size());
    result.compromise_blocked.reserve(config.compromise_budgets.size());
    for (const std::size_t budget : config.compromise_budgets) {
      result.compromise_targeted.push_back(
          attack::targeted_next_packet_interception(observer.events(),
                                                    budget, compromise_rng));
      result.compromise_blocked.push_back(
          attack::compromise_analysis(observer.events(), config.node_count,
                                      budget, 100, compromise_rng)
              .flow_blockage);
    }
  }

  if (config.obs.metrics) {
    export_protocol_stats(metrics, proto->stats());
    export_run_totals(metrics, network);
    result.metrics = metrics.snapshot();
  }
  if (config.obs.profile) result.profile = profiler.report();
  if (obs_sink != nullptr) obs_sink->finish();
  return result;
}

void ExperimentResult::add(const RunResult& run) {
  ++replications;
  if (run.delivered > 0) {
    latency_s.add(run.mean_latency_s);
    e2e_delay_s.add(run.mean_e2e_delay_s);
    hops.add(run.mean_hops);
    hops_with_control.add(run.mean_hops + run.control_hops_per_packet);
  }
  delivery_rate.add(run.delivery_rate());
  participants.add(run.mean_participants);
  route_overlap.add(run.mean_route_overlap);
  rf_per_packet.add(run.rf_per_packet);
  partitions_per_packet.add(run.partitions_per_packet);
  cover_per_data.add(run.cover_packets_per_data);
  energy_total_j.add(run.energy_total_j);
  energy_crypto_j.add(run.energy_crypto_j);
  energy_max_node_j.add(run.energy_max_node_j);
  if (run.delivered > 0) {
    energy_per_delivered_j.add(run.energy_per_delivered_j);
  }
  timing_source_rate.add(run.timing_source_rate);
  timing_dest_rate.add(run.timing_dest_rate);
  intersection_success.add(run.intersection_success);
  intersection_identified.add(run.intersection_identified);
  intersection_frequency.add(run.intersection_frequency);

  if (compromise_targeted.size() < run.compromise_targeted.size()) {
    compromise_targeted.resize(run.compromise_targeted.size());
  }
  for (std::size_t i = 0; i < run.compromise_targeted.size(); ++i) {
    compromise_targeted[i].add(run.compromise_targeted[i]);
  }
  if (compromise_blocked.size() < run.compromise_blocked.size()) {
    compromise_blocked.resize(run.compromise_blocked.size());
  }
  for (std::size_t i = 0; i < run.compromise_blocked.size(); ++i) {
    compromise_blocked[i].add(run.compromise_blocked[i]);
  }

  if (cumulative_participants.size() < run.cumulative_participants.size()) {
    cumulative_participants.resize(run.cumulative_participants.size());
  }
  for (std::size_t i = 0; i < run.cumulative_participants.size(); ++i) {
    cumulative_participants[i].add(run.cumulative_participants[i]);
  }
  if (remaining_by_sample.size() < run.remaining_by_sample.size()) {
    remaining_by_sample.resize(run.remaining_by_sample.size());
  }
  for (std::size_t i = 0; i < run.remaining_by_sample.size(); ++i) {
    remaining_by_sample[i].add(run.remaining_by_sample[i]);
  }
  metrics.merge(run.metrics);
  profile.merge(run.profile);
  trace_digests.push_back(run.trace_digest);
}

ExperimentResult run_experiment(const ScenarioConfig& config,
                                std::size_t replications,
                                std::size_t threads) {
  ExperimentResult result;
  std::vector<RunResult> runs(replications);
  util::ThreadPool pool(threads);
  pool.parallel_for(replications,
                    [&](std::size_t r) { runs[r] = run_once(config, r); });
  // Aggregate in replication order, not completion order: Welford updates
  // and sum accumulation are not associative in floating point, so folding
  // results as threads finish made the aggregate depend on scheduling.
  // Replication-order aggregation makes parallel and serial runs
  // bit-identical (and trace_digests arrives already deterministic).
  for (const RunResult& run : runs) {
    result.add(run);
  }
  return result;
}

std::size_t bench_replications(std::size_t fallback) {
  const char* env = std::getenv("ALERTSIM_REPS");
  if (env == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  const bool numeric = end != env && *end == '\0' && env[0] != '-';
  if (!numeric || errno == ERANGE || v == 0 || v > kMaxReplications) {
    std::fprintf(stderr,
                 "ALERTSIM_REPS='%s' is invalid: expected an integer in "
                 "[1, %zu]\n",
                 env, kMaxReplications);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

}  // namespace alert::core
