#include "core/obs_bridge.hpp"

namespace alert::core {

namespace {

/// Per-kind transmit trace labels (TraceEvent::kind is a borrowed pointer,
/// so these must be string literals).
const char* tx_kind(net::PacketKind k) {
  switch (k) {
    case net::PacketKind::Hello: return "tx.hello";
    case net::PacketKind::Data: return "tx.data";
    case net::PacketKind::Confirm: return "tx.confirm";
    case net::PacketKind::Nak: return "tx.nak";
    case net::PacketKind::Cover: return "tx.cover";
    case net::PacketKind::IdDissemination: return "tx.id_dissemination";
  }
  return "tx";
}

}  // namespace

const char* packet_kind_name(net::PacketKind kind) {
  switch (kind) {
    case net::PacketKind::Hello: return "hello";
    case net::PacketKind::Data: return "data";
    case net::PacketKind::Confirm: return "confirm";
    case net::PacketKind::Nak: return "nak";
    case net::PacketKind::Cover: return "cover";
    case net::PacketKind::IdDissemination: return "id_dissemination";
  }
  return "unknown";
}

const char* drop_reason_name(net::DropReason why) {
  switch (why) {
    case net::DropReason::OutOfRange: return "out_of_range";
    case net::DropReason::NoHandler: return "no_handler";
    case net::DropReason::TtlExpired: return "ttl_expired";
    case net::DropReason::ChannelLoss: return "channel_loss";
    case net::DropReason::NodeDown: return "node_down";
    case net::DropReason::RetryExhausted: return "retry_exhausted";
  }
  return "unknown";
}

ObsBridge::ObsBridge(obs::MetricsRegistry& metrics, obs::Tracer tracer)
    : metrics_(metrics),
      tx_(metrics.counter("net.tx")),
      rx_(metrics.counter("net.rx")),
      drops_{&metrics.counter("net.drop.out_of_range"),
             &metrics.counter("net.drop.no_handler"),
             &metrics.counter("net.drop.ttl_expired")},
      tx_bytes_(metrics.histogram("net.tx_bytes", 0.0, 2048.0, 32)),
      tracer_(tracer) {}

void ObsBridge::on_transmit(const net::Node& sender, const net::Packet& pkt,
                            sim::Time air_start) {
  tx_.inc();
  tx_bytes_.add(static_cast<double>(pkt.size_bytes));
  if (tracer_.enabled()) {
    tracer_.emit(obs::TraceEvent{
        air_start, static_cast<std::uint32_t>(sender.id()), pkt.uid,
        obs::TraceLayer::Mac, tx_kind(pkt.kind), 0.0, pkt.size_bytes});
  }
}

void ObsBridge::on_deliver(const net::Node& receiver, const net::Packet& pkt,
                           sim::Time when) {
  rx_.inc();
  if (tracer_.enabled()) {
    tracer_.emit(obs::TraceEvent{
        when, static_cast<std::uint32_t>(receiver.id()), pkt.uid,
        obs::TraceLayer::Channel, "deliver", 0.0, pkt.size_bytes});
  }
}

void ObsBridge::on_drop(const net::Node& last_holder, const net::Packet& pkt,
                        sim::Time when, net::DropReason why) {
  const auto i = static_cast<std::size_t>(why);
  if (drops_[i] == nullptr) {
    drops_[i] = &metrics_.counter(std::string("net.drop.") +
                                  drop_reason_name(why));
  }
  drops_[i]->inc();
  if (tracer_.enabled()) {
    tracer_.emit(obs::TraceEvent{
        when, static_cast<std::uint32_t>(last_holder.id()), pkt.uid,
        obs::TraceLayer::Channel, drop_reason_name(why), 0.0,
        static_cast<std::uint64_t>(why)});
  }
}

void export_protocol_stats(obs::MetricsRegistry& metrics,
                           const routing::ProtocolStats& stats) {
  metrics.counter("proto.data_sent").inc(stats.data_sent);
  metrics.counter("proto.data_delivered").inc(stats.data_delivered);
  metrics.counter("proto.data_dropped").inc(stats.data_dropped);
  metrics.counter("proto.forwards").inc(stats.forwards);
  metrics.counter("proto.broadcasts").inc(stats.broadcasts);
  metrics.counter("proto.random_forwarders").inc(stats.random_forwarders);
  metrics.counter("proto.partitions").inc(stats.partitions);
  metrics.counter("proto.cover_packets").inc(stats.cover_packets);
  metrics.counter("proto.retransmissions").inc(stats.retransmissions);
  metrics.counter("proto.naks").inc(stats.naks);
  metrics.counter("proto.control_hops").inc(stats.control_hops);
  // Fault-era counter: only materialized when the link layer actually
  // reported failures, so ideal-channel snapshots are unchanged.
  if (stats.send_failures != 0) {
    metrics.counter("proto.send_failures").inc(stats.send_failures);
  }
  metrics.gauge("proto.crypto_time_total_s").set(stats.crypto_time_total_s);
}

void export_run_totals(obs::MetricsRegistry& metrics,
                       const net::Network& network) {
  metrics.counter("net.hello").inc(network.hello_count());
  const auto& totals = network.ledger().totals();
  metrics.counter("packets.opened").inc(totals.opened);
  metrics.counter("packets.delivered").inc(totals.delivered);
  metrics.counter("packets.dropped").inc(totals.dropped);
  metrics.counter("packets.expired").inc(totals.expired);
  if (network.fault_aware()) {
    // Fault-era accounting, gated so all-defaults snapshots stay
    // byte-identical to pre-fault builds.
    metrics.counter("net.arq.retries").inc(network.arq_retries());
    metrics.counter("net.channel.broadcast_losses")
        .inc(network.broadcast_losses());
    metrics.counter("net.channel.frames_lost")
        .inc(network.channel_frames_lost());
    metrics.counter("packets.lost_channel").inc(totals.lost_channel);
    metrics.counter("packets.retry_exhausted").inc(totals.retry_exhausted);
    metrics.counter("packets.owner_crashed").inc(totals.owner_crashed);
  }
  const net::EnergyMeter energy = network.energy().total();
  metrics.gauge("energy.total_j").set(energy.total());
  metrics.gauge("energy.crypto_j").set(energy.crypto_j);
  metrics.gauge("energy.max_node_j").set(network.energy().max_node_total());
}

}  // namespace alert::core
