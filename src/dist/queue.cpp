#include "dist/queue.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "util/logging.hpp"

namespace alert::dist {

namespace fs = std::filesystem;

double RetryPolicy::backoff_s(std::size_t failures) const {
  if (failures == 0) return 0.0;
  double delay = backoff_base_s;
  for (std::size_t i = 1; i < failures && delay < backoff_cap_s; ++i) {
    delay *= 2.0;
  }
  return std::min(delay, backoff_cap_s);
}

const char* unit_state_name(UnitState state) {
  switch (state) {
    case UnitState::Ready:
      return "ready";
    case UnitState::Done:
      return "done";
    case UnitState::Leased:
      return "leased";
    case UnitState::Backoff:
      return "backoff";
    case UnitState::Poisoned:
      return "poisoned";
  }
  return "unknown";
}

WorkQueue::WorkQueue(const campaign::ResultCache& cache,
                     const std::string& campaign, RetryPolicy policy)
    : cache_(&cache),
      dist_dir_((fs::path(cache.root()) / "dist" / campaign).string()),
      policy_(policy),
      leases_((fs::path(dist_dir_) / "leases").string()) {
  std::error_code ec;
  fs::create_directories(fs::path(dist_dir_) / "attempts", ec);
  fs::create_directories(fs::path(dist_dir_) / "poisoned", ec);
  fs::create_directories(fs::path(dist_dir_) / "progress", ec);
  if (ec) {
    ALERT_LOG_ERROR("dist: cannot create %s subdirectories: %s",
                    dist_dir_.c_str(), ec.message().c_str());
  }
}

std::string WorkQueue::progress_dir() const {
  return (fs::path(dist_dir_) / "progress").string();
}

std::string WorkQueue::attempts_path(const std::string& key) const {
  return (fs::path(dist_dir_) / "attempts" / key).string();
}

std::string WorkQueue::poison_path(const std::string& key) const {
  return (fs::path(dist_dir_) / "poisoned" / key).string();
}

bool WorkQueue::is_done(const std::string& key) const {
  return cache_->entry_exists(key);
}

bool WorkQueue::is_poisoned(const std::string& key) const {
  std::error_code ec;
  return fs::exists(poison_path(key), ec);
}

std::size_t WorkQueue::failures(const std::string& key) const {
  std::ifstream in(attempts_path(key));
  std::size_t count = 0;
  if (!(in >> count)) return 0;
  return count;
}

UnitState WorkQueue::state(const std::string& key) const {
  if (is_done(key)) return UnitState::Done;
  if (is_poisoned(key)) return UnitState::Poisoned;
  if (leases_.read(key).has_value()) return UnitState::Leased;
  const std::size_t failed = failures(key);
  if (failed > 0) {
    // The attempts file's mtime is the last failure; the unit re-enters
    // Ready once the exponential backoff delay has elapsed.
    std::error_code ec;
    const fs::file_time_type mtime =
        fs::last_write_time(attempts_path(key), ec);
    if (!ec) {
      const double age =
          std::chrono::duration<double>(fs::file_time_type::clock::now() -
                                        mtime)
              .count();
      if (age < policy_.backoff_s(failed)) return UnitState::Backoff;
    }
  }
  return UnitState::Ready;
}

bool WorkQueue::try_claim(const std::string& key, const std::string& worker) {
  if (state(key) != UnitState::Ready) return false;
  if (!leases_.try_acquire(key, worker)) return false;
  // Close the complete-between-check-and-acquire window: another worker may
  // have claimed, stored and released this unit after our Ready check. The
  // store always lands before the release, so a post-acquire done-check
  // suffices to keep a finished unit from being claimed (and executed) again.
  if (is_done(key)) {
    leases_.release(key, worker);
    return false;
  }
  return true;
}

void WorkQueue::write_failures(const std::string& key,
                               std::size_t count) const {
  std::ostringstream name;
  name << ".tmp." << static_cast<unsigned long>(::getpid()) << "." << key;
  const fs::path tmp = fs::path(dist_dir_) / "attempts" / name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << count << '\n';
    if (!out.good()) {
      ALERT_LOG_ERROR("dist: cannot write attempts file for %s", key.c_str());
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, attempts_path(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
  }
}

void WorkQueue::poison(const std::string& key, std::size_t failure_count,
                       const std::string& worker) const {
  std::ostringstream name;
  name << ".tmp." << static_cast<unsigned long>(::getpid()) << "." << key;
  const fs::path tmp = fs::path(dist_dir_) / "poisoned" / name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << "alertsim-poison/1\n"
        << "failures " << failure_count << '\n'
        << "last_worker " << worker << '\n';
    if (!out.good()) {
      ALERT_LOG_ERROR("dist: cannot write poison record for %s", key.c_str());
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp, poison_path(key), ec);
  if (ec) {
    fs::remove(tmp, ec);
  }
  ALERT_LOG_WARN(
      "dist: unit %s quarantined after %zu failed attempts (last worker %s) "
      "— the sweep continues without it",
      key.c_str(), failure_count, worker.c_str());
}

std::size_t WorkQueue::record_failure(const std::string& key,
                                      const std::string& worker) {
  // Only the lease holder (or the single winning breaker, via try_reclaim)
  // calls this, so the read-modify-write below is never concurrent for one
  // key.
  const std::size_t count = failures(key) + 1;
  write_failures(key, count);
  if (count > policy_.max_retries) poison(key, count, worker);
  leases_.release(key, worker);
  return count;
}

std::optional<LeaseInfo> WorkQueue::try_reclaim(const std::string& key,
                                                double ttl_s) {
  const auto age = leases_.age_seconds(key);
  if (!age || *age <= ttl_s) return std::nullopt;
  auto broken = leases_.try_break(key);
  if (!broken) return std::nullopt;  // another breaker won
  if (is_done(key)) {
    // The holder finished the unit but died (or stalled) before releasing:
    // the result is in the cache, so this was not a failed attempt.
    return broken;
  }
  const std::size_t count = failures(key) + 1;
  write_failures(key, count);
  if (count > policy_.max_retries) poison(key, count, broken->owner);
  return broken;
}

std::vector<std::string> WorkQueue::poisoned_keys() const {
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(fs::path(dist_dir_) / "poisoned", ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.empty() && name[0] != '.') keys.push_back(name);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace alert::dist
