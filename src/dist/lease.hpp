#pragma once

/// \file lease.hpp
/// Atomic lease files over a shared directory — the claim primitive of the
/// distributed campaign queue (docs/DIST.md). One lease file per work unit:
///
///   <dir>/<key>.lease        single line "alertsim-lease/1 <owner> <seq>"
///
/// Acquisition writes the content to a unique temp file in the same
/// directory and hard-links it to the lease name: link(2) fails with EEXIST
/// when the lease exists, so exactly one of any number of concurrent
/// claimers wins — the same no-torn-state discipline as ResultCache::store,
/// strengthened from "last writer wins" (rename) to "first claimer wins"
/// (link). Renewal rewrites the content through temp + rename, refreshing
/// the file's mtime; staleness is mtime age against the caller's TTL, so no
/// clocks are embedded in the protocol beyond the shared filesystem's.
/// Breaking a stale lease renames it to a unique tombstone first — rename
/// succeeds for exactly one breaker, so a reclaim is counted once no matter
/// how many workers race it.
///
/// Correctness never rests on the lease: results are content-addressed and
/// deterministic, so the worst a lost renew/break race can cause is one
/// unit executing twice and the second store refreshing an identical entry.
/// Leases bound wasted work and drive the retry/poison accounting.

#include <cstdint>
#include <optional>
#include <string>

namespace alert::dist {

inline constexpr const char* kLeaseSchema = "alertsim-lease/1";

/// Parsed lease content.
struct LeaseInfo {
  std::string owner;          ///< worker id that holds the lease
  std::uint64_t sequence = 0; ///< renewals so far (diagnostics only)
};

class LeaseDir {
 public:
  /// Binds (and creates) the lease directory.
  explicit LeaseDir(std::string dir);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::string lease_path(const std::string& key) const;

  /// Atomically claim `key` for `owner`. Exactly one concurrent caller
  /// wins; returns false when the lease already exists or on I/O failure.
  [[nodiscard]] bool try_acquire(const std::string& key,
                                 const std::string& owner);

  /// Refresh the lease's content and mtime (the heartbeat). Returns false —
  /// without touching anything — when the lease no longer names `owner`
  /// (it was reclaimed as stale and possibly re-acquired).
  bool renew(const std::string& key, const std::string& owner);

  /// Drop the lease if it still names `owner` (the normal completion path).
  void release(const std::string& key, const std::string& owner);

  /// Current holder; nullopt when unleased or unreadable.
  [[nodiscard]] std::optional<LeaseInfo> read(const std::string& key) const;

  /// Seconds since the lease was last acquired/renewed (mtime age);
  /// nullopt when unleased.
  [[nodiscard]] std::optional<double> age_seconds(
      const std::string& key) const;

  /// Break a lease believed stale: atomically rename it away and return the
  /// previous holder. Exactly one of any number of concurrent breakers gets
  /// a value; the rest (and breaks of unleased keys) get nullopt. The
  /// caller owns the retry/poison accounting for the returned holder.
  [[nodiscard]] std::optional<LeaseInfo> try_break(const std::string& key);

 private:
  /// Write lease content to a unique temp path; empty string on failure.
  [[nodiscard]] std::string write_temp(const std::string& owner,
                                       std::uint64_t sequence) const;

  std::string dir_;
};

}  // namespace alert::dist
