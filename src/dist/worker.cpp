#include "dist/worker.hpp"

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include <unistd.h>

#include "campaign/cache.hpp"
#include "campaign/journal.hpp"
#include "dist/progress.hpp"
#include "dist/reclaim.hpp"
#include "obs/series.hpp"
#include "util/logging.hpp"

namespace alert::dist {

namespace {

/// Fault-injection plan parsed from the environment (see worker.hpp).
struct CrashPlan {
  bool armed = false;
  std::size_t point = 0;
  std::uint64_t rep = 0;
  enum class Mode { Kill, Fail, Flaky } mode = Mode::Kill;

  [[nodiscard]] bool matches(const campaign::WorkUnit& unit) const {
    return armed && unit.point == point && unit.rep == rep;
  }
};

CrashPlan crash_plan_from_env() {
  CrashPlan plan;
  const char* unit = std::getenv("ALERTSIM_DIST_CRASH_UNIT");
  if (unit == nullptr || *unit == '\0') return plan;
  unsigned long point = 0;
  unsigned long long rep = 0;
  if (std::sscanf(unit, "%lu:%llu", &point, &rep) != 2) {
    ALERT_LOG_WARN("dist: unparseable ALERTSIM_DIST_CRASH_UNIT '%s' ignored",
                   unit);
    return plan;
  }
  plan.point = static_cast<std::size_t>(point);
  plan.rep = static_cast<std::uint64_t>(rep);
  plan.mode = CrashPlan::Mode::Kill;
  if (const char* mode = std::getenv("ALERTSIM_DIST_CRASH_MODE")) {
    const std::string m = mode;
    if (m == "fail") {
      plan.mode = CrashPlan::Mode::Fail;
    } else if (m == "flaky") {
      plan.mode = CrashPlan::Mode::Flaky;
    } else if (m != "kill" && !m.empty()) {
      ALERT_LOG_WARN("dist: unknown ALERTSIM_DIST_CRASH_MODE '%s' ignored",
                     mode);
      return plan;
    }
  }
  plan.armed = true;
  return plan;
}

/// Renews the lease under execution every `period_s`. The watched key is
/// guarded by mutex_; the filesystem renew itself runs unlocked so a slow
/// disk can never block the worker thread's watch()/clear() calls.
class Heartbeat {
 public:
  Heartbeat(WorkQueue& queue, std::string worker, double period_s)
      : queue_(&queue),
        worker_(std::move(worker)),
        period_(period_s),
        thread_([this] { loop(); }) {}

  Heartbeat(const Heartbeat&) = delete;
  Heartbeat& operator=(const Heartbeat&) = delete;

  ~Heartbeat() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void watch(const std::string& key) {
    const std::lock_guard<std::mutex> lock(mutex_);
    key_ = key;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    key_.clear();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::duration<double>(period_));
      if (stop_) break;
      if (key_.empty()) continue;
      const std::string key = key_;
      lock.unlock();
      if (!queue_->renew(key, worker_)) {
        // Reclaimed from under us: harmless (results are content-addressed;
        // a duplicate execution stores an identical entry) but worth a log.
        ALERT_LOG_WARN("dist: worker %s lost lease on %s mid-execution",
                       worker_.c_str(), key.c_str());
      }
      lock.lock();
    }
  }

  WorkQueue* queue_;
  std::string worker_;
  double period_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::string key_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

std::string default_worker_id() {
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) != 0) {
    std::snprintf(host, sizeof(host), "host");
  }
  std::ostringstream id;
  id << host << "-" << static_cast<unsigned long>(::getpid());
  return id.str();
}

WorkerOutcome run_worker(const campaign::CampaignSpec& spec,
                         const WorkerOptions& options, UnitRunner runner) {
  WorkerOutcome out;
  out.worker_id =
      options.worker_id.empty() ? default_worker_id() : options.worker_id;
  const CrashPlan crash = crash_plan_from_env();

  campaign::UnitGrid grid = campaign::expand_units(spec, options.reps, false);
  out.units_total = grid.units.size();

  const std::string root = options.cache_dir.empty()
                               ? campaign::default_cache_root()
                               : options.cache_dir;
  campaign::ResultCache cache(root);
  WorkQueue queue(cache, spec.name, options.retry);
  campaign::Journal journal(root + "/journal", spec.name);

  WorkerProgress progress;
  progress.worker = out.worker_id;
  progress.campaign = spec.name;
  const auto publish = [&] {
    progress.claimed = out.claimed;
    progress.executed = out.executed;
    progress.failed = out.failed;
    progress.reclaimed = out.reclaimed;
    progress.store_errors = cache.store_errors();
    progress.journal_write_errors = journal.write_errors();
    (void)write_progress_atomic(queue.progress_dir(), progress);
  };
  publish();

  ALERT_LOG_INFO("dist: worker %s starting on campaign %s (%zu units)",
                 out.worker_id.c_str(), spec.name.c_str(), out.units_total);

  bool converged = grid.units.empty();
  std::size_t stuck_sweeps = 0;
  {
    Heartbeat heartbeat(queue, out.worker_id, options.lease_ttl_s / 3.0);
    while (!converged) {
      bool progressed = false;
      // Self-healing: break any lease a dead worker left behind before
      // claiming, so its units re-enter circulation within one TTL.
      const ReclaimStats rec = reclaim_stale_leases(
          queue, grid.units, options.lease_ttl_s, &journal);
      if (rec.reclaimed > 0) {
        out.reclaimed += rec.reclaimed;
        progressed = true;
        publish();
      }

      std::size_t broken_claims = 0;
      for (const campaign::WorkUnit& unit : grid.units) {
        if (queue.state(unit.key) != UnitState::Ready) continue;
        if (!queue.try_claim(unit.key, out.worker_id)) {
          // Either a concurrent claimer won (a lease now exists — benign)
          // or the lease directory itself is unwritable.
          if (!queue.leases().read(unit.key).has_value()) ++broken_claims;
          continue;
        }
        ++out.claimed;
        journal.mark_claimed(unit.key, out.worker_id);
        heartbeat.watch(unit.key);

        std::optional<core::RunResult> result;
        if (runner) {
          result = runner(spec, unit);
        } else if (crash.matches(unit)) {
          switch (crash.mode) {
            case CrashPlan::Mode::Kill:
              // One-shot: once a reclaim has charged the crash to the unit
              // (failures > 0), later claimers — including respawned workers
              // inheriting this environment — execute it normally.
              if (queue.failures(unit.key) == 0) {
                publish();
                ALERT_LOG_WARN("dist: worker %s injecting SIGKILL on unit %s",
                               out.worker_id.c_str(), unit.key.c_str());
                (void)std::raise(SIGKILL);
              }
              result = campaign::execute_unit(spec, unit);
              break;
            case CrashPlan::Mode::Fail:
              break;  // result stays nullopt — fails every attempt
            case CrashPlan::Mode::Flaky:
              if (queue.failures(unit.key) > 0) {
                result = campaign::execute_unit(spec, unit);
              }
              break;
          }
        } else {
          result = campaign::execute_unit(spec, unit);
        }
        heartbeat.clear();

        bool stored = false;
        if (result) {
          stored = cache.store(unit.key, *result);
          if (!stored) {
            // Without a durable entry the unit is not done (done-ness IS
            // the cache entry); charge a failed attempt so an unwritable
            // cache root quarantines instead of spinning forever.
            ALERT_LOG_WARN(
                "dist: worker %s executed %s but could not store the result",
                out.worker_id.c_str(), unit.key.c_str());
          }
        }
        if (stored) {
          journal.mark_done(unit.key);
          queue.release(unit.key, out.worker_id);
          ++out.executed;
        } else {
          journal.mark_failed(unit.key, out.worker_id);
          (void)queue.record_failure(unit.key, out.worker_id);
          ++out.failed;
        }
        progressed = true;
        publish();
      }

      std::size_t terminal = 0;
      for (const campaign::WorkUnit& unit : grid.units) {
        const UnitState st = queue.state(unit.key);
        if (st == UnitState::Done || st == UnitState::Poisoned) ++terminal;
      }
      if (terminal == grid.units.size()) {
        converged = true;
        break;
      }
      if (options.print) {
        std::ostringstream line;
        line << "dist worker " << out.worker_id << ": " << terminal << "/"
             << grid.units.size() << " units terminal";
        obs::print_text_line(line.str());
      }
      if (progressed) {
        stuck_sweeps = 0;
        continue;
      }
      // No claim won, nothing reclaimed, sweep not converged. Normal when
      // peers hold fresh leases or units sit in backoff; fatal when our own
      // claims fail without a winner appearing (unwritable lease dir).
      if (broken_claims > 0) {
        if (++stuck_sweeps >= 5) {
          ALERT_LOG_ERROR(
              "dist: worker %s cannot acquire leases under %s — giving up",
              out.worker_id.c_str(), queue.dist_dir().c_str());
          out.exit_code = 2;
          break;
        }
      } else {
        stuck_sweeps = 0;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.poll_interval_s));
    }
  }

  out.poisoned_total = queue.poisoned_keys().size();
  out.store_errors = cache.store_errors();
  out.journal_write_errors = journal.write_errors();
  publish();
  ALERT_LOG_INFO(
      "dist: worker %s done — claimed %zu, executed %zu, failed %zu, "
      "reclaimed %zu (exit %d)",
      out.worker_id.c_str(), out.claimed, out.executed, out.failed,
      out.reclaimed, out.exit_code);
  return out;
}

}  // namespace alert::dist
