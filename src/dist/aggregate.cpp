#include "dist/aggregate.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/engine.hpp"
#include "campaign/journal.hpp"
#include "obs/series.hpp"
#include "util/logging.hpp"

namespace alert::dist {

AggregateOutcome aggregate_campaign(const campaign::CampaignSpec& spec,
                                    const AggregateOptions& options) {
  AggregateOutcome out;

  if (options.print) {
    obs::print_figure_banner(spec.banner, campaign::paper_defaults_line());
  }

  campaign::UnitGrid grid =
      campaign::expand_units(spec, options.reps, false);
  out.units_total = grid.units.size();

  const std::string root = options.cache_dir.empty()
                               ? campaign::default_cache_root()
                               : options.cache_dir;
  const campaign::ResultCache cache(root);
  WorkQueue queue(cache, spec.name);
  out.poisoned_keys = queue.poisoned_keys();

  std::vector<core::RunResult> results(grid.units.size());
  for (const campaign::WorkUnit& unit : grid.units) {
    if (queue.is_poisoned(unit.key)) {
      ++out.units_poisoned;
      continue;
    }
    if (!cache.entry_exists(unit.key)) {
      ++out.units_pending;
      continue;
    }
    auto loaded = cache.load(unit.key);
    if (!loaded) {
      // Present but unparsable — a torn write on a non-POSIX filesystem or
      // external corruption. Heal by deletion: the unit reads as not-done
      // again, so the next worker pass re-executes it.
      ALERT_LOG_WARN("dist: healing corrupt cache entry for unit %s",
                     unit.key.c_str());
      cache.remove(unit.key);
      ++out.healed_corrupt;
      ++out.units_pending;
      continue;
    }
    results[unit.slot] = std::move(*loaded);
    ++out.units_done;
  }

  if (out.units_done != out.units_total) {
    ALERT_LOG_ERROR(
        "dist: campaign %s incomplete — %zu/%zu done, %zu pending, %zu "
        "poisoned, %zu healed (rerun workers, then aggregate again)",
        spec.name.c_str(), out.units_done, out.units_total, out.units_pending,
        out.units_poisoned, out.healed_corrupt);
    if (options.print) {
      std::ostringstream line;
      line << "aggregate: incomplete (" << out.units_done << "/"
           << out.units_total << " units done, " << out.units_poisoned
           << " poisoned)";
      obs::print_text_line(line.str());
      for (const std::string& key : out.poisoned_keys) {
        obs::print_text_line("poisoned: " + key);
      }
    }
    out.exit_code = 3;
    return out;
  }

  out.manifest = campaign::assemble_manifest(
      spec, grid, std::move(results), options.record_peak_rss);

  if (options.dist_summary) {
    // Reopen the journal to read the converged multi-worker history (each
    // process's live view is only its own appends plus the file at open).
    const campaign::Journal journal(root + "/journal", spec.name);
    out.manifest.has_dist = true;
    out.manifest.dist.workers = journal.workers().size();
    out.manifest.dist.reclaimed_leases = journal.total_reclaimed();
    out.manifest.dist.retries = journal.total_retries();
    out.manifest.dist.poisoned_units = out.poisoned_keys.size();
  }

  if (options.print) {
    if (!out.manifest.series.empty()) {
      obs::print_series_table(out.manifest.title, out.manifest.x_label,
                              out.manifest.y_label, out.manifest.series);
    }
    if (!out.manifest.notes.empty()) obs::print_text_line("");
    for (const std::string& note : out.manifest.notes) {
      obs::print_text_line(note);
    }
  }
  ALERT_LOG_INFO("dist: campaign %s aggregated — %zu units from cache",
                 spec.name.c_str(), out.units_done);

  if (!options.metrics_out.empty()) {
    if (!campaign::write_manifest_atomic(out.manifest, options.metrics_out)) {
      out.exit_code = 1;
      return out;
    }
    if (options.print) {
      obs::print_text_line("manifest: " + options.metrics_out);
    }
  }
  return out;
}

}  // namespace alert::dist
