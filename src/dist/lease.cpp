#include "dist/lease.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include <unistd.h>

#include "util/logging.hpp"

namespace alert::dist {

namespace fs = std::filesystem;

namespace {

/// Unique temp-file suffix within this process. Deliberate process-wide
/// state: the counter only names temp files and never influences results.
std::uint64_t next_temp_id() {
  static std::atomic<std::uint64_t> sequence{0};  // alert-lint: allow(mutable-global)
  return sequence.fetch_add(1);
}

}  // namespace

LeaseDir::LeaseDir(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    ALERT_LOG_ERROR("lease: cannot create %s: %s", dir_.c_str(),
                    ec.message().c_str());
  }
}

std::string LeaseDir::lease_path(const std::string& key) const {
  return (fs::path(dir_) / (key + ".lease")).string();
}

std::string LeaseDir::write_temp(const std::string& owner,
                                 std::uint64_t sequence) const {
  std::ostringstream name;
  name << ".tmp." << static_cast<unsigned long>(::getpid()) << "."
       << next_temp_id();
  const fs::path tmp = fs::path(dir_) / name.str();
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out) {
    ALERT_LOG_ERROR("lease: cannot open %s for writing",
                    tmp.string().c_str());
    return {};
  }
  out << kLeaseSchema << ' ' << owner << ' ' << sequence << '\n';
  out.flush();
  if (!out.good()) {
    out.close();
    std::error_code ec;
    fs::remove(tmp, ec);
    ALERT_LOG_ERROR("lease: short write to %s", tmp.string().c_str());
    return {};
  }
  return tmp.string();
}

bool LeaseDir::try_acquire(const std::string& key, const std::string& owner) {
  const std::string tmp = write_temp(owner, 0);
  if (tmp.empty()) return false;
  std::error_code ec;
  // link(2): fails with EEXIST when the lease is already held — first
  // claimer wins, unlike rename's last-writer-wins.
  fs::create_hard_link(tmp, lease_path(key), ec);
  std::error_code remove_ec;
  fs::remove(tmp, remove_ec);
  return !ec;
}

bool LeaseDir::renew(const std::string& key, const std::string& owner) {
  const auto current = read(key);
  if (!current || current->owner != owner) return false;
  const std::string tmp = write_temp(owner, current->sequence + 1);
  if (tmp.empty()) return false;
  std::error_code ec;
  // rename over our own lease: atomic content+mtime refresh. A breaker that
  // renamed the lease away between read() and here gets clobbered back into
  // existence — that race only duplicates work, never loses it (results are
  // content-addressed), and the TTL is orders above the heartbeat period.
  fs::rename(tmp, lease_path(key), ec);
  if (ec) {
    std::error_code remove_ec;
    fs::remove(tmp, remove_ec);
    return false;
  }
  return true;
}

void LeaseDir::release(const std::string& key, const std::string& owner) {
  const auto current = read(key);
  if (!current || current->owner != owner) return;
  std::error_code ec;
  fs::remove(lease_path(key), ec);
}

std::optional<LeaseInfo> LeaseDir::read(const std::string& key) const {
  std::ifstream in(lease_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::string schema;
  LeaseInfo info;
  if (!(in >> schema >> info.owner >> info.sequence)) return std::nullopt;
  if (schema != kLeaseSchema) return std::nullopt;
  return info;
}

std::optional<double> LeaseDir::age_seconds(const std::string& key) const {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(lease_path(key), ec);
  if (ec) return std::nullopt;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

std::optional<LeaseInfo> LeaseDir::try_break(const std::string& key) {
  std::ostringstream name;
  name << ".broken." << static_cast<unsigned long>(::getpid()) << "."
       << next_temp_id();
  const fs::path tomb = fs::path(dir_) / name.str();
  std::error_code ec;
  // rename succeeds for exactly one concurrent breaker (the others see
  // ENOENT), so a reclaim is observed — and counted — once.
  fs::rename(lease_path(key), tomb, ec);
  if (ec) return std::nullopt;
  LeaseInfo info;
  {
    std::ifstream in(tomb, std::ios::binary);
    std::string schema;
    if (!(in >> schema >> info.owner >> info.sequence) ||
        schema != kLeaseSchema) {
      info.owner = "<unreadable>";
      info.sequence = 0;
    }
  }
  std::error_code remove_ec;
  fs::remove(tomb, remove_ec);
  return info;
}

}  // namespace alert::dist
