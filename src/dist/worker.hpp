#pragma once

/// \file worker.hpp
/// The distributed worker loop: one process of the crash-tolerant campaign
/// fan-out (docs/DIST.md). A worker expands the same unit grid as
/// campaign::run_campaign, then repeatedly sweeps it claiming Ready units
/// through the lease directory, executing them with the engine's own
/// execute_unit and storing results into the shared content-addressed
/// cache. A heartbeat thread renews the held lease every TTL/3 so only a
/// dead (or wedged) worker's lease ever goes stale; between claims the
/// worker opportunistically reclaims stale leases it encounters, so the
/// fleet self-heals without a coordinator. The loop exits when every unit
/// is terminal (Done or Poisoned).
///
/// Because results are content-addressed and deterministic, any number of
/// workers — started, SIGKILLed and restarted in any order — converge on
/// the same cache contents; the aggregator (aggregate.hpp) then assembles a
/// manifest byte-identical to a single-process run.
///
/// Fault injection for the chaos tests (honoured only by the *default*
/// runner, and only for the matching unit):
///   ALERTSIM_DIST_CRASH_UNIT="<point>:<rep>"
///   ALERTSIM_DIST_CRASH_MODE=kill   die via SIGKILL mid-unit, once — the
///                                   lease dangles until reclaimed, then the
///                                   unit runs normally (exercises reclaim)
///                           =fail   report failure every attempt
///                                   (exercises retry + quarantine)
///                           =flaky  fail only the first attempt
///                                   (exercises backoff + retry success)

#include <cstddef>
#include <functional>
#include <optional>
#include <string>

#include "campaign/engine.hpp"
#include "campaign/spec.hpp"
#include "core/experiment.hpp"
#include "dist/queue.hpp"

namespace alert::dist {

/// "<hostname>-<pid>" — unique enough across a shared-filesystem fleet.
[[nodiscard]] std::string default_worker_id();

struct WorkerOptions {
  std::string worker_id;     ///< empty = default_worker_id()
  std::size_t reps = 0;      ///< as CampaignOptions::reps
  std::string cache_dir;     ///< empty = campaign::default_cache_root()
  double lease_ttl_s = 30.0; ///< staleness threshold; heartbeat = ttl/3
  RetryPolicy retry;
  double poll_interval_s = 0.2;  ///< sleep between sweeps with no progress
  bool print = false;            ///< per-sweep progress lines (obs helpers)
};

/// Per-worker tallies (the same counters streamed to progress/<id>.json).
struct WorkerOutcome {
  std::string worker_id;
  std::size_t units_total = 0;
  std::size_t claimed = 0;
  std::size_t executed = 0;  ///< units this worker completed live
  std::size_t failed = 0;    ///< failed attempts this worker observed
  std::size_t reclaimed = 0; ///< stale leases this worker broke
  std::size_t poisoned_total = 0;  ///< quarantined units at exit (fleet-wide)
  std::size_t store_errors = 0;
  std::size_t journal_write_errors = 0;
  int exit_code = 0;  ///< 0 = every unit terminal at exit
};

/// Replaces live execution in tests: return the unit's result, or nullopt
/// to report a failed attempt. The default runner calls
/// campaign::execute_unit (after the crash-injection hooks above).
using UnitRunner = std::function<std::optional<core::RunResult>(
    const campaign::CampaignSpec& spec, const campaign::WorkUnit& unit)>;

/// Run one worker over `spec`'s unit grid until the sweep converges.
[[nodiscard]] WorkerOutcome run_worker(const campaign::CampaignSpec& spec,
                                       const WorkerOptions& options,
                                       UnitRunner runner = {});

}  // namespace alert::dist
