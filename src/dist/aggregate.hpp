#pragma once

/// \file aggregate.hpp
/// Final assembly of a distributed sweep: load every unit's result from the
/// shared cache and fold it through the engine's own assemble_manifest, so
/// the emitted "alertsim-run-manifest/1" document is byte-identical to a
/// single-process campaign::run_campaign over the same spec — no matter how
/// many workers produced the cache, how many died, or how often units
/// retried. Cached units carry their recorded wall-clock self-profiles, so
/// even the profile section reproduces.
///
/// The aggregator is also the corrupt-entry healer: an entry that exists
/// but fails to parse is deleted (the next worker pass re-executes the
/// unit) and the aggregation reports incomplete rather than emitting a
/// manifest with a hole in it.

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "dist/queue.hpp"
#include "obs/manifest.hpp"

namespace alert::dist {

struct AggregateOptions {
  std::size_t reps = 0;      ///< as CampaignOptions::reps
  std::string cache_dir;     ///< empty = campaign::default_cache_root()
  std::string metrics_out;   ///< manifest path; empty = don't write
  bool print = true;         ///< banner/table/notes (obs helpers)
  bool record_peak_rss = false;
  /// Stamp the manifest's optional `dist` block (workers, reclaimed leases,
  /// retries, poisoned units — from the journal and quarantine records).
  /// Off by default: the block breaks byte-comparison against a
  /// single-process manifest, so it is opt-in like peak_rss_bytes.
  bool dist_summary = false;
};

struct AggregateOutcome {
  obs::RunManifest manifest;  ///< only meaningful when exit_code == 0
  std::size_t units_total = 0;
  std::size_t units_done = 0;
  std::size_t units_poisoned = 0;
  std::size_t units_pending = 0;  ///< not terminal — sweep still running
  std::size_t healed_corrupt = 0; ///< corrupt entries deleted for re-execution
  std::vector<std::string> poisoned_keys;
  /// 0 = complete manifest emitted; 3 = incomplete (pending, poisoned or
  /// healed units — rerun workers, then aggregate again); 1 = manifest
  /// write failure.
  int exit_code = 0;
};

/// Aggregate `spec`'s sweep from the shared cache.
[[nodiscard]] AggregateOutcome aggregate_campaign(
    const campaign::CampaignSpec& spec, const AggregateOptions& options);

}  // namespace alert::dist
