#include "dist/progress.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <unistd.h>

#include "obs/json.hpp"
#include "obs/json_value.hpp"
#include "util/logging.hpp"

namespace alert::dist {

namespace fs = std::filesystem;

bool write_progress_atomic(const std::string& dir,
                           const WorkerProgress& progress) {
  const fs::path final_path = fs::path(dir) / (progress.worker + ".json");
  const fs::path tmp =
      fs::path(dir) / (".tmp." + progress.worker + "." +
                       std::to_string(static_cast<unsigned long>(::getpid())));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      ALERT_LOG_ERROR("dist: cannot open %s for writing",
                      tmp.string().c_str());
      return false;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("schema", kProgressSchema);
    w.field("worker", progress.worker);
    w.field("campaign", progress.campaign);
    w.field("claimed", progress.claimed);
    w.field("executed", progress.executed);
    w.field("failed", progress.failed);
    w.field("reclaimed", progress.reclaimed);
    w.field("store_errors", progress.store_errors);
    w.field("journal_write_errors", progress.journal_write_errors);
    w.end_object();
    out << '\n';
    if (!out.good()) {
      out.close();
      std::error_code ec;
      fs::remove(tmp, ec);
      ALERT_LOG_ERROR("dist: short write to %s", tmp.string().c_str());
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    ALERT_LOG_ERROR("dist: rename %s -> %s failed: %s", tmp.string().c_str(),
                    final_path.string().c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

std::vector<WorkerProgress> read_progress(const std::string& dir) {
  std::vector<WorkerProgress> out;
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.empty() || name[0] == '.') continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto doc = obs::parse_json(buffer.str());
    if (!doc || !doc->is_object()) continue;
    const obs::JsonValue* schema = doc->find("schema");
    if (schema == nullptr || schema->as_string() != kProgressSchema) continue;
    WorkerProgress p;
    if (const auto* v = doc->find("worker")) p.worker = v->as_string();
    if (const auto* v = doc->find("campaign")) p.campaign = v->as_string();
    if (const auto* v = doc->find("claimed")) p.claimed = v->as_u64();
    if (const auto* v = doc->find("executed")) p.executed = v->as_u64();
    if (const auto* v = doc->find("failed")) p.failed = v->as_u64();
    if (const auto* v = doc->find("reclaimed")) p.reclaimed = v->as_u64();
    if (const auto* v = doc->find("store_errors")) {
      p.store_errors = v->as_u64();
    }
    if (const auto* v = doc->find("journal_write_errors")) {
      p.journal_write_errors = v->as_u64();
    }
    if (p.worker.empty()) continue;
    out.push_back(std::move(p));
  }
  return out;
}

AggregateProgress aggregate_progress(
    const std::vector<WorkerProgress>& workers) {
  AggregateProgress total;
  total.workers = workers.size();
  for (const WorkerProgress& p : workers) {
    total.claimed += p.claimed;
    total.executed += p.executed;
    total.failed += p.failed;
    total.reclaimed += p.reclaimed;
    total.store_errors += p.store_errors;
    total.journal_write_errors += p.journal_write_errors;
  }
  return total;
}

}  // namespace alert::dist
