#pragma once

/// \file reclaim.hpp
/// Stale-lease reclaim pass: scan a campaign's unit grid and break every
/// lease older than the TTL, charging the crashed attempt to the unit
/// (failure bump, possible quarantine — WorkQueue::try_reclaim semantics).
/// Workers run this pass opportunistically between claims and the
/// coordinator runs it on its poll loop, so a killed worker's units are
/// back in circulation within one TTL of its death no matter who notices
/// first. The tombstone-rename protocol guarantees each reclaim is counted
/// exactly once across any number of concurrent scanners.

#include <cstddef>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/journal.hpp"
#include "dist/queue.hpp"

namespace alert::dist {

struct ReclaimStats {
  std::size_t scanned = 0;    ///< leases older than the TTL we raced for
  std::size_t reclaimed = 0;  ///< breaks this caller won
  std::size_t poisoned = 0;   ///< reclaims that exhausted the retry budget
};

/// One reclaim pass over `units`. When `journal` is non-null every won
/// break is recorded as a `reclaimed <key> <stale worker>` line.
ReclaimStats reclaim_stale_leases(WorkQueue& queue,
                                  const std::vector<campaign::WorkUnit>& units,
                                  double ttl_s,
                                  campaign::Journal* journal = nullptr);

}  // namespace alert::dist
