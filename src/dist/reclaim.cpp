#include "dist/reclaim.hpp"

#include "util/logging.hpp"

namespace alert::dist {

ReclaimStats reclaim_stale_leases(WorkQueue& queue,
                                  const std::vector<campaign::WorkUnit>& units,
                                  double ttl_s, campaign::Journal* journal) {
  ReclaimStats stats;
  for (const campaign::WorkUnit& unit : units) {
    const auto age = queue.leases().age_seconds(unit.key);
    if (!age || *age <= ttl_s) continue;
    ++stats.scanned;
    const auto broken = queue.try_reclaim(unit.key, ttl_s);
    if (!broken) continue;  // another scanner won the break
    ++stats.reclaimed;
    if (journal != nullptr) journal->mark_reclaimed(unit.key, broken->owner);
    if (queue.is_poisoned(unit.key)) ++stats.poisoned;
    ALERT_LOG_WARN(
        "dist: reclaimed stale lease on %s from %s (age %.1fs > ttl %.1fs)",
        unit.key.c_str(), broken->owner.c_str(), *age, ttl_s);
  }
  return stats;
}

}  // namespace alert::dist
