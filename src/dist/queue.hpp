#pragma once

/// \file queue.hpp
/// The shared-directory work queue: binds one campaign's unit set to the
/// lease, retry and quarantine state living under the result-cache root
/// (docs/DIST.md):
///
///   <cache>/objects/...                     done-ness (entry exists)
///   <cache>/dist/<campaign>/leases/         in-flight claims (lease.hpp)
///   <cache>/dist/<campaign>/attempts/<key>  failed-attempt count; the
///                                           file's mtime is the last
///                                           failure time (backoff clock)
///   <cache>/dist/<campaign>/poisoned/<key>  quarantine record
///   <cache>/dist/<campaign>/progress/       per-worker counters
///
/// A unit is *terminal* when Done or Poisoned; the sweep converges when
/// every unit is terminal. Failed units retry with bounded exponential
/// backoff; a unit whose failures exceed the retry budget is quarantined
/// into poisoned/ so one crashing scenario can never stall the sweep.
/// All state transitions are single files written via the temp+rename /
/// hard-link disciplines, so any process can be SIGKILLed at any point
/// without leaving torn state.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "campaign/cache.hpp"
#include "dist/lease.hpp"

namespace alert::dist {

/// Retry budget and backoff schedule for failed units.
struct RetryPolicy {
  /// A unit may *fail* this many times beyond its first attempt before
  /// quarantine: total executions are bounded by 1 + max_retries.
  std::size_t max_retries = 2;
  double backoff_base_s = 0.25;  ///< delay before the first retry
  double backoff_cap_s = 8.0;    ///< exponential growth stops here

  /// Delay before a unit with `failures` recorded failures may be
  /// reclaimed: min(base * 2^(failures-1), cap); 0 for no failures.
  [[nodiscard]] double backoff_s(std::size_t failures) const;
};

enum class UnitState : std::uint8_t {
  Ready,     ///< claimable now
  Done,      ///< cache entry exists
  Leased,    ///< another worker holds a fresh lease
  Backoff,   ///< failed recently; claimable after the backoff delay
  Poisoned,  ///< quarantined — exceeded the retry budget
};

[[nodiscard]] const char* unit_state_name(UnitState state);

class WorkQueue {
 public:
  /// Binds the queue for `campaign` under `cache`'s root. `cache` must
  /// outlive the queue.
  WorkQueue(const campaign::ResultCache& cache, const std::string& campaign,
            RetryPolicy policy = {});

  [[nodiscard]] const std::string& dist_dir() const { return dist_dir_; }
  [[nodiscard]] std::string progress_dir() const;
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] LeaseDir& leases() { return leases_; }

  [[nodiscard]] bool is_done(const std::string& key) const;
  [[nodiscard]] bool is_poisoned(const std::string& key) const;
  /// Failed attempts recorded for `key` (the attempts file).
  [[nodiscard]] std::size_t failures(const std::string& key) const;
  [[nodiscard]] UnitState state(const std::string& key) const;

  /// Claim a Ready unit. Checks state first, then races the lease — exactly
  /// one concurrent claimer of a Ready unit wins.
  [[nodiscard]] bool try_claim(const std::string& key,
                               const std::string& worker);
  /// Heartbeat passthrough (lease.hpp semantics).
  bool renew(const std::string& key, const std::string& worker) {
    return leases_.renew(key, worker);
  }
  /// Completion path: the unit's result is stored — drop the lease.
  void release(const std::string& key, const std::string& worker) {
    leases_.release(key, worker);
  }

  /// Lease-holder observed a failed execution: bump the attempts file
  /// (resetting the backoff clock), quarantine when the budget is spent,
  /// and drop the lease. Returns the new failure count.
  std::size_t record_failure(const std::string& key,
                             const std::string& worker);

  /// Break `key`'s lease if it is older than `ttl_s` and charge the crashed
  /// attempt to the unit (failure bump + possible quarantine). Returns the
  /// stale holder when this caller won the break; nullopt otherwise.
  [[nodiscard]] std::optional<LeaseInfo> try_reclaim(const std::string& key,
                                                     double ttl_s);

  /// All quarantined unit keys, sorted.
  [[nodiscard]] std::vector<std::string> poisoned_keys() const;

 private:
  [[nodiscard]] std::string attempts_path(const std::string& key) const;
  [[nodiscard]] std::string poison_path(const std::string& key) const;
  /// Atomically write the attempts file (mtime = now = failure time).
  void write_failures(const std::string& key, std::size_t count) const;
  /// Quarantine `key` after `failure_count` failures, blaming `worker`.
  void poison(const std::string& key, std::size_t failure_count,
              const std::string& worker) const;

  const campaign::ResultCache* cache_;
  std::string dist_dir_;
  RetryPolicy policy_;
  LeaseDir leases_;
};

}  // namespace alert::dist
