#pragma once

/// \file progress.hpp
/// Per-worker progress counters streamed through the shared directory:
/// after every terminal unit event a worker rewrites (temp + rename)
/// `<dist>/progress/<worker>.json`, schema "alertsim-dist-progress/1".
/// The coordinator/aggregator reads all of them plus the journal to build
/// the live aggregate view and the optional manifest `dist` block. Progress
/// is observability only — it never feeds the manifest's result sections,
/// so a torn or missing progress file can never corrupt a sweep.

#include <cstdint>
#include <string>
#include <vector>

namespace alert::dist {

inline constexpr const char* kProgressSchema = "alertsim-dist-progress/1";

/// One worker's counters (monotone within a worker process's lifetime).
struct WorkerProgress {
  std::string worker;
  std::string campaign;
  std::uint64_t claimed = 0;    ///< leases acquired
  std::uint64_t executed = 0;   ///< units completed live
  std::uint64_t failed = 0;     ///< failed attempts observed
  std::uint64_t reclaimed = 0;  ///< stale leases this worker broke
  std::uint64_t store_errors = 0;
  std::uint64_t journal_write_errors = 0;
};

/// Atomically (temp + rename) write `progress` into `dir`. Returns false
/// and logs on I/O failure.
bool write_progress_atomic(const std::string& dir,
                           const WorkerProgress& progress);

/// Read every parseable `<worker>.json` under `dir`, sorted by worker id.
/// Unparseable files are skipped (a worker may be mid-rename on a
/// non-atomic filesystem); they repair themselves on the next update.
[[nodiscard]] std::vector<WorkerProgress> read_progress(
    const std::string& dir);

/// Sum of a progress set (workers = number of entries).
struct AggregateProgress {
  std::uint64_t workers = 0;
  std::uint64_t claimed = 0;
  std::uint64_t executed = 0;
  std::uint64_t failed = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t store_errors = 0;
  std::uint64_t journal_write_errors = 0;
};

[[nodiscard]] AggregateProgress aggregate_progress(
    const std::vector<WorkerProgress>& workers);

}  // namespace alert::dist
