#pragma once

/// \file pool.hpp
/// A slab pool of reusable objects addressed by dense 32-bit handles.
///
/// The pool owns its objects for its whole lifetime: a slot is constructed
/// once (when its chunk is allocated) and destroyed exactly once (when the
/// pool is destroyed), never in between. acquire()/release() only move slot
/// indices across a freelist, so the hot path performs no allocation, no
/// construction and no destruction — the caller resets whatever state it
/// cares about and reuses the object's retained capacity (for net::Packet
/// that is the payload vector's buffer, which is the allocation the
/// hotpath-allocation baseline pointed at).
///
/// Index handles instead of pointers keep scheduled-event closures small
/// (4 bytes) and survive chunk growth trivially; because slots live in
/// fixed-size chunks, handles are stable for the pool's lifetime.
///
/// A slot that is never release()d is still destroyed by the pool's
/// destructor — an unbalanced caller shows up in the in_use()/leaked()
/// statistics (and in net::PacketLedger for packets), not as an ASan leak.
/// Determinism: the pool draws no randomness and reads no clocks; handle
/// assignment depends only on the acquire/release sequence.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.hpp"

namespace alert::scale {

template <typename T>
class SlabPool {
 public:
  using Handle = std::uint32_t;

  /// Slots per chunk. 256 keeps a chunk of net::Packet around 40 KiB and
  /// makes handle -> (chunk, slot) a shift and a mask.
  static constexpr std::size_t kChunkSlots = 256;

  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// Take a free slot, growing the pool by one chunk when empty. The slot's
  /// object is in whatever state its previous user left it — callers reset
  /// the fields they use (that is the point: retained buffers get reused).
  [[nodiscard]] Handle acquire() {
    if (free_count_ == 0) expand();
    const Handle h = free_[--free_count_];
    ++in_use_;
    if (in_use_ > high_water_) high_water_ = in_use_;
    return h;
  }

  /// Return a slot to the freelist. The object is NOT destroyed.
  void release(Handle h) {
    ALERT_INVARIANT(h < capacity() && in_use_ > 0,
                    "SlabPool::release of a handle not acquired");
    free_[free_count_++] = h;
    --in_use_;
  }

  [[nodiscard]] T& at(Handle h) {
    return chunks_[h / kChunkSlots][h % kChunkSlots];
  }
  [[nodiscard]] const T& at(Handle h) const {
    return chunks_[h / kChunkSlots][h % kChunkSlots];
  }

  /// Slots currently acquired (a nonzero value at teardown is a lifecycle
  /// bug in the caller; the objects themselves are still reclaimed).
  [[nodiscard]] std::size_t in_use() const { return in_use_; }
  [[nodiscard]] std::size_t leaked() const { return in_use_; }
  [[nodiscard]] std::size_t capacity() const {
    return chunks_.size() * kChunkSlots;
  }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

 private:
  void expand() {
    // The only allocation site in the pool: one chunk of default-constructed
    // slots plus a freelist regrow, amortized over kChunkSlots acquires.
    chunks_.push_back(std::make_unique<T[]>(kChunkSlots));
    const std::size_t old_capacity = capacity() - kChunkSlots;
    free_.resize(capacity());
    // Hand slots out in ascending-handle order (pop from the back).
    for (std::size_t i = 0; i < kChunkSlots; ++i) {
      free_[free_count_++] =
          static_cast<Handle>(old_capacity + (kChunkSlots - 1 - i));
    }
  }

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<Handle> free_;     ///< pre-sized to capacity(); free_count_ live
  std::size_t free_count_ = 0;
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace alert::scale
