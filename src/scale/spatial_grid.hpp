#pragma once

/// \file spatial_grid.hpp
/// Uniform-grid spatial index over piecewise-linear node trajectories.
///
/// Each id covers the supercover (Amanatides–Woo traversal) of its current
/// motion segment, so membership is correct for ANY query time within the
/// segment without per-tick reindexing: the index only changes on mobility
/// waypoint events (Network::schedule_mobility), never on queries. With
/// cell size tied to the transmission range, a disc query touches the O(1)
/// cells overlapping the disc's bounding box and filters the O(k)
/// candidates by exact distance — the same `distance_sq(pos, center) <=
/// r*r` predicate the linear scan applies — so the surviving id set is
/// identical to the scan's, and the caller's ascending-id ordering keeps
/// event traces bit-identical (docs/SCALE.md, "Determinism argument").
///
/// Robustness: a queried position is computed as `start + v * dt`, which can
/// deviate from the ideal segment by a few ulps, so a point near a cell
/// boundary may belong to a cell adjacent to an indexed one. Padding the
/// query box by kQueryEps (far above the fp deviation at any supported
/// field size) guarantees every cell within that distance of a matching
/// position is visited; the exact filter then keeps false positives out.
/// The grid draws no randomness and reads no clocks.
///
/// Query methods take a position callback (id -> Vec2 at the query time) as
/// a template parameter and write into caller-owned storage: the hot query
/// path performs no allocation (stamp-array dedup, preallocated in the
/// constructor).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"
#include "util/geometry.hpp"

namespace alert::scale {

class SpatialGrid {
 public:
  /// Padding added to the query box, in metres. Far above position fp error
  /// (~1e-9 m at a 100 km field), far below any meaningful radius.
  static constexpr double kQueryEps = 1e-6;

  /// `field` bounds the indexed area (positions are clamped to it, matching
  /// mobility's invariant that nodes stay in-field); `cell_size` is the
  /// cell edge in metres (tie it to the transmission range); ids are dense
  /// in [0, max_ids).
  SpatialGrid(util::Rect field, double cell_size, std::uint32_t max_ids);

  /// Replace id's coverage with the supercover of segment [a, b] (positions
  /// at the segment's start and at the earlier of segment end / horizon).
  void update(std::uint32_t id, util::Vec2 a, util::Vec2 b);

  /// Drop id from every cell it covers.
  void remove(std::uint32_t id);

  /// Number of ids whose position lies within `radius` of `center`.
  /// Identical to counting the linear scan's matches (dead nodes included —
  /// the callers filter liveness downstream, exactly as they do today).
  template <typename PosFn>
  [[nodiscard]] std::size_t count_in_disc(util::Vec2 center, double radius,
                                          PosFn&& pos) {
    const double r_sq = radius * radius;
    QueryBox box = query_box(center, radius);
    std::size_t count = 0;
    ++epoch_;
    for (std::uint32_t cy = box.cy0; cy <= box.cy1; ++cy) {
      for (std::uint32_t cx = box.cx0; cx <= box.cx1; ++cx) {
        for (const std::uint32_t id : cells_[cy * cols_ + cx]) {
          if (stamp_[id] == epoch_) continue;
          stamp_[id] = epoch_;
          if (util::distance_sq(pos(id), center) <= r_sq) ++count;
        }
      }
    }
    return count;
  }

  /// Write every matching id (unsorted) into `out`, which must hold at
  /// least max_ids entries; returns the match count. Callers sort ascending
  /// to reproduce the linear scan's id order.
  template <typename PosFn>
  [[nodiscard]] std::size_t collect_in_disc(util::Vec2 center, double radius,
                                            PosFn&& pos, std::uint32_t* out) {
    const double r_sq = radius * radius;
    QueryBox box = query_box(center, radius);
    std::size_t count = 0;
    ++epoch_;
    for (std::uint32_t cy = box.cy0; cy <= box.cy1; ++cy) {
      for (std::uint32_t cx = box.cx0; cx <= box.cx1; ++cx) {
        for (const std::uint32_t id : cells_[cy * cols_ + cx]) {
          if (stamp_[id] == epoch_) continue;
          stamp_[id] = epoch_;
          if (util::distance_sq(pos(id), center) <= r_sq) out[count++] = id;
        }
      }
    }
    return count;
  }

  [[nodiscard]] std::uint32_t cols() const { return cols_; }
  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  /// Cells currently covered by id (diagnostics/tests).
  [[nodiscard]] std::size_t coverage(std::uint32_t id) const {
    return id_cells_[id].size();
  }

 private:
  struct QueryBox {
    std::uint32_t cx0, cx1, cy0, cy1;
  };

  [[nodiscard]] std::uint32_t col_of(double x) const;
  [[nodiscard]] std::uint32_t row_of(double y) const;
  [[nodiscard]] QueryBox query_box(util::Vec2 center, double radius) const;

  /// Add id to cell (no-op if already covered by it).
  void insert(std::uint32_t id, std::uint32_t cell);

  util::Rect field_;
  double cell_size_;
  double inv_cell_;
  std::uint32_t cols_ = 1;
  std::uint32_t rows_ = 1;

  std::vector<std::vector<std::uint32_t>> cells_;     ///< cell -> ids
  std::vector<std::vector<std::uint32_t>> id_cells_;  ///< id -> covered cells
  std::vector<std::uint64_t> stamp_;                  ///< query dedup marks
  std::uint64_t epoch_ = 0;
};

}  // namespace alert::scale
