#include "scale/spatial_grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace alert::scale {

SpatialGrid::SpatialGrid(util::Rect field, double cell_size,
                         std::uint32_t max_ids)
    : field_(field),
      // Floor the cell size so a degenerate configuration (zero radio
      // range, huge field) cannot blow up the cell table: at most 4096
      // cells per axis, never below 1 mm.
      cell_size_(std::max({cell_size, 1e-3,
                           std::max(field.width(), field.height()) / 4096.0})),
      inv_cell_(1.0 / cell_size_) {
  ALERT_INVARIANT(field.width() >= 0.0 && field.height() >= 0.0,
                  "SpatialGrid field must be non-degenerate");
  cols_ = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(field.width() * inv_cell_)));
  rows_ = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(field.height() * inv_cell_)));
  cells_.resize(static_cast<std::size_t>(cols_) * rows_);
  id_cells_.resize(max_ids);
  stamp_.assign(max_ids, 0);
}

std::uint32_t SpatialGrid::col_of(double x) const {
  const double c = std::floor((x - field_.min.x) * inv_cell_);
  if (c <= 0.0) return 0;
  const auto col = static_cast<std::uint32_t>(c);
  return col >= cols_ ? cols_ - 1 : col;
}

std::uint32_t SpatialGrid::row_of(double y) const {
  const double r = std::floor((y - field_.min.y) * inv_cell_);
  if (r <= 0.0) return 0;
  const auto row = static_cast<std::uint32_t>(r);
  return row >= rows_ ? rows_ - 1 : row;
}

SpatialGrid::QueryBox SpatialGrid::query_box(util::Vec2 center,
                                             double radius) const {
  const double pad = radius + kQueryEps;
  return QueryBox{col_of(center.x - pad), col_of(center.x + pad),
                  row_of(center.y - pad), row_of(center.y + pad)};
}

void SpatialGrid::insert(std::uint32_t id, std::uint32_t cell) {
  std::vector<std::uint32_t>& covered = id_cells_[id];
  if (std::find(covered.begin(), covered.end(), cell) != covered.end()) return;
  covered.push_back(cell);
  cells_[cell].push_back(id);
}

void SpatialGrid::update(std::uint32_t id, util::Vec2 a, util::Vec2 b) {
  ALERT_INVARIANT(id < id_cells_.size(), "SpatialGrid::update id out of range");
  remove(id);
  a = field_.clamp(a);
  b = field_.clamp(b);

  std::uint32_t cx = col_of(a.x);
  std::uint32_t cy = row_of(a.y);
  const std::uint32_t ex = col_of(b.x);
  const std::uint32_t ey = row_of(b.y);
  insert(id, cy * cols_ + cx);
  if (cx == ex && cy == ey) return;

  // Amanatides–Woo traversal from a to b: t is the segment parameter in
  // [0, 1]; t_max_* is the t at which the ray crosses the next cell
  // boundary along that axis, t_delta_* the t per whole cell.
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const int step_x = dx > 0.0 ? 1 : (dx < 0.0 ? -1 : 0);
  const int step_y = dy > 0.0 ? 1 : (dy < 0.0 ? -1 : 0);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double t_max_x = kInf;
  double t_delta_x = kInf;
  if (step_x != 0) {
    const double next_boundary =
        field_.min.x + (static_cast<double>(cx) + (step_x > 0 ? 1.0 : 0.0)) *
                           cell_size_;
    t_max_x = (next_boundary - a.x) / dx;
    t_delta_x = cell_size_ / std::abs(dx);
  }
  double t_max_y = kInf;
  double t_delta_y = kInf;
  if (step_y != 0) {
    const double next_boundary =
        field_.min.y + (static_cast<double>(cy) + (step_y > 0 ? 1.0 : 0.0)) *
                           cell_size_;
    t_max_y = (next_boundary - a.y) / dy;
    t_delta_y = cell_size_ / std::abs(dy);
  }

  // The supercover of a segment spanning w x h cells visits at most w + h
  // cells past the first; the guard only trips on fp pathology, in which
  // case the explicit endpoint insert below keeps coverage correct.
  std::int64_t guard =
      (std::abs(static_cast<std::int64_t>(ex) - cx) +
       std::abs(static_cast<std::int64_t>(ey) - cy)) + 4;
  while ((cx != ex || cy != ey) && guard-- > 0) {
    // Amanatides–Woo ray marching: the t_max updates are a fixed-order
    // traversal state machine, not a reduction — the loop order IS the
    // algorithm, so reassociation cannot apply.
    if (t_max_x < t_max_y) {
      cx = static_cast<std::uint32_t>(static_cast<std::int64_t>(cx) + step_x);
      t_max_x += t_delta_x;  // alert-lint: allow(fp-accumulation-order)
    } else if (t_max_y < t_max_x) {
      cy = static_cast<std::uint32_t>(static_cast<std::int64_t>(cy) + step_y);
      t_max_y += t_delta_y;  // alert-lint: allow(fp-accumulation-order)
    } else {
      // Exact corner crossing: the segment touches the two side cells only
      // at a point, which the query box's kQueryEps pad already absorbs —
      // step both axes.
      cx = static_cast<std::uint32_t>(static_cast<std::int64_t>(cx) + step_x);
      cy = static_cast<std::uint32_t>(static_cast<std::int64_t>(cy) + step_y);
      t_max_x += t_delta_x;  // alert-lint: allow(fp-accumulation-order)
      t_max_y += t_delta_y;  // alert-lint: allow(fp-accumulation-order)
    }
    if (cx >= cols_ || cy >= rows_) break;  // fp drift past the clamped end
    insert(id, cy * cols_ + cx);
  }
  insert(id, ey * cols_ + ex);
}

void SpatialGrid::remove(std::uint32_t id) {
  ALERT_INVARIANT(id < id_cells_.size(), "SpatialGrid::remove id out of range");
  for (const std::uint32_t cell : id_cells_[id]) {
    std::vector<std::uint32_t>& bucket = cells_[cell];
    const auto it = std::find(bucket.begin(), bucket.end(), id);
    ALERT_ASSERT(it != bucket.end(), "SpatialGrid cell list out of sync");
    if (it != bucket.end()) {
      *it = bucket.back();
      bucket.pop_back();
    }
  }
  id_cells_[id].clear();
}

}  // namespace alert::scale
