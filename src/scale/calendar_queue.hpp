#pragma once

/// \file calendar_queue.hpp
/// A calendar priority queue (R. Brown, CACM 1988) generic over entries
/// exposing `.time` (double, >= 0) and `.seq` (unique uint64 tie-break).
///
/// Items hash into `nbuckets_` day-buckets by their "year" — floor(time /
/// width) — and a cursor year advances monotonically as minima are popped.
/// Extraction scans only the cursor year's bucket; push and pop are O(1)
/// amortized while the width tracks the inter-event gap, which periodic
/// rebuilds (triggered by size doubling/shrinking past the bucket count)
/// re-estimate from the live span. All cursor arithmetic is on integer
/// years, never on accumulated floating-point windows, so the mapping from
/// time to bucket is exact and reproducible: the pop order is the strict
/// (time, seq) total order, bit-identical to a binary heap's.
///
/// Why the min is still the global min: the cursor invariant is that no
/// live item has a year earlier than the cursor's (push of an earlier item
/// rewinds the cursor; popping the minimum cannot strand anything behind
/// it). Scanning the cursor bucket for items OF that year therefore sees
/// every candidate for the minimum; a full fruitless lap falls back to a
/// global scan that jumps the cursor to the true minimum's year — the
/// escape hatch for sparse far-future backlogs.
///
/// Entries live in a slab (`slots_`) recycled through an intrusive
/// freelist: steady-state push/pop allocates nothing; the only growth sites
/// are the slab doubling in alloc_slot() and the bucket re-hash in
/// rebuild(), both amortized O(1) per operation.
///
/// The queue draws no randomness and reads no clocks (rebuild heuristics
/// depend only on the operation sequence), so backend selection cannot
/// perturb determinism digests.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace alert::scale {

template <typename T>
class CalendarQueue {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::size_t kMinBuckets = 16;

  CalendarQueue() { buckets_.assign(kMinBuckets, kNil); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }

  void push(T item) {
    ALERT_INVARIANT(item.time >= 0.0, "CalendarQueue times must be >= 0");
    const std::uint64_t y = year_of(item.time);
    if (size_ == 0 || y < cur_year_) cur_year_ = y;
    const std::uint32_t slot = alloc_slot(std::move(item));
    slots_[slot].year = y;
    link(slot, bucket_of(y));
    ++size_;
    if (min_slot_ != kNil && precedes(slot, min_slot_)) min_slot_ = slot;
    if (size_ > buckets_.size() * 2) rebuild();
  }

  /// The live (time, seq) minimum. Requires !empty().
  [[nodiscard]] const T& min() {
    find_min();
    return slots_[min_slot_].item;
  }

  /// Extract the minimum. Requires !empty().
  T pop_min() {
    find_min();
    const std::uint32_t slot = min_slot_;
    unlink(slot, bucket_of(slots_[slot].year));
    min_slot_ = kNil;
    T out = std::move(slots_[slot].item);
    free_slot(slot);
    --size_;
    // Popping the minimum leaves nothing earlier than its year.
    if (size_ > 0) cur_year_ = year_of(out.time);
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 8) {
      rebuild();
    }
    return out;
  }

  /// Unlink every item matching `pred`; returns how many were removed.
  /// O(size + buckets). Used for tombstone compaction.
  template <typename Pred>
  std::size_t remove_if(Pred&& pred) {
    std::size_t removed = 0;
    for (std::uint32_t& head : buckets_) {
      std::uint32_t slot = head;
      std::uint32_t prev = kNil;
      while (slot != kNil) {
        const std::uint32_t next = slots_[slot].next;
        if (pred(static_cast<const T&>(slots_[slot].item))) {
          if (prev == kNil) {
            head = next;
          } else {
            slots_[prev].next = next;
          }
          slots_[slot].item = T{};  // drop held resources deterministically
          free_slot(slot);
          ++removed;
        } else {
          prev = slot;
        }
        slot = next;
      }
    }
    size_ -= removed;
    min_slot_ = kNil;
    if (removed > 0 && buckets_.size() > kMinBuckets &&
        size_ < buckets_.size() / 8) {
      rebuild();
    }
    return removed;
  }

  /// Visit every live item (audit support; unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const std::uint32_t head : buckets_) {
      for (std::uint32_t slot = head; slot != kNil; slot = slots_[slot].next) {
        fn(static_cast<const T&>(slots_[slot].item));
      }
    }
  }

 private:
  struct Slot {
    T item{};
    std::uint64_t year = 0;
    std::uint32_t next = kNil;
  };

  /// Years past this would overflow the uint64 conversion; everything
  /// beyond collapses into one far-future year (they share a bucket and
  /// are ordered by the exact (time, seq) compare when their turn comes —
  /// this is how sentinel times like sim's kForever stay safe).
  static constexpr double kYearCapF = 9.0e18;
  static constexpr std::uint64_t kYearCap = 9'000'000'000'000'000'000ull;

  [[nodiscard]] std::uint64_t year_of(double t) const {
    const double y = t * inv_width_;
    if (y >= kYearCapF) return kYearCap;
    return static_cast<std::uint64_t>(y);
  }

  [[nodiscard]] std::size_t bucket_of(std::uint64_t year) const {
    return static_cast<std::size_t>(year % buckets_.size());
  }

  [[nodiscard]] bool precedes(std::uint32_t a, std::uint32_t b) const {
    const T& x = slots_[a].item;
    const T& y = slots_[b].item;
    return x.time < y.time || (x.time == y.time && x.seq < y.seq);
  }

  void link(std::uint32_t slot, std::size_t bucket) {
    slots_[slot].next = buckets_[bucket];
    buckets_[bucket] = static_cast<std::uint32_t>(slot);
  }

  /// Remove `slot` from `bucket`'s chain (walks the chain for the
  /// predecessor; chains hold O(1) items while the width is calibrated).
  void unlink(std::uint32_t slot, std::size_t bucket) {
    std::uint32_t cur = buckets_[bucket];
    std::uint32_t prev = kNil;
    while (cur != slot) {
      ALERT_INVARIANT(cur != kNil, "CalendarQueue slot missing from bucket");
      prev = cur;
      cur = slots_[cur].next;
    }
    if (prev == kNil) {
      buckets_[bucket] = slots_[slot].next;
    } else {
      slots_[prev].next = slots_[slot].next;
    }
  }

  [[nodiscard]] std::uint32_t alloc_slot(T item) {
    if (free_head_ != kNil) {
      const std::uint32_t slot = free_head_;
      free_head_ = slots_[slot].next;
      slots_[slot].item = std::move(item);
      return slot;
    }
    // The slab's only growth site; doubling keeps it amortized O(1).
    slots_.push_back(Slot{std::move(item), 0, kNil});
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot(std::uint32_t slot) {
    slots_[slot].next = free_head_;
    free_head_ = slot;
  }

  /// Locate the live minimum and cache it in min_slot_.
  void find_min() {
    ALERT_INVARIANT(size_ > 0, "CalendarQueue::min on empty queue");
    if (min_slot_ != kNil) return;
    std::uint64_t y = cur_year_;
    for (std::size_t lap = 0; lap <= buckets_.size(); ++lap) {
      const std::size_t bucket = bucket_of(y);
      std::uint32_t best = kNil;
      for (std::uint32_t slot = buckets_[bucket]; slot != kNil;
           slot = slots_[slot].next) {
        if (slots_[slot].year != y) continue;
        if (best == kNil || precedes(slot, best)) best = slot;
      }
      if (best != kNil) {
        min_slot_ = best;
        cur_year_ = y;
        return;
      }
      ++y;
    }
    // A whole fruitless lap: the backlog is sparse relative to the bucket
    // span. Scan everything once and jump the cursor to the true minimum.
    std::uint32_t best = kNil;
    for (const std::uint32_t head : buckets_) {
      for (std::uint32_t slot = head; slot != kNil; slot = slots_[slot].next) {
        if (best == kNil || precedes(slot, best)) best = slot;
      }
    }
    ALERT_INVARIANT(best != kNil, "CalendarQueue lost track of its items");
    min_slot_ = best;
    cur_year_ = slots_[best].year;
  }

  /// Re-hash every item into a bucket array sized to the live count, with
  /// the width re-estimated from the live span (span / size * 4 targets a
  /// few items per in-play bucket). Deterministic: inputs are only the
  /// live items. Amortized O(1) per operation via the doubling triggers.
  void rebuild() {
    // Thread every live item onto one chain before the bucket array is
    // reshaped (slot storage itself is untouched).
    std::uint32_t all = kNil;
    double min_t = std::numeric_limits<double>::infinity();
    double max_t = 0.0;
    for (std::uint32_t& head : buckets_) {
      std::uint32_t slot = head;
      while (slot != kNil) {
        const std::uint32_t next = slots_[slot].next;
        const double t = slots_[slot].item.time;
        if (t < min_t) min_t = t;
        if (t > max_t && t < kYearCapF) max_t = t;
        slots_[slot].next = all;
        all = slot;
        slot = next;
      }
      head = kNil;
    }

    std::size_t target = kMinBuckets;
    while (target < size_) target *= 2;
    buckets_.assign(target, kNil);
    if (size_ > 0 && max_t > min_t) {
      width_ = (max_t - min_t) / static_cast<double>(size_) * 4.0;
      if (width_ < 1e-9) width_ = 1e-9;
    }
    inv_width_ = 1.0 / width_;

    std::uint64_t min_year = kYearCap;
    std::uint32_t slot = all;
    while (slot != kNil) {
      const std::uint32_t next = slots_[slot].next;
      const std::uint64_t y = year_of(slots_[slot].item.time);
      slots_[slot].year = y;
      if (y < min_year) min_year = y;
      link(slot, bucket_of(y));
      slot = next;
    }
    if (size_ > 0) cur_year_ = min_year;
    min_slot_ = kNil;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> buckets_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t min_slot_ = kNil;  ///< cached minimum; kNil = not located
  std::size_t size_ = 0;
  std::uint64_t cur_year_ = 0;
  double width_ = 0.01;  ///< initial guess; rebuilds calibrate immediately
  double inv_width_ = 100.0;
};

}  // namespace alert::scale
