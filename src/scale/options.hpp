#pragma once

/// \file options.hpp
/// Scenario-level selection of the alert::scale backends. Every flag
/// defaults to off, and the scenario codec only emits `scale.*` keys when
/// any() is true — the exact pattern the fault block uses — so canonical
/// scenario text, campaign cache keys and every committed digest stay
/// byte-identical for configurations that never opt in.
///
/// The backends are drop-in replacements, not approximations: with any
/// combination of flags enabled, determinism digests must stay bit-identical
/// to the linear-scan / binary-heap / malloc-per-packet configuration (the
/// equivalence suite in tests/integration/scale_equivalence_test.cpp pins
/// this). The flags trade memory and setup cost for asymptotics only.

namespace alert::scale {

/// Which scale backends a scenario runs with. Carried by value through
/// core::ScenarioConfig -> net::NetworkConfig.
struct Backends {
  /// Uniform-grid spatial index behind Network::nodes_within (O(k) range
  /// queries instead of an O(n) scan per transmission).
  bool grid = false;
  /// Calendar-queue EventQueue backend (near-O(1) schedule/pop at millions
  /// of pending events instead of the binary heap's O(log n)).
  bool calendar = false;
  /// Slab-pooled delivery packets: in-flight Packet payloads are recycled
  /// through a scale::SlabPool instead of a fresh heap object per frame.
  bool pool_packets = false;

  [[nodiscard]] constexpr bool any() const {
    return grid || calendar || pool_packets;
  }
  constexpr bool operator==(const Backends&) const = default;
};

}  // namespace alert::scale
