#pragma once

/// \file metrics.hpp
/// The metrics registry: named counters, gauges, samples and histograms,
/// cheap enough for per-event hot paths (a handle is a plain pointer into
/// the registry; an increment is one add). One registry lives per
/// experiment replication — registries are single-threaded by construction
/// and replications communicate only through snapshots, which merge
/// associatively so thread-pool aggregation equals serial aggregation.
///
/// Metric kinds:
///   counter    monotone event count (packets sent, drops by reason)
///   gauge      last-written level (peak queue depth via set_max)
///   sample     util::Accumulator over observations (latency mean/min/max)
///   histogram  util::Histogram with fixed bins (latency distribution)
///
/// Snapshots carry, per metric, both the in-replication aggregate and a
/// per-replication Accumulator so merged results expose cross-replication
/// mean and 95% CI — the same statistics the paper's figures report.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "util/stats.hpp"

namespace alert::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void set_max(double v) { value_ = v > value_ ? v : value_; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Sample, Histogram };

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

/// Frozen value of one metric, tagged with how many replications it has
/// been merged over.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::Counter;

  std::uint64_t total = 0;       ///< counter: sum over merged replications
  util::Accumulator per_rep;     ///< counter/gauge: one sample/replication
  util::Accumulator samples;     ///< sample: merged observation accumulator

  // Histogram state (kind == Histogram): fixed shape, bin-wise mergeable.
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::uint64_t> bins;
};

/// A frozen, mergeable view of a registry. merge() is commutative on
/// counters/histograms and order-stable on accumulators (Chan et al.
/// pairwise combination), so N runs merged serially equal the same runs
/// merged across a thread pool.
struct MetricsSnapshot {
  std::size_t replications = 0;
  std::vector<MetricValue> metrics;  ///< sorted by name

  void merge(const MetricsSnapshot& other);
  [[nodiscard]] const MetricValue* find(std::string_view name) const;
  void write_json(JsonWriter& w) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Handles are stable for the registry's lifetime; registering the same
  /// name twice returns the same handle (kind must match).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  util::Accumulator& sample(std::string_view name);
  util::Histogram& histogram(std::string_view name, double lo, double hi,
                             std::size_t bins);

  /// Freeze the registry into a one-replication snapshot.
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::size_t index;  ///< into the kind-specific store
  };

  const Entry& entry(std::string_view name, MetricKind kind,
                     std::size_t next_index);

  // deques: handle pointers must survive later registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<util::Accumulator> samples_;
  std::deque<util::Histogram> histograms_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace alert::obs
