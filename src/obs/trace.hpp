#pragma once

/// \file trace.hpp
/// Structured trace stream: every interesting simulator event (a frame on
/// the air, a delivery, a drop, a routing decision) becomes one TraceEvent
/// — sim-time, node, packet uid, layer, kind — fanned out to a pluggable
/// sink. Three sink formats ship:
///
///   JSONL   one JSON object per line; easy to grep / load into pandas
///   CSV     spreadsheet-friendly flat table
///   Chrome  the trace_event JSON array format: open the file directly in
///           chrome://tracing or https://ui.perfetto.dev and the run renders
///           as a per-node timeline (tracks = nodes, slices = events).
///
/// Zero-cost-when-disabled: a Tracer with no sink is a null check per call
/// site; no TraceEvent is even constructed (call sites guard on enabled()).

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>

namespace alert::obs {

/// Which layer of the stack emitted the event.
enum class TraceLayer : std::uint8_t {
  App,      ///< application traffic (send / end-to-end delivery)
  Routing,  ///< protocol decisions (forward, RF election, partition)
  Mac,      ///< MAC grants / transmissions
  Channel,  ///< radio channel (deliveries, drops)
  Crypto,   ///< modeled cryptographic operations
  Sim,      ///< simulator housekeeping
};

[[nodiscard]] const char* trace_layer_name(TraceLayer layer);

struct TraceEvent {
  double t = 0.0;            ///< sim-time seconds
  std::uint32_t node = 0;    ///< acting node id
  std::uint64_t uid = 0;     ///< application packet uid (0 = none)
  TraceLayer layer = TraceLayer::Sim;
  const char* kind = "";     ///< short verb: "tx", "deliver", "drop", ...
  double duration = 0.0;     ///< seconds on the air / in the op (0 = instant)
  std::uint64_t aux = 0;     ///< kind-specific extra (drop reason, bytes...)
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void write(const TraceEvent& ev) = 0;
  /// Finalize the document (Chrome needs to close its array). Called once.
  virtual void finish() {}
};

class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(const std::string& path);
  void write(const TraceEvent& ev) override;

 private:
  std::ofstream out_;
};

class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);
  void write(const TraceEvent& ev) override;

 private:
  std::ofstream out_;
};

/// Chrome trace_event "JSON array format". Each event becomes a complete
/// ("X") slice on track (pid=0, tid=node) with ts/dur in microseconds of
/// sim-time, so one microsecond of simulated time is one microsecond on the
/// Perfetto timeline.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;
  void write(const TraceEvent& ev) override;
  void finish() override;

 private:
  std::ofstream out_;
  bool wrote_event_ = false;
  bool finished_ = false;
};

/// Sink factory keyed on the file extension: ".jsonl" / ".csv" /
/// anything else (".json", ".trace") → Chrome trace_event format.
[[nodiscard]] std::unique_ptr<TraceSink> make_trace_sink(
    const std::string& path);

/// The per-replication trace handle components write through. Holding a
/// null sink (the default) disables tracing at the cost of one pointer
/// compare per call site.
class Tracer {
 public:
  Tracer() = default;
  explicit Tracer(TraceSink* sink) : sink_(sink) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

  void emit(const TraceEvent& ev) {
    if (sink_ != nullptr) sink_->write(ev);
  }

 private:
  TraceSink* sink_ = nullptr;  // non-owning
};

}  // namespace alert::obs
