#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace alert::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Sample: return "sample";
    case MetricKind::Histogram: return "histogram";
  }
  return "unknown";
}

const MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                                     MetricKind kind,
                                                     std::size_t next_index) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    ALERT_INVARIANT(it->second.kind == kind,
                    "metric re-registered with a different kind");
    return it->second;
  }
  return entries_
      .emplace(std::string(name), Entry{std::string(name), kind, next_index})
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const Entry& e = entry(name, MetricKind::Counter, counters_.size());
  if (e.index == counters_.size()) counters_.emplace_back();
  return counters_[e.index];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const Entry& e = entry(name, MetricKind::Gauge, gauges_.size());
  if (e.index == gauges_.size()) gauges_.emplace_back();
  return gauges_[e.index];
}

util::Accumulator& MetricsRegistry::sample(std::string_view name) {
  const Entry& e = entry(name, MetricKind::Sample, samples_.size());
  if (e.index == samples_.size()) samples_.emplace_back();
  return samples_[e.index];
}

util::Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                            double hi, std::size_t bins) {
  const Entry& e = entry(name, MetricKind::Histogram, histograms_.size());
  if (e.index == histograms_.size()) histograms_.emplace_back(lo, hi, bins);
  util::Histogram& h = histograms_[e.index];
  ALERT_INVARIANT(h.low() == lo && h.high() == hi && h.bins() == bins,
                  "histogram re-registered with a different shape");
  return h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.replications = 1;
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {  // std::map: already name-sorted
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::Counter:
        v.total = counters_[e.index].value();
        v.per_rep.add(static_cast<double>(v.total));
        break;
      case MetricKind::Gauge:
        v.per_rep.add(gauges_[e.index].value());
        break;
      case MetricKind::Sample:
        v.samples = samples_[e.index];
        break;
      case MetricKind::Histogram: {
        const util::Histogram& h = histograms_[e.index];
        v.lo = h.low();
        v.hi = h.high();
        v.bins.resize(h.bins());
        for (std::size_t i = 0; i < h.bins(); ++i) {
          v.bins[i] = h.bin_count(i);
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

namespace {

void merge_value(MetricValue& into, const MetricValue& from) {
  ALERT_INVARIANT(into.kind == from.kind,
                  "merging metrics of different kinds");
  switch (into.kind) {
    case MetricKind::Counter:
      into.total += from.total;
      into.per_rep.merge(from.per_rep);
      break;
    case MetricKind::Gauge:
      into.per_rep.merge(from.per_rep);
      break;
    case MetricKind::Sample:
      into.samples.merge(from.samples);
      break;
    case MetricKind::Histogram:
      ALERT_INVARIANT(into.lo == from.lo && into.hi == from.hi &&
                          into.bins.size() == from.bins.size(),
                      "merging histograms of different shapes");
      for (std::size_t i = 0; i < into.bins.size(); ++i) {
        into.bins[i] += from.bins[i];
      }
      break;
  }
}

}  // namespace

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  replications += other.replications;
  // Sorted two-way merge by name: metrics present on both sides combine,
  // one-sided metrics carry over (a replication that never touched a
  // counter simply contributes nothing to it).
  std::vector<MetricValue> merged;
  merged.reserve(metrics.size() + other.metrics.size());
  std::size_t i = 0, j = 0;
  while (i < metrics.size() || j < other.metrics.size()) {
    if (j >= other.metrics.size() ||
        (i < metrics.size() && metrics[i].name < other.metrics[j].name)) {
      merged.push_back(std::move(metrics[i++]));
    } else if (i >= metrics.size() ||
               other.metrics[j].name < metrics[i].name) {
      merged.push_back(other.metrics[j++]);
    } else {
      merged.push_back(std::move(metrics[i++]));
      merge_value(merged.back(), other.metrics[j++]);
    }
  }
  metrics = std::move(merged);
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricValue& v, std::string_view n) { return v.name < n; });
  return it != metrics.end() && it->name == name ? &*it : nullptr;
}

namespace {

void write_accumulator(JsonWriter& w, const char* key,
                       const util::Accumulator& acc) {
  w.key(key);
  w.begin_object();
  w.field("count", acc.count());
  w.field("mean", acc.mean());
  w.field("min", acc.min());
  w.field("max", acc.max());
  w.field("stddev", acc.stddev());
  w.field("ci95", acc.ci95_halfwidth());
  w.end_object();
}

}  // namespace

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("replications", replications);
  w.key("metrics");
  w.begin_array();
  for (const MetricValue& v : metrics) {
    w.begin_object();
    w.field("name", v.name);
    w.field("kind", metric_kind_name(v.kind));
    switch (v.kind) {
      case MetricKind::Counter:
        w.field("total", v.total);
        write_accumulator(w, "per_replication", v.per_rep);
        break;
      case MetricKind::Gauge:
        write_accumulator(w, "per_replication", v.per_rep);
        break;
      case MetricKind::Sample:
        write_accumulator(w, "samples", v.samples);
        break;
      case MetricKind::Histogram:
        w.field("lo", v.lo);
        w.field("hi", v.hi);
        w.key("bins");
        w.begin_array();
        for (const std::uint64_t b : v.bins) w.value(b);
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace alert::obs
