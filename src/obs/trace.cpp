#include "obs/trace.hpp"

#include "obs/json.hpp"

namespace alert::obs {

const char* trace_layer_name(TraceLayer layer) {
  switch (layer) {
    case TraceLayer::App: return "app";
    case TraceLayer::Routing: return "routing";
    case TraceLayer::Mac: return "mac";
    case TraceLayer::Channel: return "channel";
    case TraceLayer::Crypto: return "crypto";
    case TraceLayer::Sim: return "sim";
  }
  return "unknown";
}

// --- JSONL -----------------------------------------------------------------

JsonlTraceSink::JsonlTraceSink(const std::string& path) : out_(path) {}

void JsonlTraceSink::write(const TraceEvent& ev) {
  JsonWriter w(out_);
  w.begin_object();
  w.field("t", ev.t);
  w.field("node", static_cast<std::uint64_t>(ev.node));
  w.field("uid", ev.uid);
  w.field("layer", trace_layer_name(ev.layer));
  w.field("kind", ev.kind);
  if (ev.duration > 0.0) w.field("dur", ev.duration);
  if (ev.aux != 0) w.field("aux", ev.aux);
  w.end_object();
  out_ << '\n';
}

// --- CSV -------------------------------------------------------------------

CsvTraceSink::CsvTraceSink(const std::string& path) : out_(path) {
  out_ << "t,node,uid,layer,kind,dur,aux\n";
}

void CsvTraceSink::write(const TraceEvent& ev) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9f", ev.t);
  out_ << buf << ',' << ev.node << ',' << ev.uid << ','
       << trace_layer_name(ev.layer) << ',' << ev.kind << ',';
  std::snprintf(buf, sizeof buf, "%.9f", ev.duration);
  out_ << buf << ',' << ev.aux << '\n';
}

// --- Chrome trace_event ----------------------------------------------------

ChromeTraceSink::ChromeTraceSink(const std::string& path) : out_(path) {
  out_ << "[\n";
}

ChromeTraceSink::~ChromeTraceSink() { finish(); }

void ChromeTraceSink::write(const TraceEvent& ev) {
  if (wrote_event_) out_ << ",\n";
  wrote_event_ = true;
  JsonWriter w(out_);
  w.begin_object();
  w.field("name", ev.kind);
  w.field("cat", trace_layer_name(ev.layer));
  // Complete events need dur > 0 to be visible as slices; instants get the
  // dedicated "i" phase.
  if (ev.duration > 0.0) {
    w.field("ph", "X");
    w.field("dur", ev.duration * 1e6);
  } else {
    w.field("ph", "i");
    w.field("s", "t");  // thread-scoped instant
  }
  w.field("ts", ev.t * 1e6);
  w.field("pid", std::uint64_t{0});
  w.field("tid", static_cast<std::uint64_t>(ev.node));
  w.key("args");
  w.begin_object();
  w.field("uid", ev.uid);
  if (ev.aux != 0) w.field("aux", ev.aux);
  w.end_object();
  w.end_object();
}

void ChromeTraceSink::finish() {
  if (finished_) return;
  finished_ = true;
  // The JSON array format tolerates a trailing comma-less close; metadata
  // events name the tracks after the node ids.
  out_ << "\n]\n";
  out_.flush();
}

// --- factory ---------------------------------------------------------------

namespace {

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

std::unique_ptr<TraceSink> make_trace_sink(const std::string& path) {
  if (ends_with(path, ".jsonl")) {
    return std::make_unique<JsonlTraceSink>(path);
  }
  if (ends_with(path, ".csv")) {
    return std::make_unique<CsvTraceSink>(path);
  }
  return std::make_unique<ChromeTraceSink>(path);
}

}  // namespace alert::obs
