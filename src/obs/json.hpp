#pragma once

/// \file json.hpp
/// Minimal streaming JSON writer for the observability artifacts (metrics
/// snapshots, run manifests, Chrome trace_event streams). No DOM, no
/// allocation beyond the output buffer: callers emit tokens in document
/// order and the writer tracks commas and nesting. Numbers are printed
/// with enough digits to round-trip doubles (%.17g), NaN/Inf as null
/// (JSON has no encoding for them).

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace alert::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // --- containers ---------------------------------------------------------
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit `"name":` — must be followed by exactly one value or container.
  void key(std::string_view name);

  // --- values -------------------------------------------------------------
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  // --- shorthands ---------------------------------------------------------
  template <typename T>
  void field(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// Escape `s` into a double-quoted JSON string literal.
  static std::string escape(std::string_view s);

 private:
  void separator();

  std::ostream& out_;
  /// One entry per open container: true once the first element was written
  /// (the next element needs a leading comma).
  std::vector<bool> wrote_element_;
  bool pending_key_ = false;
};

}  // namespace alert::obs
