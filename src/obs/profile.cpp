#include "obs/profile.hpp"

#include <algorithm>
#include <cstdio>

namespace alert::obs {

ScopeId Profiler::scope(std::string_view name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const ScopeId id = stats_.size();
  stats_.push_back(ScopeStats{std::string(name), 0, 0, 0});
  ids_.emplace(std::string(name), id);
  return id;
}

ProfileReport Profiler::report() const {
  ProfileReport out;
  out.scopes = stats_;
  std::sort(out.scopes.begin(), out.scopes.end(),
            [](const ScopeStats& a, const ScopeStats& b) {
              return a.name < b.name;
            });
  return out;
}

void ProfileReport::merge(const ProfileReport& other) {
  std::vector<ScopeStats> merged;
  merged.reserve(scopes.size() + other.scopes.size());
  std::size_t i = 0, j = 0;
  while (i < scopes.size() || j < other.scopes.size()) {
    if (j >= other.scopes.size() ||
        (i < scopes.size() && scopes[i].name < other.scopes[j].name)) {
      merged.push_back(std::move(scopes[i++]));
    } else if (i >= scopes.size() || other.scopes[j].name < scopes[i].name) {
      merged.push_back(other.scopes[j++]);
    } else {
      ScopeStats s = std::move(scopes[i++]);
      const ScopeStats& o = other.scopes[j++];
      s.count += o.count;
      s.total_ns += o.total_ns;
      s.max_ns = std::max(s.max_ns, o.max_ns);
      merged.push_back(std::move(s));
    }
  }
  scopes = std::move(merged);
}

const ScopeStats* ProfileReport::find(std::string_view name) const {
  const auto it = std::lower_bound(
      scopes.begin(), scopes.end(), name,
      [](const ScopeStats& s, std::string_view n) { return s.name < n; });
  return it != scopes.end() && it->name == name ? &*it : nullptr;
}

void ProfileReport::write_json(JsonWriter& w) const {
  w.begin_array();
  for (const ScopeStats& s : scopes) {
    w.begin_object();
    w.field("name", s.name);
    w.field("count", s.count);
    w.field("total_ns", s.total_ns);
    w.field("max_ns", s.max_ns);
    w.field("mean_ns",
            s.count == 0 ? 0.0
                         : static_cast<double>(s.total_ns) /
                               static_cast<double>(s.count));
    w.end_object();
  }
  w.end_array();
}

std::string ProfileReport::summary() const {
  std::vector<const ScopeStats*> by_time;
  by_time.reserve(scopes.size());
  for (const ScopeStats& s : scopes) by_time.push_back(&s);
  std::sort(by_time.begin(), by_time.end(),
            [](const ScopeStats* a, const ScopeStats* b) {
              return a->total_ns > b->total_ns;
            });
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %12s %12s %10s %10s\n", "scope",
                "count", "total_ms", "mean_us", "max_us");
  out += line;
  for (const ScopeStats* s : by_time) {
    const double mean_us =
        s->count == 0 ? 0.0
                      : static_cast<double>(s->total_ns) /
                            static_cast<double>(s->count) / 1e3;
    std::snprintf(line, sizeof line, "%-28s %12llu %12.3f %10.3f %10.3f\n",
                  s->name.c_str(),
                  static_cast<unsigned long long>(s->count),
                  static_cast<double>(s->total_ns) / 1e6, mean_us,
                  static_cast<double>(s->max_ns) / 1e3);
    out += line;
  }
  return out;
}

}  // namespace alert::obs
