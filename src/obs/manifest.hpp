#pragma once

/// \file manifest.hpp
/// The run manifest: one JSON document capturing everything needed to
/// reproduce and interpret a run — the scenario parameters, seed,
/// replication count, git version, per-replication determinism digests, the
/// merged metrics snapshot, the wall-clock self-profile, and the result
/// series. Every figure bench emits one of these (via the campaign engine,
/// src/campaign/engine.cpp)
/// so downstream tooling consumes a uniform artifact; the schema is
/// validated by tools/check_manifest.py in CI and documented in
/// docs/OBSERVABILITY.md.
///
/// Schema id: "alertsim-run-manifest/1".

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "util/stats.hpp"

namespace alert::obs {

inline constexpr const char* kManifestSchema = "alertsim-run-manifest/1";

/// How a distributed fan-out (src/dist/) converged: worker count and the
/// fault-tolerance events absorbed along the way. Optional on the manifest
/// (absent = single-process or not requested) so default manifests stay
/// byte-identical across live/cached/distributed runs.
struct DistSummary {
  std::uint64_t workers = 0;          ///< distinct worker ids that claimed
  std::uint64_t reclaimed_leases = 0; ///< stale leases broken
  std::uint64_t retries = 0;          ///< executions beyond each unit's first
  std::uint64_t poisoned_units = 0;   ///< units quarantined
};

struct RunManifest {
  std::string name;         ///< machine id, e.g. "fig14a_latency_vs_nodes"
  std::string title;        ///< human title, e.g. "Fig. 14a — latency ..."
  std::string x_label;
  std::string y_label;

  /// Flat key=value scenario/config dump (strings keep the schema stable).
  std::vector<std::pair<std::string, std::string>> params;

  std::uint64_t seed = 0;
  std::size_t replications = 0;

  /// Per-replication event-trace digests of the runs that fed this
  /// manifest (order: completion order; the multiset is deterministic).
  std::vector<std::uint64_t> trace_digests;

  /// Peak resident-set size of the emitting process (obs::peak_rss_bytes),
  /// stamped only when memory recording was requested (--peak-rss / the
  /// perf suite). 0 = not measured, and the field is omitted from the JSON
  /// so byte-identity contracts (cold vs cached campaign manifests) are
  /// untouched by default.
  std::uint64_t peak_rss_bytes = 0;

  /// Distributed-convergence summary (see DistSummary). Only stamped when a
  /// dist aggregation requested it; omitted from the JSON otherwise.
  bool has_dist = false;
  DistSummary dist;

  MetricsSnapshot metrics;
  ProfileReport profile;
  std::vector<util::Series> series;
  std::vector<std::string> notes;

  void add_param(std::string key, std::string value) {
    params.emplace_back(std::move(key), std::move(value));
  }

  void write_json(std::ostream& out) const;
  /// Write to `path`; returns false (and logs) on I/O failure.
  bool write_file(const std::string& path) const;
};

/// The project version string baked in at configure time
/// (`git describe --always --dirty`, or "unknown" outside a git checkout).
[[nodiscard]] const char* build_version();

}  // namespace alert::obs
