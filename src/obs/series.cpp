#include "obs/series.hpp"

#include <cstdio>
#include <map>

namespace alert::obs {

void print_series_table(const std::string& title, const std::string& x_label,
                        const std::string& y_label,
                        const std::vector<util::Series>& series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("y: %s\n", y_label.c_str());
  std::printf("%-12s", x_label.c_str());
  for (const auto& s : series) std::printf("  %-22s", s.name.c_str());
  std::printf("\n");

  // Collect the union of x values (series may be sparse).
  std::map<double, std::vector<const util::SeriesPoint*>> rows;
  for (std::size_t si = 0; si < series.size(); ++si) {
    for (const auto& p : series[si].points) {
      auto& row = rows[p.x];
      row.resize(series.size(), nullptr);
      row[si] = &p;
    }
  }
  for (const auto& [x, row] : rows) {
    std::printf("%-12.4g", x);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const util::SeriesPoint* p = si < row.size() ? row[si] : nullptr;
      if (p == nullptr) {
        std::printf("  %-22s", "-");
      } else if (p->ci > 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.4g (+/-%.2g)", p->y, p->ci);
        std::printf("  %-22s", buf);
      } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.4g", p->y);
        std::printf("  %-22s", buf);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

void write_series_json(JsonWriter& w,
                       const std::vector<util::Series>& series) {
  w.begin_array();
  for (const auto& s : series) {
    w.begin_object();
    w.field("name", s.name);
    w.key("points");
    w.begin_array();
    for (const auto& p : s.points) {
      w.begin_object();
      w.field("x", p.x);
      w.field("y", p.y);
      w.field("ci", p.ci);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

void print_figure_banner(const std::string& title,
                         const std::string& subtitle) {
  std::printf("# %s\n", title.c_str());
  if (!subtitle.empty()) std::printf("# %s\n", subtitle.c_str());
  std::fflush(stdout);
}

void print_text_line(const std::string& line) {
  std::printf("%s\n", line.c_str());
  std::fflush(stdout);
}

}  // namespace alert::obs
