#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace alert::obs {

void JsonWriter::separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value belongs to the key just written; no comma
  }
  if (!wrote_element_.empty()) {
    if (wrote_element_.back()) out_ << ',';
    wrote_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separator();
  wrote_element_.push_back(false);
  out_ << '{';
}

void JsonWriter::end_object() {
  wrote_element_.pop_back();
  out_ << '}';
}

void JsonWriter::begin_array() {
  separator();
  wrote_element_.push_back(false);
  out_ << '[';
}

void JsonWriter::end_array() {
  wrote_element_.pop_back();
  out_ << ']';
}

void JsonWriter::key(std::string_view name) {
  separator();
  out_ << escape(name) << ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  separator();
  out_ << escape(s);
}

void JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::uint64_t v) {
  separator();
  out_ << v;
}

void JsonWriter::value(std::int64_t v) {
  separator();
  out_ << v;
}

void JsonWriter::value(bool v) {
  separator();
  out_ << (v ? "true" : "false");
}

void JsonWriter::null() {
  separator();
  out_ << "null";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace alert::obs
