#pragma once

/// \file profile.hpp
/// Wall-clock self-profiling scopes for the simulator's hot paths: event
/// dispatch, MAC/channel transmission, per-protocol routing decisions. A
/// scope is registered once by name (cheap string lookup at setup time) and
/// then timed through a ScopeId — the RAII timer is two steady_clock reads
/// when a Profiler is attached and a single null check when not. Profiling
/// reads the host clock but never feeds the determinism digest, so enabling
/// it cannot change simulation results (see docs/OBSERVABILITY.md).
///
/// ALERT_OBS_TIMED compiles to nothing under ALERTSIM_NO_OBS, giving a
/// hard zero-cost build for perf-critical release binaries.

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace alert::obs {

using ScopeId = std::size_t;

struct ScopeStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

/// Frozen, mergeable per-run self-profile.
struct ProfileReport {
  std::vector<ScopeStats> scopes;  ///< sorted by name

  void merge(const ProfileReport& other);
  [[nodiscard]] const ScopeStats* find(std::string_view name) const;
  void write_json(JsonWriter& w) const;
  /// Human-readable table (one line per scope, sorted by total time).
  [[nodiscard]] std::string summary() const;
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Register (or look up) a scope. Not for hot paths — resolve once, keep
  /// the id.
  ScopeId scope(std::string_view name);

  void record(ScopeId id, std::uint64_t ns) {
    ScopeStats& s = stats_[id];
    ++s.count;
    s.total_ns += ns;
    s.max_ns = ns > s.max_ns ? ns : s.max_ns;
  }

  [[nodiscard]] ProfileReport report() const;

 private:
  std::vector<ScopeStats> stats_;
  std::map<std::string, ScopeId, std::less<>> ids_;
};

[[nodiscard]] inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII wall-clock scope. A null profiler makes construction and
/// destruction a branch each.
class ScopeTimer {
 public:
  ScopeTimer(Profiler* profiler, ScopeId id) : profiler_(profiler), id_(id) {
    if (profiler_ != nullptr) start_ns_ = monotonic_ns();
  }
  ~ScopeTimer() {
    if (profiler_ != nullptr) {
      profiler_->record(id_, monotonic_ns() - start_ns_);
    }
  }
  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  Profiler* profiler_;
  ScopeId id_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace alert::obs

// Compile-time gate: -DALERTSIM_NO_OBS strips every timed scope from the
// binaries (the runtime null-check fast path is already <1ns, but the hard
// switch exists for perf forensics and for proving the instrumentation
// inert).
#if defined(ALERTSIM_NO_OBS)
#define ALERT_OBS_TIMED(profiler, id) \
  do {                                \
  } while (0)
#else
#define ALERT_OBS_TIMED_CONCAT2(a, b) a##b
#define ALERT_OBS_TIMED_CONCAT(a, b) ALERT_OBS_TIMED_CONCAT2(a, b)
#define ALERT_OBS_TIMED(profiler, id)                     \
  ::alert::obs::ScopeTimer ALERT_OBS_TIMED_CONCAT(        \
      alert_obs_timer_, __LINE__)(profiler, id)
#endif
