#pragma once

/// \file series.hpp
/// Figure-series presentation: the aligned text table the benches print
/// (the textual equivalent of a paper figure) and the machine-readable JSON
/// form embedded in run manifests. Lives in obs because stdout output is an
/// observability concern — the alert-lint raw-stdout rule confines direct
/// printing to util/logging and the obs sinks/exporters.

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/stats.hpp"

namespace alert::obs {

/// Print a set of series as an aligned table, one row per x value, one
/// column per series, in the style `y (+/- ci)`.
void print_series_table(const std::string& title, const std::string& x_label,
                        const std::string& y_label,
                        const std::vector<util::Series>& series);

/// Emit the same series as a JSON array:
/// [{"name": ..., "points": [{"x":, "y":, "ci":}, ...]}, ...]
void write_series_json(JsonWriter& w, const std::vector<util::Series>& series);

/// The figure banner the benches print before a run: "# title" plus an
/// optional subtitle line ("# subtitle").
void print_figure_banner(const std::string& title, const std::string& subtitle);

/// One free-form stdout line (figure commentary, campaign progress
/// summaries). Lives here because stdout is confined to util/logging and
/// the obs exporters (the alert-lint raw-stdout rule).
void print_text_line(const std::string& line);

}  // namespace alert::obs
