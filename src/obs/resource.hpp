#pragma once

/// \file resource.hpp
/// Process resource observations for run manifests and the perf suite
/// (src/perf): currently the peak resident-set size, read straight from the
/// kernel's accounting (`getrusage(RUSAGE_SELF)`), so macro benches report
/// memory without an external wrapper like /usr/bin/time.
///
/// Peak RSS is process-cumulative and monotone — it never shrinks, and a
/// second measurement in the same process covers everything that ran before
/// it. It is host observability only and must never feed determinism
/// digests or cache keys (same contract as the wall-clock self-profiler).

#include <cstdint>

namespace alert::obs {

/// Peak resident-set size of the calling process in bytes, or 0 when the
/// platform offers no `getrusage` (the caller treats 0 as "not measured";
/// manifests omit the field entirely).
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace alert::obs
