#include "obs/manifest.hpp"

#include <fstream>

#include "obs/series.hpp"
#include "util/logging.hpp"

namespace alert::obs {

const char* build_version() {
#if defined(ALERTSIM_GIT_DESCRIBE)
  return ALERTSIM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

void RunManifest::write_json(std::ostream& out) const {
  JsonWriter w(out);
  w.begin_object();
  w.field("schema", kManifestSchema);
  w.field("name", name);
  w.field("title", title);
  w.field("x_label", x_label);
  w.field("y_label", y_label);
  w.field("version", build_version());
  w.field("seed", seed);
  w.field("replications", replications);

  w.key("params");
  w.begin_object();
  for (const auto& [key, value] : params) w.field(key, value);
  w.end_object();

  w.key("trace_digests");
  w.begin_array();
  for (const std::uint64_t d : trace_digests) w.value(d);
  w.end_array();

  // Optional: present only when memory recording was requested, so default
  // manifests stay byte-identical across live/cached/resumed runs.
  if (peak_rss_bytes > 0) w.field("peak_rss_bytes", peak_rss_bytes);

  // Optional: present only when a distributed aggregation stamped its
  // convergence summary (--dist-summary); same byte-identity rationale.
  if (has_dist) {
    w.key("dist");
    w.begin_object();
    w.field("workers", dist.workers);
    w.field("reclaimed_leases", dist.reclaimed_leases);
    w.field("retries", dist.retries);
    w.field("poisoned_units", dist.poisoned_units);
    w.end_object();
  }

  w.key("metrics");
  metrics.write_json(w);

  w.key("profile");
  profile.write_json(w);

  w.key("series");
  write_series_json(w, series);

  w.key("notes");
  w.begin_array();
  for (const std::string& n : notes) w.value(n);
  w.end_array();

  w.end_object();
  out << '\n';
}

bool RunManifest::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    ALERT_LOG_ERROR("manifest: cannot open '%s' for writing", path.c_str());
    return false;
  }
  write_json(out);
  return out.good();
}

}  // namespace alert::obs
