#include "obs/resource.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace alert::obs {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const auto max_rss = static_cast<std::uint64_t>(usage.ru_maxrss);
#if defined(__APPLE__)
  return max_rss;  // ru_maxrss is already bytes on Darwin
#else
  return max_rss * 1024;  // Linux/BSD report KiB
#endif
#else
  return 0;
#endif
}

}  // namespace alert::obs
