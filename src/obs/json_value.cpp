#include "obs/json_value.hpp"

#include <cctype>
#include <cstdlib>

namespace alert::obs {

namespace {

/// Recursive-descent parser over a string_view. Positions are byte offsets
/// into the original document for error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value(0);
    if (!v) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  // Deep enough for any artifact this project writes; bounds stack use on
  // hostile input.
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::nullopt_t fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': {
        std::optional<std::string> s = string();
        if (!s) return std::nullopt;
        return JsonValue::make_string(std::move(*s));
      }
      case 't':
        if (consume_word("true")) return JsonValue::make_bool(true);
        return fail("bad literal");
      case 'f':
        if (consume_word("false")) return JsonValue::make_bool(false);
        return fail("bad literal");
      case 'n':
        if (consume_word("null")) return JsonValue::make_null();
        return fail("bad literal");
      default: return number();
    }
  }

  std::optional<JsonValue> number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("bad number");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (consume('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad number: digits required after '.'");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("bad number: digits required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return JsonValue::make_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return std::nullopt;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail("bad \\u escape");
                return std::nullopt;
              }
            }
            // UTF-8 encode the BMP code point (JsonWriter::escape only
            // emits \u00XX for control bytes, but accept the full range).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
            return std::nullopt;
        }
        continue;
      }
      out.push_back(c);
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> array(int depth) {
    consume('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) return JsonValue::make_array(std::move(items));
    for (;;) {
      std::optional<JsonValue> v = value(depth + 1);
      if (!v) return std::nullopt;
      items.push_back(std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue::make_array(std::move(items));
      return fail("expected ',' or ']'");
    }
  }

  std::optional<JsonValue> object(int depth) {
    consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    for (;;) {
      skip_ws();
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      std::optional<JsonValue> v = value(depth + 1);
      if (!v) return std::nullopt;
      members.emplace_back(std::move(*key), std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue::make_object(std::move(members));
      return fail("expected ',' or '}'");
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool JsonValue::as_bool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

double JsonValue::as_double(double fallback) const {
  if (kind_ != Kind::Number) return fallback;
  return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (kind_ != Kind::Number || scalar_.empty() || scalar_[0] == '-') {
    return fallback;
  }
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (kind_ != Kind::Number) return fallback;
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string& JsonValue::as_string() const {
  static const std::string kEmpty;
  return kind_ == Kind::String ? scalar_ : kEmpty;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  static const JsonValue kNull;
  if (kind_ != Kind::Array || i >= array_.size()) return kNull;
  return array_[i];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(std::string raw) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.scalar_ = std::move(raw);
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.object_ = std::move(members);
  return v;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  Parser p(text);
  return p.parse(error);
}

}  // namespace alert::obs
