#pragma once

/// \file json_value.hpp
/// Minimal JSON reader: the counterpart of JsonWriter (json.hpp) for the
/// artifacts this project both writes and reads back — campaign spec files,
/// the content-addressed result cache, and tests that verify run manifests
/// round-trip. Strict RFC 8259 subset: no comments, no trailing commas.
///
/// Numbers keep their raw source text so integer values round-trip exactly
/// (a std::uint64_t trace digest must not lose low bits through a double);
/// as_double()/as_u64()/as_i64() parse on demand.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alert::obs {

class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  // Scalar accessors. Calling a mismatched accessor returns the fallback
  // rather than dying: cache/spec readers treat malformed input as a miss.
  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  [[nodiscard]] std::int64_t as_i64(std::int64_t fallback = 0) const;
  [[nodiscard]] const std::string& as_string() const;  ///< "" if not a string

  /// Raw source text of a number token (exact, unparsed).
  [[nodiscard]] const std::string& raw_number() const { return scalar_; }

  // Containers.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const JsonValue& at(std::size_t i) const;  ///< array element
  [[nodiscard]] const std::vector<JsonValue>& array() const { return array_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& object()
      const {
    return object_;
  }
  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  // Construction (used by the parser; exposed for tests).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(std::string raw);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  ///< string value, or raw number token
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). Returns nullopt and fills `error` (with a byte offset) on
/// malformed input.
[[nodiscard]] std::optional<JsonValue> parse_json(std::string_view text,
                                                  std::string* error = nullptr);

}  // namespace alert::obs
