#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/check.hpp"

namespace alert::sim {

void EventQueue::set_backend(QueueBackend backend) {
  ALERT_INVARIANT(next_id_ == 1 && heap_.empty() && calendar_.empty(),
                  "queue backend must be selected before the first schedule");
  backend_ = backend;
}

std::size_t EventQueue::physical_size() const {
  return backend_ == QueueBackend::BinaryHeap ? heap_.size()
                                              : calendar_.size();
}

EventId EventQueue::schedule(Time when, Action action) {
  ALERT_INVARIANT(when == when, "scheduling at NaN time");
  const EventId id = next_id_++;
  pending_set(id);
  if (backend_ == QueueBackend::BinaryHeap) {
    heap_.push_back(Entry{when, next_seq_++, id, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  } else {
    calendar_.push(Entry{when, next_seq_++, id, std::move(action)});
  }
  ++live_count_;
  if (++ops_since_audit_ >= kAuditPeriod) audit();
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Pending membership covers already-fired, already-cancelled and
  // never-existed alike; the bit test replaces the retired O(n) scans.
  if (!pending_test(id)) return false;
  pending_clear(id);
  cancelled_.insert(id);
  ALERT_INVARIANT(live_count_ > 0, "cancel with no live events");
  --live_count_;
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (cancelled_.size() * 2 <= physical_size()) return;
  const auto dead = [this](const Entry& e) {
    return cancelled_.find(e.id) != cancelled_.end();
  };
  if (backend_ == QueueBackend::BinaryHeap) {
    std::erase_if(heap_, dead);
    std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
  } else {
    calendar_.remove_if(dead);
  }
  cancelled_.clear();
}

void EventQueue::skip_cancelled() const {
  if (cancelled_.empty()) return;  // keep cancel-free pops hash-probe-free
  if (backend_ == QueueBackend::BinaryHeap) {
    while (!heap_.empty()) {
      const auto it = cancelled_.find(heap_.front().id);
      if (it == cancelled_.end()) break;
      // Reclaim the tombstone with the entry, so a drained queue always
      // has an empty tombstone set (the no-stale-event invariant below).
      cancelled_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
      heap_.pop_back();
    }
    ALERT_INVARIANT(!heap_.empty() || cancelled_.empty(),
                    "tombstones for events no longer in the heap");
  } else {
    while (!calendar_.empty()) {
      const auto it = cancelled_.find(calendar_.min().id);
      if (it == cancelled_.end()) break;
      cancelled_.erase(it);
      (void)calendar_.pop_min();
    }
    ALERT_INVARIANT(!calendar_.empty() || cancelled_.empty(),
                    "tombstones for events no longer in the calendar");
  }
}

Time EventQueue::next_time() const {
  skip_cancelled();
  ALERT_INVARIANT(physical_size() > 0, "next_time() on an empty queue");
  return backend_ == QueueBackend::BinaryHeap ? heap_.front().time
                                              : calendar_.min().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  ALERT_INVARIANT(physical_size() > 0, "pop() on an empty queue");
  Entry e;
  if (backend_ == QueueBackend::BinaryHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    e = std::move(heap_.back());
    heap_.pop_back();
  } else {
    e = calendar_.pop_min();
  }
  ALERT_INVARIANT(
      cancelled_.empty() || cancelled_.find(e.id) == cancelled_.end(),
      "stale (cancelled) event about to fire");
  pending_clear(e.id);
  --live_count_;
  ALERT_INVARIANT(e.time >= last_popped_,
                  "event-queue monotonicity violated: time went backwards");
  last_popped_ = e.time;
  // Extraction shrinks the store, so buried tombstones can cross the
  // half-the-store bound here too, not just on cancel.
  maybe_compact();
  if (++ops_since_audit_ >= kAuditPeriod) audit();
  return Fired{e.time, e.seq, std::move(e.action)};
}

void EventQueue::audit() const {
  ops_since_audit_ = 0;
#if ALERT_CHECKED_BUILD
  // Every stored entry is either pending or tombstoned; every tombstone
  // refers to a stored entry; the live count matches both views.
  std::size_t tombstoned = 0;
  const auto check_entry = [this, &tombstoned](const Entry& e) {
    const bool dead = cancelled_.find(e.id) != cancelled_.end();
    const bool live = pending_test(e.id);
    ALERT_ASSERT(dead != live,
                 "stored event neither pending nor tombstoned (or both)");
    if (dead) ++tombstoned;
  };
  if (backend_ == QueueBackend::BinaryHeap) {
    for (const Entry& e : heap_) check_entry(e);
    // Heap property (min-heap via operator>).
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      ALERT_ASSERT(!(heap_[(i - 1) / 2] > heap_[i]),
                   "binary heap property violated");
    }
  } else {
    calendar_.for_each(check_entry);
  }
  ALERT_ASSERT(tombstoned == cancelled_.size(),
               "tombstone for an event missing from the store");
  ALERT_ASSERT(physical_size() >= tombstoned,
               "more tombstones than stored entries");
  ALERT_ASSERT(live_count_ == physical_size() - tombstoned,
               "live_count_ out of sync with store/tombstone bookkeeping");
  std::size_t pending_count = 0;
  for (const std::uint64_t word : pending_bits_) {
    pending_count += static_cast<std::size_t>(std::popcount(word));
  }
  ALERT_ASSERT(pending_count == live_count_,
               "pending bitmap out of sync with live_count_");
  // Compaction bound: tombstones never exceed half the store for long.
  ALERT_ASSERT(cancelled_.size() * 2 <= physical_size() + 1,
               "tombstone compaction failed to trigger");
#endif
}

}  // namespace alert::sim
