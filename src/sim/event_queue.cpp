#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace alert::sim {

EventId EventQueue::schedule(Time when, Action action) {
  ALERT_INVARIANT(when == when, "scheduling at NaN time");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_count_;
  if (++ops_since_audit_ >= kAuditPeriod) audit();
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Refuse double-cancel.
  if (is_cancelled(id)) return false;
  // The event may have fired already; confirm it is still in the heap.
  const bool pending =
      std::any_of(heap_.begin(), heap_.end(),
                  [id](const Entry& e) { return e.id == id; });
  if (!pending) return false;
  cancelled_.push_back(id);
  ALERT_INVARIANT(live_count_ > 0, "cancel with no live events");
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty()) {
    const auto it =
        std::find(cancelled_.begin(), cancelled_.end(), heap_.front().id);
    if (it == cancelled_.end()) break;
    // Reclaim the tombstone with the heap entry, so a drained queue always
    // has an empty tombstone list (the no-stale-event invariant below).
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
  ALERT_INVARIANT(!heap_.empty() || cancelled_.empty(),
                  "tombstones for events no longer in the heap");
}

Time EventQueue::next_time() const {
  skip_cancelled();
  ALERT_INVARIANT(!heap_.empty(), "next_time() on an empty queue");
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  ALERT_INVARIANT(!heap_.empty(), "pop() on an empty queue");
  ALERT_INVARIANT(!is_cancelled(heap_.front().id),
                  "stale (cancelled) event about to fire");
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_count_;
  ALERT_INVARIANT(e.time >= last_popped_,
                  "event-queue monotonicity violated: time went backwards");
  last_popped_ = e.time;
  if (++ops_since_audit_ >= kAuditPeriod) audit();
  return Fired{e.time, e.seq, std::move(e.action)};
}

void EventQueue::audit() const {
  ops_since_audit_ = 0;
#if ALERT_CHECKED_BUILD
  // Every tombstone must refer to an entry still in the heap, and the live
  // count must equal heap entries minus tombstones.
  std::size_t tombstoned = 0;
  for (const EventId id : cancelled_) {
    const bool present =
        std::any_of(heap_.begin(), heap_.end(),
                    [id](const Entry& e) { return e.id == id; });
    ALERT_ASSERT(present, "tombstone for an event missing from the heap");
    ++tombstoned;
  }
  ALERT_ASSERT(heap_.size() >= tombstoned,
               "more tombstones than heap entries");
  ALERT_ASSERT(live_count_ == heap_.size() - tombstoned,
               "live_count_ out of sync with heap/tombstone bookkeeping");
  // Heap property (min-heap via operator>).
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    ALERT_ASSERT(!(heap_[(i - 1) / 2] > heap_[i]),
                 "binary heap property violated");
  }
#endif
}

}  // namespace alert::sim
