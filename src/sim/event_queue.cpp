#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace alert::sim {

EventId EventQueue::schedule(Time when, Action action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, next_seq_++, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_count_;
  return id;
}

bool EventQueue::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Refuse double-cancel.
  if (is_cancelled(id)) return false;
  // The event may have fired already; confirm it is still in the heap.
  const bool pending =
      std::any_of(heap_.begin(), heap_.end(),
                  [id](const Entry& e) { return e.id == id; });
  if (!pending) return false;
  cancelled_.push_back(id);
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && is_cancelled(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.front().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_count_;
  return Fired{e.time, std::move(e.action)};
}

}  // namespace alert::sim
