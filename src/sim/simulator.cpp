#include "sim/simulator.hpp"

#include <memory>
#include <utility>

#include "util/check.hpp"

namespace alert::sim {

EventId Simulator::schedule_in(Time delay, EventQueue::Action action) {
  ALERT_INVARIANT(delay >= 0.0, "negative scheduling delay");
  return queue_.schedule(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, EventQueue::Action action) {
  ALERT_INVARIANT(when >= now_, "scheduling into the past");
  return queue_.schedule(when, std::move(action));
}

namespace {

// Self-rescheduling functor for schedule_periodic. Each firing enqueues a
// fresh copy of itself, so ownership of the user action follows the queue
// entry — no reference cycle, and draining or destroying the queue releases
// the action. (A lambda capturing a shared_ptr to its own std::function
// keeps itself alive forever.)
struct PeriodicTick {
  Simulator* sim;
  std::shared_ptr<std::function<void()>> action;  // shared: copies stay cheap
  Time period;

  void operator()() const {
    (*action)();
    sim->schedule_in(period, PeriodicTick{*this});
  }
};

}  // namespace

void Simulator::schedule_periodic(Time start, Time period,
                                  std::function<void()> action) {
  ALERT_INVARIANT(period > 0.0, "periodic event with non-positive period");
  auto shared = std::make_shared<std::function<void()>>(std::move(action));
  // `this` outlives the queue, so the raw back-pointer is safe.
  schedule_at(start, PeriodicTick{this, std::move(shared), period});
}

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    ALERT_INVARIANT(fired.time >= now_,
                    "simulation clock would move backwards");
    now_ = fired.time;
    audit_fired(fired);
    {
      ALERT_OBS_TIMED(profiler_, dispatch_scope_);
      fired.action();
    }
    ++executed_;
    ++count;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  ALERT_INVARIANT(fired.time >= now_,
                  "simulation clock would move backwards");
  now_ = fired.time;
  audit_fired(fired);
  {
    ALERT_OBS_TIMED(profiler_, dispatch_scope_);
    fired.action();
  }
  ++executed_;
  return true;
}

}  // namespace alert::sim
