#include "sim/simulator.hpp"

#include <cassert>
#include <memory>
#include <utility>

namespace alert::sim {

EventId Simulator::schedule_in(Time delay, EventQueue::Action action) {
  assert(delay >= 0.0);
  return queue_.schedule(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(Time when, EventQueue::Action action) {
  assert(when >= now_);
  return queue_.schedule(when, std::move(action));
}

void Simulator::schedule_periodic(Time start, Time period,
                                  std::function<void()> action) {
  assert(period > 0.0);
  auto shared = std::make_shared<std::function<void()>>(std::move(action));
  // The recursive lambda owns only a shared_ptr to the user action; `this`
  // outlives the queue so capturing it is safe.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, shared, tick, period] {
    (*shared)();
    schedule_in(period, *tick);
  };
  schedule_at(start, *tick);
}

std::uint64_t Simulator::run_until(Time horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    auto fired = queue_.pop();
    assert(fired.time + 1e-12 >= now_);
    now_ = fired.time;
    fired.action();
    ++executed_;
    ++count;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  now_ = fired.time;
  fired.action();
  ++executed_;
  return true;
}

}  // namespace alert::sim
