#pragma once

/// \file simulator.hpp
/// Discrete-event simulator: a clock plus the pending-event set. All network,
/// mobility, traffic and protocol activity is expressed as events. One
/// Simulator instance per experiment replication; instances share nothing,
/// so replications parallelize trivially.
///
/// Determinism auditing: every executed event folds its (time, scheduling
/// sequence) pair into a running 64-bit digest, and components may fold
/// domain words of their own through audit(). Two runs of the same scenario
/// with the same seed must end with identical digests — the determinism
/// tests and the cross-run comparisons in EXPERIMENTS.md rely on this.

#include <bit>
#include <cstdint>
#include <functional>
#include <limits>

#include "obs/profile.hpp"
#include "sim/event_queue.hpp"

namespace alert::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Select the pending-set backend (scale.calendar scenarios pick
  /// QueueBackend::Calendar). Must be called before the first schedule;
  /// both backends pop the identical (time, seq) order, so the choice
  /// cannot change the trace digest.
  void set_queue_backend(QueueBackend backend) { queue_.set_backend(backend); }
  [[nodiscard]] QueueBackend queue_backend() const { return queue_.backend(); }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventQueue::Action action);

  /// Schedule at an absolute time (must not be in the past).
  EventId schedule_at(Time when, EventQueue::Action action);

  /// Schedule `action` every `period` seconds starting at `start`, until the
  /// simulation horizon. The action keeps rescheduling itself.
  void schedule_periodic(Time start, Time period, std::function<void()> action);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or the clock passes `horizon`. Events
  /// scheduled at exactly the horizon still fire. Returns the number of
  /// events executed.
  std::uint64_t run_until(Time horizon);

  /// Run a single event if one is pending; returns false when idle.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  // --- observability ------------------------------------------------------
  /// Attach a wall-clock self-profiler (nullptr detaches). Event dispatch
  /// is timed under scope "sim.dispatch"; components sharing this simulator
  /// reach the same profiler via profiler(). Profiling never feeds the
  /// determinism digest, so attaching one cannot change results.
  void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    dispatch_scope_ =
        profiler_ != nullptr ? profiler_->scope("sim.dispatch") : 0;
  }
  [[nodiscard]] obs::Profiler* profiler() const { return profiler_; }

  // --- determinism auditing ----------------------------------------------
  /// Fold a caller-chosen word into the trace digest (e.g. packet uids,
  /// drop reasons). Deterministic components folding deterministic words
  /// keep the digest seed-reproducible; never fold addresses or wall-clock.
  void audit(std::uint64_t word) { digest_ = mix(digest_ ^ word); }

  /// Order-sensitive hash of every event executed (time bits + scheduling
  /// seq) and every word audited so far. Equal seeds must yield equal
  /// digests; see tests/sim/determinism_test.cpp.
  [[nodiscard]] std::uint64_t trace_digest() const { return digest_; }

 private:
  /// SplitMix64 finalizer — full 64-bit avalanche, so single-bit input
  /// differences (one extra event, one changed timestamp) flip ~half the
  /// digest.
  static constexpr std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  void audit_fired(const EventQueue::Fired& fired) {
    audit(std::bit_cast<std::uint64_t>(fired.time));
    audit(fired.seq);
  }

  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::uint64_t digest_ = 0x414c4552542d3130ULL;  // "ALERT-10"
  obs::Profiler* profiler_ = nullptr;  // non-owning
  obs::ScopeId dispatch_scope_ = 0;
};

}  // namespace alert::sim
