#pragma once

/// \file simulator.hpp
/// Discrete-event simulator: a clock plus the pending-event set. All network,
/// mobility, traffic and protocol activity is expressed as events. One
/// Simulator instance per experiment replication; instances share nothing,
/// so replications parallelize trivially.

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"

namespace alert::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `action` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventQueue::Action action);

  /// Schedule at an absolute time (must not be in the past).
  EventId schedule_at(Time when, EventQueue::Action action);

  /// Schedule `action` every `period` seconds starting at `start`, until the
  /// simulation horizon. The action keeps rescheduling itself.
  void schedule_periodic(Time start, Time period, std::function<void()> action);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or the clock passes `horizon`. Events
  /// scheduled at exactly the horizon still fire. Returns the number of
  /// events executed.
  std::uint64_t run_until(Time horizon);

  /// Run a single event if one is pending; returns false when idle.
  bool step();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace alert::sim
