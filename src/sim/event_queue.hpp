#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event engine, ordered by (time,
/// sequence). The sequence number makes simultaneous events fire in
/// scheduling order, which keeps runs deterministic.
///
/// Two interchangeable backends sit behind the same interface and produce
/// the same pop order bit-for-bit (the (time, seq) total order is strict,
/// so there is exactly one):
///  - BinaryHeap (default): std::push_heap/pop_heap, O(log n) — the right
///    choice at paper scale;
///  - Calendar: scale::CalendarQueue, near-O(1) schedule/pop at millions of
///    pending events (ROADMAP item 1; selected per scenario via
///    `scale.calendar`, see docs/SCALE.md).
/// The backend must be chosen before the first schedule() — it is a
/// container swap, not a migratable state.
///
/// Cancellation is O(1) amortized for both backends: hash-set tombstones
/// (`cancelled_`) with an id-indexed pending bitmap (ids are sequential, so
/// membership is a bit test, not a hash probe, on the per-event hot path),
/// lazily skipped at the front and compacted out of the backing store
/// whenever tombstones exceed half the physical entries, so cancelled
/// storage is bounded by 2x live.
///
/// Invariant instrumentation (see util/check.hpp):
///  - pop monotonicity: extraction times never decrease (ALERT_INVARIANT);
///  - no stale events: a cancelled event is never returned by pop(), and a
///    drained queue always has an empty tombstone set;
///  - checked builds additionally audit the backend/tombstone bookkeeping
///    (live_count_ consistency, tombstones always refer to stored entries,
///    the heap property) every `kAuditPeriod` mutations (ALERT_ASSERT).

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "scale/calendar_queue.hpp"

namespace alert::sim {

/// Simulated time in seconds.
using Time = double;

/// Token identifying a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

/// Which pending-set container an EventQueue runs on.
enum class QueueBackend : std::uint8_t { BinaryHeap, Calendar };

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Select the backend. Must be called before the first schedule().
  void set_backend(QueueBackend backend);
  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Schedule `action` at absolute time `when`. Returns a cancellation id.
  EventId schedule(Time when, Action action);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed. O(1) amortized (lazy deletion with
  /// periodic compaction).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Extract and return the earliest event's action, advancing past any
  /// cancelled entries. Precondition: !empty().
  struct Fired {
    Time time;
    std::uint64_t seq;  ///< scheduling order, for trace auditing
    Action action;
  };
  [[nodiscard]] Fired pop();

  /// Time returned by the most recent pop(); -inf before the first pop.
  /// Exposed so the simulator can cross-check clock monotonicity.
  [[nodiscard]] Time last_popped_time() const { return last_popped_; }

  /// Bookkeeping introspection (tests pin the compaction threshold).
  [[nodiscard]] std::size_t tombstone_count() const {
    return cancelled_.size();
  }
  [[nodiscard]] std::size_t physical_size() const;

 private:
  struct Entry {
    Time time = 0.0;
    std::uint64_t seq = 0;
    EventId id = 0;
    Action action;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  // Pending membership, one bit per issued id. The word vector grows
  // geometrically (one word per 64 schedules), so the per-event cost is a
  // shift/mask instead of the hash-node insert it replaced.
  [[nodiscard]] bool pending_test(EventId id) const {
    const std::size_t w = static_cast<std::size_t>(id >> 6);
    return w < pending_bits_.size() &&
           ((pending_bits_[w] >> (id & 63)) & 1u) != 0;
  }
  void pending_set(EventId id) {
    const std::size_t w = static_cast<std::size_t>(id >> 6);
    if (w >= pending_bits_.size()) pending_bits_.resize(w + 1, 0);
    pending_bits_[w] |= std::uint64_t{1} << (id & 63);
  }
  void pending_clear(EventId id) {
    pending_bits_[static_cast<std::size_t>(id >> 6)] &=
        ~(std::uint64_t{1} << (id & 63));
  }

  void skip_cancelled() const;
  /// Physically erase tombstoned entries once they outnumber half the
  /// store. Each compaction is O(physical) paid for by >= physical/2
  /// cancels since the last one: O(1) amortized per cancel.
  void maybe_compact();
  void audit() const;  ///< full bookkeeping scan (checked builds, amortized)

  static constexpr std::uint64_t kAuditPeriod = 1024;

  QueueBackend backend_ = QueueBackend::BinaryHeap;
  mutable std::vector<Entry> heap_;  // std::push_heap/pop_heap with greater
  mutable scale::CalendarQueue<Entry> calendar_;
  mutable std::unordered_set<EventId> cancelled_;  // lazy tombstones
  std::vector<std::uint64_t> pending_bits_;  // id -> still scheduled
  mutable std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  Time last_popped_ = -std::numeric_limits<Time>::infinity();
  mutable std::uint64_t ops_since_audit_ = 0;
};

}  // namespace alert::sim
