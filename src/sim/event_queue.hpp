#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event engine: a binary min-heap
/// ordered by (time, sequence). The sequence number makes simultaneous
/// events fire in scheduling order, which keeps runs deterministic.

#include <cstdint>
#include <functional>
#include <vector>

namespace alert::sim {

/// Simulated time in seconds.
using Time = double;

/// Token identifying a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when`. Returns a cancellation id.
  EventId schedule(Time when, Action action);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed. Cancellation is O(1) (lazy deletion).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Extract and return the earliest event's action, advancing past any
  /// cancelled entries. Precondition: !empty().
  struct Fired {
    Time time;
    Action action;
  };
  [[nodiscard]] Fired pop();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
    Action action;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::vector<Entry> heap_;  // std::push_heap/pop_heap with greater
  std::vector<EventId> cancelled_;   // sorted-on-demand lazy tombstones
  mutable std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;

  [[nodiscard]] bool is_cancelled(EventId id) const;
};

}  // namespace alert::sim
