#pragma once

/// \file event_queue.hpp
/// The pending-event set of the discrete-event engine: a binary min-heap
/// ordered by (time, sequence). The sequence number makes simultaneous
/// events fire in scheduling order, which keeps runs deterministic.
///
/// Invariant instrumentation (see util/check.hpp):
///  - pop monotonicity: extraction times never decrease (ALERT_INVARIANT);
///  - no stale events: a cancelled event is never returned by pop(), and
///    its tombstone is reclaimed the moment the heap entry is skipped;
///  - checked builds additionally audit the heap/tombstone bookkeeping
///    (live_count_ consistency, tombstones always refer to heap entries)
///    every `kAuditPeriod` mutations (ALERT_ASSERT).

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace alert::sim {

/// Simulated time in seconds.
using Time = double;

/// Token identifying a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when`. Returns a cancellation id.
  EventId schedule(Time when, Action action);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed. Cancellation is O(1) (lazy deletion).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Extract and return the earliest event's action, advancing past any
  /// cancelled entries. Precondition: !empty().
  struct Fired {
    Time time;
    std::uint64_t seq;  ///< scheduling order, for trace auditing
    Action action;
  };
  [[nodiscard]] Fired pop();

  /// Time returned by the most recent pop(); -inf before the first pop.
  /// Exposed so the simulator can cross-check clock monotonicity.
  [[nodiscard]] Time last_popped_time() const { return last_popped_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
    Action action;
    bool operator>(const Entry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  void skip_cancelled() const;
  void audit() const;  ///< full bookkeeping scan (checked builds, amortized)

  static constexpr std::uint64_t kAuditPeriod = 1024;

  mutable std::vector<Entry> heap_;  // std::push_heap/pop_heap with greater
  mutable std::vector<EventId> cancelled_;  // lazy tombstones
  mutable std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  Time last_popped_ = -std::numeric_limits<Time>::infinity();
  mutable std::uint64_t ops_since_audit_ = 0;

  [[nodiscard]] bool is_cancelled(EventId id) const;
};

}  // namespace alert::sim
