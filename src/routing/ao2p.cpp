#include "routing/ao2p.hpp"

#include "routing/geo_forwarding.hpp"

namespace alert::routing {

Ao2pRouter::Ao2pRouter(net::Network& network, loc::LocationService& location,
                       Ao2pConfig config)
    : Protocol(network, location), config_(config) {
  init_profiling("ao2p");
  attach_to_all();
}

util::Vec2 Ao2pRouter::virtual_position(util::Vec2 src, util::Vec2 dst) const {
  const util::Vec2 dir = (dst - src).normalized();
  // Degenerate S == D: no direction; target D itself.
  if (dir.norm_sq() == 0.0) return dst;
  return net_.config().field.clamp(dst + dir * config_.virtual_extension_m);
}

void Ao2pRouter::send(net::NodeId src, net::NodeId dst,
                      std::size_t payload_bytes, std::uint32_t flow,
                      std::uint32_t seq) {
  ALERT_OBS_TIMED(profiler_, send_scope_);
  const auto record = loc_.query(src, dst);
  if (!record) return;

  net::Node& source = net_.node(src);
  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.src_pseudonym = source.pseudonym();
  pkt.dst_pseudonym = record->pseudonym;
  pkt.flow = flow;
  pkt.seq = seq;
  pkt.payload.assign(payload_bytes, 0);
  pkt.geo = net::GeoFields{};
  // The packet carries only the virtual position — never D's coordinates.
  pkt.geo->dest_pos =
      virtual_position(source.position(net_.now()), record->position);
  pkt.hops_remaining = config_.max_hops;
  pkt.uid = net_.next_uid();
  pkt.app_send_time = net_.now();
  pkt.first_send_time = net_.now();
  pkt.true_source = src;
  pkt.true_dest = dst;
  pkt.size_bytes = payload_bytes + header_bytes(pkt);

  ++stats_.data_sent;
  forward(source, std::move(pkt));
}

void Ao2pRouter::handle(net::Node& self, const net::Packet& pkt) {
  ALERT_OBS_TIMED(profiler_, handle_scope_);
  if (pkt.kind != net::PacketKind::Data) return;
  if (net_.resolve_pseudonym(pkt.dst_pseudonym) == self.id()) {
    ++stats_.data_delivered;
    ledger_close(pkt, net::PacketFate::Delivered);
    return;
  }
  forward(self, pkt);
}

bool Ao2pRouter::reroute_failed(net::Node& self, const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::Data || !pkt.geo) return false;
  forward(self, pkt);
  return true;
}

void Ao2pRouter::forward(net::Node& self, net::Packet pkt) {
  if (pkt.hops_remaining <= 0) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  --pkt.hops_remaining;
  ++pkt.hop_count;

  // Contention phase (next-hop election among distance classes) plus
  // hop-by-hop public-key protection.
  const crypto::CostModel& cost = net_.config().crypto_cost;
  const double hop_delay = config_.contention_phase_s +
                           cost.public_encrypt_s + cost.verify_s;
  charge_crypto(self, cost.public_encrypt_s + cost.verify_s);

  const util::Vec2 self_pos = self.position(net_.now());
  const net::NodeId dest_id = net_.resolve_pseudonym(pkt.dst_pseudonym);
  // D is picked up en route when it becomes a neighbour of the holder.
  for (const auto& n : self.neighbors()) {
    if (net_.resolve_pseudonym(n.pseudonym) == dest_id) {
      ++stats_.forwards;
      net_.unicast(self, n.pseudonym, std::move(pkt),
                   config_.per_hop_processing_s + hop_delay);
      return;
    }
  }
  if (const auto* next =
          greedy_next_hop(self, self_pos, pkt.geo->dest_pos)) {
    ++stats_.forwards;
    net_.unicast(self, next->pseudonym, std::move(pkt),
                 config_.per_hop_processing_s + hop_delay);
    return;
  }
  util::Vec2 from = pkt.geo->dest_pos;
  if (pkt.prev_hop != net::kInvalidNode && pkt.prev_hop != self.id()) {
    from = net_.node(pkt.prev_hop).position(net_.now());
  }
  if (const auto* next = perimeter_next_hop(self, self_pos, from)) {
    ++stats_.forwards;
    net_.unicast(self, next->pseudonym, std::move(pkt),
                 config_.per_hop_processing_s + hop_delay);
    return;
  }
  ++stats_.data_dropped;
  ledger_close(pkt, net::PacketFate::Dropped);
}

}  // namespace alert::routing
