#pragma once

/// \file ao2p.hpp
/// AO2P (Wu, TMC'05) baseline: ad hoc on-demand position-based private
/// routing. Two distinguishing mechanisms, both modeled per the paper's
/// Sec. 5 description:
///  * a per-hop *contention phase* — neighbours of the current holder
///    contend to be the next hop, classified by distance to the target;
///    this narrows channel access (fewer adversaries can participate) at
///    the price of an extra per-hop delay;
///  * destination anonymity by routing toward a *virtual position* on the
///    S-D line, farther from the source than D, so the packet never
///    carries D's true coordinates; D is picked up en route.
/// Like ALARM it pays hop-by-hop public-key cryptography.

#include "routing/router.hpp"
#include "util/rng.hpp"

namespace alert::routing {

struct Ao2pConfig {
  int max_hops = 10;
  double per_hop_processing_s = 200e-6;
  double contention_phase_s = 0.012;  ///< next-hop election delay per hop
  double virtual_extension_m = 200.0; ///< how far beyond D the target lies
};

class Ao2pRouter final : public Protocol {
 public:
  Ao2pRouter(net::Network& network, loc::LocationService& location,
             Ao2pConfig config);

  [[nodiscard]] std::string name() const override { return "AO2P"; }

  void send(net::NodeId src, net::NodeId dst, std::size_t payload_bytes,
            std::uint32_t flow, std::uint32_t seq) override;

  void handle(net::Node& self, const net::Packet& pkt) override;

  /// The virtual routing position for a given S-D geometry (exposed for
  /// tests): on the ray S->D, `virtual_extension_m` beyond D, clamped to
  /// the field.
  [[nodiscard]] util::Vec2 virtual_position(util::Vec2 src,
                                            util::Vec2 dst) const;

 private:
  void forward(net::Node& self, net::Packet pkt);
  bool reroute_failed(net::Node& self, const net::Packet& pkt) override;

  Ao2pConfig config_;
};

}  // namespace alert::routing
