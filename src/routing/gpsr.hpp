#pragma once

/// \file gpsr.hpp
/// GPSR (greedy perimeter stateless routing) — the paper's baseline and the
/// primitive ALERT builds on. Greedy forwarding to the neighbour closest to
/// the destination; right-hand-rule perimeter recovery on the Gabriel-
/// planarized graph at local maxima; TTL = 10 hop bound (Sec. 5.6).
/// No anonymity machinery: the destination position travels in the clear
/// and the path is the (near-)shortest, which is exactly why the paper's
/// adversary can trace it.

#include "routing/router.hpp"
#include "util/rng.hpp"

namespace alert::routing {

struct GpsrConfig {
  int max_hops = 10;                ///< TTL of Sec. 5.6
  bool use_perimeter = true;        ///< face-routing recovery on/off
  double per_hop_processing_s = 200e-6;  ///< forwarding computation
};

class GpsrRouter final : public Protocol {
 public:
  GpsrRouter(net::Network& network, loc::LocationService& location,
             GpsrConfig config);

  [[nodiscard]] std::string name() const override { return "GPSR"; }

  void send(net::NodeId src, net::NodeId dst, std::size_t payload_bytes,
            std::uint32_t flow, std::uint32_t seq) override;

  void handle(net::Node& self, const net::Packet& pkt) override;

 private:
  void forward(net::Node& self, net::Packet pkt);
  bool reroute_failed(net::Node& self, const net::Packet& pkt) override;

  GpsrConfig config_;
};

}  // namespace alert::routing
