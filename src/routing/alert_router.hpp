#pragma once

/// \file alert_router.hpp
/// The ALERT protocol (Sec. 2): anonymous location-based routing by
/// dynamic hierarchical zone partition and random relay selection.
///
/// Per packet, the source / each random forwarder (RF):
///  1. partitions the field (alternating axes, starting from the packet's
///     direction bit) until its own half no longer contains Z_D,
///  2. draws a random temporary destination (TD) in the other half,
///  3. forwards greedily toward the TD; the node with no neighbour closer
///     to the TD is the next RF (Fig. 3) and repeats from step 1,
///  4. a holder inside Z_D broadcasts to the k nodes of the zone
///     (k-anonymity for D, Sec. 2.3).
///
/// Also implemented here, each the paper's mechanism:
///  * "notify and go" source camouflage with TTL-encrypted cover traffic
///    (Sec. 2.6),
///  * symmetric session keys wrapped under K_pub^D, source zone L_ZS
///    encrypted under K_pub^D, per Fig. 4's packet format (Sec. 2.5),
///  * destination confirmations with timeout-based retransmission and NAKs
///    (Secs. 2.3/2.5),
///  * the intersection-attack countermeasure: m-of-k partial multicast,
///    hold-until-next-packet one-hop rebroadcast, and bit-alteration with
///    an encrypted recovery bitmap (Sec. 3.3).

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/bitmap.hpp"
#include "crypto/symmetric.hpp"
#include "routing/router.hpp"
#include "routing/zone.hpp"
#include "util/rng.hpp"

namespace alert::routing {

struct AlertConfig {
  /// Number of hierarchical partitions H. If `k_anonymity` is set instead,
  /// H is derived as log2(N / k) (Sec. 2.4).
  int partitions_h = 5;
  std::optional<double> k_anonymity;

  int max_hops = 48;                     ///< generous bound: H legs of GPSR
  double per_hop_processing_s = 200e-6;  ///< forwarding computation

  // "Notify and go" (Sec. 2.6).
  bool notify_and_go = true;
  double notify_t_s = 0.001;    ///< minimum back-off t
  double notify_t0_s = 0.004;   ///< back-off window t0
  std::size_t cover_bytes = 16; ///< "several bytes of random data"

  // Intersection-attack countermeasure (Sec. 3.3).
  bool intersection_countermeasure = false;
  std::size_t countermeasure_m = 3;  ///< first-step multicast set size m
  std::size_t bitmap_flips = 16;     ///< payload bits altered per packet

  // Reliability (Sec. 2.3: confirmation + resend; Sec. 2.5: NAKs).
  bool send_confirmation = true;
  double confirm_timeout_s = 1.5;
  int max_retransmissions = 1;
  bool use_nak = true;

  /// GPSR leg recovery (Sec. 2.7: face routing between RFs is allowed and
  /// does not compromise anonymity).
  bool use_perimeter_fallback = true;
};

class AlertRouter final : public Protocol {
 public:
  AlertRouter(net::Network& network, loc::LocationService& location,
              AlertConfig config);

  [[nodiscard]] std::string name() const override { return "ALERT"; }

  void send(net::NodeId src, net::NodeId dst, std::size_t payload_bytes,
            std::uint32_t flow, std::uint32_t seq) override;

  void handle(net::Node& self, const net::Packet& pkt) override;

  [[nodiscard]] int effective_h() const { return h_; }

  /// Distinct nodes that have served as RF (route-anonymity evidence).
  [[nodiscard]] std::size_t distinct_rfs() const {
    return distinct_rfs_.size();
  }

 private:
  // --- source side -------------------------------------------------------
  struct FlowState {
    net::NodeId src = net::kInvalidNode;
    net::NodeId dest = net::kInvalidNode;
    crypto::SymmetricKey session_key;
    crypto::PublicKey dest_pub;
    net::Pseudonym dest_pseudonym = 0;
    util::Rect dest_zone;
    util::Rect src_zone;
    std::vector<std::uint64_t> src_zone_enc;
    std::vector<std::uint64_t> session_key_enc;
  };
  struct PendingConfirm {
    net::Packet packet;  ///< resend copy
    int retries_left = 0;
    sim::EventId timer = 0;
  };

  /// Existing or freshly-established flow session state; nullptr when the
  /// location service cannot resolve the destination (all replicas down).
  FlowState* flow_state(net::NodeId src, net::NodeId dst, std::uint32_t flow);
  void transmit_with_camouflage(net::Node& source, net::Packet pkt);
  void arm_confirm_timer(std::uint32_t flow, std::uint32_t seq);
  void resend(std::uint32_t flow, std::uint32_t seq);

  // --- forwarding --------------------------------------------------------
  void forward(net::Node& self, net::Packet pkt, bool i_am_rf);
  bool reroute_failed(net::Node& self, const net::Packet& pkt) override;
  /// Seal the TTL of the source's first transmission under the next
  /// relay's public key (Sec. 2.6 camouflage indistinguishability).
  void seal_first_hop_ttl(net::Node& self, net::Packet& pkt,
                          const net::NeighborInfo& next);
  /// GPSR greedy+perimeter leg toward the destination zone, used when
  /// randomized TD selection cannot make progress (sparse regions).
  void fallback_leg(net::Node& self, net::Packet pkt);
  void deliver_into_zone(net::Node& self, net::Packet pkt);
  void on_zone_broadcast(net::Node& self, const net::Packet& pkt);
  void accept_at_destination(net::Node& self, const net::Packet& pkt);
  void send_confirm(net::Node& dest_node, const net::Packet& data_pkt);
  void send_nak(net::Node& dest_node, const net::Packet& data_pkt,
                std::uint32_t missing_seq);

  [[nodiscard]] static std::uint64_t confirm_key(std::uint32_t flow,
                                                 std::uint32_t seq) {
    return (static_cast<std::uint64_t>(flow) << 32) | seq;
  }

  AlertConfig config_;
  int h_;  ///< effective partition count H
  util::Rng rng_;

  std::unordered_map<std::uint32_t, FlowState> flows_;
  std::unordered_map<std::uint64_t, PendingConfirm> pending_;
  /// Destination-side per-flow state: decrypted session key and expected
  /// sequence number (for NAKs), keyed by flow.
  struct DestState {
    crypto::SymmetricKey session_key;
    bool have_key = false;
    std::uint32_t expected_seq = 0;
    std::unordered_set<std::uint32_t> received;
    util::Rect src_zone;  ///< decrypted L_ZS for the return path
    bool have_src_zone = false;
  };
  std::unordered_map<std::uint32_t, DestState> dest_state_;
  /// Countermeasure holders: per node, held first-step packets by flow.
  std::unordered_map<std::uint64_t, net::Packet> held_;  // key: node<<32|flow
  std::unordered_set<net::NodeId> distinct_rfs_;
  /// Dedup of zone-broadcast acceptance at D: (flow, seq) delivered.
  std::unordered_set<std::uint64_t> delivered_marks_;
};

}  // namespace alert::routing
