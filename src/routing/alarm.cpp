#include "routing/alarm.hpp"

#include <cmath>

#include "routing/geo_forwarding.hpp"

namespace alert::routing {

AlarmRouter::AlarmRouter(net::Network& network,
                         loc::LocationService& location, AlarmConfig config)
    : Protocol(network, location), config_(config) {
  init_profiling("alarm");
  map_.resize(net_.size());
  attach_to_all();
  refresh_map();
  net_.simulator().schedule_periodic(config_.dissemination_period_s,
                                     config_.dissemination_period_s,
                                     [this] { refresh_map(); });
}

double AlarmRouter::network_hop_diameter() const {
  const util::Rect& f = net_.config().field;
  const double diagonal = std::hypot(f.width(), f.height());
  return std::ceil(diagonal / net_.config().radio_range_m);
}

void AlarmRouter::refresh_map() {
  const sim::Time now = net_.now();
  for (net::NodeId id = 0; id < net_.size(); ++id) {
    map_[id] = net_.node(id).position(now);
  }
  map_updated_at_ = now;
  // Dissemination traffic accounting: each node's LAM travels the network
  // hop-diameter to reach map users; the crypto of per-neighbour
  // authentication is charged to the crypto total.
  stats_.control_hops += static_cast<std::uint64_t>(
      static_cast<double>(net_.size()) * network_hop_diameter());
  // Every node signs its LAM and verifies its neighbours': charge each
  // node's meter individually (this is what drains ALARM's batteries).
  const double per_node = net_.config().crypto_cost.sign_s +
                          net_.config().crypto_cost.verify_s;
  for (net::NodeId id = 0; id < net_.size(); ++id) {
    charge_crypto(net_.node(id), per_node);
  }
}

sim::Time AlarmRouter::map_age() const {
  return net_.now() - map_updated_at_;
}

void AlarmRouter::send(net::NodeId src, net::NodeId dst,
                       std::size_t payload_bytes, std::uint32_t flow,
                       std::uint32_t seq) {
  ALERT_OBS_TIMED(profiler_, send_scope_);
  net::Node& source = net_.node(src);
  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.src_pseudonym = source.pseudonym();
  pkt.dst_pseudonym = net_.node(dst).pseudonym();
  pkt.flow = flow;
  pkt.seq = seq;
  pkt.payload.assign(payload_bytes, 0);
  pkt.geo = net::GeoFields{};
  pkt.geo->dest_pos = map_[dst];  // secure-map position, not loc service
  pkt.hops_remaining = config_.max_hops;
  pkt.uid = net_.next_uid();
  pkt.app_send_time = net_.now();
  pkt.first_send_time = net_.now();
  pkt.true_source = src;
  pkt.true_dest = dst;
  pkt.size_bytes = payload_bytes + header_bytes(pkt);

  ++stats_.data_sent;
  forward(source, std::move(pkt));
}

void AlarmRouter::handle(net::Node& self, const net::Packet& pkt) {
  ALERT_OBS_TIMED(profiler_, handle_scope_);
  if (pkt.kind != net::PacketKind::Data) return;
  if (net_.resolve_pseudonym(pkt.dst_pseudonym) == self.id()) {
    ++stats_.data_delivered;
    ledger_close(pkt, net::PacketFate::Delivered);
    return;
  }
  forward(self, pkt);
}

bool AlarmRouter::reroute_failed(net::Node& self, const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::Data || !pkt.geo) return false;
  forward(self, pkt);
  return true;
}

void AlarmRouter::forward(net::Node& self, net::Packet pkt) {
  if (pkt.hops_remaining <= 0) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  --pkt.hops_remaining;
  ++pkt.hop_count;

  // Hop-by-hop public-key protection: the sender encrypts with its key and
  // the next hop verifies — this is the dominant latency term (Fig. 14).
  const crypto::CostModel& cost = net_.config().crypto_cost;
  const double hop_crypto = cost.public_encrypt_s + cost.verify_s;
  charge_crypto(self, hop_crypto);

  // Purely position-based forwarding over the secure map (as GPSR: the
  // destination receives only when greedy selection picks it).
  const util::Vec2 self_pos = self.position(net_.now());
  if (const auto* next =
          greedy_next_hop(self, self_pos, pkt.geo->dest_pos)) {
    ++stats_.forwards;
    net_.unicast(self, next->pseudonym, std::move(pkt),
                 config_.per_hop_processing_s + hop_crypto);
    return;
  }
  // Perimeter recovery on the planar graph, as in GPSR.
  util::Vec2 from = pkt.geo->dest_pos;
  if (pkt.prev_hop != net::kInvalidNode && pkt.prev_hop != self.id()) {
    from = net_.node(pkt.prev_hop).position(net_.now());
  }
  if (const auto* next = perimeter_next_hop(self, self_pos, from)) {
    ++stats_.forwards;
    net_.unicast(self, next->pseudonym, std::move(pkt),
                 config_.per_hop_processing_s + hop_crypto);
    return;
  }
  ++stats_.data_dropped;
  ledger_close(pkt, net::PacketFate::Dropped);
}

}  // namespace alert::routing
