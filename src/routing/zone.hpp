#pragma once

/// \file zone.hpp
/// Hierarchical zone partition (Secs. 2.3-2.4): the geometric heart of
/// ALERT. The network field is recursively bisected in alternating
/// horizontal/vertical directions; the destination zone Z_D is the H-th
/// partitioned zone containing D, and each forwarder partitions until it is
/// separated from Z_D, then draws a random temporary destination (TD) in
/// the half where Z_D lies.

#include <optional>

#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace alert::routing {

/// Number of partitions H = log2(rho * G / k) rounded down so the zone
/// holds at least k expected nodes (Sec. 2.4). Clamped to >= 1.
[[nodiscard]] int partitions_for_anonymity(double node_count, double k);

/// Expected number of nodes in the destination zone for a given H.
[[nodiscard]] double expected_zone_population(double node_count, int H);

/// Compute the position of the H-th partitioned zone containing `dest`
/// (Sec. 2.4). Partitioning starts vertically ("Assume ALERT partitions
/// zone vertically first") and alternates; each step keeps the half
/// containing `dest`. The worked example in the paper — field (0,0)-(4,2),
/// H = 3, D = (0.5, 0.8) -> zone (0,0)-(1,1) — is a unit test.
[[nodiscard]] util::Rect destination_zone(const util::Rect& field,
                                          util::Vec2 dest, int H,
                                          util::Axis first =
                                              util::Axis::Vertical);

/// One forwarder's partition step (Sec. 2.3).
struct PartitionStep {
  util::Rect own_half;    ///< the half containing the forwarder
  util::Rect other_half;  ///< the half containing (the bulk of) Z_D
  int splits_performed = 0;   ///< partitions executed in this step
  util::Axis last_axis;       ///< direction of the final (separating) split
};

/// From `self`'s position, bisect the zone containing both `self` and
/// `dest_zone` — starting with `first_axis` and alternating — until the
/// half holding `self` no longer fully contains `dest_zone`. Returns
/// nullopt when `self` already lies inside `dest_zone` (the caller must
/// switch to the destination-zone delivery phase) and when `max_splits`
/// would be exceeded.
[[nodiscard]] std::optional<PartitionStep> partition_until_separated(
    const util::Rect& field, util::Vec2 self, const util::Rect& dest_zone,
    util::Axis first_axis, int max_splits);

/// Draw a temporary destination: a uniform point in the separating step's
/// other half (the side where Z_D lies).
[[nodiscard]] util::Vec2 choose_temporary_destination(
    const PartitionStep& step, util::Rng& rng);

}  // namespace alert::routing
