#include "routing/zone.hpp"

#include <cassert>
#include <cmath>

namespace alert::routing {

int partitions_for_anonymity(double node_count, double k) {
  assert(node_count > 0 && k > 0);
  const double h = std::log2(node_count / k);
  return h < 1.0 ? 1 : static_cast<int>(h);
}

double expected_zone_population(double node_count, int H) {
  return node_count / std::exp2(static_cast<double>(H));
}

util::Rect destination_zone(const util::Rect& field, util::Vec2 dest, int H,
                            util::Axis first) {
  assert(field.contains(dest));
  util::Rect zone = field;
  util::Axis axis = first;
  for (int i = 0; i < H; ++i) {
    zone = zone.half_containing(axis, dest);
    axis = util::flip(axis);
  }
  return zone;
}

std::optional<PartitionStep> partition_until_separated(
    const util::Rect& field, util::Vec2 self, const util::Rect& dest_zone,
    util::Axis first_axis, int max_splits) {
  assert(field.contains(self));
  if (dest_zone.contains(self)) return std::nullopt;

  util::Rect zone = field;
  util::Axis axis = first_axis;
  int splits = 0;
  while (splits < max_splits) {
    const util::RectSplit halves = zone.split(axis);
    const bool in_first = halves.first.contains(self);
    const util::Rect& own = in_first ? halves.first : halves.second;
    const util::Rect& other = in_first ? halves.second : halves.first;
    ++splits;
    if (own.contains(dest_zone)) {
      // Still in the same zone as Z_D: keep partitioning (Sec. 2.3).
      zone = own;
      axis = util::flip(axis);
      continue;
    }
    // Separated: Z_D lies (at least partly) in the other half. The TD will
    // be drawn there so the packet approaches D.
    return PartitionStep{own, other, splits, axis};
  }
  return std::nullopt;  // could not separate within the split budget
}

util::Vec2 choose_temporary_destination(const PartitionStep& step,
                                        util::Rng& rng) {
  return rng.point_in(step.other_half);
}

}  // namespace alert::routing
