#include "routing/gpsr.hpp"

#include "routing/geo_forwarding.hpp"

namespace alert::routing {

GpsrRouter::GpsrRouter(net::Network& network, loc::LocationService& location,
                       GpsrConfig config)
    : Protocol(network, location), config_(config) {
  init_profiling("gpsr");
  attach_to_all();
}

void GpsrRouter::send(net::NodeId src, net::NodeId dst,
                      std::size_t payload_bytes, std::uint32_t flow,
                      std::uint32_t seq) {
  ALERT_OBS_TIMED(profiler_, send_scope_);
  const auto record = loc_.query(src, dst);
  if (!record) return;  // location service entirely failed

  net::Node& source = net_.node(src);
  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.src_pseudonym = source.pseudonym();
  pkt.dst_pseudonym = record->pseudonym;
  pkt.flow = flow;
  pkt.seq = seq;
  pkt.payload.assign(payload_bytes, 0);
  pkt.geo = net::GeoFields{};
  pkt.geo->dest_pos = record->position;
  pkt.hops_remaining = config_.max_hops;
  pkt.uid = net_.next_uid();
  pkt.app_send_time = net_.now();
  pkt.first_send_time = net_.now();
  pkt.true_source = src;
  pkt.true_dest = dst;
  pkt.size_bytes = payload_bytes + header_bytes(pkt);

  ++stats_.data_sent;
  forward(source, std::move(pkt));
}

void GpsrRouter::handle(net::Node& self, const net::Packet& pkt) {
  ALERT_OBS_TIMED(profiler_, handle_scope_);
  if (pkt.kind != net::PacketKind::Data) return;
  if (net_.resolve_pseudonym(pkt.dst_pseudonym) == self.id()) {
    ++stats_.data_delivered;
    ledger_close(pkt, net::PacketFate::Delivered);
    return;
  }
  forward(self, pkt);
}

bool GpsrRouter::reroute_failed(net::Node& self, const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::Data || !pkt.geo) return false;
  forward(self, pkt);
  return true;
}

void GpsrRouter::forward(net::Node& self, net::Packet pkt) {
  if (pkt.hops_remaining <= 0) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  --pkt.hops_remaining;
  ++pkt.hop_count;

  const util::Vec2 self_pos = self.position(net_.now());
  const util::Vec2 dest = pkt.geo->dest_pos;
  // Note: forwarding is purely position-based — a relay never "spots" the
  // destination in its table; D receives the packet only when greedy
  // selection toward the (possibly stale) destination position genuinely
  // picks it. This is what makes GPSR degrade without location updates
  // (Figs. 14b/15b/16b).

  // Perimeter-mode exit test (closer to D than where greedy failed).
  if (pkt.geo->perimeter_mode &&
      util::distance(self_pos, dest) <
          util::distance(pkt.geo->perimeter_entry, dest)) {
    pkt.geo->perimeter_mode = false;
  }

  if (!pkt.geo->perimeter_mode) {
    if (const auto* next = greedy_next_hop(self, self_pos, dest)) {
      ++stats_.forwards;
      net_.unicast(self, next->pseudonym, std::move(pkt),
                   config_.per_hop_processing_s);
      return;
    }
    if (!config_.use_perimeter) {
      ++stats_.data_dropped;
      ledger_close(pkt, net::PacketFate::Dropped);
      return;
    }
    // Enter perimeter mode at this local maximum.
    pkt.geo->perimeter_mode = true;
    pkt.geo->perimeter_entry = self_pos;
    pkt.geo->face_cross_start = dest;  // reference direction toward D
    pkt.geo->perimeter_first_hop = net::kInvalidNode;
  }

  // Right-hand rule around the face. The reference direction is the edge we
  // arrived on (or toward D when entering).
  util::Vec2 from = pkt.geo->face_cross_start;
  if (pkt.prev_hop != net::kInvalidNode && pkt.prev_hop != self.id()) {
    from = net_.node(pkt.prev_hop).position(net_.now());
  }
  const auto* next = perimeter_next_hop(self, self_pos, from);
  if (next == nullptr) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  const net::NodeId next_id = net_.resolve_pseudonym(next->pseudonym);
  if (pkt.geo->perimeter_first_hop == net::kInvalidNode) {
    pkt.geo->perimeter_first_hop = next_id;
  } else if (next_id == pkt.geo->perimeter_first_hop) {
    // Completed the face without getting closer: unreachable.
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  ++stats_.forwards;
  net_.unicast(self, next->pseudonym, std::move(pkt),
               config_.per_hop_processing_s);
}

}  // namespace alert::routing
