#pragma once

/// \file zap.hpp
/// ZAP (Wu, Liu, Hong & Bertino, TPDS'08) baseline: anonymous
/// geo-forwarding through location cloaking. The source hides D inside an
/// *anonymity zone* — a fixed-size square containing D at a random
/// offset — geo-forwards the packet to the zone, and the first holder
/// inside performs a scoped flood so every zone member (including D)
/// receives it. ZAP protects only the destination (Table 1): the source
/// transmits first (timing-attack exposed), routes to a static zone repeat
/// (route exposed), and a long session lets the intersection attack of
/// Sec. 3.3 erode the zone anonymity — the weakness ALERT's countermeasure
/// addresses.
///
/// The zone phase reuses the universal packet format's zone fields
/// (dest_zone / in_dest_zone_phase), which both protocols advertise on
/// air.

#include <unordered_map>
#include <unordered_set>

#include "routing/router.hpp"
#include "util/rng.hpp"

namespace alert::routing {

struct ZapConfig {
  double zone_side_m = 250.0;  ///< anonymity-zone edge length
  int max_hops = 24;
  double per_hop_processing_s = 200e-6;
  /// Scoped flood: zone members rebroadcast once so the whole zone is
  /// covered even when the entry holder's radio misses a corner.
  bool flood_rebroadcast = true;
};

class ZapRouter final : public Protocol {
 public:
  ZapRouter(net::Network& network, loc::LocationService& location,
            ZapConfig config);

  [[nodiscard]] std::string name() const override { return "ZAP"; }

  void send(net::NodeId src, net::NodeId dst, std::size_t payload_bytes,
            std::uint32_t flow, std::uint32_t seq) override;

  void handle(net::Node& self, const net::Packet& pkt) override;

  /// The cloaked anonymity zone for a destination position: a
  /// zone_side_m square containing `dest` at a uniform random offset,
  /// clamped into the field (exposed for tests).
  [[nodiscard]] util::Rect cloak(util::Vec2 dest, util::Rng& rng) const;

 private:
  void forward(net::Node& self, net::Packet pkt);
  void zone_flood(net::Node& self, net::Packet pkt);
  bool reroute_failed(net::Node& self, const net::Packet& pkt) override;

  ZapConfig config_;
  util::Rng rng_;
  /// Flood duplicate suppression: packets this node already rebroadcast.
  std::unordered_map<std::uint64_t, bool> rebroadcast_done_;
  /// Delivery dedup: the flood hands D several copies of each uid.
  std::unordered_set<std::uint64_t> delivered_uids_;
};

}  // namespace alert::routing
