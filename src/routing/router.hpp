#pragma once

/// \file router.hpp
/// Protocol interface shared by ALERT and the baselines. One Protocol
/// instance serves the whole network (per-node state lives in vectors
/// indexed by NodeId); it implements net::PacketHandler and is attached to
/// every node.

#include <cstdint>
#include <string>

#include "loc/location_service.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace alert::routing {

/// Per-protocol counters the experiment harness reads after a run.
struct ProtocolStats {
  std::uint64_t data_sent = 0;        ///< application packets issued
  std::uint64_t data_delivered = 0;   ///< reached the true destination
  std::uint64_t data_dropped = 0;     ///< gave up (ttl / dead end / loss)
  std::uint64_t forwards = 0;         ///< unicast forward transmissions
  std::uint64_t broadcasts = 0;       ///< protocol broadcasts (not hellos)
  std::uint64_t random_forwarders = 0;///< ALERT RF events (all packets)
  std::uint64_t partitions = 0;       ///< ALERT zone splits (all packets)
  std::uint64_t cover_packets = 0;    ///< notify-and-go camouflage traffic
  std::uint64_t retransmissions = 0;  ///< confirmation-timeout resends
  std::uint64_t naks = 0;             ///< NAKs issued by destinations
  std::uint64_t control_hops = 0;     ///< e.g. ALARM dissemination hops
  std::uint64_t send_failures = 0;    ///< link-layer on_send_failed events
  double crypto_time_total_s = 0.0;   ///< simulated crypto latency charged
};

class Protocol : public net::PacketHandler {
 public:
  Protocol(net::Network& network, loc::LocationService& location)
      : net_(network), loc_(location) {}

  [[nodiscard]] virtual std::string name() const = 0;

  /// Issue one application packet of `payload_bytes` from `src` to `dst`.
  /// `flow` identifies the S-D pair, `seq` the packet within the flow.
  virtual void send(net::NodeId src, net::NodeId dst,
                    std::size_t payload_bytes, std::uint32_t flow,
                    std::uint32_t seq) = 0;

  [[nodiscard]] const ProtocolStats& stats() const { return stats_; }

  /// Link-layer failure feedback (fault-aware runs only; see
  /// net::PacketHandler). Graceful degradation, identical for every
  /// protocol at this level: stop trusting the unreachable neighbour, then
  /// let the concrete router pick a new next hop — or, if it cannot (or the
  /// holder itself is down), close the packet under the failure's fate.
  void on_send_failed(net::Node& self, const net::Packet& pkt,
                      net::Pseudonym next_hop,
                      net::DropReason why) override {
    ++stats_.send_failures;
    self.remove_neighbor(next_hop);
    if (self.alive() && reroute_failed(self, pkt)) return;
    close_failed(pkt, why);
  }

  /// Attach a metrics registry: the crypto cost model reports every modeled
  /// operation as counter "crypto.ops" and sample "crypto.op_seconds"
  /// (simulated seconds, not wall-clock). Null detaches.
  void set_metrics(obs::MetricsRegistry* metrics) {
    crypto_ops_ = metrics != nullptr ? &metrics->counter("crypto.ops")
                                     : nullptr;
    crypto_seconds_ =
        metrics != nullptr ? &metrics->sample("crypto.op_seconds") : nullptr;
  }

 protected:
  /// Attempt to route `pkt` again after the link layer gave up on its last
  /// next hop (already evicted from `self`'s neighbour table, so the same
  /// choice cannot repeat). Return true when the packet was re-dispatched
  /// or reached a protocol-level terminal decision; false to let the base
  /// close it under the link failure's fate. Re-forwarding goes back
  /// through the router's normal decision path, so each salvage attempt
  /// spends a TTL hop — the hop bound still terminates every packet.
  virtual bool reroute_failed(net::Node& self, const net::Packet& pkt) {
    (void)self, (void)pkt;
    return false;
  }

  /// Terminally account a packet the link layer killed: the matching ledger
  /// fate, plus the protocol drop counter for application data. The is_open
  /// guard makes late failures of already-closed uids (e.g. a duplicate
  /// copy of a delivered packet) a no-op, keeping data_dropped in step with
  /// the ledger.
  void close_failed(const net::Packet& pkt, net::DropReason why) {
    if (pkt.uid == 0 || !net_.ledger().is_open(pkt.uid)) return;
    if (pkt.kind == net::PacketKind::Data) ++stats_.data_dropped;
    net_.ledger().close(pkt.uid, net::fate_for(why), net_.now());
  }

  /// Account `seconds` of cryptographic computation at `node`: simulated
  /// latency totals for the stats and joules on the node's energy meter.
  void charge_crypto(const net::Node& node, double seconds) {
    stats_.crypto_time_total_s += seconds;
    net_.charge_crypto(node.id(), seconds);
    if (crypto_ops_ != nullptr) {
      crypto_ops_->inc();
      crypto_seconds_->add(seconds);
    }
  }

  /// Resolve this protocol's routing-decision profiling scopes
  /// ("routing.<proto>.send" / "routing.<proto>.handle") against the
  /// simulator's profiler. Called from concrete router constructors —
  /// name() cannot be virtually dispatched from the base constructor.
  void init_profiling(const char* proto) {
    profiler_ = net_.simulator().profiler();
    if (profiler_ != nullptr) {
      send_scope_ =
          profiler_->scope(std::string("routing.") + proto + ".send");
      handle_scope_ =
          profiler_->scope(std::string("routing.") + proto + ".handle");
    }
  }

  /// Record a packet's terminal fate on the network's lifecycle ledger.
  /// Call exactly where the protocol decides the packet is done (delivered
  /// at its destination / given up on); duplicate closes are ignored.
  void ledger_close(const net::Packet& pkt, net::PacketFate fate) {
    if (pkt.uid != 0) net_.ledger().close(pkt.uid, fate, net_.now());
  }

  /// Attach this protocol as the handler of every node.
  void attach_to_all() {
    for (net::NodeId id = 0; id < net_.size(); ++id) {
      net_.attach_handler(id, this);
    }
  }

  net::Network& net_;
  loc::LocationService& loc_;
  ProtocolStats stats_;
  obs::Profiler* profiler_ = nullptr;  // non-owning; null = not profiling
  obs::ScopeId send_scope_ = 0;
  obs::ScopeId handle_scope_ = 0;
  obs::Counter* crypto_ops_ = nullptr;         // owned by the registry
  util::Accumulator* crypto_seconds_ = nullptr;
};

}  // namespace alert::routing
