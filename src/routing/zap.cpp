#include "routing/zap.hpp"

#include <algorithm>

#include "routing/geo_forwarding.hpp"

namespace alert::routing {

ZapRouter::ZapRouter(net::Network& network, loc::LocationService& location,
                     ZapConfig config)
    : Protocol(network, location),
      config_(config),
      rng_(network.rng().fork(0x5A9)) {
  init_profiling("zap");
  attach_to_all();
}

util::Rect ZapRouter::cloak(util::Vec2 dest, util::Rng& rng) const {
  const double side = config_.zone_side_m;
  const util::Rect& field = net_.config().field;
  // D sits at a uniform position inside the zone, so the zone centre
  // reveals nothing about D's exact location.
  const double off_x = rng.uniform(0.0, side);
  const double off_y = rng.uniform(0.0, side);
  util::Vec2 min{dest.x - off_x, dest.y - off_y};
  // Clamp into the field while preserving the side length.
  min.x = std::clamp(min.x, field.min.x, field.max.x - side);
  min.y = std::clamp(min.y, field.min.y, field.max.y - side);
  return util::Rect{min, {min.x + side, min.y + side}};
}

void ZapRouter::send(net::NodeId src, net::NodeId dst,
                     std::size_t payload_bytes, std::uint32_t flow,
                     std::uint32_t seq) {
  ALERT_OBS_TIMED(profiler_, send_scope_);
  const auto record = loc_.query(src, dst);
  if (!record) return;

  net::Node& source = net_.node(src);
  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.src_pseudonym = source.pseudonym();
  pkt.dst_pseudonym = record->pseudonym;
  pkt.flow = flow;
  pkt.seq = seq;
  pkt.payload.assign(payload_bytes, 0);
  pkt.alert = net::AlertFields{};  // universal zone fields (see header)
  pkt.alert->dest_zone = cloak(record->position, rng_);
  pkt.alert->td = pkt.alert->dest_zone.center();
  pkt.hops_remaining = config_.max_hops;
  pkt.uid = net_.next_uid();
  pkt.app_send_time = net_.now();
  pkt.first_send_time = net_.now();
  pkt.true_source = src;
  pkt.true_dest = dst;
  pkt.size_bytes = payload_bytes + header_bytes(pkt);

  ++stats_.data_sent;
  forward(source, std::move(pkt));
}

void ZapRouter::handle(net::Node& self, const net::Packet& pkt) {
  ALERT_OBS_TIMED(profiler_, handle_scope_);
  if (pkt.kind != net::PacketKind::Data || !pkt.alert) return;
  if (pkt.alert->in_dest_zone_phase) {
    const util::Vec2 pos = self.position(net_.now());
    if (!pkt.alert->dest_zone.contains(pos)) return;  // overheard
    if (net_.resolve_pseudonym(pkt.dst_pseudonym) == self.id() &&
        delivered_uids_.insert(pkt.uid).second) {
      ++stats_.data_delivered;
      ledger_close(pkt, net::PacketFate::Delivered);
      // D must keep rebroadcasting like every other zone member, or its
      // silence would single it out.
    }
    if (config_.flood_rebroadcast && pkt.hops_remaining > 0 &&
        !rebroadcast_done_[pkt.uid ^ (static_cast<std::uint64_t>(self.id())
                                      << 40)]) {
      rebroadcast_done_[pkt.uid ^ (static_cast<std::uint64_t>(self.id())
                                   << 40)] = true;
      net::Packet copy = pkt;
      --copy.hops_remaining;
      ++copy.hop_count;
      ++stats_.broadcasts;
      net_.broadcast(self, std::move(copy), config_.per_hop_processing_s);
    }
    return;
  }
  forward(self, pkt);
}

bool ZapRouter::reroute_failed(net::Node& self, const net::Packet& pkt) {
  // Unicasts only happen on the geo-forwarding leg toward the zone; the
  // in-zone phase is all broadcast and cannot reach here.
  if (pkt.kind != net::PacketKind::Data || !pkt.alert ||
      pkt.alert->in_dest_zone_phase) {
    return false;
  }
  forward(self, pkt);
  return true;
}

void ZapRouter::forward(net::Node& self, net::Packet pkt) {
  if (pkt.hops_remaining <= 0) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  const util::Vec2 self_pos = self.position(net_.now());
  if (pkt.alert->dest_zone.contains(self_pos)) {
    zone_flood(self, std::move(pkt));
    return;
  }
  --pkt.hops_remaining;
  ++pkt.hop_count;
  const util::Vec2 target = pkt.alert->td;
  if (const auto* next = greedy_next_hop(self, self_pos, target)) {
    ++stats_.forwards;
    net_.unicast(self, next->pseudonym, std::move(pkt),
                 config_.per_hop_processing_s);
    return;
  }
  util::Vec2 from = target;
  if (pkt.prev_hop != net::kInvalidNode && pkt.prev_hop != self.id()) {
    from = net_.node(pkt.prev_hop).position(net_.now());
  }
  if (const auto* next = perimeter_next_hop(self, self_pos, from)) {
    ++stats_.forwards;
    net_.unicast(self, next->pseudonym, std::move(pkt),
                 config_.per_hop_processing_s);
    return;
  }
  ++stats_.data_dropped;
  ledger_close(pkt, net::PacketFate::Dropped);
}

void ZapRouter::zone_flood(net::Node& self, net::Packet pkt) {
  --pkt.hops_remaining;
  ++pkt.hop_count;
  pkt.alert->in_dest_zone_phase = true;
  rebroadcast_done_[pkt.uid ^ (static_cast<std::uint64_t>(self.id())
                               << 40)] = true;
  ++stats_.broadcasts;
  // The entry holder may itself be D.
  net::Packet local = pkt;
  net_.broadcast(self, std::move(pkt), config_.per_hop_processing_s);
  if (net_.resolve_pseudonym(local.dst_pseudonym) == self.id() &&
      delivered_uids_.insert(local.uid).second) {
    ++stats_.data_delivered;
    ledger_close(local, net::PacketFate::Delivered);
  }
}

}  // namespace alert::routing
