#pragma once

/// \file geo_forwarding.hpp
/// Shared geographic forwarding primitives (GPSR, Karp & Kung): greedy
/// next-hop selection and right-hand-rule perimeter forwarding on the
/// Gabriel-planarized neighbour graph. GPSR/ALARM/AO2P use both; ALERT's
/// legs between RFs use greedy (a local maximum toward a TD *is* the next
/// random forwarder, Fig. 3) and the destination leg may use perimeter
/// recovery without compromising anonymity (Sec. 2.7).

#include <optional>
#include <vector>

#include "net/node.hpp"

namespace alert::routing {

/// The neighbour (by beaconed position) strictly closer to `target` than
/// `self_pos`, minimizing remaining distance. nullptr at a local maximum.
[[nodiscard]] const net::NeighborInfo* greedy_next_hop(
    const net::Node& self, util::Vec2 self_pos, util::Vec2 target);

/// Gabriel-graph filter: neighbour v survives if no witness w (another
/// neighbour) lies strictly inside the circle with diameter (self, v).
/// Planarization is what makes the right-hand rule traverse faces.
[[nodiscard]] std::vector<const net::NeighborInfo*> gabriel_neighbors(
    const net::Node& self, util::Vec2 self_pos);

/// Right-hand-rule successor: the first Gabriel edge counterclockwise from
/// the reference direction `(from - self_pos)`. Returns nullptr when the
/// node has no planar neighbours.
[[nodiscard]] const net::NeighborInfo* perimeter_next_hop(
    const net::Node& self, util::Vec2 self_pos, util::Vec2 from);

}  // namespace alert::routing
