#include "routing/alert_router.hpp"

#include <cassert>
#include <cstring>

#include "routing/geo_forwarding.hpp"

namespace alert::routing {

namespace {

/// Magic tag marking a valid decrypted TTL (Sec. 2.6: receivers that fail
/// to recover this tag treat the packet as cover traffic and drop it).
constexpr std::uint64_t kTtlMagic = 0x414C455254ull;  // "ALERT"

std::vector<std::uint8_t> encode_rect(const util::Rect& r) {
  std::vector<std::uint8_t> out(32);
  const double vals[4] = {r.min.x, r.min.y, r.max.x, r.max.y};
  std::memcpy(out.data(), vals, 32);
  return out;
}

util::Rect decode_rect(const std::vector<std::uint8_t>& bytes) {
  assert(bytes.size() == 32);
  double vals[4];
  std::memcpy(vals, bytes.data(), 32);
  return util::Rect{vals[0], vals[1], vals[2], vals[3]};
}

std::vector<std::uint8_t> encode_key(const crypto::SymmetricKey& k) {
  std::vector<std::uint8_t> out(16);
  std::memcpy(out.data(), k.words.data(), 16);
  return out;
}

crypto::SymmetricKey decode_key(const std::vector<std::uint8_t>& bytes) {
  assert(bytes.size() == 16);
  crypto::SymmetricKey k;
  std::memcpy(k.words.data(), bytes.data(), 16);
  return k;
}

std::uint64_t hold_key(net::NodeId node, std::uint32_t flow) {
  return (static_cast<std::uint64_t>(node) << 32) | flow;
}

}  // namespace

AlertRouter::AlertRouter(net::Network& network,
                         loc::LocationService& location, AlertConfig config)
    : Protocol(network, location),
      config_(config),
      h_(config.k_anonymity
             ? partitions_for_anonymity(
                   static_cast<double>(network.size()), *config.k_anonymity)
             : config.partitions_h),
      rng_(network.rng().fork(0xA1E47)) {
  assert(h_ >= 1);
  init_profiling("alert");
  attach_to_all();
}

AlertRouter::FlowState* AlertRouter::flow_state(net::NodeId src,
                                                net::NodeId dst,
                                                std::uint32_t flow) {
  auto it = flows_.find(flow);
  if (it != flows_.end()) return &it->second;

  FlowState st;
  st.src = src;
  st.dest = dst;
  const auto record = loc_.query(src, dst);
  if (!record) return nullptr;  // location service unreachable
  st.dest_pub = record->pubkey;
  st.dest_pseudonym = record->pseudonym;

  const util::Rect& field = net_.config().field;
  st.dest_zone = destination_zone(field, record->position, h_);
  st.src_zone =
      destination_zone(field, net_.node(src).position(net_.now()), h_);

  // Session setup (once per flow): generate K_s, wrap it and L_ZS under
  // K_pub^D. These public-key operations happen before the session's first
  // packet is handed to the MAC, so they are charged to the crypto total
  // but not to per-packet latency (Sec. 2.5 lets the source precompute
  // them and forward the results along the route).
  st.session_key = crypto::SymmetricKey::from_seed(rng_.next());
  st.src_zone_enc =
      crypto::rsa_encrypt_bytes(st.dest_pub, encode_rect(st.src_zone));
  st.session_key_enc =
      crypto::rsa_encrypt_bytes(st.dest_pub, encode_key(st.session_key));
  charge_crypto(net_.node(src),
                2.0 * net_.config().crypto_cost.public_encrypt_s);

  return &flows_.emplace(flow, std::move(st)).first->second;
}

void AlertRouter::send(net::NodeId src, net::NodeId dst,
                       std::size_t payload_bytes, std::uint32_t flow,
                       std::uint32_t seq) {
  ALERT_OBS_TIMED(profiler_, send_scope_);
  FlowState* state = flow_state(src, dst, flow);
  if (state == nullptr) return;  // no location service: cannot even begin
  FlowState& st = *state;
  net::Node& source = net_.node(src);

  // While the location service applies destination updates, the source
  // recomputes Z_D from the freshest position before each packet, so the
  // destination zone tracks a mobile D (Sec. 5.6's "with destination
  // update" behaviour). The source zone L_ZS likewise follows the source;
  // its ciphertext is only refreshed when S crosses into another zone
  // (a rare event that costs one public-key encryption).
  if (!loc_.frozen()) {
    if (const auto record = loc_.query(src, dst)) {
      st.dest_pseudonym = record->pseudonym;
      st.dest_zone =
          destination_zone(net_.config().field, record->position, h_);
    }
    const util::Rect src_zone_now = destination_zone(
        net_.config().field, source.position(net_.now()), h_);
    if (!(src_zone_now == st.src_zone)) {
      st.src_zone = src_zone_now;
      st.src_zone_enc =
          crypto::rsa_encrypt_bytes(st.dest_pub, encode_rect(st.src_zone));
      charge_crypto(source, net_.config().crypto_cost.public_encrypt_s);
    }
  }

  net::Packet pkt;
  pkt.kind = net::PacketKind::Data;
  pkt.src_pseudonym = source.pseudonym();
  pkt.dst_pseudonym = st.dest_pseudonym;
  pkt.flow = flow;
  pkt.seq = seq;
  pkt.uid = net_.next_uid();
  pkt.app_send_time = net_.now();
  pkt.first_send_time = net_.now();
  pkt.true_source = src;
  pkt.true_dest = dst;
  pkt.hops_remaining = config_.max_hops;

  // Payload encrypted under the session key (symmetric, Sec. 2.5). The
  // plaintext is arbitrary application data; we use the seq pattern so
  // tests can verify end-to-end recovery.
  pkt.payload.assign(payload_bytes, static_cast<std::uint8_t>(seq));
  crypto::xtea_ctr_apply(st.session_key,
                         (static_cast<std::uint64_t>(flow) << 32) | seq,
                         pkt.payload);
  const double enc_cost =
      net_.config().crypto_cost.symmetric_encrypt_for(payload_bytes);
  charge_crypto(source, enc_cost);

  pkt.alert = net::AlertFields{};
  pkt.alert->dest_zone = st.dest_zone;
  pkt.alert->cap_h = static_cast<std::uint8_t>(h_);
  pkt.alert->next_partition_horizontal = rng_.bernoulli(0.5);
  pkt.alert->src_zone_enc = st.src_zone_enc;
  pkt.alert->session_key_enc = st.session_key_enc;
  pkt.alert->dest_pubkey = st.dest_pub;
  pkt.alert->bitmap_flips_per_layer =
      static_cast<std::uint32_t>(config_.bitmap_flips);
  pkt.size_bytes = pkt.payload.size() + header_bytes(pkt);

  ++stats_.data_sent;
  if (config_.send_confirmation) {
    PendingConfirm pending;
    pending.packet = pkt;
    pending.retries_left = config_.max_retransmissions;
    pending_.emplace(confirm_key(flow, seq), std::move(pending));
    arm_confirm_timer(flow, seq);
  }

  // The symmetric encryption happens before the MAC gets the frame, so it
  // delays this packet: fold it into the camouflage hold time below.
  net::Packet first = pkt;
  net::Node* src_node = &source;
  net_.simulator().schedule_in(enc_cost, [this, src_node, first]() mutable {
    transmit_with_camouflage(*src_node, std::move(first));
  });
}

void AlertRouter::transmit_with_camouflage(net::Node& source,
                                           net::Packet pkt) {
  if (!config_.notify_and_go) {
    forward(source, std::move(pkt), /*force_partition=*/true);
    return;
  }
  // "Notify" phase: the back-off pair (t, t0) rides on the periodic update
  // packets (no extra frame); each neighbour then emits a few bytes of
  // cover traffic at a random time in [t, t + t0], and S releases the real
  // packet in the same window (Sec. 2.6). The TTL of the real packet is
  // encrypted under the next relay's public key during the hold time, so
  // the wait is not extended by the operation.
  const double window_start = config_.notify_t_s;
  const double window = config_.notify_t0_s;
  const util::Vec2 src_pos = source.position(net_.now());
  for (const net::NodeId id : net_.nodes_within(
           src_pos, net_.config().radio_range_m, net_.now())) {
    if (id == source.id()) continue;
    net::Node* neighbor = &net_.node(id);
    const double when = window_start + rng_.uniform() * window;
    net_.simulator().schedule_in(when, [this, neighbor] {
      net::Packet cover;
      cover.kind = net::PacketKind::Cover;
      cover.src_pseudonym = neighbor->pseudonym();
      cover.size_bytes = config_.cover_bytes;
      cover.true_source = neighbor->id();
      cover.alert = net::AlertFields{};
      // Garbage TTL ciphertext: nobody can decrypt it to the magic tag, so
      // every receiver drops the packet — the TTL=0 semantics of Sec. 2.6.
      cover.alert->ttl_enc = rng_.next() | 1;
      ++stats_.cover_packets;
      net_.broadcast(*neighbor, std::move(cover));
    });
  }
  const double hold = window_start + rng_.uniform() * window;
  net::Node* src_node = &source;
  net_.simulator().schedule_in(hold, [this, src_node, pkt]() mutable {
    forward(*src_node, std::move(pkt), /*force_partition=*/true);
  });
}

void AlertRouter::arm_confirm_timer(std::uint32_t flow, std::uint32_t seq) {
  const std::uint64_t key = confirm_key(flow, seq);
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  it->second.timer = net_.simulator().schedule_in(
      config_.confirm_timeout_s, [this, flow, seq] { resend(flow, seq); });
}

void AlertRouter::resend(std::uint32_t flow, std::uint32_t seq) {
  const std::uint64_t key = confirm_key(flow, seq);
  auto it = pending_.find(key);
  if (it == pending_.end()) return;  // confirmed in the meantime
  if (it->second.retries_left <= 0) {
    // Out of retries: the application packet is now definitively given up.
    ledger_close(it->second.packet, net::PacketFate::Dropped);
    pending_.erase(it);
    return;
  }
  --it->second.retries_left;
  ++stats_.retransmissions;
  net::Packet copy = it->second.packet;
  copy.hops_remaining = config_.max_hops;
  copy.hop_count = 0;
  // Latency is measured per delivery attempt (as in the paper: the time
  // elapsed after a packet is sent and before it is received), so the
  // retransmitted copy restarts the clock.
  copy.app_send_time = net_.now();
  // A fresh route: new direction bit, new TDs — ALERT never reuses paths.
  copy.alert->next_partition_horizontal = rng_.bernoulli(0.5);
  net::Node& source = net_.node(copy.true_source);
  transmit_with_camouflage(source, std::move(copy));
  arm_confirm_timer(flow, seq);
}

void AlertRouter::handle(net::Node& self, const net::Packet& pkt) {
  ALERT_OBS_TIMED(profiler_, handle_scope_);
  switch (pkt.kind) {
    case net::PacketKind::Cover: {
      // Attempt to decrypt the TTL with our private key; cover packets
      // never yield the magic tag, so they die here (Sec. 2.6).
      if (pkt.alert && pkt.alert->ttl_enc) {
        const std::uint64_t ttl_ct = *pkt.alert->ttl_enc % self.private_key().n;
        const std::uint64_t v =
            crypto::rsa_decrypt_value(self.private_key(), ttl_ct);
        if ((v >> 8) == kTtlMagic) {
          // Indistinguishable-from-cover real packet addressed to us would
          // continue here; covers never reach this branch.
          return;
        }
      }
      return;
    }
    case net::PacketKind::Data:
    case net::PacketKind::Confirm:
    case net::PacketKind::Nak:
      break;
    default:
      return;
  }
  if (!pkt.alert) return;

  // First-hop TTL verification (Sec. 2.6): the source sealed the TTL under
  // our public key so this frame is indistinguishable from the cover
  // traffic around it. A failed unseal means the frame was not for us —
  // exactly how covers die — so we drop silently.
  if (pkt.alert->ttl_enc) {
    const std::uint64_t v = crypto::rsa_decrypt_value(
        self.private_key(), *pkt.alert->ttl_enc % self.private_key().n);
    if ((v >> 8) != kTtlMagic) return;
    charge_crypto(self, net_.config().crypto_cost.verify_s);
  }

  if (pkt.alert->in_dest_zone_phase) {
    on_zone_broadcast(self, pkt);
    return;
  }
  // A relay that happens to be D itself accepts silently and *continues
  // forwarding* so its behaviour is indistinguishable from any relay.
  if (pkt.kind == net::PacketKind::Data &&
      net_.resolve_pseudonym(pkt.dst_pseudonym) == self.id()) {
    accept_at_destination(self, pkt);
  }
  forward(self, pkt, /*force_partition=*/false);
}

void AlertRouter::seal_first_hop_ttl(net::Node& self, net::Packet& pkt,
                                     const net::NeighborInfo& next) {
  // Sec. 2.6: only the source's first transmission carries a TTL sealed
  // under the next relay's public key, making the real packet
  // indistinguishable from the covers released in the same window. The
  // operation happens during the notify-and-go hold, so it adds no
  // latency; the crypto time is still accounted.
  if (!config_.notify_and_go || pkt.kind != net::PacketKind::Data) return;
  if (pkt.hop_count != 1 || pkt.alert->ttl_enc) return;
  const std::uint64_t plain =
      (kTtlMagic << 8) | static_cast<std::uint64_t>(config_.max_hops & 0xFF);
  pkt.alert->ttl_enc =
      crypto::rsa_encrypt_value(next.pubkey, plain % next.pubkey.n);
  charge_crypto(self, net_.config().crypto_cost.verify_s);
}

bool AlertRouter::reroute_failed(net::Node& self, const net::Packet& pkt) {
  // Data, Confirm and Nak all route through forward(); Cover is broadcast-
  // only and cannot unicast-fail. A failed camouflaged first hop still
  // carries its sealed TTL (hop_count == 1): forward() bumps hop_count past
  // 1 and clears the seal, so the salvage leg runs in the clear — the
  // camouflage window is over by the time the ARQ gives up anyway.
  if (!pkt.alert) return false;
  forward(self, pkt, /*force_partition=*/false);
  return true;
}

void AlertRouter::forward(net::Node& self, net::Packet pkt,
                          bool force_partition) {
  if (pkt.hops_remaining <= 0) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  const util::Vec2 self_pos = self.position(net_.now());
  const util::Rect zd = pkt.alert->dest_zone;

  if (zd.contains(self_pos)) {
    deliver_into_zone(self, std::move(pkt));
    return;
  }

  --pkt.hops_remaining;
  ++pkt.hop_count;
  // The sealed TTL only guards the camouflaged first hop; onward relays
  // forward in the clear (Sec. 2.6).
  if (pkt.hop_count > 1) pkt.alert->ttl_enc.reset();

  // A packet already in fallback mode (sparse region: random TDs made no
  // progress) runs a plain GPSR leg toward the destination zone until it
  // arrives there; Sec. 2.7 allows face routing between RFs without
  // compromising anonymity.
  if (pkt.geo) {
    fallback_leg(self, std::move(pkt));
    return;
  }

  if (!force_partition) {
    // Relay leg: continue greedily toward the current TD.
    if (const auto* next = greedy_next_hop(self, self_pos, pkt.alert->td)) {
      ++stats_.forwards;
      net_.unicast(self, next->pseudonym, std::move(pkt),
                   config_.per_hop_processing_s);
      return;
    }
    // No neighbour closer to the TD: this node is the random forwarder
    // (Fig. 3) and performs the next partition.
    if (pkt.kind == net::PacketKind::Data) {
      ++stats_.random_forwarders;
      distinct_rfs_.insert(self.id());
    }
  }

  const util::Axis axis = pkt.alert->next_partition_horizontal
                              ? util::Axis::Horizontal
                              : util::Axis::Vertical;
  const int budget = static_cast<int>(pkt.alert->cap_h) - pkt.alert->h;
  const auto step = partition_until_separated(net_.config().field, self_pos,
                                              zd, axis, budget);
  if (step) {
    pkt.alert->h = static_cast<std::uint8_t>(pkt.alert->h +
                                             step->splits_performed);
    if (pkt.kind == net::PacketKind::Data) {
      stats_.partitions += static_cast<std::uint64_t>(step->splits_performed);
    }
    pkt.alert->next_partition_horizontal =
        util::flip(step->last_axis) == util::Axis::Horizontal;
    for (int attempt = 0; attempt < 3; ++attempt) {
      const util::Vec2 td = choose_temporary_destination(*step, rng_);
      if (const auto* next = greedy_next_hop(self, self_pos, td)) {
        pkt.alert->td = td;
        seal_first_hop_ttl(self, pkt, *next);
        ++stats_.forwards;
        net_.unicast(self, next->pseudonym, std::move(pkt),
                     config_.per_hop_processing_s);
        return;
      }
    }
  }
  // Separation impossible within budget or no progress toward any TD:
  // enter fallback mode — a plain GPSR leg (greedy + perimeter recovery)
  // straight toward the destination zone (Sec. 2.7 explicitly allows face
  // routing between RFs).
  pkt.alert->td = zd.center();
  pkt.geo = net::GeoFields{};
  pkt.geo->dest_pos = zd.center();
  fallback_leg(self, std::move(pkt));
}

void AlertRouter::fallback_leg(net::Node& self, net::Packet pkt) {
  const util::Vec2 self_pos = self.position(net_.now());
  const util::Vec2 target = pkt.geo->dest_pos;

  // Perimeter-mode exit test: closer to the zone than where greedy failed.
  if (pkt.geo->perimeter_mode &&
      util::distance(self_pos, target) <
          util::distance(pkt.geo->perimeter_entry, target)) {
    pkt.geo->perimeter_mode = false;
  }
  if (!pkt.geo->perimeter_mode) {
    if (const auto* next = greedy_next_hop(self, self_pos, target)) {
      seal_first_hop_ttl(self, pkt, *next);
      ++stats_.forwards;
      net_.unicast(self, next->pseudonym, std::move(pkt),
                   config_.per_hop_processing_s);
      return;
    }
    if (!config_.use_perimeter_fallback) {
      ++stats_.data_dropped;
      ledger_close(pkt, net::PacketFate::Dropped);
      return;
    }
    pkt.geo->perimeter_mode = true;
    pkt.geo->perimeter_entry = self_pos;
    pkt.geo->face_cross_start = target;
    pkt.geo->perimeter_first_hop = net::kInvalidNode;
  }
  util::Vec2 from = pkt.geo->face_cross_start;
  if (pkt.prev_hop != net::kInvalidNode && pkt.prev_hop != self.id()) {
    from = net_.node(pkt.prev_hop).position(net_.now());
  }
  const auto* next = perimeter_next_hop(self, self_pos, from);
  if (next == nullptr) {
    ++stats_.data_dropped;
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  const net::NodeId next_id = net_.resolve_pseudonym(next->pseudonym);
  if (pkt.geo->perimeter_first_hop == net::kInvalidNode) {
    pkt.geo->perimeter_first_hop = next_id;
  } else if (next_id == pkt.geo->perimeter_first_hop) {
    ++stats_.data_dropped;  // walked the whole face: zone unreachable
    ledger_close(pkt, net::PacketFate::Dropped);
    return;
  }
  ++stats_.forwards;
  net_.unicast(self, next->pseudonym, std::move(pkt),
               config_.per_hop_processing_s);
}

void AlertRouter::deliver_into_zone(net::Node& self, net::Packet pkt) {
  --pkt.hops_remaining;
  ++pkt.hop_count;
  pkt.alert->in_dest_zone_phase = true;
  ++stats_.broadcasts;

  const bool counter = config_.intersection_countermeasure &&
                       pkt.kind == net::PacketKind::Data;
  double processing = config_.per_hop_processing_s;
  if (counter) {
    // Alter payload bits; append an encrypted bitmap layer (Sec. 3.3).
    crypto::AlterationBitmap bm = crypto::AlterationBitmap::alter(
        pkt.payload, config_.bitmap_flips, rng_);
    pkt.alert->bitmap_layers_enc.push_back(
        crypto::rsa_encrypt_bytes(pkt.alert->dest_pubkey, bm.serialize()));
    charge_crypto(self, net_.config().crypto_cost.public_encrypt_s);
    processing += net_.config().crypto_cost.public_encrypt_s;

    // First-step multicast: m random zone members (D not guaranteed in).
    const util::Vec2 self_pos = self.position(net_.now());
    std::vector<net::Pseudonym> zone_members;
    for (const auto& n : self.neighbors()) {
      if (pkt.alert->dest_zone.contains(n.position)) {
        zone_members.push_back(n.pseudonym);
      }
    }
    pkt.alert->multicast_set.clear();
    for (std::size_t i = 0;
         i < config_.countermeasure_m && !zone_members.empty(); ++i) {
      const std::size_t pick = rng_.below(zone_members.size());
      pkt.alert->multicast_set.push_back(zone_members[pick]);
      zone_members.erase(zone_members.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    }
    (void)self_pos;
  }
  pkt.size_bytes = pkt.payload.size() + header_bytes(pkt);
  // The broadcaster itself may be a zone member (or even D).
  net::Packet local = pkt;
  net_.broadcast(self, std::move(pkt), processing);
  on_zone_broadcast(self, local);
}

void AlertRouter::on_zone_broadcast(net::Node& self, const net::Packet& pkt) {
  const util::Vec2 self_pos = self.position(net_.now());
  if (!pkt.alert->dest_zone.contains(self_pos)) return;  // overheard only

  const bool i_am_target =
      net_.resolve_pseudonym(pkt.dst_pseudonym) == self.id();

  if (config_.intersection_countermeasure &&
      pkt.kind == net::PacketKind::Data) {
    if (pkt.alert->countermeasure_second_step) {
      if (i_am_target) accept_at_destination(self, pkt);
      return;
    }
    // First step. Arrival of the next packet triggers the one-hop
    // rebroadcast of any held previous packet (Sec. 3.3 mixing).
    const std::uint64_t hk = hold_key(self.id(), pkt.flow);
    auto held = held_.find(hk);
    if (held != held_.end() && held->second.seq < pkt.seq) {
      net::Packet release = std::move(held->second);
      held_.erase(held);
      release.alert->countermeasure_second_step = true;
      // Each rebroadcaster re-alters bits so broadcasts of the same packet
      // are never byte-identical on air.
      crypto::AlterationBitmap bm = crypto::AlterationBitmap::alter(
          release.payload, config_.bitmap_flips, rng_);
      release.alert->bitmap_layers_enc.push_back(crypto::rsa_encrypt_bytes(
          release.alert->dest_pubkey, bm.serialize()));
      charge_crypto(self, net_.config().crypto_cost.public_encrypt_s);
      release.size_bytes = release.payload.size() + header_bytes(release);
      ++stats_.broadcasts;
      net_.broadcast(self, std::move(release),
                     config_.per_hop_processing_s);
    }
    const bool in_multicast_set =
        std::find(pkt.alert->multicast_set.begin(),
                  pkt.alert->multicast_set.end(),
                  self.pseudonym()) != pkt.alert->multicast_set.end();
    if (in_multicast_set) {
      held_[hk] = pkt;  // hold until the next packet of this flow
      if (i_am_target) accept_at_destination(self, pkt);
    }
    return;
  }

  if (!i_am_target) return;  // one of the k-anonymity camouflage receivers

  switch (pkt.kind) {
    case net::PacketKind::Data:
      accept_at_destination(self, pkt);
      break;
    case net::PacketKind::Confirm: {
      pending_.erase(confirm_key(pkt.flow, pkt.seq));
      ledger_close(pkt, net::PacketFate::Delivered);
      break;
    }
    case net::PacketKind::Nak: {
      // NAK's seq field names the missing packet; resend immediately.
      const std::uint64_t key = confirm_key(pkt.flow, pkt.seq);
      if (pending_.contains(key)) resend(pkt.flow, pkt.seq);
      ++stats_.naks;
      ledger_close(pkt, net::PacketFate::Delivered);
      break;
    }
    default:
      break;
  }
}

void AlertRouter::accept_at_destination(net::Node& self,
                                        const net::Packet& pkt) {
  const std::uint64_t mark = confirm_key(pkt.flow, pkt.seq);
  if (delivered_marks_.contains(mark)) return;  // duplicate copy
  DestState& ds = dest_state_[pkt.flow];
  if (!ds.have_key) {
    // Unwrap the session key and the source zone once per flow (public-key
    // decryptions, charged to the crypto total).
    ds.session_key = decode_key(crypto::rsa_decrypt_bytes(
        self.private_key(), pkt.alert->session_key_enc, 16));
    ds.src_zone = decode_rect(crypto::rsa_decrypt_bytes(
        self.private_key(), pkt.alert->src_zone_enc, 32));
    ds.have_key = true;
    ds.have_src_zone = true;
    charge_crypto(self, 2.0 * net_.config().crypto_cost.public_decrypt_s);
  }

  // Undo countermeasure bit alterations (layers in reverse), then decrypt.
  std::vector<std::uint8_t> payload = pkt.payload;
  for (auto it = pkt.alert->bitmap_layers_enc.rbegin();
       it != pkt.alert->bitmap_layers_enc.rend(); ++it) {
    const auto raw = crypto::rsa_decrypt_bytes(
        self.private_key(), *it,
        static_cast<std::size_t>(pkt.alert->bitmap_flips_per_layer) * 4);
    crypto::AlterationBitmap::deserialize(raw).restore(payload);
    charge_crypto(self, net_.config().crypto_cost.public_decrypt_s);
  }
  crypto::xtea_ctr_apply(
      ds.session_key,
      (static_cast<std::uint64_t>(pkt.flow) << 32) | pkt.seq, payload);
  charge_crypto(self,
                net_.config().crypto_cost.symmetric_decrypt_for(payload.size()));
  // Verify recovery: plaintext is seq-patterned (see send()).
  const bool intact =
      payload.empty() || payload.front() == static_cast<std::uint8_t>(pkt.seq);
  if (!intact) return;  // corrupted; wait for a retransmission

  delivered_marks_.insert(mark);
  ++stats_.data_delivered;
  ledger_close(pkt, net::PacketFate::Delivered);

  if (config_.use_nak) {
    if (pkt.seq > ds.expected_seq) {
      // Gap: NAK the first missing packet (data field empty, Sec. 2.5).
      send_nak(self, pkt, ds.expected_seq);
    }
    ds.received.insert(pkt.seq);
    while (ds.received.contains(ds.expected_seq)) ++ds.expected_seq;
  }
  if (config_.send_confirmation) send_confirm(self, pkt);
}

void AlertRouter::send_confirm(net::Node& dest_node,
                               const net::Packet& data_pkt) {
  DestState& ds = dest_state_[data_pkt.flow];
  if (!ds.have_src_zone) return;
  net::Packet confirm;
  confirm.kind = net::PacketKind::Confirm;
  confirm.src_pseudonym = dest_node.pseudonym();
  confirm.dst_pseudonym = data_pkt.src_pseudonym;
  confirm.flow = data_pkt.flow;
  confirm.seq = data_pkt.seq;
  confirm.uid = net_.next_uid();
  confirm.app_send_time = net_.now();
  confirm.true_source = dest_node.id();
  confirm.true_dest = data_pkt.true_source;
  confirm.hops_remaining = config_.max_hops;
  confirm.alert = net::AlertFields{};
  confirm.alert->dest_zone = ds.src_zone;  // route back to Z_S
  confirm.alert->cap_h = static_cast<std::uint8_t>(h_);
  confirm.alert->next_partition_horizontal = rng_.bernoulli(0.5);
  confirm.size_bytes = header_bytes(confirm);
  forward(dest_node, std::move(confirm), /*force_partition=*/true);
}

void AlertRouter::send_nak(net::Node& dest_node, const net::Packet& data_pkt,
                           std::uint32_t missing_seq) {
  DestState& ds = dest_state_[data_pkt.flow];
  if (!ds.have_src_zone) return;
  net::Packet nak;
  nak.kind = net::PacketKind::Nak;
  nak.src_pseudonym = dest_node.pseudonym();
  nak.dst_pseudonym = data_pkt.src_pseudonym;
  nak.flow = data_pkt.flow;
  nak.seq = missing_seq;
  nak.uid = net_.next_uid();
  nak.app_send_time = net_.now();
  nak.true_source = dest_node.id();
  nak.true_dest = data_pkt.true_source;
  nak.hops_remaining = config_.max_hops;
  nak.alert = net::AlertFields{};
  nak.alert->dest_zone = ds.src_zone;
  nak.alert->cap_h = static_cast<std::uint8_t>(h_);
  nak.alert->next_partition_horizontal = rng_.bernoulli(0.5);
  nak.size_bytes = header_bytes(nak);  // data field empty in NAKs
  forward(dest_node, std::move(nak), /*force_partition=*/true);
}

}  // namespace alert::routing
