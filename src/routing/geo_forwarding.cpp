#include "routing/geo_forwarding.hpp"

#include <algorithm>
#include <cmath>

namespace alert::routing {

const net::NeighborInfo* greedy_next_hop(const net::Node& self,
                                         util::Vec2 self_pos,
                                         util::Vec2 target) {
  const double self_d = util::distance_sq(self_pos, target);
  const net::NeighborInfo* best = nullptr;
  double best_d = self_d;
  for (const auto& n : self.neighbors()) {
    const double d = util::distance_sq(n.position, target);
    if (d < best_d) {
      best = &n;
      best_d = d;
    }
  }
  return best;
}

std::vector<const net::NeighborInfo*> gabriel_neighbors(
    const net::Node& self, util::Vec2 self_pos) {
  std::vector<const net::NeighborInfo*> result;
  const auto& neighbors = self.neighbors();
  for (const auto& v : neighbors) {
    const util::Vec2 mid = (self_pos + v.position) * 0.5;
    const double radius_sq = util::distance_sq(self_pos, v.position) * 0.25;
    const bool witnessed = std::any_of(
        neighbors.begin(), neighbors.end(), [&](const net::NeighborInfo& w) {
          return w.pseudonym != v.pseudonym &&
                 util::distance_sq(w.position, mid) < radius_sq - 1e-9;
        });
    if (!witnessed) result.push_back(&v);
  }
  return result;
}

const net::NeighborInfo* perimeter_next_hop(const net::Node& self,
                                            util::Vec2 self_pos,
                                            util::Vec2 from) {
  const auto planar = gabriel_neighbors(self, self_pos);
  if (planar.empty()) return nullptr;
  const double ref = (from - self_pos).angle();
  const net::NeighborInfo* best = nullptr;
  double best_delta = 0.0;
  for (const auto* n : planar) {
    const double ang = (n->position - self_pos).angle();
    // Counterclockwise sweep from the reference direction; pick the first
    // edge strictly after it (right-hand rule).
    double delta = ang - ref;
    // Angle normalisation, not a reduction: each pass adds the same 2π
    // constant, so the result is order-free by construction.
    while (delta <= 1e-12) delta += 2.0 * M_PI;  // alert-lint: allow(fp-accumulation-order)
    if (best == nullptr || delta < best_delta) {
      best = n;
      best_delta = delta;
    }
  }
  return best;
}

}  // namespace alert::routing
