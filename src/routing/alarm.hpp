#pragma once

/// \file alarm.hpp
/// ALARM (El Defrawy & Tsudik, ICNP'07) baseline: proactive anonymous
/// location-aided routing. Every node periodically disseminates a signed
/// location announcement (LAM) to its authenticated neighbours; flooding
/// propagates announcements network-wide so each node maintains a "secure
/// map" of current node positions, over which it forwards geographically.
/// Data forwarding pays hop-by-hop public-key cryptography (each node
/// encrypts with its key, verified by the next hop) — the high-latency
/// behaviour ALERT is compared against in Fig. 14.
///
/// Substitution note (see DESIGN.md): LAM flooding is applied to the map
/// as a periodic snapshot refresh instead of simulating ~N^2 broadcast
/// events per round; its traffic is accounted in `control_hops` as the
/// per-announcement propagation depth (network hop-diameter) per node per
/// round — the accounting that reproduces Fig. 15a's "ALARM (include id
/// dissemination hops)" ≈ 2x ALERT shape.

#include <vector>

#include "routing/router.hpp"
#include "util/rng.hpp"

namespace alert::routing {

struct AlarmConfig {
  double dissemination_period_s = 30.0;  ///< Sec. 5: "set to 30 s"
  int max_hops = 10;
  double per_hop_processing_s = 200e-6;
};

class AlarmRouter final : public Protocol {
 public:
  AlarmRouter(net::Network& network, loc::LocationService& location,
              AlarmConfig config);

  [[nodiscard]] std::string name() const override { return "ALARM"; }

  void send(net::NodeId src, net::NodeId dst, std::size_t payload_bytes,
            std::uint32_t flow, std::uint32_t seq) override;

  void handle(net::Node& self, const net::Packet& pkt) override;

  /// Position of `id` in the secure map (as of the last dissemination).
  [[nodiscard]] util::Vec2 map_position(net::NodeId id) const {
    return map_[id];
  }
  [[nodiscard]] sim::Time map_age() const;

 private:
  void refresh_map();
  void forward(net::Node& self, net::Packet pkt);
  bool reroute_failed(net::Node& self, const net::Packet& pkt) override;
  [[nodiscard]] double network_hop_diameter() const;

  AlarmConfig config_;
  std::vector<util::Vec2> map_;
  sim::Time map_updated_at_ = 0.0;
};

}  // namespace alert::routing
