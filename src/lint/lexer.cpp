#include "lint/lexer.hpp"

#include <cctype>
#include <cstddef>
#include <string>

namespace alert::analysis_tools {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Multi-character punctuation, longest-match-first. Only operators a rule
/// could plausibly care about as a unit need to be here; everything else
/// falls through to single-character tokens.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
    "^=", ".*",
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  TokenStream run() {
    TokenStream out;
    // A UTF-8 BOM would otherwise lex as three punct bytes and clear
    // at_line_start_, so a leading `#include` on line 1 never became a
    // Preprocessor token. Skip it before the main loop.
    if (src_.size() >= 3 && src_.compare(0, 3, "\xEF\xBB\xBF") == 0) {
      pos_ = 3;
    }
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        out.push_back(lex_preprocessor());
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        out.push_back(lex_line_comment());
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        out.push_back(lex_block_comment());
        continue;
      }
      if (ident_start(c)) {
        out.push_back(lex_identifier_or_prefixed_literal());
        continue;
      }
      if (digit(c) || (c == '.' && digit(peek(1)))) {
        out.push_back(lex_number());
        continue;
      }
      if (c == '"') {
        out.push_back(lex_quoted(TokenKind::String, '"'));
        continue;
      }
      if (c == '\'') {
        out.push_back(lex_quoted(TokenKind::CharLiteral, '\''));
        continue;
      }
      out.push_back(lex_punct());
    }
    return out;
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      at_line_start_ = true;
    } else {
      if (std::isspace(static_cast<unsigned char>(src_[pos_])) == 0) {
        at_line_start_ = false;
      }
      ++col_;
    }
    ++pos_;
  }

  [[nodiscard]] Token start_token(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = line_;
    t.column = col_;
    return t;
  }

  void finish(Token& t, std::size_t begin) {
    t.text.assign(src_.substr(begin, pos_ - begin));
  }

  Token lex_preprocessor() {
    Token t = start_token(TokenKind::Preprocessor);
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        advance();  // backslash
        advance();  // newline — logical line continues
        continue;
      }
      if (src_[pos_] == '\n') break;
      // A // comment ends the directive's meaningful text but we keep
      // scanning to the newline anyway; the raw text is what rules parse.
      advance();
    }
    finish(t, begin);
    return t;
  }

  Token lex_line_comment() {
    Token t = start_token(TokenKind::LineComment);
    const std::size_t begin = pos_;
    while (pos_ < src_.size()) {
      // Translation phase 2: a backslash-newline splice continues the
      // comment onto the next physical line, so text there is never code.
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        advance();  // backslash
        advance();  // newline
        continue;
      }
      if (src_[pos_] == '\n') break;
      advance();
    }
    finish(t, begin);
    return t;
  }

  Token lex_block_comment() {
    Token t = start_token(TokenKind::BlockComment);
    const std::size_t begin = pos_;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && peek(1) == '/') {
        advance();
        advance();
        break;
      }
      advance();
    }
    finish(t, begin);
    return t;
  }

  Token lex_identifier_or_prefixed_literal() {
    Token t = start_token(TokenKind::Identifier);
    const std::size_t begin = pos_;
    while (pos_ < src_.size() && ident_char(src_[pos_])) advance();
    const std::string_view id = src_.substr(begin, pos_ - begin);
    // Encoding prefixes and raw-string markers glue onto the literal that
    // follows with no whitespace: u8R"(...)", LR"(...)", L"...", u'x', ...
    const bool raw = !id.empty() && id.back() == 'R' &&
                     (id == "R" || id == "u8R" || id == "uR" || id == "UR" ||
                      id == "LR");
    const bool prefix =
        id == "u8" || id == "u" || id == "U" || id == "L";
    if (raw && peek() == '"') {
      lex_raw_string_tail();
      t.kind = TokenKind::String;
      finish(t, begin);
      return t;
    }
    if (prefix && (peek() == '"' || peek() == '\'')) {
      const char quote = peek();
      lex_quoted_tail(quote);
      t.kind = quote == '"' ? TokenKind::String : TokenKind::CharLiteral;
      finish(t, begin);
      return t;
    }
    finish(t, begin);
    return t;
  }

  /// Consume `"delim( ... )delim"` starting at the opening quote.
  void lex_raw_string_tail() {
    advance();  // '"'
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') {
      delim.push_back(src_[pos_]);
      advance();
    }
    if (pos_ < src_.size()) advance();  // '('
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (src_.compare(pos_, closer.size(), closer) == 0) {
        for (std::size_t i = 0; i < closer.size(); ++i) advance();
        return;
      }
      advance();
    }
  }

  void lex_quoted_tail(char quote) {
    advance();  // opening quote
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        advance();
        advance();
        continue;
      }
      if (src_[pos_] == quote) {
        advance();
        return;
      }
      if (src_[pos_] == '\n') return;  // unterminated: stop at line end
      advance();
    }
  }

  Token lex_quoted(TokenKind kind, char quote) {
    Token t = start_token(kind);
    const std::size_t begin = pos_;
    lex_quoted_tail(quote);
    finish(t, begin);
    return t;
  }

  Token lex_number() {
    Token t = start_token(TokenKind::Number);
    const std::size_t begin = pos_;
    // pp-number: digits, identifier chars, digit separators, '.', and
    // exponent signs after e/E/p/P.
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (ident_char(c) || c == '.') {
        advance();
        continue;
      }
      if (c == '\'' && ident_char(peek(1))) {  // digit separator
        advance();
        advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > begin) {
        const char prev = src_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance();
          continue;
        }
      }
      break;
    }
    finish(t, begin);
    return t;
  }

  Token lex_punct() {
    Token t = start_token(TokenKind::Punct);
    const std::size_t begin = pos_;
    for (const std::string_view op : kPuncts) {
      if (src_.compare(pos_, op.size(), op) == 0) {
        for (std::size_t i = 0; i < op.size(); ++i) advance();
        finish(t, begin);
        return t;
      }
    }
    advance();
    finish(t, begin);
    return t;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

TokenStream lex(std::string_view source) { return Lexer(source).run(); }

}  // namespace alert::analysis_tools
