/// \file index.cpp
/// Per-file symbol/scope indexing. Two passes per file: a scope walk that
/// finds function definitions (namespace- and class-scope brace bodies whose
/// statement head carries a parameter list), then a linear body scan per
/// function that records call sites, lambdas (captures + worker-ness), lock
/// acquisitions, writes with the held-mutex set, clock reads and allocation
/// sites. Both passes share the statement-head machinery proven out by the
/// mutable-global rule.

#include "lint/index.hpp"

#include <algorithm>
#include <utility>

namespace alert::analysis_tools {

namespace {

const std::set<std::string>& keyword_set() {
  static const std::set<std::string> kKeywords{
      "alignas",  "alignof",  "auto",     "bool",       "break",
      "case",     "catch",    "char",     "class",      "co_await",
      "co_return", "co_yield", "concept", "const",      "constexpr",
      "constinit", "continue", "decltype", "default",   "delete",
      "do",       "double",   "else",     "enum",       "explicit",
      "extern",   "false",    "float",    "for",        "friend",
      "goto",     "if",       "inline",   "int",        "long",
      "mutable",  "namespace", "new",     "noexcept",   "nullptr",
      "operator", "private",  "protected", "public",    "register",
      "requires", "return",   "short",    "signed",     "sizeof",
      "static",   "static_assert", "struct", "switch",  "template",
      "this",     "throw",    "true",     "try",        "typedef",
      "typename", "union",    "unsigned", "using",      "virtual",
      "void",     "volatile", "while"};
  return kKeywords;
}

bool is_keyword(const std::string& text) {
  return keyword_set().count(text) != 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Names the token heads that make a following '(' a control construct or
/// operator rather than a named call / function definition.
bool is_control_callee(const std::string& text) {
  static const std::set<std::string> kControl{
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "alignas", "decltype", "static_assert",
      "noexcept", "throw", "assert"};
  return kControl.count(text) != 0;
}

/// Builtin type keywords that can open a declaration (shared by the
/// declaration tests in declared_names() and match_write()).
const std::set<std::string>& type_keywords() {
  static const std::set<std::string> kTypeKeywords{
      "auto", "bool",  "char",     "double",   "float", "int",
      "long", "short", "signed",   "unsigned", "void",  "wchar_t",
      "const"};
  return kTypeKeywords;
}

enum class Ctx { Namespace, Class, Function, Init };

struct Scope {
  Ctx ctx = Ctx::Namespace;
  std::string class_name;  ///< set for Ctx::Class
};

/// Name of the class/struct/union/enum declared by this statement head,
/// skipping a leading template parameter list.
std::string class_name_of(const CodeView& v,
                          const std::vector<std::size_t>& stmt) {
  std::size_t start = 0;
  if (!stmt.empty() && v.tok(stmt[0]).text == "template") {
    std::size_t depth = 0;
    for (std::size_t s = 1; s < stmt.size(); ++s) {
      const std::string& t = v.tok(stmt[s]).text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) { start = s + 1; break; }
      } else if (t == ">>") {
        if (depth <= 2) { start = s + 1; break; }
        depth -= 2;
      }
    }
  }
  for (std::size_t s = start; s < stmt.size(); ++s) {
    const std::string& t = v.tok(stmt[s]).text;
    if (t != "class" && t != "struct" && t != "union" && t != "enum")
      continue;
    for (std::size_t n = s + 1; n < stmt.size(); ++n) {
      const Token& tok = v.tok(stmt[n]);
      if (tok.kind != TokenKind::Identifier) break;
      if (tok.text == "class" || tok.text == "struct" ||
          tok.text == "final" || tok.text == "alignas") {
        continue;
      }
      return tok.text;
    }
    break;
  }
  return {};
}

/// Try to read the statement head as a function signature: the identifier
/// immediately before the first top-level '(' names the function. Rejects
/// control constructs, destructors, operators and `=`-initialized heads.
bool signature_name(const CodeView& v, const std::vector<std::size_t>& stmt,
                    const std::string& class_ctx, FunctionInfo* out) {
  std::size_t open = stmt.size();
  for (std::size_t s = 0; s < stmt.size(); ++s) {
    const std::string& t = v.tok(stmt[s]).text;
    if (t == "=") return false;  // initialized declaration, not a signature
    if (is_control_callee(t)) return false;
    if (t == "(") { open = s; break; }
  }
  if (open == stmt.size() || open == 0) return false;
  const Token& name = v.tok(stmt[open - 1]);
  if (name.kind != TokenKind::Identifier || is_keyword(name.text))
    return false;
  if (open >= 2 && v.tok(stmt[open - 2]).text == "~") return false;
  out->name = name.text;
  out->line = name.line;
  if (open >= 3 && v.tok(stmt[open - 2]).text == "::" &&
      v.tok(stmt[open - 3]).kind == TokenKind::Identifier) {
    out->qualified = v.tok(stmt[open - 3]).text + "::" + name.text;
  } else if (!class_ctx.empty()) {
    out->qualified = class_ctx + "::" + name.text;
  } else {
    out->qualified = name.text;
  }
  return true;
}

/// Skip a template argument list opening at `i` ('<'); returns the index
/// one past the matching '>', or `i` when the list never closes.
std::size_t skip_template_args(const CodeView& v, std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < v.size(); ++j) {
    const std::string& t = v.tok(j).text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth == 0) return j + 1;
    } else if (t == ">>") {
      if (depth <= 2) return j + 1;
      depth -= 2;
    } else if (t == ";" || t == "{") {
      break;  // not a template argument list after all
    }
  }
  return i;
}

/// Collects the lambdas whose introducer '[' lies in (begin, end). A '[' is
/// a lambda when it is not a subscript (previous token is not an identifier,
/// ']' or ')') and a body '{' follows the capture list within a few tokens.
std::vector<LambdaInfo> scan_lambdas(const CodeView& v, std::size_t begin,
                                     std::size_t end) {
  std::vector<LambdaInfo> out;
  for (std::size_t i = begin + 1; i < end; ++i) {
    if (!v.is_punct(i, "[")) continue;
    if (i > 0) {
      const Token& prev = v.tok(i - 1);
      const bool subscript =
          (prev.kind == TokenKind::Identifier && !is_keyword(prev.text)) ||
          prev.text == "]" || prev.text == ")";
      if (subscript) continue;
      if (prev.text == "[") continue;  // inside an attribute
    }
    const std::size_t close = v.matching(i, "[", "]");
    if (close >= end) continue;

    LambdaInfo lam;
    lam.intro = i;
    lam.line = v.tok(i).line;
    // Capture list: top-level comma-separated entries.
    std::size_t item = i + 1;
    while (item < close) {
      std::size_t item_end = item;
      std::size_t depth = 0;
      for (; item_end < close; ++item_end) {
        const std::string& t = v.tok(item_end).text;
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if ((t == ")" || t == "]" || t == "}" || t == ">") && depth > 0)
          --depth;
        if (t == "," && depth == 0) break;
      }
      Capture c;
      std::size_t k = item;
      if (v.is_punct(k, "&")) {
        c.by_ref = true;
        ++k;
      } else if (v.is_punct(k, "=")) {
        c.is_default = true;
        ++k;
      } else if (v.is_punct(k, "*")) {
        ++k;  // *this
      }
      if (k < item_end && v.tok(k).kind == TokenKind::Identifier) {
        if (v.tok(k).text == "this") {
          c.is_this = true;
        } else {
          c.name = v.tok(k).text;
        }
      } else if (c.by_ref && k >= item_end) {
        c.is_default = true;  // bare [&]
      }
      lam.captures.push_back(c);
      item = item_end + 1;
    }

    // Optional parameter list, then specifiers, then the body '{'.
    std::size_t j = close + 1;
    if (v.is_punct(j, "(")) {
      const std::size_t pclose = v.matching(j, "(", ")");
      if (pclose >= end) continue;
      // Parameter names: last identifier of each top-level comma piece,
      // before any '=' default argument.
      std::size_t depth = 0;
      std::string last_ident;
      bool saw_default = false;
      for (std::size_t p = j + 1; p <= pclose; ++p) {
        const std::string& t = v.tok(p).text;
        if (p == pclose || (t == "," && depth == 0)) {
          if (!last_ident.empty()) lam.params.insert(last_ident);
          last_ident.clear();
          saw_default = false;
          continue;
        }
        if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
        if ((t == ")" || t == "]" || t == "}" || t == ">") && depth > 0)
          --depth;
        if (t == "=" && depth == 0) saw_default = true;
        if (!saw_default && depth == 0 &&
            v.tok(p).kind == TokenKind::Identifier && !is_keyword(t)) {
          last_ident = t;
        }
      }
      j = pclose + 1;
    }
    bool found_body = false;
    for (std::size_t guard = 0; guard < 16 && j < end; ++guard, ++j) {
      if (v.is_punct(j, "{")) {
        found_body = true;
        break;
      }
      if (v.is_punct(j, ";") || v.is_punct(j, ")") || v.is_punct(j, ",") ||
          v.is_punct(j, "]")) {
        break;
      }
    }
    if (!found_body) continue;
    lam.body_begin = j;
    lam.body_end = v.matching(j, "{", "}");
    if (lam.body_end >= end) continue;
    out.push_back(std::move(lam));
  }
  return out;
}

/// Normalized text of a lock-guard constructor operand: tokens joined,
/// leading '&' and `this->` stripped. Empty for tag operands
/// (std::adopt_lock and friends).
std::string normalize_mutex(const CodeView& v, std::size_t begin,
                            std::size_t end) {
  std::string out;
  for (std::size_t k = begin; k < end; ++k) {
    const std::string& t = v.tok(k).text;
    if (t == "adopt_lock" || t == "defer_lock" || t == "try_to_lock")
      return {};
    if (out.empty() && (t == "&" || t == "std" || t == "::")) continue;
    if (out.empty() && t == "this") {
      if (k + 1 < end && v.tok(k + 1).text == "->") ++k;
      continue;
    }
    out += t;
  }
  return out;
}

struct BodyScanner {
  const CodeView& v;
  FunctionInfo& fn;
  const std::vector<std::string>& worker_entry_points;

  struct ParenFrame {
    std::string callee;
  };
  struct BraceFrame {
    std::vector<std::set<std::string>> locks;
  };
  std::vector<ParenFrame> parens;
  std::vector<BraceFrame> braces;

  [[nodiscard]] std::set<std::string> held_mutexes() const {
    std::set<std::string> held;
    for (const BraceFrame& b : braces) {
      for (const auto& s : b.locks) held.insert(s.begin(), s.end());
    }
    return held;
  }

  /// Innermost lambda whose body contains `j`, -1 when outside all.
  [[nodiscard]] int lambda_at(std::size_t j) const {
    int best = -1;
    for (std::size_t li = 0; li < fn.lambdas.size(); ++li) {
      const LambdaInfo& l = fn.lambdas[li];
      if (l.body_begin < j && j < l.body_end &&
          (best < 0 ||
           l.body_begin > fn.lambdas[static_cast<std::size_t>(best)]
                              .body_begin)) {
        best = static_cast<int>(li);
      }
    }
    return best;
  }

  /// True when `j` lies inside any worker lambda's body (nested lambdas
  /// inside a worker body still run on pool threads).
  [[nodiscard]] bool in_worker(std::size_t j) const {
    for (const LambdaInfo& l : fn.lambdas) {
      if (l.worker && l.body_begin < j && j < l.body_end) return true;
    }
    return false;
  }

  void record_call(std::size_t open) {
    // `ident (` — but `Type name(` declarations, control constructs,
    // keywords and `new Type(` constructor operands are not call sites.
    if (open == 0) return;
    const Token& callee = v.tok(open - 1);
    if (callee.kind != TokenKind::Identifier || is_keyword(callee.text) ||
        is_control_callee(callee.text)) {
      return;
    }
    std::size_t c = open - 1;
    if (c >= 1) {
      const Token& before = v.tok(c - 1);
      if (before.kind == TokenKind::Identifier && !is_keyword(before.text))
        return;  // `Type name(` declaration
      if (before.text == ">" || before.text == "*" || before.text == "&" ||
          before.text == "new") {
        return;  // `Type<..> name(` / `Type* name(` / `new Type(`
      }
    }
    CallSite site;
    site.callee = callee.text;
    site.tok = c;
    site.line = callee.line;
    site.column = callee.column;
    site.held = held_mutexes();
    if (c >= 2) {
      const std::string& acc = v.tok(c - 1).text;
      if ((acc == "::" || acc == "." || acc == "->") &&
          v.tok(c - 2).kind == TokenKind::Identifier) {
        site.qualifier = v.tok(c - 2).text;
        site.scope_qualified = acc == "::";
      }
    }
    fn.calls.push_back(std::move(site));
  }

  /// Parse a lock declaration at `j`; returns tokens consumed (0 = no
  /// match). Pattern: [std ::] lock_guard|scoped_lock|unique_lock|
  /// shared_lock [<...>] name ( operands ) — operands land in the current
  /// brace scope's capability set.
  std::size_t match_lock(std::size_t j) {
    static const std::set<std::string> kGuards{
        "lock_guard", "scoped_lock", "unique_lock", "shared_lock"};
    if (v.tok(j).kind != TokenKind::Identifier ||
        kGuards.count(v.tok(j).text) == 0) {
      return 0;
    }
    std::size_t k = j + 1;
    if (v.is_punct(k, "<")) {
      const std::size_t past = skip_template_args(v, k);
      if (past == k) return 0;
      k = past;
    }
    if (k >= v.size() || v.tok(k).kind != TokenKind::Identifier) return 0;
    ++k;  // guard variable name
    const bool paren = v.is_punct(k, "(");
    if (!paren && !v.is_punct(k, "{")) return 0;
    const std::size_t close =
        paren ? v.matching(k, "(", ")") : v.matching(k, "{", "}");
    if (close >= v.size()) return 0;

    LockSite lock;
    lock.tok = j;
    lock.line = v.tok(j).line;
    lock.column = v.tok(j).column;
    lock.held = held_mutexes();  // before this guard's own operands join
    std::size_t item = k + 1;
    std::size_t depth = 0;
    for (std::size_t p = k + 1; p <= close; ++p) {
      const std::string& t = v.tok(p).text;
      if (p == close || (t == "," && depth == 0)) {
        std::string m = normalize_mutex(v, item, p);
        if (!m.empty()) lock.mutexes.push_back(std::move(m));
        item = p + 1;
        continue;
      }
      if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
      if ((t == ")" || t == "]" || t == "}" || t == ">") && depth > 0)
        --depth;
    }
    if (lock.mutexes.empty()) return 0;
    if (!braces.empty()) {
      braces.back().locks.emplace_back(lock.mutexes.begin(),
                                       lock.mutexes.end());
    }
    fn.locks.push_back(std::move(lock));
    return close - j + 1;
  }

  void match_clock(std::size_t j) {
    static const std::set<std::string> kClockTypes{
        "system_clock", "steady_clock", "high_resolution_clock"};
    static const std::set<std::string> kClockCalls{
        "time", "clock", "gettimeofday", "clock_gettime", "localtime",
        "gmtime"};
    const Token& t = v.tok(j);
    if (t.kind != TokenKind::Identifier) return;
    if (kClockTypes.count(t.text) != 0 && v.is_punct(j + 1, "::") &&
        v.is_ident(j + 2, "now")) {
      fn.clock_uses.push_back(
          {"std::chrono::" + t.text + "::now()", t.line, t.column});
      return;
    }
    if (kClockCalls.count(t.text) != 0 && v.is_punct(j + 1, "(") &&
        !v.prev_is_accessor(j)) {
      fn.clock_uses.push_back({t.text + "()", t.line, t.column});
    }
  }

  void match_alloc(std::size_t j) {
    const Token& t = v.tok(j);
    if (t.kind != TokenKind::Identifier) return;
    if (t.text == "new" && !v.prev_is_accessor(j)) {
      fn.allocs.push_back({AllocSite::Kind::New, "new", t.line, t.column});
      return;
    }
    if ((t.text == "make_shared" || t.text == "make_unique") &&
        (v.is_punct(j + 1, "<") || v.is_punct(j + 1, "("))) {
      fn.allocs.push_back(
          {AllocSite::Kind::MakeShared, t.text, t.line, t.column});
      return;
    }
    // `std::function<...> name` object construction in a body; a trailing
    // '&' or '*' after the argument list means a reference/pointer type
    // mention, which does not allocate.
    if (t.text == "function" && j >= 2 && v.is_ident(j - 2, "std") &&
        v.is_punct(j - 1, "::") && v.is_punct(j + 1, "<")) {
      const std::size_t past = skip_template_args(v, j + 1);
      if (past != j + 1 && past < v.size() &&
          v.tok(past).kind == TokenKind::Identifier &&
          !is_keyword(v.tok(past).text)) {
        fn.allocs.push_back(
            {AllocSite::Kind::StdFunction, "std::function", t.line,
             t.column});
      }
    }
  }

  /// At an identifier starting an lvalue chain: follow `.x`, `->x` and
  /// `[...]` segments (subscripts elided from the target name); a trailing
  /// assignment/increment operator or mutating container call records a
  /// write. Returns the chain's extent for grow-call alloc detection.
  void match_write(std::size_t j) {
    static const std::set<std::string> kAssign{
        "=",  "+=", "-=", "*=", "/=", "%=",
        "|=", "&=", "^=", "<<=", ">>=", "++", "--"};
    static const std::set<std::string> kMutators{
        "push_back", "emplace_back", "emplace", "insert", "erase",
        "clear",     "resize",       "pop_back", "assign", "merge"};
    static const std::set<std::string> kGrowers{
        "push_back", "emplace_back", "emplace", "insert", "resize"};
    const Token& head = v.tok(j);
    if (head.kind != TokenKind::Identifier || is_keyword(head.text)) return;
    if (v.prev_is_accessor(j)) return;
    // A declaration initializer (`int total = 0;`, `Foo f = make();`) is
    // not a write for race purposes: the variable must exist before any
    // lambda can capture it, so the initialization happens-before every
    // worker task. Same type-position test as declared_names().
    if (j > 0) {
      const Token& prev = v.tok(j - 1);
      const bool type_prev =
          (prev.kind == TokenKind::Identifier &&
           (!is_keyword(prev.text) || type_keywords().count(prev.text) != 0)) ||
          prev.text == ">" || prev.text == "&" || prev.text == "*";
      if (type_prev) return;
    }

    std::string target = head.text;
    std::size_t k = j + 1;
    std::string method;  // trailing mutating-call name, if any
    while (k < v.size()) {
      if (v.is_punct(k, "[")) {
        const std::size_t close = v.matching(k, "[", "]");
        if (close >= v.size()) return;
        k = close + 1;
        continue;
      }
      if ((v.is_punct(k, ".") || v.is_punct(k, "->")) && k + 1 < v.size() &&
          v.tok(k + 1).kind == TokenKind::Identifier) {
        if (kMutators.count(v.tok(k + 1).text) != 0 &&
            v.is_punct(k + 2, "(")) {
          method = v.tok(k + 1).text;
          break;
        }
        target += "." + v.tok(k + 1).text;
        k += 2;
        continue;
      }
      break;
    }
    const bool pre_incremented =
        j > 0 && (v.tok(j - 1).text == "++" || v.tok(j - 1).text == "--");
    const bool assigned =
        pre_incremented ||
        (method.empty() && k < v.size() &&
         v.tok(k).kind == TokenKind::Punct &&
         kAssign.count(v.tok(k).text) != 0);
    if (!assigned && method.empty()) return;
    if (target == "this") return;

    WriteSite w;
    w.target = std::move(target);
    w.tok = j;
    w.line = head.line;
    w.column = head.column;
    w.lambda = lambda_at(j);
    w.in_worker = in_worker(j);
    w.held_mutexes = held_mutexes();
    fn.writes.push_back(std::move(w));
    if (!method.empty() && kGrowers.count(method) != 0) {
      const Token& m = v.tok(k + 1);
      fn.allocs.push_back({AllocSite::Kind::Grow, method, m.line, m.column});
    }
  }

  void run() {
    braces.push_back({});  // the function body scope itself
    std::size_t j = fn.body_begin + 1;
    while (j < fn.body_end) {
      const std::string& t = v.tok(j).text;
      if (t == "{") {
        braces.push_back({});
        ++j;
        continue;
      }
      if (t == "}") {
        if (braces.size() > 1) braces.pop_back();
        ++j;
        continue;
      }
      if (t == "(") {
        std::string callee;
        if (j > 0 && v.tok(j - 1).kind == TokenKind::Identifier &&
            !is_keyword(v.tok(j - 1).text)) {
          callee = v.tok(j - 1).text;
        }
        record_call(j);
        parens.push_back({std::move(callee)});
        ++j;
        continue;
      }
      if (t == ")") {
        if (!parens.empty()) parens.pop_back();
        ++j;
        continue;
      }
      if (t == "[") {
        // Worker-ness: a lambda introducer whose innermost open paren was
        // opened by a worker entry point (pool.submit(...) /
        // parallel_for(n, ...)).
        for (LambdaInfo& l : fn.lambdas) {
          if (l.intro == j && !parens.empty()) {
            const std::string& callee = parens.back().callee;
            l.worker =
                std::find(worker_entry_points.begin(),
                          worker_entry_points.end(),
                          callee) != worker_entry_points.end();
          }
        }
        ++j;
        continue;
      }
      const std::size_t lock_len = match_lock(j);
      if (lock_len != 0) {
        j += lock_len;
        continue;
      }
      match_clock(j);
      match_alloc(j);
      match_write(j);
      ++j;
    }
  }
};

/// RNG-engine variable names declared in this file: `[util::|std::] EngineType
/// [&*const]* name`, plus identifiers literally named `rng` or `*_rng`.
std::set<std::string> collect_rng_vars(const CodeView& v) {
  static const std::set<std::string> kEngines{
      "Rng",          "mt19937",      "mt19937_64",
      "minstd_rand",  "minstd_rand0", "default_random_engine",
      "ranlux24",     "ranlux48",     "knuth_b"};
  std::set<std::string> out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Token& t = v.tok(i);
    if (t.kind != TokenKind::Identifier) continue;
    if (t.text == "rng" || ends_with(t.text, "_rng")) {
      out.insert(t.text);
      continue;
    }
    if (kEngines.count(t.text) == 0) continue;
    std::size_t k = i + 1;
    while (v.is_punct(k, "&") || v.is_punct(k, "*") ||
           v.is_ident(k, "const")) {
      ++k;
    }
    if (k < v.size() && v.tok(k).kind == TokenKind::Identifier &&
        !is_keyword(v.tok(k).text)) {
      out.insert(v.tok(k).text);
    }
  }
  return out;
}

}  // namespace

const char* alloc_kind_name(AllocSite::Kind k) {
  switch (k) {
    case AllocSite::Kind::New:
      return "operator new";
    case AllocSite::Kind::MakeShared:
      return "make_shared/make_unique";
    case AllocSite::Kind::StdFunction:
      return "std::function construction";
    case AllocSite::Kind::Grow:
      return "growing-container call";
  }
  return "allocation";
}

std::set<std::string> declared_names(const FileData& file, std::size_t begin,
                                     std::size_t end) {
  const CodeView v(file);
  std::set<std::string> out;
  const std::size_t stop = std::min(end, v.size());
  for (std::size_t i = begin + 1; i < stop; ++i) {
    const Token& t = v.tok(i);
    if (t.kind != TokenKind::Identifier || is_keyword(t.text)) continue;
    const Token& prev = v.tok(i - 1);
    const bool type_prev =
        (prev.kind == TokenKind::Identifier &&
         (!is_keyword(prev.text) || type_keywords().count(prev.text) != 0)) ||
        prev.text == ">" || prev.text == "&" || prev.text == "*";
    if (!type_prev) continue;
    if (prev.kind == TokenKind::Identifier && v.prev_is_accessor(i - 1))
      continue;  // member chain `a.b c`? no — `a.b` then ident: not a decl
    if (i + 1 < v.size()) {
      const std::string& next = v.tok(i + 1).text;
      if (next == "=" || next == ";" || next == "," || next == ")" ||
          next == "{" || next == "(" || next == "[" || next == ":") {
        out.insert(t.text);
      }
    }
  }
  return out;
}

const std::vector<std::string>& default_worker_entry_points() {
  static const std::vector<std::string> kDefaults{"submit", "parallel_for"};
  return kDefaults;
}

FileIndex index_file(const FileData& file) {
  return index_file(file, default_worker_entry_points());
}

FileIndex index_file(const FileData& file,
                     const std::vector<std::string>& worker_entry_points) {
  FileIndex out;
  const CodeView v(file);
  out.rng_vars = collect_rng_vars(v);

  std::vector<Scope> stack{{Ctx::Namespace, {}}};
  std::vector<std::size_t> stmt;
  std::size_t paren_depth = 0;

  auto contains = [&](const char* word) {
    return std::any_of(stmt.begin(), stmt.end(), [&](std::size_t k) {
      return v.tok(k).text == word;
    });
  };

  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::string& t = v.tok(i).text;
    const bool in_init = stack.back().ctx == Ctx::Init;
    if (t == "{") {
      if (in_init) {
        stack.push_back({Ctx::Init, {}});
        continue;
      }
      const bool control_tail =
          !stmt.empty() && (v.tok(stmt.back()).text == "do" ||
                            v.tok(stmt.back()).text == "else" ||
                            v.tok(stmt.back()).text == "try");
      if (contains("namespace")) {
        stack.push_back({Ctx::Namespace, {}});
      } else if (contains("class") || contains("struct") ||
                 contains("union") || contains("enum")) {
        stack.push_back({Ctx::Class, class_name_of(v, stmt)});
      } else if (control_tail || contains("(")) {
        const Ctx here = stack.back().ctx;
        if (!control_tail &&
            (here == Ctx::Namespace || here == Ctx::Class)) {
          FunctionInfo fn;
          if (signature_name(v, stmt, stack.back().class_name, &fn)) {
            fn.file = &file;
            fn.body_begin = i;
            fn.body_end = v.matching(i, "{", "}");
            if (fn.body_end < v.size()) out.functions.push_back(std::move(fn));
          }
        }
        stack.push_back({Ctx::Function, {}});
      } else if (!stmt.empty() &&
                 (contains("=") ||
                  v.tok(stmt.back()).kind == TokenKind::Identifier ||
                  v.tok(stmt.back()).text == ">")) {
        stack.push_back({Ctx::Init, {}});
        continue;  // the statement continues past the initializer
      } else {
        stack.push_back({Ctx::Function, {}});
      }
      stmt.clear();
      paren_depth = 0;
      continue;
    }
    if (t == "}") {
      const bool was_init = stack.back().ctx == Ctx::Init;
      if (stack.size() > 1) stack.pop_back();
      if (!was_init) {
        stmt.clear();
        paren_depth = 0;
      }
      continue;
    }
    if (in_init) continue;
    if (t == "(") ++paren_depth;
    if (t == ")" && paren_depth > 0) --paren_depth;
    if (t == ";" && paren_depth == 0) {
      stmt.clear();
      continue;
    }
    stmt.push_back(i);
  }

  for (FunctionInfo& fn : out.functions) {
    fn.lambdas = scan_lambdas(v, fn.body_begin, fn.body_end);
    BodyScanner scanner{v, fn, worker_entry_points, {}, {}};
    scanner.run();
  }
  return out;
}

ProgramIndex::ProgramIndex(const std::vector<FileData>& files,
                           std::vector<FileIndex> slices) {
  for (std::size_t i = 0; i < files.size() && i < slices.size(); ++i) {
    if (!slices[i].rng_vars.empty()) {
      rng_vars_[files[i].rel_path] = std::move(slices[i].rng_vars);
    }
    for (FunctionInfo& fn : slices[i].functions) {
      functions_.push_back(std::move(fn));
    }
  }
  for (std::size_t fi = 0; fi < functions_.size(); ++fi) {
    by_name_[functions_[fi].name].push_back(fi);
    by_qualified_[functions_[fi].qualified].push_back(fi);
  }
}

ProgramIndex::ProgramIndex(const std::vector<FileData>& files)
    : ProgramIndex(files, [&files] {
        std::vector<FileIndex> slices;
        slices.reserve(files.size());
        for (const FileData& f : files) slices.push_back(index_file(f));
        return slices;
      }()) {}

const std::vector<std::size_t>& ProgramIndex::by_name(
    const std::string& name) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kEmpty : it->second;
}

const std::vector<std::size_t>& ProgramIndex::by_qualified(
    const std::string& qualified) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = by_qualified_.find(qualified);
  return it == by_qualified_.end() ? kEmpty : it->second;
}

const std::set<std::string>& ProgramIndex::rng_vars(
    const std::string& rel_path) const {
  static const std::set<std::string> kEmpty;
  const auto it = rng_vars_.find(rel_path);
  return it == rng_vars_.end() ? kEmpty : it->second;
}

}  // namespace alert::analysis_tools
