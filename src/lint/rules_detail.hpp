#pragma once

/// \file rules_detail.hpp
/// Internal factory declarations wiring the rule TUs into
/// make_default_rules (lint/rules.cpp). Not part of the public surface.

#include <memory>

#include "lint/rule.hpp"

namespace alert::analysis_tools::detail {

std::unique_ptr<Rule> make_raw_random(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_wall_clock(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_float_type(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_raw_stdout(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_iterator_invalidation();
std::unique_ptr<Rule> make_drop_reason(const AnalyzerConfig& c);

std::unique_ptr<Rule> make_module_layering(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_unordered_iteration(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_pointer_ordering();
std::unique_ptr<Rule> make_exhaustive_enum();
std::unique_ptr<Rule> make_mutable_global(const AnalyzerConfig& c);

std::unique_ptr<Rule> make_rng_discipline(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_wallclock_in_sim(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_lock_discipline(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_hotpath_allocation(const AnalyzerConfig& c);

std::unique_ptr<Rule> make_lock_order_cycle();
std::unique_ptr<Rule> make_use_after_move();
std::unique_ptr<Rule> make_fp_accumulation_order(const AnalyzerConfig& c);
std::unique_ptr<Rule> make_sim_state_confinement(const AnalyzerConfig& c);

}  // namespace alert::analysis_tools::detail
