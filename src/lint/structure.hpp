#pragma once

/// \file structure.hpp
/// Structural token scanners shared by rules: switch-statement case
/// collection and enum-class definition parsing (used by both the
/// drop-reason rule and the generalized exhaustive-enum rule).

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "lint/file_data.hpp"

namespace alert::analysis_tools {

struct SwitchInfo {
  std::size_t line = 0;
  std::size_t column = 0;
  bool has_default = false;
  /// case labels as (enum-type name, enumerator name) — the type name is
  /// the qualifier segment right before the last `::`; unqualified labels
  /// (plain `case kFoo:`) carry an empty type name.
  std::vector<std::pair<std::string, std::string>> cases;
};

[[nodiscard]] std::vector<SwitchInfo> collect_switches(const CodeView& v);

/// Parse an enum definition whose `enum` keyword is code token `i`.
/// Returns false for forward declarations and anonymous enums. On success
/// fills the enum's name, its enumerator names (initializers stripped) and
/// the line of the `enum` token.
bool parse_enum_definition(const CodeView& v, std::size_t i,
                           std::string* name,
                           std::vector<std::string>* enumerators,
                           std::size_t* line);

/// "a, b, c" — for diagnostics.
[[nodiscard]] std::string join(const std::vector<std::string>& parts);

}  // namespace alert::analysis_tools
