/// \file cfg.cpp
/// Token-level CFG construction. A recursive-descent statement walk over
/// the code tokens of one function body; the grammar subset matches what
/// the indexer already proves parseable (real-world C++ in this repo), and
/// anything outside it degrades to a straight-line statement inside the
/// current block — conservative for may-analyses.

#include "lint/cfg.hpp"

#include <algorithm>
#include <map>
#include <string>

namespace alert::analysis_tools {

namespace {

class CfgBuilder {
 public:
  CfgBuilder(const CodeView& v, std::size_t body_begin, std::size_t body_end)
      : v_(v), begin_(body_begin), end_(std::min(body_end, v.size())) {}

  Cfg build() {
    cfg_.blocks.resize(2);  // entry = 0, exit = 1
    cur_ = cfg_.entry;
    parse_seq(begin_ + 1, end_);
    edge(cur_, cfg_.exit);
    for (const auto& [block, label] : pending_gotos_) {
      const auto it = labels_.find(label);
      if (it != labels_.end()) edge(block, it->second);
    }
    return std::move(cfg_);
  }

 private:
  [[nodiscard]] std::size_t nb() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }

  void edge(std::size_t from, std::size_t to) {
    std::vector<std::size_t>& succ = cfg_.blocks[from].succ;
    if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
    succ.push_back(to);
    cfg_.blocks[to].pred.push_back(from);
  }

  /// Append [b, e) to `block`'s token ranges, merging adjacent runs.
  void emit_to(std::size_t block, std::size_t b, std::size_t e) {
    if (b >= e) return;
    auto& ranges = cfg_.blocks[block].ranges;
    if (!ranges.empty() && ranges.back().second == b) {
      ranges.back().second = e;
    } else {
      ranges.emplace_back(b, e);
    }
  }
  void emit(std::size_t b, std::size_t e) { emit_to(cur_, b, e); }

  /// A block that can actually execute: reachable (has preds or is entry)
  /// or carries tokens. Fresh post-jump blocks are neither.
  [[nodiscard]] bool live(std::size_t b) const {
    return b == cfg_.entry || !cfg_.blocks[b].pred.empty() ||
           !cfg_.blocks[b].ranges.empty();
  }

  /// Park unreachable code after a jump in a fresh, predecessor-less block.
  void terminate() { cur_ = nb(); }

  /// Matching ')' for the '(' at `open`, clamped to the body end.
  [[nodiscard]] std::size_t close_paren(std::size_t open) const {
    const std::size_t c = v_.matching(open, "(", ")");
    return std::min(c, end_ > 0 ? end_ - 1 : end_);
  }

  /// One past the ';' ending the plain statement at `i` (depth-aware over
  /// (), [], {} — lambda bodies and init-lists stay inside the statement);
  /// stops before a '}' closing the enclosing block.
  [[nodiscard]] std::size_t past_simple(std::size_t i) const {
    std::size_t depth = 0;
    for (std::size_t j = i; j < end_; ++j) {
      const std::string& t = v_.tok(j).text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]") {
        if (depth > 0) --depth;
      } else if (t == "}") {
        if (depth == 0) return j;  // enclosing close — malformed statement
        --depth;
      } else if (t == ";" && depth == 0) {
        return j + 1;
      }
    }
    return end_;
  }

  void parse_seq(std::size_t i, std::size_t stop) {
    while (i < stop) {
      if (v_.is_punct(i, "}")) break;  // defensive: never expected here
      const std::size_t next = parse_stmt(i);
      i = next > i ? next : i + 1;
    }
  }

  std::size_t parse_stmt(std::size_t i) {  // NOLINT(misc-no-recursion)
    if (i >= end_) return end_;
    const Token& t = v_.tok(i);
    const std::string& text = t.text;
    if (text == ";") return i + 1;
    if (text == "{") {
      const std::size_t close = std::min(v_.matching(i, "{", "}"), end_);
      parse_seq(i + 1, close);
      return close + 1;
    }
    if (text == "if") return parse_if(i);
    if (text == "while") return parse_while(i);
    if (text == "do") return parse_do(i);
    if (text == "for") return parse_for(i);
    if (text == "switch") return parse_switch(i);
    if (text == "try") return parse_try(i);
    if (text == "break" || text == "continue") {
      emit(i, i + 1);
      const std::vector<std::size_t>& stack =
          text == "break" ? break_stack_ : continue_stack_;
      if (!stack.empty()) edge(cur_, stack.back());
      terminate();
      return v_.is_punct(i + 1, ";") ? i + 2 : i + 1;
    }
    if (text == "return" || text == "throw" ||
        text == "co_return") {
      const std::size_t past = past_simple(i);
      emit(i, past);
      edge(cur_, cfg_.exit);
      terminate();
      return past;
    }
    if (text == "goto") {
      if (i + 1 < end_ && v_.tok(i + 1).kind == TokenKind::Identifier) {
        emit(i, i + 2);
        pending_gotos_.emplace_back(cur_, v_.tok(i + 1).text);
        terminate();
        return v_.is_punct(i + 2, ";") ? i + 3 : i + 2;
      }
      return past_simple(i);
    }
    // Stray case labels outside the switch walk (misparse guard): skip to
    // the ':' and carry on in the current block.
    if (text == "case" || text == "default") {
      const std::size_t colon = find_label_colon(i);
      return colon < end_ ? colon + 1 : end_;
    }
    // `label:` — a new join block; goto edges resolve to it at the end.
    if (t.kind == TokenKind::Identifier && v_.is_punct(i + 1, ":")) {
      const std::size_t block = nb();
      if (live(cur_)) edge(cur_, block);
      labels_[text] = block;
      cur_ = block;
      return i + 2;
    }
    const std::size_t past = past_simple(i);
    emit(i, past);
    return past;
  }

  std::size_t parse_if(std::size_t i) {  // NOLINT(misc-no-recursion)
    std::size_t j = i + 1;
    if (v_.is_ident(j, "constexpr")) ++j;
    if (!v_.is_punct(j, "(")) return past_simple(i);
    const std::size_t close = close_paren(j);
    emit(i, close + 1);
    const std::size_t cond = cur_;
    const std::size_t then_b = nb();
    edge(cond, then_b);
    cur_ = then_b;
    std::size_t next = parse_stmt(close + 1);
    const std::size_t then_end = cur_;
    const std::size_t join = nb();
    if (v_.is_ident(next, "else")) {
      const std::size_t else_b = nb();
      edge(cond, else_b);
      cur_ = else_b;
      next = parse_stmt(next + 1);
      edge(cur_, join);
    } else {
      edge(cond, join);
    }
    edge(then_end, join);
    cur_ = join;
    return next;
  }

  std::size_t parse_while(std::size_t i) {  // NOLINT(misc-no-recursion)
    if (!v_.is_punct(i + 1, "(")) return past_simple(i);
    const std::size_t close = close_paren(i + 1);
    const std::size_t head = nb();
    edge(cur_, head);
    cur_ = head;
    emit(i, close + 1);
    const std::size_t body = nb();
    const std::size_t after = nb();
    edge(head, body);
    edge(head, after);
    const std::size_t loop_idx = open_loop(LoopKind::While, head, i);
    break_stack_.push_back(after);
    continue_stack_.push_back(head);
    cur_ = body;
    const std::size_t next = parse_stmt(close + 1);
    edge(cur_, head);  // back edge
    break_stack_.pop_back();
    continue_stack_.pop_back();
    close_loop(loop_idx, close + 1, next);
    cur_ = after;
    return next;
  }

  std::size_t parse_do(std::size_t i) {  // NOLINT(misc-no-recursion)
    const std::size_t body = nb();
    edge(cur_, body);
    const std::size_t cond = nb();
    const std::size_t after = nb();
    const std::size_t loop_idx = open_loop(LoopKind::DoWhile, cond, i);
    break_stack_.push_back(after);
    continue_stack_.push_back(cond);
    cur_ = body;
    std::size_t next = parse_stmt(i + 1);
    break_stack_.pop_back();
    continue_stack_.pop_back();
    edge(cur_, cond);
    close_loop(loop_idx, i + 1, next);
    if (v_.is_ident(next, "while") && v_.is_punct(next + 1, "(")) {
      const std::size_t close = close_paren(next + 1);
      emit_to(cond, next, close + 1);
      next = close + 1;
      if (v_.is_punct(next, ";")) ++next;
      cfg_.loops[loop_idx].end = next;
    }
    edge(cond, body);  // back edge
    edge(cond, after);
    cur_ = after;
    return next;
  }

  std::size_t parse_for(std::size_t i) {  // NOLINT(misc-no-recursion)
    if (!v_.is_punct(i + 1, "(")) return past_simple(i);
    const std::size_t open = i + 1;
    const std::size_t close = close_paren(open);
    // Classic `for (init; cond; step)` has top-level ';'s in the header;
    // a range-for has none.
    std::size_t semi1 = close;
    std::size_t semi2 = close;
    std::size_t depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      const std::string& tt = v_.tok(j).text;
      if (tt == "(" || tt == "[" || tt == "{") ++depth;
      if ((tt == ")" || tt == "]" || tt == "}") && depth > 0) --depth;
      if (tt == ";" && depth == 0) {
        if (semi1 == close) {
          semi1 = j;
        } else if (semi2 == close) {
          semi2 = j;
          break;
        }
      }
    }
    const bool classic = semi1 != close;
    std::size_t head = 0;
    std::size_t latch = 0;
    if (classic) {
      emit(i, semi1 + 1);  // `for ( init ;` runs once in the current block
      head = nb();
      edge(cur_, head);
      emit_to(head, semi1 + 1, (semi2 == close ? close : semi2) + 1);
      latch = nb();
      if (semi2 != close) emit_to(latch, semi2 + 1, close + 1);
    } else {
      head = nb();
      edge(cur_, head);
      emit_to(head, i, close + 1);  // decl + range re-bind each iteration
      latch = head;
    }
    const std::size_t body = nb();
    const std::size_t after = nb();
    edge(head, body);
    edge(head, after);
    const std::size_t loop_idx =
        open_loop(classic ? LoopKind::For : LoopKind::RangeFor, head, i);
    cfg_.loops[loop_idx].index_ordered = classic;
    break_stack_.push_back(after);
    continue_stack_.push_back(latch);
    cur_ = body;
    const std::size_t next = parse_stmt(close + 1);
    break_stack_.pop_back();
    continue_stack_.pop_back();
    edge(cur_, latch);
    if (latch != head) edge(latch, head);  // back edge via the step block
    close_loop(loop_idx, close + 1, next);
    cur_ = after;
    return next;
  }

  std::size_t parse_switch(std::size_t i) {  // NOLINT(misc-no-recursion)
    if (!v_.is_punct(i + 1, "(")) return past_simple(i);
    const std::size_t close = close_paren(i + 1);
    emit(i, close + 1);
    const std::size_t dispatch = cur_;
    if (!v_.is_punct(close + 1, "{")) {
      // Braceless switch (degenerate): the sub-statement either runs or not.
      const std::size_t body = nb();
      edge(dispatch, body);
      cur_ = body;
      const std::size_t next = parse_stmt(close + 1);
      const std::size_t join = nb();
      edge(cur_, join);
      edge(dispatch, join);
      cur_ = join;
      return next;
    }
    const std::size_t brace = close + 1;
    const std::size_t bend = std::min(v_.matching(brace, "{", "}"), end_);
    const std::size_t after = nb();
    break_stack_.push_back(after);
    terminate();  // statements before the first label are dead
    bool saw_default = false;
    std::size_t j = brace + 1;
    while (j < bend) {
      const std::string& tt = v_.tok(j).text;
      if (tt == "case" || tt == "default") {
        saw_default |= tt == "default";
        const std::size_t colon = find_label_colon(j);
        const std::size_t group = nb();
        edge(dispatch, group);
        if (live(cur_)) edge(cur_, group);  // fallthrough from the previous group
        cur_ = group;
        j = colon < bend ? colon + 1 : bend;
        continue;
      }
      const std::size_t next = parse_stmt(j);
      j = next > j ? next : j + 1;
    }
    if (live(cur_)) edge(cur_, after);  // fallthrough off the last group
    if (!saw_default) edge(dispatch, after);
    break_stack_.pop_back();
    cur_ = after;
    return bend + 1;
  }

  std::size_t parse_try(std::size_t i) {  // NOLINT(misc-no-recursion)
    if (!v_.is_punct(i + 1, "{")) return past_simple(i);
    const std::size_t before = cur_;
    std::size_t next = parse_stmt(i + 1);  // the try compound
    const std::size_t after_try = cur_;
    const std::size_t join = nb();
    edge(after_try, join);
    while (v_.is_ident(next, "catch") && v_.is_punct(next + 1, "(")) {
      const std::size_t close = close_paren(next + 1);
      const std::size_t handler = nb();
      // Conservative: the handler can run after any prefix of the try body;
      // model it as an alternative from the block before the try.
      edge(before, handler);
      cur_ = handler;
      emit(next, close + 1);
      next = parse_stmt(close + 1);
      edge(cur_, join);
    }
    cur_ = join;
    return next;
  }

  /// Index of the ':' ending a case/default label (depth-aware; `::` is a
  /// distinct token so scope qualifiers never match).
  [[nodiscard]] std::size_t find_label_colon(std::size_t i) const {
    std::size_t depth = 0;
    for (std::size_t j = i + 1; j < end_; ++j) {
      const std::string& t = v_.tok(j).text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if ((t == ")" || t == "]" || t == "}") && depth > 0) --depth;
      if (t == ":" && depth == 0) return j;
      if ((t == ";" || t == "}") && depth == 0) return j;  // malformed
    }
    return end_;
  }

  std::size_t open_loop(LoopKind kind, std::size_t head, std::size_t kw) {
    LoopInfo loop;
    loop.kind = kind;
    loop.head = head;
    loop.begin = kw;
    loop.line = v_.tok(kw).line;
    cfg_.loops.push_back(loop);
    return cfg_.loops.size() - 1;
  }

  void close_loop(std::size_t idx, std::size_t body_begin,
                  std::size_t body_end) {
    cfg_.loops[idx].body_begin = body_begin;
    cfg_.loops[idx].body_end = body_end;
    cfg_.loops[idx].end = body_end;
  }

  const CodeView& v_;
  std::size_t begin_;
  std::size_t end_;
  Cfg cfg_;
  std::size_t cur_ = 0;
  std::vector<std::size_t> break_stack_;
  std::vector<std::size_t> continue_stack_;
  std::map<std::string, std::size_t> labels_;
  std::vector<std::pair<std::size_t, std::string>> pending_gotos_;
};

}  // namespace

const LoopInfo* Cfg::innermost_loop_at(std::size_t tok) const {
  const LoopInfo* best = nullptr;
  for (const LoopInfo& loop : loops) {
    if (loop.begin <= tok && tok < loop.end &&
        (best == nullptr || loop.begin > best->begin)) {
      best = &loop;
    }
  }
  return best;
}

Cfg build_cfg(const CodeView& v, std::size_t body_begin,
              std::size_t body_end) {
  return CfgBuilder(v, body_begin, body_end).build();
}

}  // namespace alert::analysis_tools
