#pragma once

/// \file callgraph.hpp
/// Program-wide call graph over ProgramIndex. Edges resolve call sites by
/// name: `Class::f` matches the qualified definition, `obj.f(...)` every
/// function named `f` (an over-approximation that suits reachability rules —
/// hotpath-allocation and wallclock-in-sim would rather follow a few extra
/// edges than miss a real path). A bare `f(...)` follows C++ unqualified
/// lookup instead: a member of the enclosing class hides everything else,
/// and otherwise only free functions are viable targets — a by_name hit on
/// another class's member would need an object expression the call does not
/// have. std-library qualifiers never resolve. When a config is supplied, its module-layering
/// DAG prunes impossible edges: a call between two modules unrelated in the
/// include graph (neither may include the other) cannot exist at runtime,
/// and for bare-name calls even the callback direction is ruled out — free
/// functions are not interface methods, so a bare call into a module the
/// caller may not include is a name collision, not an edge. Traversals are
/// plain BFS over function indices in file/definition order, so results are
/// deterministic for a fixed scan root.

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "lint/index.hpp"
#include "lint/rule.hpp"

namespace alert::analysis_tools {

class CallGraph {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  explicit CallGraph(const ProgramIndex& index,
                     const AnalyzerConfig* config = nullptr);

  struct Edge {
    std::size_t target = npos;
    const CallSite* via = nullptr;  ///< first call site inducing the edge
  };

  /// Forward reachability from `roots` (function indices). `parent[i]` is
  /// the calling function on the BFS tree path from a root (npos for roots
  /// and unreached nodes); `parent_call[i]` the call site in that caller.
  struct Reachability {
    std::vector<char> reached;
    std::vector<std::size_t> parent;
    std::vector<const CallSite*> parent_call;
  };
  [[nodiscard]] Reachability reach(const std::vector<std::size_t>& roots) const;

  /// Multi-source reverse reachability: for every function that can reach
  /// one of `sources` through calls, `next[i]` is the callee one hop toward
  /// the source (npos at the sources themselves) and `via[i]` the call site
  /// in function i taking that hop.
  struct ReverseReach {
    std::vector<char> reached;
    std::vector<std::size_t> next;
    std::vector<const CallSite*> via;
  };
  [[nodiscard]] ReverseReach reach_reverse(
      const std::vector<std::size_t>& sources) const;

  /// Function indices matching a root spec: "Class::name" matches by
  /// qualified name, a bare "name" by bare name.
  [[nodiscard]] std::vector<std::size_t> match(const std::string& spec) const;

  /// "root -> ... -> fn" qualified-name chain from forward reachability.
  [[nodiscard]] std::string chain(const Reachability& r, std::size_t fn) const;
  /// "fn -> ... -> source" qualified-name chain from reverse reachability.
  [[nodiscard]] std::string chain(const ReverseReach& r, std::size_t fn) const;

  [[nodiscard]] const std::vector<std::vector<Edge>>& edges() const {
    return edges_;
  }
  [[nodiscard]] const ProgramIndex& index() const { return *index_; }

  /// Function indices a call site in `caller` can target, after name
  /// resolution and DAG pruning — the same policy the constructor uses to
  /// build edges, exposed per call site because Edge keeps only the first
  /// inducing site per target (the lock graph needs every site's held set).
  [[nodiscard]] std::vector<std::size_t> resolve(std::size_t caller,
                                                const CallSite& call) const;

 private:
  const ProgramIndex* index_;
  const AnalyzerConfig* config_ = nullptr;
  std::vector<std::vector<Edge>> edges_;
};

}  // namespace alert::analysis_tools
