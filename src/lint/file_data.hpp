#pragma once

/// \file file_data.hpp
/// Per-file analysis input: the lexed token stream, an index of code tokens
/// (comments/preprocessor filtered out) for structural matching, the inline
/// waiver map parsed from `// alert-lint: allow(<rule>[, <rule>...])`
/// comments, and small token-pattern helpers shared by the rules.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/token.hpp"

namespace alert::analysis_tools {

struct FileData {
  std::string rel_path;  ///< forward-slash path relative to the scan root
  std::string source;
  TokenStream tokens;
  /// Indices into `tokens` of code tokens only, in order.
  std::vector<std::size_t> code;
  /// line -> rules waived on that line.
  std::map<std::size_t, std::set<std::string>> waivers;

  [[nodiscard]] bool waived(std::size_t line, const std::string& rule) const {
    const auto it = waivers.find(line);
    return it != waivers.end() && it->second.count(rule) != 0;
  }
};

/// Lex `source` and derive the code index and waiver map.
[[nodiscard]] FileData build_file_data(std::string rel_path,
                                       std::string source);

/// View over the code tokens of a file: rules match structure against this
/// (i < size() indexes code tokens, not raw tokens).
class CodeView {
 public:
  explicit CodeView(const FileData& f) : file_(&f) {}

  [[nodiscard]] std::size_t size() const { return file_->code.size(); }
  [[nodiscard]] const Token& tok(std::size_t i) const {
    return file_->tokens[file_->code[i]];
  }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return i < size() && tok(i).text == text;
  }
  [[nodiscard]] bool is_ident(std::size_t i, std::string_view text) const {
    return i < size() && tok(i).kind == TokenKind::Identifier &&
           tok(i).text == text;
  }
  [[nodiscard]] bool is_punct(std::size_t i, std::string_view text) const {
    return i < size() && tok(i).kind == TokenKind::Punct &&
           tok(i).text == text;
  }

  /// Index of the punct matching the opener at `open_i` (e.g. "(" -> ")"),
  /// or size() when unbalanced. `open_i` must hold `open`.
  [[nodiscard]] std::size_t matching(std::size_t open_i,
                                     std::string_view open,
                                     std::string_view close) const;

  /// True when the code token before `i` is one of the member/scope
  /// accessors that disqualify a bare-identifier match (".", "->", "::").
  [[nodiscard]] bool prev_is_accessor(std::size_t i) const {
    if (i == 0) return false;
    const std::string& p = tok(i - 1).text;
    return p == "." || p == "->" || p == "::";
  }

 private:
  const FileData* file_;
};

/// If the code tokens starting at `i` form a member chain
/// `ident ((. | ->) ident)*`, return the index one past its end and append
/// the chain's token texts (identifiers and accessors) to `out`; otherwise
/// return `i`.
std::size_t read_member_chain(const CodeView& v, std::size_t i,
                              std::vector<std::string>* out);

}  // namespace alert::analysis_tools
