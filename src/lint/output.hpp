#pragma once

/// \file output.hpp
/// Report rendering: human text (compiler-style, clickable in editors),
/// machine JSON, and SARIF 2.1.0 for code-scanning UIs. All three render
/// the same ScanReport, so every consumer sees identical findings.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "lint/finding.hpp"
#include "lint/rule.hpp"

namespace alert::analysis_tools {

struct ScanReport {
  std::vector<Finding> findings;  ///< post-waiver, post-baseline, sorted
  std::size_t files_scanned = 0;
  std::size_t waived = 0;            ///< suppressed by inline waivers
  std::size_t baseline_applied = 0;  ///< suppressed by the baseline file
  /// Stale baseline entries, rendered "<rule> <path> — <reason>".
  std::vector<std::string> stale_baseline;

  [[nodiscard]] std::size_t error_count() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.severity == Severity::Error;
    return n;
  }
};

void write_text(std::ostream& out, const ScanReport& report);
void write_json(std::ostream& out, const ScanReport& report);

/// SARIF 2.1.0: one run, one driver, the full rule catalog, results with
/// physical locations uriBaseId'd to the scan root.
void write_sarif(std::ostream& out, const ScanReport& report,
                 const std::vector<RuleInfo>& rules);

}  // namespace alert::analysis_tools
