#include "lint/rules.hpp"

#include "lint/rules_detail.hpp"

namespace alert::analysis_tools {

std::vector<std::unique_ptr<Rule>> make_default_rules(
    const AnalyzerConfig& config) {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(detail::make_raw_random(config));
  rules.push_back(detail::make_wall_clock(config));
  rules.push_back(detail::make_float_type(config));
  rules.push_back(detail::make_raw_stdout(config));
  rules.push_back(detail::make_iterator_invalidation());
  rules.push_back(detail::make_drop_reason(config));
  rules.push_back(detail::make_module_layering(config));
  rules.push_back(detail::make_unordered_iteration(config));
  rules.push_back(detail::make_pointer_ordering());
  rules.push_back(detail::make_exhaustive_enum());
  rules.push_back(detail::make_mutable_global(config));
  rules.push_back(detail::make_rng_discipline(config));
  rules.push_back(detail::make_wallclock_in_sim(config));
  rules.push_back(detail::make_lock_discipline(config));
  rules.push_back(detail::make_hotpath_allocation(config));
  rules.push_back(detail::make_lock_order_cycle());
  rules.push_back(detail::make_use_after_move());
  rules.push_back(detail::make_fp_accumulation_order(config));
  rules.push_back(detail::make_sim_state_confinement(config));
  return rules;
}

}  // namespace alert::analysis_tools
